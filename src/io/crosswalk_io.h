#ifndef GEOALIGN_IO_CROSSWALK_IO_H_
#define GEOALIGN_IO_CROSSWALK_IO_H_

#include <string>
#include <vector>

#include "core/crosswalk_input.h"
#include "io/table.h"

namespace geoalign::io {

/// Loaders for the on-disk crosswalk formats real pipelines exchange
/// (HUD-USPS-style relationship files), built on the CSV/Table layer.
///
/// Long-form crosswalk CSV: one row per non-empty intersection,
/// columns <source>,<target>,<value>. Aggregate CSV: one row per unit,
/// columns <unit>,<value>.

/// A crosswalk file resolved against explicit unit orderings.
struct LoadedCrosswalk {
  std::vector<std::string> source_units;  ///< row order of `dm`
  std::vector<std::string> target_units;  ///< column order of `dm`
  sparse::CsrMatrix dm;
};

/// Parses a long-form crosswalk table. When `source_units` /
/// `target_units` are empty they are derived from the table (sorted,
/// deduplicated); otherwise unknown unit names are an error. Duplicate
/// (source,target) rows are summed; negative values are rejected.
Result<LoadedCrosswalk> CrosswalkFromTable(
    const Table& table, const std::string& source_column,
    const std::string& target_column, const std::string& value_column,
    std::vector<std::string> source_units = {},
    std::vector<std::string> target_units = {});

/// Builds a ReferenceAttribute from a loaded crosswalk; the source
/// aggregates are the DM row sums.
core::ReferenceAttribute ReferenceFromCrosswalk(std::string name,
                                                const LoadedCrosswalk& cw);

/// Resolves a (unit,value) aggregate table into a vector aligned with
/// `units`; missing units get 0, unknown units error, duplicates sum.
Result<linalg::Vector> AggregatesFromTable(
    const Table& table, const std::string& unit_column,
    const std::string& value_column, const std::vector<std::string>& units);

/// Serializes a DM back to a long-form table with the given column
/// names (only stored entries are emitted).
Table CrosswalkToTable(const LoadedCrosswalk& cw,
                       const std::string& source_column,
                       const std::string& target_column,
                       const std::string& value_column);

}  // namespace geoalign::io

#endif  // GEOALIGN_IO_CROSSWALK_IO_H_
