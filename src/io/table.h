#ifndef GEOALIGN_IO_TABLE_H_
#define GEOALIGN_IO_TABLE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace geoalign::io {

/// A small in-memory column table (string cells with typed accessors)
/// — the shape of the aggregate tables the paper's pipeline consumes
/// (unit id column + value columns, as in Fig. 1).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> column_names);

  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return columns_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }

  /// Index of the named column.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a row; must match the column count.
  Status AppendRow(std::vector<std::string> cells);

  const std::string& Cell(size_t row, size_t col) const;

  /// Column of raw strings.
  Result<std::vector<std::string>> StringColumn(const std::string& name) const;

  /// Column parsed as doubles.
  Result<std::vector<double>> NumericColumn(const std::string& name) const;

  /// (key, value) pairs from two columns — the shape
  /// `CrosswalkPipeline` takes.
  Result<std::vector<std::pair<std::string, double>>> KeyValueColumn(
      const std::string& key_column, const std::string& value_column) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geoalign::io

#endif  // GEOALIGN_IO_TABLE_H_
