#ifndef GEOALIGN_IO_TABLE_H_
#define GEOALIGN_IO_TABLE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace geoalign::io {

/// A small in-memory column table — the shape of the aggregate tables
/// the paper's pipeline consumes (unit id column + value columns, as
/// in Fig. 1).
///
/// Storage is columnar: each column keeps its cells contiguously plus
/// a numeric cache parsed once on ingest, so NumericColumn and
/// KeyValueColumn never re-parse a cell. The row-oriented API
/// (AppendRow, Cell) is unchanged; a row is distributed across its
/// columns on append.
class Table {
 public:
  Table() = default;
  /// Unchecked construction (trusted literal headers). Use Create for
  /// untrusted headers — a duplicate name would make ColumnIndex
  /// silently resolve to the first occurrence.
  explicit Table(std::vector<std::string> column_names);

  /// Duplicate-rejecting construction; the CSV reader ingests headers
  /// through this.
  static Result<Table> Create(std::vector<std::string> column_names);

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return names_.size(); }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Index of the named column.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a row; must match the column count. Each cell is parsed
  /// into its column's numeric cache here (parse-once ingest).
  Status AppendRow(std::vector<std::string> cells);

  const std::string& Cell(size_t row, size_t col) const;

  /// Column of raw strings.
  Result<std::vector<std::string>> StringColumn(const std::string& name) const;

  /// Column as doubles, from the ingest-time cache. A column with any
  /// unparsable cell (including trailing garbage like "12x") errors
  /// with the offending row index and cell text.
  Result<std::vector<double>> NumericColumn(const std::string& name) const;

  /// (key, value) pairs from two columns — the shape
  /// `CrosswalkPipeline` takes. Value parse failures report like
  /// NumericColumn.
  Result<std::vector<std::pair<std::string, double>>> KeyValueColumn(
      const std::string& key_column, const std::string& value_column) const;

 private:
  /// One typed column: the string cells plus the parse-once numeric
  /// cache. `numeric` tracks the cells only while every cell so far
  /// parsed; the first failure records its position and drops the
  /// cache (most string columns fail on row 0, so the cache costs one
  /// parse attempt).
  struct Column {
    std::vector<std::string> cells;
    std::vector<double> numeric;
    bool numeric_ok = true;
    size_t first_bad_row = 0;  ///< valid when !numeric_ok
  };

  /// The hardened parse error for NumericColumn/KeyValueColumn.
  Status NumericError(const std::string& name, const Column& col) const;

  std::vector<std::string> names_;
  std::vector<Column> cols_;
  size_t num_rows_ = 0;
};

}  // namespace geoalign::io

#endif  // GEOALIGN_IO_TABLE_H_
