#ifndef GEOALIGN_IO_GEOJSON_H_
#define GEOALIGN_IO_GEOJSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/polygon.h"

namespace geoalign::io {

/// One GeoJSON feature: a (multi)polygon geometry plus scalar
/// properties. Property values are kept as strings (numbers formatted
/// with %g) — the library consumes them as unit names and aggregate
/// values.
struct Feature {
  /// Polygon parts; one entry for Polygon, several for MultiPolygon.
  std::vector<geom::Polygon> geometry;
  std::map<std::string, std::string> properties;
};

/// A parsed FeatureCollection.
struct FeatureCollection {
  std::vector<Feature> features;

  /// Values of the named property across features (error if any
  /// feature lacks it).
  Result<std::vector<std::string>> PropertyColumn(
      const std::string& key) const;
};

/// Parses GeoJSON text. Accepts a FeatureCollection, a single Feature,
/// or a bare Polygon/MultiPolygon geometry (wrapped into one feature).
/// Only polygonal geometries are supported; rings follow the RFC 7946
/// convention (first ring outer, rest holes; closing vertex optional).
Result<FeatureCollection> ParseGeoJson(const std::string& text);

/// Reads and parses a .geojson file.
Result<FeatureCollection> ReadGeoJsonFile(const std::string& path);

/// Serializes features as a FeatureCollection (outer rings CCW, holes
/// CW, rings closed, per RFC 7946).
std::string ToGeoJson(const FeatureCollection& fc);

/// Writes features to a file.
Status WriteGeoJsonFile(const FeatureCollection& fc,
                        const std::string& path);

}  // namespace geoalign::io

#endif  // GEOALIGN_IO_GEOJSON_H_
