#include "io/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace geoalign::io {

namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the
// record's terminating newline (or to text.size()).
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        return Status::InvalidArgument("CSV: quote inside unquoted field");
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

Result<Table> ParseCsv(const std::string& text) {
  size_t pos = 0;
  if (text.empty()) return Status::InvalidArgument("CSV: empty input");
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<std::string> header,
                            ParseRecord(text, &pos));
  GEOALIGN_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(header)));
  while (pos < text.size()) {
    // Skip blank trailing lines.
    if (text[pos] == '\n' || text[pos] == '\r') {
      ++pos;
      continue;
    }
    GEOALIGN_ASSIGN_OR_RETURN(std::vector<std::string> row,
                              ParseRecord(text, &pos));
    GEOALIGN_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string ToCsv(const Table& table) {
  std::string out;
  const std::vector<std::string>& cols = table.column_names();
  for (size_t c = 0; c < cols.size(); ++c) {
    if (c > 0) out += ',';
    AppendField(&out, cols[c]);
  }
  out += '\n';
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < cols.size(); ++c) {
      if (c > 0) out += ',';
      AppendField(&out, table.Cell(r, c));
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  out << ToCsv(table);
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace geoalign::io
