#include "io/json.h"

#include <cctype>
#include <cstring>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace geoalign::io {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Result<bool> JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) {
    return Status::InvalidArgument("JSON: not a bool");
  }
  return bool_;
}

Result<double> JsonValue::AsNumber() const {
  if (kind_ != Kind::kNumber) {
    return Status::InvalidArgument("JSON: not a number");
  }
  return number_;
}

Result<std::string> JsonValue::AsString() const {
  if (kind_ != Kind::kString) {
    return Status::InvalidArgument("JSON: not a string");
  }
  return string_;
}

Result<const JsonValue*> JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return Status::InvalidArgument("JSON: not an object");
  }
  auto it = object_.find(key);
  if (it == object_.end()) {
    return Status::NotFound("JSON: no member '" + key + "'");
  }
  return &it->second;
}

bool JsonValue::Has(const std::string& key) const {
  return kind_ == Kind::kObject && object_.count(key) > 0;
}

namespace {

void DumpString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void DumpValue(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += std::move(v.AsBool()).ValueOrDie() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      double n = std::move(v.AsNumber()).ValueOrDie();
      if (n == std::floor(n) && std::fabs(n) < 1e15) {
        *out += StrFormat("%.0f", n);
      } else {
        *out += StrFormat("%.17g", n);
      }
      break;
    }
    case JsonValue::Kind::kString:
      DumpString(std::move(v.AsString()).ValueOrDie(), out);
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) *out += ',';
        DumpValue(v[i], out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) *out += ',';
        first = false;
        DumpString(key, out);
        *out += ':';
        DumpValue(member, out);
      }
      *out += '}';
      break;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GEOALIGN_ASSIGN_OR_RETURN(JsonValue v, Value());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("JSON: trailing characters");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    SkipSpace();
    size_t len = std::strlen(w);
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> Value() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("JSON: unexpected end of input");
    }
    // The parser is recursive; bound nesting so adversarial input
    // ("[[[[...") cannot overflow the stack.
    if (depth_ >= kMaxDepth) {
      return Status::InvalidArgument("JSON: nesting too deep");
    }
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') {
      GEOALIGN_ASSIGN_OR_RETURN(std::string s, String());
      return JsonValue::MakeString(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::MakeBool(true);
    if (ConsumeWord("false")) return JsonValue::MakeBool(false);
    if (ConsumeWord("null")) return JsonValue();
    return Number();
  }

  Result<JsonValue> Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    GEOALIGN_ASSIGN_OR_RETURN(double v,
                              ParseDouble(text_.substr(start, pos_ - start)));
    return JsonValue::MakeNumber(v);
  }

  Result<std::string> String() {
    if (!Consume('"')) {
      return Status::InvalidArgument("JSON: expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("JSON: bad \\u escape");
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status::InvalidArgument("JSON: bad \\u escape");
              }
            }
            if (code > 0x7F) {
              return Status::Unimplemented(
                  "JSON: non-ASCII \\u escapes unsupported");
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            return Status::InvalidArgument("JSON: bad escape");
        }
      } else {
        out += c;
      }
    }
    return Status::InvalidArgument("JSON: unterminated string");
  }

  Result<JsonValue> Array() {
    ++depth_;
    struct DepthGuard {
      int* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};
    Consume('[');
    std::vector<JsonValue> items;
    SkipSpace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    for (;;) {
      GEOALIGN_ASSIGN_OR_RETURN(JsonValue v, Value());
      items.push_back(std::move(v));
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Status::InvalidArgument("JSON: expected ',' or ']'");
    }
    return JsonValue::MakeArray(std::move(items));
  }

  Result<JsonValue> Object() {
    ++depth_;
    struct DepthGuard {
      int* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};
    Consume('{');
    std::map<std::string, JsonValue> members;
    SkipSpace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    for (;;) {
      GEOALIGN_ASSIGN_OR_RETURN(std::string key, String());
      if (!Consume(':')) {
        return Status::InvalidArgument("JSON: expected ':'");
      }
      GEOALIGN_ASSIGN_OR_RETURN(JsonValue v, Value());
      members.emplace(std::move(key), std::move(v));
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Status::InvalidArgument("JSON: expected ',' or '}'");
    }
    return JsonValue::MakeObject(std::move(members));
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace geoalign::io
