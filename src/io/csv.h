#ifndef GEOALIGN_IO_CSV_H_
#define GEOALIGN_IO_CSV_H_

#include <string>

#include "io/table.h"

namespace geoalign::io {

/// RFC-4180-style CSV: comma separated, double-quote quoting with ""
/// escapes, first record is the header.

/// Parses CSV text into a Table.
Result<Table> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path);

/// Serializes a table as CSV (header + rows); quotes only when needed.
std::string ToCsv(const Table& table);

/// Writes a table to a file.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace geoalign::io

#endif  // GEOALIGN_IO_CSV_H_
