#ifndef GEOALIGN_IO_JSON_H_
#define GEOALIGN_IO_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace geoalign::io {

/// Minimal JSON document model — enough for GeoJSON and config files.
/// Values are immutable after parsing; numbers are stored as doubles.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; fail on kind mismatch.
  Result<bool> AsBool() const;
  Result<double> AsNumber() const;
  Result<std::string> AsString() const;

  /// Array access.
  size_t size() const { return array_.size(); }
  const JsonValue& operator[](size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  /// Object access; Get fails when the key is missing.
  Result<const JsonValue*> Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  const std::map<std::string, JsonValue>& members() const { return object_; }

  /// Serializes back to compact JSON.
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a JSON document (UTF-8; \uXXXX escapes are passed through
/// for ASCII and rejected above 0x7F to keep the parser small).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace geoalign::io

#endif  // GEOALIGN_IO_JSON_H_
