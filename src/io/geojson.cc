#include "io/geojson.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "io/json.h"

namespace geoalign::io {

Result<std::vector<std::string>> FeatureCollection::PropertyColumn(
    const std::string& key) const {
  std::vector<std::string> out;
  out.reserve(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    auto it = features[i].properties.find(key);
    if (it == features[i].properties.end()) {
      return Status::NotFound(StrFormat(
          "GeoJSON: feature %zu lacks property '%s'", i, key.c_str()));
    }
    out.push_back(it->second);
  }
  return out;
}

namespace {

Result<geom::Ring> ParseRing(const JsonValue& coords) {
  if (coords.kind() != JsonValue::Kind::kArray || coords.size() < 3) {
    return Status::InvalidArgument("GeoJSON: ring needs >= 3 positions");
  }
  geom::Ring ring;
  ring.reserve(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    const JsonValue& pos = coords[i];
    if (pos.kind() != JsonValue::Kind::kArray || pos.size() < 2) {
      return Status::InvalidArgument("GeoJSON: position needs 2 numbers");
    }
    GEOALIGN_ASSIGN_OR_RETURN(double x, pos[0].AsNumber());
    GEOALIGN_ASSIGN_OR_RETURN(double y, pos[1].AsNumber());
    ring.push_back({x, y});
  }
  if (ring.size() >= 2 && ring.front() == ring.back()) ring.pop_back();
  return ring;
}

Result<geom::Polygon> ParsePolygonCoords(const JsonValue& coords) {
  if (coords.kind() != JsonValue::Kind::kArray || coords.size() == 0) {
    return Status::InvalidArgument("GeoJSON: polygon needs >= 1 ring");
  }
  GEOALIGN_ASSIGN_OR_RETURN(geom::Ring outer, ParseRing(coords[0]));
  std::vector<geom::Ring> holes;
  for (size_t r = 1; r < coords.size(); ++r) {
    GEOALIGN_ASSIGN_OR_RETURN(geom::Ring hole, ParseRing(coords[r]));
    holes.push_back(std::move(hole));
  }
  return geom::Polygon::Create(std::move(outer), std::move(holes));
}

Result<std::vector<geom::Polygon>> ParseGeometry(const JsonValue& geometry) {
  GEOALIGN_ASSIGN_OR_RETURN(const JsonValue* type_v, geometry.Get("type"));
  GEOALIGN_ASSIGN_OR_RETURN(std::string type, type_v->AsString());
  GEOALIGN_ASSIGN_OR_RETURN(const JsonValue* coords,
                            geometry.Get("coordinates"));
  std::vector<geom::Polygon> out;
  if (type == "Polygon") {
    GEOALIGN_ASSIGN_OR_RETURN(geom::Polygon poly, ParsePolygonCoords(*coords));
    out.push_back(std::move(poly));
    return out;
  }
  if (type == "MultiPolygon") {
    for (size_t p = 0; p < coords->size(); ++p) {
      GEOALIGN_ASSIGN_OR_RETURN(geom::Polygon poly,
                                ParsePolygonCoords((*coords)[p]));
      out.push_back(std::move(poly));
    }
    return out;
  }
  return Status::Unimplemented("GeoJSON: unsupported geometry type '" +
                               type + "'");
}

std::string PropertyValueToString(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kString:
      return std::move(v.AsString()).ValueOrDie();
    case JsonValue::Kind::kNumber: {
      double n = std::move(v.AsNumber()).ValueOrDie();
      return StrFormat("%g", n);
    }
    case JsonValue::Kind::kBool:
      return std::move(v.AsBool()).ValueOrDie() ? "true" : "false";
    default:
      return v.Dump();
  }
}

Result<Feature> ParseFeature(const JsonValue& value) {
  Feature f;
  GEOALIGN_ASSIGN_OR_RETURN(const JsonValue* geometry, value.Get("geometry"));
  GEOALIGN_ASSIGN_OR_RETURN(f.geometry, ParseGeometry(*geometry));
  if (value.Has("properties")) {
    const JsonValue* props = std::move(value.Get("properties")).ValueOrDie();
    if (props->kind() == JsonValue::Kind::kObject) {
      for (const auto& [key, v] : props->members()) {
        f.properties.emplace(key, PropertyValueToString(v));
      }
    }
  }
  return f;
}

void AppendRingCoords(const geom::Ring& ring, bool reverse,
                      std::vector<JsonValue>* out) {
  std::vector<JsonValue> coords;
  size_t n = ring.size();
  for (size_t i = 0; i <= n; ++i) {  // closed ring
    size_t idx = i % n;
    if (reverse) idx = (n - idx) % n;
    coords.push_back(JsonValue::MakeArray(
        {JsonValue::MakeNumber(ring[idx].x),
         JsonValue::MakeNumber(ring[idx].y)}));
  }
  out->push_back(JsonValue::MakeArray(std::move(coords)));
}

JsonValue PolygonCoords(const geom::Polygon& poly) {
  std::vector<JsonValue> rings;
  AppendRingCoords(poly.outer(), /*reverse=*/false, &rings);
  for (const geom::Ring& hole : poly.holes()) {
    AppendRingCoords(hole, /*reverse=*/false, &rings);
  }
  return JsonValue::MakeArray(std::move(rings));
}

}  // namespace

Result<FeatureCollection> ParseGeoJson(const std::string& text) {
  GEOALIGN_ASSIGN_OR_RETURN(JsonValue root, ParseJson(text));
  GEOALIGN_ASSIGN_OR_RETURN(const JsonValue* type_v, root.Get("type"));
  GEOALIGN_ASSIGN_OR_RETURN(std::string type, type_v->AsString());
  FeatureCollection fc;
  if (type == "FeatureCollection") {
    GEOALIGN_ASSIGN_OR_RETURN(const JsonValue* features,
                              root.Get("features"));
    for (size_t i = 0; i < features->size(); ++i) {
      GEOALIGN_ASSIGN_OR_RETURN(Feature f, ParseFeature((*features)[i]));
      fc.features.push_back(std::move(f));
    }
    return fc;
  }
  if (type == "Feature") {
    GEOALIGN_ASSIGN_OR_RETURN(Feature f, ParseFeature(root));
    fc.features.push_back(std::move(f));
    return fc;
  }
  if (type == "Polygon" || type == "MultiPolygon") {
    Feature f;
    GEOALIGN_ASSIGN_OR_RETURN(f.geometry, ParseGeometry(root));
    fc.features.push_back(std::move(f));
    return fc;
  }
  return Status::Unimplemented("GeoJSON: unsupported root type '" + type +
                               "'");
}

Result<FeatureCollection> ReadGeoJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseGeoJson(buf.str());
}

std::string ToGeoJson(const FeatureCollection& fc) {
  std::vector<JsonValue> features;
  for (const Feature& f : fc.features) {
    std::map<std::string, JsonValue> feature;
    feature.emplace("type", JsonValue::MakeString("Feature"));
    std::map<std::string, JsonValue> geometry;
    if (f.geometry.size() == 1) {
      geometry.emplace("type", JsonValue::MakeString("Polygon"));
      geometry.emplace("coordinates", PolygonCoords(f.geometry[0]));
    } else {
      geometry.emplace("type", JsonValue::MakeString("MultiPolygon"));
      std::vector<JsonValue> polys;
      for (const geom::Polygon& p : f.geometry) {
        polys.push_back(PolygonCoords(p));
      }
      geometry.emplace("coordinates", JsonValue::MakeArray(std::move(polys)));
    }
    feature.emplace("geometry", JsonValue::MakeObject(std::move(geometry)));
    std::map<std::string, JsonValue> props;
    for (const auto& [key, value] : f.properties) {
      props.emplace(key, JsonValue::MakeString(value));
    }
    feature.emplace("properties", JsonValue::MakeObject(std::move(props)));
    features.push_back(JsonValue::MakeObject(std::move(feature)));
  }
  std::map<std::string, JsonValue> root;
  root.emplace("type", JsonValue::MakeString("FeatureCollection"));
  root.emplace("features", JsonValue::MakeArray(std::move(features)));
  return JsonValue::MakeObject(std::move(root)).Dump();
}

Status WriteGeoJsonFile(const FeatureCollection& fc,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  out << ToGeoJson(fc);
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace geoalign::io
