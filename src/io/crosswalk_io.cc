#include "io/crosswalk_io.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "sparse/coo_builder.h"

namespace geoalign::io {

namespace {

std::unordered_map<std::string, size_t> IndexOf(
    const std::vector<std::string>& units) {
  std::unordered_map<std::string, size_t> out;
  out.reserve(units.size());
  for (size_t i = 0; i < units.size(); ++i) out.emplace(units[i], i);
  return out;
}

std::vector<std::string> SortedUnique(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace

Result<LoadedCrosswalk> CrosswalkFromTable(
    const Table& table, const std::string& source_column,
    const std::string& target_column, const std::string& value_column,
    std::vector<std::string> source_units,
    std::vector<std::string> target_units) {
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<std::string> sources,
                            table.StringColumn(source_column));
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<std::string> targets,
                            table.StringColumn(target_column));
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<double> values,
                            table.NumericColumn(value_column));

  LoadedCrosswalk out;
  out.source_units =
      source_units.empty() ? SortedUnique(sources) : std::move(source_units);
  out.target_units =
      target_units.empty() ? SortedUnique(targets) : std::move(target_units);
  auto src_index = IndexOf(out.source_units);
  auto tgt_index = IndexOf(out.target_units);

  sparse::CooBuilder builder(out.source_units.size(),
                             out.target_units.size());
  for (size_t r = 0; r < values.size(); ++r) {
    auto si = src_index.find(sources[r]);
    if (si == src_index.end()) {
      return Status::NotFound(StrFormat("crosswalk row %zu: unknown source "
                                        "unit '%s'",
                                        r, sources[r].c_str()));
    }
    auto ti = tgt_index.find(targets[r]);
    if (ti == tgt_index.end()) {
      return Status::NotFound(StrFormat("crosswalk row %zu: unknown target "
                                        "unit '%s'",
                                        r, targets[r].c_str()));
    }
    if (values[r] < 0.0) {
      return Status::InvalidArgument(
          StrFormat("crosswalk row %zu: negative value", r));
    }
    builder.Add(si->second, ti->second, values[r]);
  }
  out.dm = builder.Build();
  return out;
}

core::ReferenceAttribute ReferenceFromCrosswalk(std::string name,
                                                const LoadedCrosswalk& cw) {
  core::ReferenceAttribute ref;
  ref.name = std::move(name);
  ref.disaggregation = cw.dm;
  ref.source_aggregates = cw.dm.RowSums();
  return ref;
}

Result<linalg::Vector> AggregatesFromTable(
    const Table& table, const std::string& unit_column,
    const std::string& value_column,
    const std::vector<std::string>& units) {
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            table.StringColumn(unit_column));
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<double> values,
                            table.NumericColumn(value_column));
  auto index = IndexOf(units);
  linalg::Vector out(units.size(), 0.0);
  for (size_t r = 0; r < names.size(); ++r) {
    auto it = index.find(names[r]);
    if (it == index.end()) {
      return Status::NotFound(StrFormat(
          "aggregate row %zu: unknown unit '%s'", r, names[r].c_str()));
    }
    out[it->second] += values[r];
  }
  return out;
}

Table CrosswalkToTable(const LoadedCrosswalk& cw,
                       const std::string& source_column,
                       const std::string& target_column,
                       const std::string& value_column) {
  Table out({source_column, target_column, value_column});
  for (size_t i = 0; i < cw.dm.rows(); ++i) {
    sparse::CsrMatrix::RowView row = cw.dm.Row(i);
    for (size_t k = 0; k < row.size; ++k) {
      out.AppendRow({cw.source_units[i], cw.target_units[row.cols[k]],
                     StrFormat("%.12g", row.values[k])})
          .CheckOK();
    }
  }
  return out;
}

}  // namespace geoalign::io
