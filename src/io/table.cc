#include "io/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace geoalign::io {

Table::Table(std::vector<std::string> column_names)
    : names_(std::move(column_names)), cols_(names_.size()) {}

Result<Table> Table::Create(std::vector<std::string> column_names) {
  for (size_t c = 0; c < column_names.size(); ++c) {
    for (size_t prev = 0; prev < c; ++prev) {
      if (column_names[prev] == column_names[c]) {
        return Status::InvalidArgument("Table: duplicate column name '" +
                                       column_names[c] + "'");
      }
    }
  }
  return Table(std::move(column_names));
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return c;
  }
  return Status::NotFound("Table: no column named '" + name + "'");
}

Status Table::AppendRow(std::vector<std::string> cells) {
  if (cells.size() != names_.size()) {
    return Status::InvalidArgument(
        StrFormat("Table: row has %zu cells, table has %zu columns",
                  cells.size(), names_.size()));
  }
  for (size_t c = 0; c < cells.size(); ++c) {
    Column& col = cols_[c];
    if (col.numeric_ok) {
      Result<double> v = ParseDouble(cells[c]);
      if (v.ok()) {
        col.numeric.push_back(v.value());
      } else {
        // First unparsable cell: remember where, drop the cache.
        col.numeric_ok = false;
        col.first_bad_row = num_rows_;
        col.numeric.clear();
        col.numeric.shrink_to_fit();
      }
    }
    col.cells.push_back(std::move(cells[c]));
  }
  ++num_rows_;
  return Status::OK();
}

const std::string& Table::Cell(size_t row, size_t col) const {
  GEOALIGN_CHECK(row < num_rows_ && col < names_.size());
  return cols_[col].cells[row];
}

Result<std::vector<std::string>> Table::StringColumn(
    const std::string& name) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t c, ColumnIndex(name));
  return cols_[c].cells;
}

Status Table::NumericError(const std::string& name, const Column& col) const {
  return Status::InvalidArgument(
      StrFormat("Table: column '%s' row %zu: cannot parse double: '%s'",
                name.c_str(), col.first_bad_row,
                col.cells[col.first_bad_row].c_str()));
}

Result<std::vector<double>> Table::NumericColumn(
    const std::string& name) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t c, ColumnIndex(name));
  const Column& col = cols_[c];
  if (!col.numeric_ok) return NumericError(name, col);
  return col.numeric;
}

Result<std::vector<std::pair<std::string, double>>> Table::KeyValueColumn(
    const std::string& key_column, const std::string& value_column) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t kc, ColumnIndex(key_column));
  GEOALIGN_ASSIGN_OR_RETURN(size_t vc, ColumnIndex(value_column));
  const Column& keys = cols_[kc];
  const Column& values = cols_[vc];
  if (!values.numeric_ok) return NumericError(value_column, values);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    out.emplace_back(keys.cells[r], values.numeric[r]);
  }
  return out;
}

}  // namespace geoalign::io
