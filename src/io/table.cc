#include "io/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace geoalign::io {

Table::Table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == name) return c;
  }
  return Status::NotFound("Table: no column named '" + name + "'");
}

Status Table::AppendRow(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("Table: row has %zu cells, table has %zu columns",
                  cells.size(), columns_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

const std::string& Table::Cell(size_t row, size_t col) const {
  GEOALIGN_CHECK(row < rows_.size() && col < columns_.size());
  return rows_[row][col];
}

Result<std::vector<std::string>> Table::StringColumn(
    const std::string& name) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t c, ColumnIndex(name));
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[c]);
  return out;
}

Result<std::vector<double>> Table::NumericColumn(
    const std::string& name) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t c, ColumnIndex(name));
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    GEOALIGN_ASSIGN_OR_RETURN(double v, ParseDouble(row[c]));
    out.push_back(v);
  }
  return out;
}

Result<std::vector<std::pair<std::string, double>>> Table::KeyValueColumn(
    const std::string& key_column, const std::string& value_column) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t kc, ColumnIndex(key_column));
  GEOALIGN_ASSIGN_OR_RETURN(size_t vc, ColumnIndex(value_column));
  std::vector<std::pair<std::string, double>> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    GEOALIGN_ASSIGN_OR_RETURN(double v, ParseDouble(row[vc]));
    out.emplace_back(row[kc], v);
  }
  return out;
}

}  // namespace geoalign::io
