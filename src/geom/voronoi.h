#ifndef GEOALIGN_GEOM_VORONOI_H_
#define GEOALIGN_GEOM_VORONOI_H_

#include <vector>

#include "common/status.h"
#include "geom/bbox.h"
#include "geom/polygon.h"

namespace geoalign::geom {

/// Computes the Voronoi diagram of `sites` clipped to `bounds`.
///
/// Returns one convex ring per site (same order as `sites`); a ring is
/// empty when the site's cell is empty (exact-duplicate sites keep the
/// first copy's cell). Cells partition `bounds` up to floating-point
/// boundary error.
///
/// Method: per-site half-plane clipping against bisectors, visiting
/// candidate neighbors in grid-bucket distance order and stopping once
/// the nearest unexamined neighbor is provably too far to cut the cell
/// (security-radius bound: a site farther than twice the max
/// site-to-vertex distance cannot change the cell). Expected
/// near-linear time for evenly distributed sites.
Result<std::vector<Ring>> VoronoiCells(const std::vector<Point>& sites,
                                       const BBox& bounds);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_VORONOI_H_
