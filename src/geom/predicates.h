#ifndef GEOALIGN_GEOM_PREDICATES_H_
#define GEOALIGN_GEOM_PREDICATES_H_

#include <optional>

#include "geom/point.h"
#include "geom/polygon.h"

namespace geoalign::geom {

/// Orientation of c relative to the directed line a->b:
/// > 0 left (counter-clockwise), < 0 right, == 0 collinear.
double Orient2d(const Point& a, const Point& b, const Point& c);

/// True if p lies on the closed segment [a, b].
bool PointOnSegment(const Point& p, const Point& a, const Point& b,
                    double tol = 0.0);

/// Point-in-ring test (crossing number); points on the boundary count
/// as inside. The ring may have either orientation.
bool PointInRing(const Point& p, const Ring& ring);

/// Strict interior test: boundary points count as outside.
bool PointStrictlyInRing(const Point& p, const Ring& ring);

/// Proper + improper intersection of closed segments [a,b] and [c,d].
/// Returns a representative intersection point, or nullopt when the
/// segments are disjoint. For overlapping collinear segments an
/// endpoint of the overlap is returned.
std::optional<Point> SegmentIntersection(const Point& a, const Point& b,
                                         const Point& c, const Point& d);

/// Distance from p to the closed segment [a, b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

/// True when the closed segment [a, b] shares at least one point with
/// the closed box (Liang–Barsky slab clipping). Touching counts.
bool SegmentIntersectsBBox(const Point& a, const Point& b, const BBox& box);

/// True when the closed box lies entirely inside the polygon:
/// all four box corners pass the point-in-polygon test, no outer-ring
/// edge intersects the closed box, and no hole's bounding box touches
/// it. Conservative — a false negative only means a caller falls back
/// to the exact clipping path (the overlay containment fast path).
bool PolygonContainsBBox(const Polygon& poly, const BBox& box);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_PREDICATES_H_
