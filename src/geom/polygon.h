#ifndef GEOALIGN_GEOM_POLYGON_H_
#define GEOALIGN_GEOM_POLYGON_H_

#include <vector>

#include "common/status.h"
#include "geom/bbox.h"
#include "geom/point.h"

namespace geoalign::geom {

/// A ring is an implicitly closed sequence of vertices (the closing
/// edge from back() to front() is not stored). Outer rings are
/// counter-clockwise by convention; holes clockwise.
using Ring = std::vector<Point>;

/// Signed shoelace area of a ring (positive for counter-clockwise).
double SignedRingArea(const Ring& ring);

/// |SignedRingArea|.
double RingArea(const Ring& ring);

/// Reverses orientation in place.
void ReverseRing(Ring& ring);

/// Centroid of the region enclosed by the ring (area-weighted);
/// returns the vertex mean for degenerate (zero-area) rings.
Point RingCentroid(const Ring& ring);

/// Simple polygon with optional holes.
class Polygon {
 public:
  Polygon() = default;
  /// Takes the outer ring; orientation is normalized to CCW.
  explicit Polygon(Ring outer);

  /// Validates basic structure: outer ring with >= 3 vertices and
  /// nonzero area; each hole >= 3 vertices. (Self-intersection is not
  /// checked; inputs are expected to be simple.)
  static Result<Polygon> Create(Ring outer, std::vector<Ring> holes = {});

  /// Axis-aligned rectangle polygon.
  static Polygon FromBBox(const BBox& box);

  /// Convex regular n-gon around `center` (n >= 3).
  static Polygon RegularNgon(const Point& center, double radius, int n,
                             double phase = 0.0);

  const Ring& outer() const { return outer_; }
  const std::vector<Ring>& holes() const { return holes_; }

  /// Area of outer ring minus holes.
  double Area() const;

  /// Area-weighted centroid (holes subtracted).
  Point Centroid() const;

  /// Bounding box of the outer ring.
  const BBox& Bounds() const { return bounds_; }

  /// True if p is inside (on-boundary counts as inside) the outer ring
  /// and outside every hole.
  bool Contains(const Point& p) const;

  /// True when the outer ring is convex and there are no holes.
  bool IsConvex() const;

  /// Number of vertices over all rings.
  size_t VertexCount() const;

 private:
  Ring outer_;
  std::vector<Ring> holes_;
  BBox bounds_;
};

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_POLYGON_H_
