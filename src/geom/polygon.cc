#include "geom/polygon.h"

#include <cmath>

#include "geom/predicates.h"
#include "common/float_eq.h"

namespace geoalign::geom {

double SignedRingArea(const Ring& ring) {
  double acc = 0.0;
  size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring[i];
    // Conditional wrap instead of % n: no integer division in a loop
    // the overlay clip runs once per candidate pair.
    const Point& b = i + 1 < n ? ring[i + 1] : ring[0];
    acc += a.x * b.y - b.x * a.y;
  }
  return acc * 0.5;
}

double RingArea(const Ring& ring) { return std::fabs(SignedRingArea(ring)); }

void ReverseRing(Ring& ring) {
  for (size_t i = 1, j = ring.size() - 1; i < j; ++i, --j) {
    std::swap(ring[i], ring[j]);
  }
}

Point RingCentroid(const Ring& ring) {
  double a = SignedRingArea(ring);
  size_t n = ring.size();
  if (std::fabs(a) < 1e-300 || n == 0) {
    Point mean;
    for (const Point& p : ring) {
      mean.x += p.x;
      mean.y += p.y;
    }
    if (n > 0) {
      mean.x /= static_cast<double>(n);
      mean.y /= static_cast<double>(n);
    }
    return mean;
  }
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& p = ring[i];
    const Point& q = ring[(i + 1) % n];
    double w = p.x * q.y - q.x * p.y;
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  return {cx / (6.0 * a), cy / (6.0 * a)};
}

Polygon::Polygon(Ring outer) : outer_(std::move(outer)) {
  if (SignedRingArea(outer_) < 0.0) ReverseRing(outer_);
  for (const Point& p : outer_) bounds_.Expand(p);
}

Result<Polygon> Polygon::Create(Ring outer, std::vector<Ring> holes) {
  if (outer.size() < 3) {
    return Status::InvalidArgument("Polygon: outer ring needs >= 3 vertices");
  }
  if (ExactlyZero(RingArea(outer))) {
    return Status::InvalidArgument("Polygon: outer ring has zero area");
  }
  Polygon poly(std::move(outer));
  for (Ring& hole : holes) {
    if (hole.size() < 3) {
      return Status::InvalidArgument("Polygon: hole needs >= 3 vertices");
    }
    // Holes are clockwise by convention.
    if (SignedRingArea(hole) > 0.0) ReverseRing(hole);
    poly.holes_.push_back(std::move(hole));
  }
  return poly;
}

Polygon Polygon::FromBBox(const BBox& box) {
  Ring r = {{box.min_x, box.min_y},
            {box.max_x, box.min_y},
            {box.max_x, box.max_y},
            {box.min_x, box.max_y}};
  return Polygon(std::move(r));
}

Polygon Polygon::RegularNgon(const Point& center, double radius, int n,
                             double phase) {
  Ring r;
  r.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double t = phase + 2.0 * M_PI * i / n;
    r.push_back({center.x + radius * std::cos(t),
                 center.y + radius * std::sin(t)});
  }
  return Polygon(std::move(r));
}

double Polygon::Area() const {
  double a = RingArea(outer_);
  for (const Ring& h : holes_) a -= RingArea(h);
  return a;
}

Point Polygon::Centroid() const {
  double total_area = RingArea(outer_);
  Point c = RingCentroid(outer_);
  double cx = c.x * total_area;
  double cy = c.y * total_area;
  for (const Ring& h : holes_) {
    double ha = RingArea(h);
    Point hc = RingCentroid(h);
    cx -= hc.x * ha;
    cy -= hc.y * ha;
    total_area -= ha;
  }
  if (total_area <= 0.0) return RingCentroid(outer_);
  return {cx / total_area, cy / total_area};
}

bool Polygon::Contains(const Point& p) const {
  if (!bounds_.Contains(p)) return false;
  if (!PointInRing(p, outer_)) return false;
  for (const Ring& h : holes_) {
    if (PointStrictlyInRing(p, h)) return false;
  }
  return true;
}

bool Polygon::IsConvex() const {
  if (!holes_.empty()) return false;
  size_t n = outer_.size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = outer_[i];
    const Point& b = outer_[(i + 1) % n];
    const Point& c = outer_[(i + 2) % n];
    if (Cross(b - a, c - b) < 0.0) return false;
  }
  return true;
}

size_t Polygon::VertexCount() const {
  size_t n = outer_.size();
  for (const Ring& h : holes_) n += h.size();
  return n;
}

}  // namespace geoalign::geom
