#include "geom/hull.h"

#include <algorithm>

#include "geom/predicates.h"

namespace geoalign::geom {

Ring ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  size_t n = points.size();
  if (n < 3) return points;

  Ring hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           Orient2d(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  for (size_t i = n - 1, t = k + 1; i-- > 0;) {
    while (k >= t && Orient2d(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

namespace {

void RdpRecurse(const Ring& ring, size_t lo, size_t hi, double tolerance,
                std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  size_t worst_i = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    double d = PointSegmentDistance(ring[i], ring[lo], ring[hi]);
    if (d > worst) {
      worst = d;
      worst_i = i;
    }
  }
  if (worst > tolerance) {
    (*keep)[worst_i] = true;
    RdpRecurse(ring, lo, worst_i, tolerance, keep);
    RdpRecurse(ring, worst_i, hi, tolerance, keep);
  }
}

}  // namespace

Ring SimplifyRing(const Ring& ring, double tolerance) {
  size_t n = ring.size();
  if (n <= 3 || tolerance <= 0.0) return ring;
  // Anchor at vertex 0 and the vertex farthest from it, so the closed
  // ring decomposes into two open chains.
  size_t far = 0;
  double best = -1.0;
  for (size_t i = 1; i < n; ++i) {
    double d = DistanceSquared(ring[0], ring[i]);
    if (d > best) {
      best = d;
      far = i;
    }
  }
  std::vector<bool> keep(n, false);
  keep[0] = true;
  keep[far] = true;
  RdpRecurse(ring, 0, far, tolerance, &keep);
  // Second chain wraps around: copy into a linear buffer.
  Ring wrapped;
  std::vector<size_t> wrapped_idx;
  for (size_t i = far; i <= n; ++i) {
    wrapped.push_back(ring[i % n]);
    wrapped_idx.push_back(i % n);
  }
  std::vector<bool> keep2(wrapped.size(), false);
  RdpRecurse(wrapped, 0, wrapped.size() - 1, tolerance, &keep2);
  for (size_t i = 0; i < wrapped.size(); ++i) {
    if (keep2[i]) keep[wrapped_idx[i]] = true;
  }
  Ring out;
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(ring[i]);
  }
  // Never collapse below a triangle.
  if (out.size() < 3) return ring;
  return out;
}

}  // namespace geoalign::geom
