#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

#include "common/float_eq.h"

namespace geoalign::geom {

double Orient2d(const Point& a, const Point& b, const Point& c) {
  return Cross(b - a, c - a);
}

bool PointOnSegment(const Point& p, const Point& a, const Point& b,
                    double tol) {
  if (std::fabs(Orient2d(a, b, p)) > tol) return false;
  return p.x >= std::min(a.x, b.x) - tol && p.x <= std::max(a.x, b.x) + tol &&
         p.y >= std::min(a.y, b.y) - tol && p.y <= std::max(a.y, b.y) + tol;
}

namespace {

// Crossing-number core; boundary handled by the callers.
bool CrossingNumberOdd(const Point& p, const Ring& ring) {
  bool inside = false;
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    // Half-open rule on y avoids double-counting vertices.
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool OnBoundary(const Point& p, const Ring& ring) {
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    if (PointOnSegment(p, ring[j], ring[i], 1e-12)) return true;
  }
  return false;
}

}  // namespace

bool PointInRing(const Point& p, const Ring& ring) {
  if (ring.size() < 3) return false;
  if (OnBoundary(p, ring)) return true;
  return CrossingNumberOdd(p, ring);
}

bool PointStrictlyInRing(const Point& p, const Ring& ring) {
  if (ring.size() < 3) return false;
  if (OnBoundary(p, ring)) return false;
  return CrossingNumberOdd(p, ring);
}

std::optional<Point> SegmentIntersection(const Point& a, const Point& b,
                                         const Point& c, const Point& d) {
  Point r = b - a;
  Point s = d - c;
  double denom = Cross(r, s);
  Point qp = c - a;
  if (ExactlyZero(denom)) {
    // Parallel. Collinear overlap?
    if (!ExactlyZero(Cross(qp, r))) return std::nullopt;
    double rr = Dot(r, r);
    if (ExactlyZero(rr)) {
      // a == b degenerate segment.
      if (PointOnSegment(a, c, d)) return a;
      return std::nullopt;
    }
    double t0 = Dot(qp, r) / rr;
    double t1 = t0 + Dot(s, r) / rr;
    double lo = std::min(t0, t1);
    double hi = std::max(t0, t1);
    if (hi < 0.0 || lo > 1.0) return std::nullopt;
    double t = std::max(0.0, lo);
    return Point{a.x + t * r.x, a.y + t * r.y};
  }
  double t = Cross(qp, s) / denom;
  double u = Cross(qp, r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return Point{a.x + t * r.x, a.y + t * r.y};
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  Point ab = b - a;
  double len2 = Dot(ab, ab);
  if (ExactlyZero(len2)) return Distance(p, a);
  double t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  Point proj{a.x + t * ab.x, a.y + t * ab.y};
  return Distance(p, proj);
}

bool SegmentIntersectsBBox(const Point& a, const Point& b, const BBox& box) {
  if (box.Empty()) return false;
  // Liang–Barsky: intersect the parameter interval [0, 1] with the
  // four slab constraints p * t <= q.
  double t0 = 0.0;
  double t1 = 1.0;
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  auto clip = [&t0, &t1](double p, double q) {
    if (ExactlyZero(p)) return q >= 0.0;  // parallel: inside the slab?
    double r = q / p;
    if (p < 0.0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
    return true;
  };
  return clip(-dx, a.x - box.min_x) && clip(dx, box.max_x - a.x) &&
         clip(-dy, a.y - box.min_y) && clip(dy, box.max_y - a.y) && t0 <= t1;
}

bool PolygonContainsBBox(const Polygon& poly, const BBox& box) {
  if (box.Empty()) return false;
  const BBox& pb = poly.Bounds();
  if (box.min_x < pb.min_x || box.max_x > pb.max_x ||
      box.min_y < pb.min_y || box.max_y > pb.max_y) {
    return false;
  }
  const Ring& outer = poly.outer();
  if (!PointInRing({box.min_x, box.min_y}, outer) ||
      !PointInRing({box.max_x, box.min_y}, outer) ||
      !PointInRing({box.max_x, box.max_y}, outer) ||
      !PointInRing({box.min_x, box.max_y}, outer)) {
    return false;
  }
  // Corners inside and no outer edge touching the box means the box
  // boundary never crosses the ring, so the whole (connected) box is
  // interior.
  size_t n = outer.size();
  for (size_t i = 0; i < n; ++i) {
    if (SegmentIntersectsBBox(outer[i], outer[(i + 1) % n], box)) {
      return false;
    }
  }
  // Holes: any hole whose extent touches the box could carve it.
  for (const Ring& hole : poly.holes()) {
    BBox hb;
    for (const Point& p : hole) hb.Expand(p);
    if (hb.Intersects(box)) return false;
  }
  return true;
}

}  // namespace geoalign::geom
