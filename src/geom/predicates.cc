#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

#include "common/float_eq.h"

namespace geoalign::geom {

double Orient2d(const Point& a, const Point& b, const Point& c) {
  return Cross(b - a, c - a);
}

bool PointOnSegment(const Point& p, const Point& a, const Point& b,
                    double tol) {
  if (std::fabs(Orient2d(a, b, p)) > tol) return false;
  return p.x >= std::min(a.x, b.x) - tol && p.x <= std::max(a.x, b.x) + tol &&
         p.y >= std::min(a.y, b.y) - tol && p.y <= std::max(a.y, b.y) + tol;
}

namespace {

// Crossing-number core; boundary handled by the callers.
bool CrossingNumberOdd(const Point& p, const Ring& ring) {
  bool inside = false;
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    // Half-open rule on y avoids double-counting vertices.
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool OnBoundary(const Point& p, const Ring& ring) {
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    if (PointOnSegment(p, ring[j], ring[i], 1e-12)) return true;
  }
  return false;
}

}  // namespace

bool PointInRing(const Point& p, const Ring& ring) {
  if (ring.size() < 3) return false;
  if (OnBoundary(p, ring)) return true;
  return CrossingNumberOdd(p, ring);
}

bool PointStrictlyInRing(const Point& p, const Ring& ring) {
  if (ring.size() < 3) return false;
  if (OnBoundary(p, ring)) return false;
  return CrossingNumberOdd(p, ring);
}

std::optional<Point> SegmentIntersection(const Point& a, const Point& b,
                                         const Point& c, const Point& d) {
  Point r = b - a;
  Point s = d - c;
  double denom = Cross(r, s);
  Point qp = c - a;
  if (ExactlyZero(denom)) {
    // Parallel. Collinear overlap?
    if (!ExactlyZero(Cross(qp, r))) return std::nullopt;
    double rr = Dot(r, r);
    if (ExactlyZero(rr)) {
      // a == b degenerate segment.
      if (PointOnSegment(a, c, d)) return a;
      return std::nullopt;
    }
    double t0 = Dot(qp, r) / rr;
    double t1 = t0 + Dot(s, r) / rr;
    double lo = std::min(t0, t1);
    double hi = std::max(t0, t1);
    if (hi < 0.0 || lo > 1.0) return std::nullopt;
    double t = std::max(0.0, lo);
    return Point{a.x + t * r.x, a.y + t * r.y};
  }
  double t = Cross(qp, s) / denom;
  double u = Cross(qp, r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return Point{a.x + t * r.x, a.y + t * r.y};
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  Point ab = b - a;
  double len2 = Dot(ab, ab);
  if (ExactlyZero(len2)) return Distance(p, a);
  double t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  Point proj{a.x + t * ab.x, a.y + t * ab.y};
  return Distance(p, proj);
}

}  // namespace geoalign::geom
