#include "geom/point.h"

namespace geoalign::geom {

double Dot(const Point& a, const Point& b) { return a.x * b.x + a.y * b.y; }

double Cross(const Point& a, const Point& b) { return a.x * b.y - a.y * b.x; }

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Point Midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

}  // namespace geoalign::geom
