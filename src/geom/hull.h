#ifndef GEOALIGN_GEOM_HULL_H_
#define GEOALIGN_GEOM_HULL_H_

#include <vector>

#include "geom/polygon.h"

namespace geoalign::geom {

/// Convex hull of a point set (Andrew's monotone chain), returned as a
/// CCW ring without collinear interior vertices. Fewer than 3 distinct
/// non-collinear points yield a degenerate (possibly empty) ring.
Ring ConvexHull(std::vector<Point> points);

/// Ramer–Douglas–Peucker simplification of a ring: vertices closer
/// than `tolerance` to the chord between retained neighbours are
/// dropped. The ring's first vertex is always kept; output has at
/// least 3 vertices when the input does.
Ring SimplifyRing(const Ring& ring, double tolerance);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_HULL_H_
