#include "geom/voronoi.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "geom/convex_clip.h"
#include "common/float_eq.h"

namespace geoalign::geom {

namespace {

struct SiteGrid {
  double cell_size;
  int nx;
  int ny;
  BBox bounds;
  // site indices per bucket, row-major.
  std::vector<std::vector<uint32_t>> buckets;

  int ClampX(int v) const { return std::clamp(v, 0, nx - 1); }
  int ClampY(int v) const { return std::clamp(v, 0, ny - 1); }

  std::pair<int, int> BucketOf(const Point& p) const {
    int bx = ClampX(static_cast<int>((p.x - bounds.min_x) / cell_size));
    int by = ClampY(static_cast<int>((p.y - bounds.min_y) / cell_size));
    return {bx, by};
  }
};

SiteGrid BuildGrid(const std::vector<Point>& sites, const BBox& bounds) {
  SiteGrid g;
  g.bounds = bounds;
  double span = std::max(bounds.width(), bounds.height());
  double target =
      span / std::max(1.0, std::sqrt(static_cast<double>(sites.size())));
  g.cell_size = std::max(target, span * 1e-9);
  g.nx = std::max(1, static_cast<int>(std::ceil(bounds.width() / g.cell_size)));
  g.ny =
      std::max(1, static_cast<int>(std::ceil(bounds.height() / g.cell_size)));
  g.buckets.resize(static_cast<size_t>(g.nx) * g.ny);
  for (uint32_t i = 0; i < sites.size(); ++i) {
    auto [bx, by] = g.BucketOf(sites[i]);
    g.buckets[static_cast<size_t>(by) * g.nx + bx].push_back(i);
  }
  return g;
}

double MaxVertexDistance(const Point& site, const Ring& cell) {
  double best = 0.0;
  for (const Point& v : cell) {
    best = std::max(best, DistanceSquared(site, v));
  }
  return std::sqrt(best);
}

}  // namespace

Result<std::vector<Ring>> VoronoiCells(const std::vector<Point>& sites,
                                       const BBox& bounds) {
  if (sites.empty()) {
    return Status::InvalidArgument("VoronoiCells: no sites");
  }
  if (bounds.Empty()) {
    return Status::InvalidArgument("VoronoiCells: empty bounds");
  }
  for (const Point& s : sites) {
    if (!bounds.Contains(s)) {
      return Status::InvalidArgument("VoronoiCells: site outside bounds");
    }
  }

  SiteGrid grid = BuildGrid(sites, bounds);
  Ring box_ring = {{bounds.min_x, bounds.min_y},
                   {bounds.max_x, bounds.min_y},
                   {bounds.max_x, bounds.max_y},
                   {bounds.min_x, bounds.max_y}};

  std::vector<Ring> cells(sites.size());
  std::vector<std::pair<double, uint32_t>> candidates;

  for (uint32_t i = 0; i < sites.size(); ++i) {
    const Point& site = sites[i];
    Ring cell = box_ring;
    bool duplicate = false;

    auto [cx, cy] = grid.BucketOf(site);
    int max_radius = std::max(grid.nx, grid.ny);
    for (int radius = 0; radius <= max_radius && !duplicate; ++radius) {
      // Sites farther than 2R from the site cannot cut the current
      // cell. Buckets at Chebyshev ring `radius` are at least
      // (radius - 1) * cell_size away.
      if (radius >= 2) {
        double min_ring_dist = (radius - 1) * grid.cell_size;
        if (min_ring_dist > 2.0 * MaxVertexDistance(site, cell)) break;
      }
      candidates.clear();
      // Gather bucket ring at Chebyshev distance `radius`.
      for (int by = cy - radius; by <= cy + radius; ++by) {
        if (by < 0 || by >= grid.ny) continue;
        for (int bx = cx - radius; bx <= cx + radius; ++bx) {
          if (bx < 0 || bx >= grid.nx) continue;
          if (std::max(std::abs(bx - cx), std::abs(by - cy)) != radius) {
            continue;
          }
          for (uint32_t j :
               grid.buckets[static_cast<size_t>(by) * grid.nx + bx]) {
            if (j == i) continue;
            candidates.emplace_back(DistanceSquared(site, sites[j]), j);
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      for (auto& [d2, j] : candidates) {
        if (ExactlyZero(d2)) {
          // Exact duplicate: the first copy keeps the cell.
          if (j < i) {
            cell.clear();
            duplicate = true;
          }
          continue;
        }
        if (cell.size() < 3) break;
        double max_v = MaxVertexDistance(site, cell);
        if (std::sqrt(d2) > 2.0 * max_v) break;
        cell = ClipRingToHalfPlane(cell, HalfPlane::Bisector(site, sites[j]));
      }
      if (cell.size() < 3 && !duplicate) {
        cell.clear();
        break;
      }
    }
    cells[i] = std::move(cell);
  }
  return cells;
}

}  // namespace geoalign::geom
