#ifndef GEOALIGN_GEOM_POINT_H_
#define GEOALIGN_GEOM_POINT_H_

#include <cmath>

namespace geoalign::geom {

/// 2-D point / vector with double coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }
};

/// Dot product of vectors a and b.
double Dot(const Point& a, const Point& b);

/// Z-component of the cross product a x b.
double Cross(const Point& a, const Point& b);

/// Euclidean distance.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (no sqrt).
double DistanceSquared(const Point& a, const Point& b);

/// Midpoint of segment ab.
Point Midpoint(const Point& a, const Point& b);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_POINT_H_
