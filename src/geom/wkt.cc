#include "geom/wkt.h"

#include <cctype>
#include <cstdio>

#include "common/string_util.h"

namespace geoalign::geom {

namespace {

void AppendCoord(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

void AppendRing(std::string* out, const Ring& ring) {
  *out += '(';
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendCoord(out, ring[i].x);
    *out += ' ';
    AppendCoord(out, ring[i].y);
  }
  if (!ring.empty()) {
    // Close the ring per WKT convention.
    *out += ", ";
    AppendCoord(out, ring[0].x);
    *out += ' ';
    AppendCoord(out, ring[0].y);
  }
  *out += ')';
}

void AppendPolygonBody(std::string* out, const Polygon& poly) {
  *out += '(';
  AppendRing(out, poly.outer());
  for (const Ring& hole : poly.holes()) {
    *out += ", ";
    AppendRing(out, hole);
  }
  *out += ')';
}

/// Minimal recursive-descent scanner over WKT text.
class WktScanner {
 public:
  explicit WktScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      char c = text_[pos_ + i];
      if (std::toupper(static_cast<unsigned char>(c)) != kw[i]) return false;
    }
    pos_ += kw.size();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<double> Number() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("WKT: expected number");
    return ParseDouble(text_.substr(start, pos_ - start));
  }

  Result<Ring> ParseRing() {
    if (!ConsumeChar('(')) {
      return Status::InvalidArgument("WKT: expected '(' starting a ring");
    }
    Ring ring;
    for (;;) {
      GEOALIGN_ASSIGN_OR_RETURN(double x, Number());
      GEOALIGN_ASSIGN_OR_RETURN(double y, Number());
      ring.push_back({x, y});
      if (ConsumeChar(',')) continue;
      if (ConsumeChar(')')) break;
      return Status::InvalidArgument("WKT: expected ',' or ')' in ring");
    }
    // Drop the closing duplicate vertex if present.
    if (ring.size() >= 2 && ring.front() == ring.back()) ring.pop_back();
    return ring;
  }

  Result<Polygon> ParsePolygonBody() {
    if (!ConsumeChar('(')) {
      return Status::InvalidArgument("WKT: expected '(' starting a polygon");
    }
    GEOALIGN_ASSIGN_OR_RETURN(Ring outer, ParseRing());
    std::vector<Ring> holes;
    while (ConsumeChar(',')) {
      GEOALIGN_ASSIGN_OR_RETURN(Ring hole, ParseRing());
      holes.push_back(std::move(hole));
    }
    if (!ConsumeChar(')')) {
      return Status::InvalidArgument("WKT: expected ')' ending a polygon");
    }
    return Polygon::Create(std::move(outer), std::move(holes));
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToWkt(const Point& p) {
  std::string out = "POINT (";
  AppendCoord(&out, p.x);
  out += ' ';
  AppendCoord(&out, p.y);
  out += ')';
  return out;
}

std::string ToWkt(const Polygon& poly) {
  std::string out = "POLYGON ";
  AppendPolygonBody(&out, poly);
  return out;
}

std::string ToWkt(const std::vector<Polygon>& polys) {
  std::string out = "MULTIPOLYGON (";
  for (size_t i = 0; i < polys.size(); ++i) {
    if (i > 0) out += ", ";
    AppendPolygonBody(&out, polys[i]);
  }
  out += ')';
  return out;
}

Result<Point> PointFromWkt(const std::string& text) {
  WktScanner sc(text);
  if (!sc.ConsumeKeyword("POINT")) {
    return Status::InvalidArgument("WKT: expected POINT");
  }
  if (!sc.ConsumeChar('(')) {
    return Status::InvalidArgument("WKT: expected '('");
  }
  GEOALIGN_ASSIGN_OR_RETURN(double x, sc.Number());
  GEOALIGN_ASSIGN_OR_RETURN(double y, sc.Number());
  if (!sc.ConsumeChar(')') || !sc.AtEnd()) {
    return Status::InvalidArgument("WKT: malformed POINT");
  }
  return Point{x, y};
}

Result<Polygon> PolygonFromWkt(const std::string& text) {
  WktScanner sc(text);
  if (!sc.ConsumeKeyword("POLYGON")) {
    return Status::InvalidArgument("WKT: expected POLYGON");
  }
  GEOALIGN_ASSIGN_OR_RETURN(Polygon poly, sc.ParsePolygonBody());
  if (!sc.AtEnd()) {
    return Status::InvalidArgument("WKT: trailing characters");
  }
  return poly;
}

Result<std::vector<Polygon>> MultiPolygonFromWkt(const std::string& text) {
  WktScanner sc(text);
  if (sc.ConsumeKeyword("MULTIPOLYGON")) {
    if (!sc.ConsumeChar('(')) {
      return Status::InvalidArgument("WKT: expected '('");
    }
    std::vector<Polygon> polys;
    for (;;) {
      GEOALIGN_ASSIGN_OR_RETURN(Polygon poly, sc.ParsePolygonBody());
      polys.push_back(std::move(poly));
      if (sc.ConsumeChar(',')) continue;
      if (sc.ConsumeChar(')')) break;
      return Status::InvalidArgument("WKT: expected ',' or ')'");
    }
    if (!sc.AtEnd()) {
      return Status::InvalidArgument("WKT: trailing characters");
    }
    return polys;
  }
  GEOALIGN_ASSIGN_OR_RETURN(Polygon poly, PolygonFromWkt(text));
  std::vector<Polygon> polys;
  polys.push_back(std::move(poly));
  return polys;
}

}  // namespace geoalign::geom
