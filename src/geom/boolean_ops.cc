#include "geom/boolean_ops.h"

#include <cmath>

#include "geom/convex_clip.h"
#include "geom/predicates.h"
#include "common/float_eq.h"

namespace geoalign::geom {

namespace {

// Appends the signed fan of one ring. `ring_sign` is +1 for outer
// rings, -1 for holes; the per-triangle sign additionally flips with
// the triangle's own orientation so the decomposition telescopes to
// the ring's winding number.
void AppendRingFan(const Ring& ring, double ring_sign,
                   std::vector<SignedTriangle>* out) {
  if (ring.size() < 3) return;
  // Ensure we fan a CCW version so ring_sign semantics are uniform.
  const Point& origin = ring[0];
  double orient = SignedRingArea(ring) >= 0.0 ? 1.0 : -1.0;
  for (size_t i = 1; i + 1 < ring.size(); ++i) {
    Point p = ring[i];
    Point q = ring[i + 1];
    double tri_signed = Orient2d(origin, p, q);
    if (ExactlyZero(tri_signed)) continue;
    SignedTriangle t;
    t.sign = ring_sign * orient * (tri_signed > 0.0 ? 1.0 : -1.0);
    if (tri_signed > 0.0) {
      t.a = origin;
      t.b = p;
      t.c = q;
    } else {
      t.a = origin;
      t.b = q;
      t.c = p;
    }
    out->push_back(t);
  }
}

double TriTriIntersectionArea(const SignedTriangle& s,
                              const SignedTriangle& t) {
  Ring rs = {s.a, s.b, s.c};
  Ring rt = {t.a, t.b, t.c};
  return ConvexIntersectionArea(rs, rt);
}

}  // namespace

std::vector<SignedTriangle> SignedFan(const Polygon& poly) {
  std::vector<SignedTriangle> out;
  AppendRingFan(poly.outer(), 1.0, &out);
  for (const Ring& hole : poly.holes()) {
    AppendRingFan(hole, -1.0, &out);
  }
  return out;
}

double IntersectionArea(const Polygon& a, const Polygon& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return 0.0;
  std::vector<SignedTriangle> fa = SignedFan(a);
  std::vector<SignedTriangle> fb = SignedFan(b);
  double acc = 0.0;
  for (const SignedTriangle& ta : fa) {
    BBox ba;
    ba.Expand(ta.a);
    ba.Expand(ta.b);
    ba.Expand(ta.c);
    for (const SignedTriangle& tb : fb) {
      BBox bb;
      bb.Expand(tb.a);
      bb.Expand(tb.b);
      bb.Expand(tb.c);
      if (!ba.Intersects(bb)) continue;
      double inter = TriTriIntersectionArea(ta, tb);
      if (inter > 0.0) acc += ta.sign * tb.sign * inter;
    }
  }
  return std::max(acc, 0.0);
}

double UnionArea(const Polygon& a, const Polygon& b) {
  return a.Area() + b.Area() - IntersectionArea(a, b);
}

double DifferenceArea(const Polygon& a, const Polygon& b) {
  return std::max(a.Area() - IntersectionArea(a, b), 0.0);
}

double SymmetricDifferenceArea(const Polygon& a, const Polygon& b) {
  return std::max(a.Area() + b.Area() - 2.0 * IntersectionArea(a, b), 0.0);
}

}  // namespace geoalign::geom
