#include "geom/boolean_ops.h"

#include <cmath>

#include "geom/convex_clip.h"
#include "geom/predicates.h"
#include "common/float_eq.h"

namespace geoalign::geom {

namespace {

// Appends the signed fan of one ring. `ring_sign` is +1 for outer
// rings, -1 for holes; the per-triangle sign additionally flips with
// the triangle's own orientation so the decomposition telescopes to
// the ring's winding number.
void AppendRingFan(const Ring& ring, double ring_sign,
                   std::vector<SignedTriangle>* out) {
  if (ring.size() < 3) return;
  // Ensure we fan a CCW version so ring_sign semantics are uniform.
  const Point& origin = ring[0];
  double orient = SignedRingArea(ring) >= 0.0 ? 1.0 : -1.0;
  for (size_t i = 1; i + 1 < ring.size(); ++i) {
    Point p = ring[i];
    Point q = ring[i + 1];
    double tri_signed = Orient2d(origin, p, q);
    if (ExactlyZero(tri_signed)) continue;
    SignedTriangle t;
    t.sign = ring_sign * orient * (tri_signed > 0.0 ? 1.0 : -1.0);
    if (tri_signed > 0.0) {
      t.a = origin;
      t.b = p;
      t.c = q;
    } else {
      t.a = origin;
      t.b = q;
      t.c = p;
    }
    out->push_back(t);
  }
}

}  // namespace

std::vector<SignedTriangle> SignedFan(const Polygon& poly) {
  std::vector<SignedTriangle> out;
  AppendRingFan(poly.outer(), 1.0, &out);
  for (const Ring& hole : poly.holes()) {
    AppendRingFan(hole, -1.0, &out);
  }
  return out;
}

std::vector<BBox> FanBBoxes(const std::vector<SignedTriangle>& fan) {
  std::vector<BBox> out;
  out.reserve(fan.size());
  for (const SignedTriangle& t : fan) {
    BBox box;
    box.Expand(t.a);
    box.Expand(t.b);
    box.Expand(t.c);
    out.push_back(box);
  }
  return out;
}

void FanScratch::Reserve(size_t max_vertices) {
  clip.Reserve(max_vertices);
  if (tri_a.capacity() < 3) tri_a.reserve(3);
  if (tri_b.capacity() < 3) tri_b.reserve(3);
}

double IntersectionAreaPrepared(const SignedTriangle* fan_a,
                                const BBox* boxes_a, size_t size_a,
                                const SignedTriangle* fan_b,
                                const BBox* boxes_b, size_t size_b,
                                FanScratch* scratch) {
  double acc = 0.0;
  // GEOALIGN_HOT_LOOP_BEGIN (overlay tri×tri loop: staging rings and
  // clip rings come Reserved from the FanScratch)
  for (size_t i = 0; i < size_a; ++i) {
    const SignedTriangle& ta = fan_a[i];
    const BBox& ba = boxes_a[i];
    for (size_t j = 0; j < size_b; ++j) {
      if (!ba.Intersects(boxes_b[j])) continue;
      const SignedTriangle& tb = fan_b[j];
      // assign into the 3-capacity staging rings never grows them.
      scratch->tri_a.assign({ta.a, ta.b, ta.c});  // NOLINT(geoalign-hot-alloc)
      scratch->tri_b.assign({tb.a, tb.b, tb.c});  // NOLINT(geoalign-hot-alloc)
      double inter =
          ConvexIntersectionAreaWith(scratch->tri_a, scratch->tri_b,
                                     &scratch->clip);
      if (inter > 0.0) acc += ta.sign * tb.sign * inter;
    }
  }
  // GEOALIGN_HOT_LOOP_END
  return std::max(acc, 0.0);
}

double IntersectionArea(const Polygon& a, const Polygon& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return 0.0;
  std::vector<SignedTriangle> fa = SignedFan(a);
  std::vector<SignedTriangle> fb = SignedFan(b);
  std::vector<BBox> ba = FanBBoxes(fa);
  std::vector<BBox> bb = FanBBoxes(fb);
  FanScratch scratch;
  scratch.Reserve(8);
  return IntersectionAreaPrepared(fa.data(), ba.data(), fa.size(), fb.data(),
                                  bb.data(), fb.size(), &scratch);
}

double UnionArea(const Polygon& a, const Polygon& b) {
  return a.Area() + b.Area() - IntersectionArea(a, b);
}

double DifferenceArea(const Polygon& a, const Polygon& b) {
  return std::max(a.Area() - IntersectionArea(a, b), 0.0);
}

double SymmetricDifferenceArea(const Polygon& a, const Polygon& b) {
  return std::max(a.Area() + b.Area() - 2.0 * IntersectionArea(a, b), 0.0);
}

}  // namespace geoalign::geom
