#ifndef GEOALIGN_GEOM_CLIP_POLYGON_H_
#define GEOALIGN_GEOM_CLIP_POLYGON_H_

#include <vector>

#include "common/status.h"
#include "geom/polygon.h"

namespace geoalign::geom {

/// Boolean operations between two polygons.
enum class BooleanOp {
  kIntersection,  ///< A ∩ B
  kUnion,         ///< A ∪ B
  kDifference,    ///< A \ B
};

/// Computes the geometry of `op` applied to two SIMPLE, HOLE-FREE
/// polygons with a Greiner–Hormann-style traversal: boundary
/// intersection points are inserted into both rings, classified as
/// entry/exit, and result contours are stitched by alternating
/// between the two boundaries.
///
/// The result is a set of disjoint simple rings (CCW). An empty vector
/// means an empty result (disjoint polygons for intersection,
/// fully-covered subject for difference). When one polygon contains
/// the other without boundary crossings the containment cases are
/// resolved exactly.
///
/// Degenerate inputs — overlapping collinear edges or vertices lying
/// exactly on the other boundary — are detected and rejected with
/// FailedPrecondition rather than silently producing wrong geometry;
/// measure-only queries (`IntersectionArea` etc. in boolean_ops.h)
/// handle those cases exactly and should be used when only areas are
/// needed. A caller that needs geometry for degenerate input can
/// perturb one operand by an epsilon (`PerturbRing` below).
Result<std::vector<Ring>> ClipPolygons(const Polygon& a, const Polygon& b,
                                       BooleanOp op);

/// Groups boolean-op result rings into polygons: CCW rings become
/// outers; CW rings become holes of the smallest containing outer.
/// Fails if a hole is contained in no outer.
Result<std::vector<Polygon>> AssembleRings(std::vector<Ring> rings);

/// Net signed area of a ring set (holes subtract). For ClipPolygons
/// output this equals the measure of the result region.
double RingsArea(const std::vector<Ring>& rings);

/// Jitters every vertex by a deterministic pseudo-random offset of
/// magnitude <= eps; used to escape degenerate configurations.
Ring PerturbRing(const Ring& ring, double eps, uint64_t seed = 1);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_CLIP_POLYGON_H_
