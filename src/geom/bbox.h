#ifndef GEOALIGN_GEOM_BBOX_H_
#define GEOALIGN_GEOM_BBOX_H_

#include <limits>

#include "geom/point.h"

namespace geoalign::geom {

/// Axis-aligned bounding box. A default-constructed box is empty
/// (min > max) and absorbs points/boxes via Expand.
struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  BBox() = default;
  BBox(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  /// True when the box contains no points.
  bool Empty() const { return min_x > max_x || min_y > max_y; }

  /// Grows to cover p / other.
  void Expand(const Point& p);
  void Expand(const BBox& other);

  /// Closed-interval containment.
  bool Contains(const Point& p) const;

  /// True when the closed boxes share at least one point.
  bool Intersects(const BBox& other) const;

  /// Geometric intersection (may be empty).
  BBox Intersection(const BBox& other) const;

  /// Width * height; 0 for empty boxes.
  double Area() const;

  /// Center point (undefined for empty boxes).
  Point Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  double width() const { return Empty() ? 0.0 : max_x - min_x; }
  double height() const { return Empty() ? 0.0 : max_y - min_y; }
};

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_BBOX_H_
