#include "geom/clip_polygon.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "geom/boolean_ops.h"
#include "geom/predicates.h"
#include "common/float_eq.h"

namespace geoalign::geom {

namespace {

// Relative parameter slack treated as "intersection at an endpoint"
// (degenerate for the traversal).
constexpr double kParamEps = 1e-12;

// One vertex of an augmented ring: original polygon vertices plus
// inserted intersection points, as a doubly linked list in index form.
struct Node {
  Point p;
  int next = -1;
  int prev = -1;
  int twin = -1;  // index of the same intersection in the other ring
  bool intersection = false;
  bool entry = false;
  bool visited = false;
};

// A pending intersection on one edge, ordered by position along it.
struct EdgeCut {
  double alpha;  // parameter along the edge, in (0, 1)
  int id;        // shared intersection id
  Point p;
};

struct AugmentedRings {
  std::vector<Node> a;
  std::vector<Node> b;
  // Index of the node for each intersection id, per ring.
  std::vector<int> inter_a;
  std::vector<int> inter_b;
};

// Computes the proper intersection parameters of segments [p1,p2] and
// [q1,q2]; returns false when they do not properly cross. Degenerate
// contact (parallel overlap, endpoint touching) sets *degenerate.
bool ProperCrossing(const Point& p1, const Point& p2, const Point& q1,
                    const Point& q2, double* t, double* u,
                    bool* degenerate) {
  Point r = p2 - p1;
  Point s = q2 - q1;
  double denom = Cross(r, s);
  Point qp = q1 - p1;
  if (ExactlyZero(denom)) {
    if (ExactlyZero(Cross(qp, r))) {
      // Collinear: overlap is degenerate for the traversal.
      double rr = Dot(r, r);
      if (rr > 0.0) {
        double t0 = Dot(qp, r) / rr;
        double t1 = t0 + Dot(s, r) / rr;
        if (std::max(std::min(t0, t1), 0.0) <=
            std::min(std::max(t0, t1), 1.0)) {
          *degenerate = true;
        }
      }
    }
    return false;
  }
  *t = Cross(qp, s) / denom;
  *u = Cross(qp, r) / denom;
  if (*t < -kParamEps || *t > 1.0 + kParamEps || *u < -kParamEps ||
      *u > 1.0 + kParamEps) {
    return false;  // outside both segments
  }
  bool t_interior = *t > kParamEps && *t < 1.0 - kParamEps;
  bool u_interior = *u > kParamEps && *u < 1.0 - kParamEps;
  if (t_interior && u_interior) return true;
  // Touching at an endpoint (vertex on the other boundary).
  *degenerate = true;
  return false;
}

// Builds the augmented linked rings with intersection nodes inserted
// and twins linked. Fails on degenerate contact.
Result<AugmentedRings> BuildAugmented(const Ring& ra, const Ring& rb) {
  size_t na = ra.size();
  size_t nb = rb.size();
  std::vector<std::vector<EdgeCut>> cuts_a(na);
  std::vector<std::vector<EdgeCut>> cuts_b(nb);
  int next_id = 0;
  bool degenerate = false;
  for (size_t i = 0; i < na; ++i) {
    const Point& p1 = ra[i];
    const Point& p2 = ra[(i + 1) % na];
    for (size_t j = 0; j < nb; ++j) {
      const Point& q1 = rb[j];
      const Point& q2 = rb[(j + 1) % nb];
      double t = 0.0;
      double u = 0.0;
      if (ProperCrossing(p1, p2, q1, q2, &t, &u, &degenerate)) {
        Point x{p1.x + t * (p2.x - p1.x), p1.y + t * (p2.y - p1.y)};
        cuts_a[i].push_back({t, next_id, x});
        cuts_b[j].push_back({u, next_id, x});
        ++next_id;
      }
      if (degenerate) {
        return Status::FailedPrecondition(
            "ClipPolygons: degenerate boundary contact (shared vertex or "
            "collinear overlap); use the measure-only API or PerturbRing");
      }
    }
  }

  AugmentedRings out;
  out.inter_a.assign(next_id, -1);
  out.inter_b.assign(next_id, -1);
  auto build = [next_id](const Ring& ring,
                         std::vector<std::vector<EdgeCut>>& cuts,
                         std::vector<int>& inter_index,
                         std::vector<Node>& nodes) {
    (void)next_id;
    for (size_t i = 0; i < ring.size(); ++i) {
      Node v;
      v.p = ring[i];
      nodes.push_back(v);
      std::sort(cuts[i].begin(), cuts[i].end(),
                [](const EdgeCut& x, const EdgeCut& y) {
                  return x.alpha < y.alpha;
                });
      for (const EdgeCut& c : cuts[i]) {
        Node x;
        x.p = c.p;
        x.intersection = true;
        inter_index[c.id] = static_cast<int>(nodes.size());
        nodes.push_back(x);
      }
    }
    int n = static_cast<int>(nodes.size());
    for (int k = 0; k < n; ++k) {
      nodes[k].next = (k + 1) % n;
      nodes[k].prev = (k + n - 1) % n;
    }
  };
  build(ra, cuts_a, out.inter_a, out.a);
  build(rb, cuts_b, out.inter_b, out.b);
  for (int id = 0; id < next_id; ++id) {
    out.a[out.inter_a[id]].twin = out.inter_b[id];
    out.b[out.inter_b[id]].twin = out.inter_a[id];
  }
  return out;
}

// Marks each intersection node of `nodes` as entry/exit w.r.t.
// `other_ring`, toggling from the containment status of the first
// original vertex; `flip` inverts the classification (op control).
Status ClassifyEntries(std::vector<Node>& nodes, const Ring& other_ring,
                       bool flip) {
  if (nodes.empty()) return Status::OK();
  // The first node is always an original vertex (built first per edge).
  const Point& start = nodes[0].p;
  // On-boundary starts are degenerate (should have been caught by the
  // crossing scan, but belt and braces).
  bool inside = PointStrictlyInRing(start, other_ring);
  if (!inside && PointInRing(start, other_ring)) {
    return Status::FailedPrecondition(
        "ClipPolygons: ring vertex lies on the other boundary");
  }
  int cursor = 0;
  int n = static_cast<int>(nodes.size());
  for (int steps = 0; steps < n; ++steps) {
    Node& node = nodes[cursor];
    if (node.intersection) {
      node.entry = (!inside) ^ flip;
      inside = !inside;
    }
    cursor = node.next;
  }
  return Status::OK();
}

// No-crossing cases resolved by containment tests.
Result<std::vector<Ring>> ResolveNoCrossings(const Polygon& a,
                                             const Polygon& b,
                                             BooleanOp op) {
  bool a_in_b = b.Contains(a.outer()[0]);
  bool b_in_a = a.Contains(b.outer()[0]);
  std::vector<Ring> out;
  switch (op) {
    case BooleanOp::kIntersection:
      if (a_in_b) {
        out.push_back(a.outer());
      } else if (b_in_a) {
        out.push_back(b.outer());
      }
      return out;
    case BooleanOp::kUnion:
      if (a_in_b) {
        out.push_back(b.outer());
      } else if (b_in_a) {
        out.push_back(a.outer());
      } else {
        out.push_back(a.outer());
        out.push_back(b.outer());
      }
      return out;
    case BooleanOp::kDifference:
      if (a_in_b) return out;  // fully covered
      if (b_in_a) {
        return Status::FailedPrecondition(
            "ClipPolygons: difference result needs a hole (clip polygon "
            "strictly inside subject)");
      }
      out.push_back(a.outer());
      return out;
  }
  return Status::Internal("unknown op");
}

}  // namespace

Result<std::vector<Ring>> ClipPolygons(const Polygon& a, const Polygon& b,
                                       BooleanOp op) {
  if (!a.holes().empty() || !b.holes().empty()) {
    return Status::Unimplemented(
        "ClipPolygons: operands with holes are not supported; use the "
        "measure-only API in boolean_ops.h");
  }
  GEOALIGN_ASSIGN_OR_RETURN(AugmentedRings rings,
                            BuildAugmented(a.outer(), b.outer()));
  if (rings.inter_a.empty()) return ResolveNoCrossings(a, b, op);

  // Entry/exit flips per operation (Greiner–Hormann):
  //   intersection: traverse inside portions of both;
  //   union: traverse outside portions of both;
  //   difference A\B: outside portions of A, inside portions of B
  //   (walked against B's orientation by the exit rule).
  bool flip_a = op != BooleanOp::kIntersection;
  bool flip_b = op == BooleanOp::kUnion;
  GEOALIGN_RETURN_IF_ERROR(ClassifyEntries(rings.a, b.outer(), flip_a));
  GEOALIGN_RETURN_IF_ERROR(ClassifyEntries(rings.b, a.outer(), flip_b));

  std::vector<Ring> result;
  size_t guard = 4 * (rings.a.size() + rings.b.size()) + 16;
  for (size_t start_id = 0; start_id < rings.inter_a.size(); ++start_id) {
    int start = rings.inter_a[start_id];
    // Start every contour at an A-side ENTRY node: starting at an exit
    // traces the same contour with reversed winding, which would make
    // orientations (outer CCW / hole CW) indeterminate. Every contour
    // contains at least one A-entry junction, so nothing is skipped —
    // exit nodes are picked up when their contour's entry is reached.
    if (rings.a[start].visited || !rings.a[start].entry) continue;
    Ring contour;
    bool on_a = true;
    int cur = start;
    size_t steps = 0;
    do {
      std::vector<Node>& nodes = on_a ? rings.a : rings.b;
      Node& node = nodes[cur];
      node.visited = true;
      // Mark the twin too so contours are not emitted twice.
      (on_a ? rings.b : rings.a)[node.twin].visited = true;
      bool forward = node.entry;
      int walker = cur;
      // Walk to the next intersection, collecting vertices.
      do {
        contour.push_back(nodes[walker].p);
        walker = forward ? nodes[walker].next : nodes[walker].prev;
        if (++steps > guard) {
          return Status::Internal("ClipPolygons: traversal did not close");
        }
      } while (!nodes[walker].intersection);
      // Jump to the other ring at this intersection.
      cur = nodes[walker].twin;
      on_a = !on_a;
    } while (!(on_a ? rings.a : rings.b)[cur].visited);
    // Drop exact duplicate closing vertices and degenerate slivers.
    // Orientation is preserved: the traversal emits enclosed "hole"
    // contours (possible even for hole-free operands, e.g. two
    // interlocking C shapes whose union encloses a void) with the
    // opposite winding, which AssembleRings uses for nesting.
    if (contour.size() >= 2 && contour.front() == contour.back()) {
      contour.pop_back();
    }
    if (contour.size() >= 3 && RingArea(contour) > 0.0) {
      result.push_back(std::move(contour));
    }
  }

  // The Greiner–Hormann walk preserves the RELATIVE orientation of the
  // contours (holes wind opposite to their outers) but its global
  // winding depends on the operand geometry. Normalize against the
  // exact measure operators (boolean_ops.h), which also self-verifies
  // the traversal: a net-area mismatch means the result would be
  // wrong, and is reported instead of returned.
  double expected = 0.0;
  switch (op) {
    case BooleanOp::kIntersection:
      expected = IntersectionArea(a, b);
      break;
    case BooleanOp::kUnion:
      expected = UnionArea(a, b);
      break;
    case BooleanOp::kDifference:
      expected = DifferenceArea(a, b);
      break;
  }
  double net = 0.0;
  for (const Ring& r : result) net += SignedRingArea(r);
  if (net < 0.0) {
    for (Ring& r : result) ReverseRing(r);
    net = -net;
  }
  if (std::fabs(net - expected) > 1e-9 * std::max(1.0, expected)) {
    return Status::Internal(
        "ClipPolygons: traversal area self-check failed (degenerate "
        "geometry slipped past detection)");
  }
  return result;
}

Result<std::vector<Polygon>> AssembleRings(std::vector<Ring> rings) {
  std::vector<Polygon> out;
  std::vector<size_t> outer_of_hole;
  // Outers first (CCW), largest first so holes nest into the smallest
  // containing outer.
  std::vector<size_t> outer_idx;
  std::vector<size_t> hole_idx;
  for (size_t i = 0; i < rings.size(); ++i) {
    if (SignedRingArea(rings[i]) >= 0.0) {
      outer_idx.push_back(i);
    } else {
      hole_idx.push_back(i);
    }
  }
  std::vector<std::vector<Ring>> holes_per_outer(outer_idx.size());
  for (size_t h : hole_idx) {
    const Point& probe = rings[h][0];
    size_t best = outer_idx.size();
    double best_area = 0.0;
    for (size_t k = 0; k < outer_idx.size(); ++k) {
      const Ring& outer = rings[outer_idx[k]];
      if (!PointInRing(probe, outer)) continue;
      double area = RingArea(outer);
      if (best == outer_idx.size() || area < best_area) {
        best = k;
        best_area = area;
      }
    }
    if (best == outer_idx.size()) {
      return Status::InvalidArgument(
          "AssembleRings: hole ring not contained in any outer ring");
    }
    holes_per_outer[best].push_back(std::move(rings[h]));
  }
  for (size_t k = 0; k < outer_idx.size(); ++k) {
    GEOALIGN_ASSIGN_OR_RETURN(
        Polygon poly, Polygon::Create(std::move(rings[outer_idx[k]]),
                                      std::move(holes_per_outer[k])));
    out.push_back(std::move(poly));
  }
  return out;
}

double RingsArea(const std::vector<Ring>& rings) {
  double acc = 0.0;
  for (const Ring& r : rings) acc += SignedRingArea(r);
  return acc;
}

Ring PerturbRing(const Ring& ring, double eps, uint64_t seed) {
  Rng rng(seed);
  Ring out;
  out.reserve(ring.size());
  for (const Point& p : ring) {
    out.push_back({p.x + rng.Uniform(-eps, eps),
                   p.y + rng.Uniform(-eps, eps)});
  }
  return out;
}

}  // namespace geoalign::geom
