#include "geom/convex_clip.h"

#include "common/logging.h"
#include "geom/predicates.h"

namespace geoalign::geom {

HalfPlane HalfPlane::Bisector(const Point& a, const Point& b) {
  GEOALIGN_DCHECK(a != b);
  // dot(b - a, p) <= dot(b - a, midpoint) keeps the side nearer to a.
  HalfPlane hp;
  hp.normal = b - a;
  hp.offset = Dot(hp.normal, Midpoint(a, b));
  return hp;
}

Ring ClipRingToHalfPlane(const Ring& subject, const HalfPlane& hp) {
  Ring out;
  size_t n = subject.size();
  if (n == 0) return out;
  out.reserve(n + 2);
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = subject[i];
    const Point& nxt = subject[(i + 1) % n];
    double dc = Dot(hp.normal, cur) - hp.offset;
    double dn = Dot(hp.normal, nxt) - hp.offset;
    bool cur_in = dc <= 0.0;
    bool nxt_in = dn <= 0.0;
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      double t = dc / (dc - dn);
      out.push_back({cur.x + t * (nxt.x - cur.x),
                     cur.y + t * (nxt.y - cur.y)});
    }
  }
  return out;
}

Ring ClipRingToConvex(const Ring& subject, const Ring& convex_clip) {
  Ring out = subject;
  size_t n = convex_clip.size();
  for (size_t i = 0; i < n && !out.empty(); ++i) {
    const Point& a = convex_clip[i];
    const Point& b = convex_clip[(i + 1) % n];
    // For a CCW convex ring the interior is to the left of each edge:
    // cross(b - a, p - a) >= 0, i.e. dot(normal, p) <= offset with
    // normal = (dy, -dx).
    HalfPlane hp;
    hp.normal = {b.y - a.y, a.x - b.x};
    hp.offset = Dot(hp.normal, a);
    out = ClipRingToHalfPlane(out, hp);
  }
  return out;
}

double ConvexIntersectionArea(const Ring& a, const Ring& b) {
  if (a.size() < 3 || b.size() < 3) return 0.0;
  Ring clipped = ClipRingToConvex(a, b);
  if (clipped.size() < 3) return 0.0;
  return RingArea(clipped);
}

}  // namespace geoalign::geom
