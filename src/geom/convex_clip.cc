#include "geom/convex_clip.h"

#include <algorithm>

#include "common/logging.h"
#include "geom/predicates.h"

namespace geoalign::geom {

HalfPlane HalfPlane::Bisector(const Point& a, const Point& b) {
  GEOALIGN_DCHECK(a != b);
  // dot(b - a, p) <= dot(b - a, midpoint) keeps the side nearer to a.
  HalfPlane hp;
  hp.normal = b - a;
  hp.offset = Dot(hp.normal, Midpoint(a, b));
  return hp;
}

Ring ClipRingToHalfPlane(const Ring& subject, const HalfPlane& hp) {
  Ring out;
  size_t n = subject.size();
  if (n == 0) return out;
  out.reserve(n + 2);
  ClipRingToHalfPlaneInto(subject, hp, &out);
  return out;
}

// The one Sutherland–Hodgman half-plane step. Every clipping path in
// the tree funnels through this loop, so the arithmetic (and with it
// the bit pattern of every intersection vertex) is decided in exactly
// one place.
// GEOALIGN_HOT_LOOP_BEGIN (overlay clipping: no heap growth when the
// caller Reserved enough capacity; growth is counted by ClipScratch)
void ClipRingToHalfPlaneInto(const Ring& subject, const HalfPlane& hp,
                             Ring* out) {
  out->clear();
  size_t n = subject.size();
  if (n == 0) return;
  // Each vertex's signed distance is computed exactly once and carried
  // to the next iteration — the same expression the two-evaluations
  // version computed, so every emitted vertex is bit-identical.
  const double d0 = Dot(hp.normal, subject[0]) - hp.offset;
  double dc = d0;
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = subject[i];
    const Point& nxt = i + 1 < n ? subject[i + 1] : subject[0];
    double dn = i + 1 < n ? Dot(hp.normal, nxt) - hp.offset : d0;
    bool cur_in = dc <= 0.0;
    bool nxt_in = dn <= 0.0;
    // Capacity comes from ClipScratch::Reserve (or the reserve in
    // ClipRingToHalfPlane); a short reservation only costs a counted
    // growth, never correctness.
    if (cur_in) out->push_back(cur);  // NOLINT(geoalign-hot-alloc)
    if (cur_in != nxt_in) {
      double t = dc / (dc - dn);
      out->push_back({cur.x + t * (nxt.x - cur.x),  // NOLINT(geoalign-hot-alloc)
                      cur.y + t * (nxt.y - cur.y)});
    }
    dc = dn;
  }
}
// GEOALIGN_HOT_LOOP_END

Ring ClipRingToConvex(const Ring& subject, const Ring& convex_clip) {
  Ring out = subject;
  size_t n = convex_clip.size();
  // Below 3 vertices no later half-plane can recover positive area;
  // stop (mirrored by ConvexIntersectionAreaWith so the scratch and
  // allocating variants stay bit-identical).
  for (size_t i = 0; i < n && out.size() >= 3; ++i) {
    const Point& a = convex_clip[i];
    const Point& b = convex_clip[(i + 1) % n];
    // For a CCW convex ring the interior is to the left of each edge:
    // cross(b - a, p - a) >= 0, i.e. dot(normal, p) <= offset with
    // normal = (dy, -dx).
    HalfPlane hp;
    hp.normal = {b.y - a.y, a.x - b.x};
    hp.offset = Dot(hp.normal, a);
    out = ClipRingToHalfPlane(out, hp);
  }
  return out;
}

double ConvexIntersectionArea(const Ring& a, const Ring& b) {
  if (a.size() < 3 || b.size() < 3) return 0.0;
  Ring clipped = ClipRingToConvex(a, b);
  if (clipped.size() < 3) return 0.0;
  return RingArea(clipped);
}

void ClipScratch::Reserve(size_t max_vertices) {
  // Capacity beyond the request absorbs the odd extra intersection
  // vertex a degenerate subject can produce.
  if (ping.capacity() < max_vertices) ping.reserve(max_vertices);
  if (pong.capacity() < max_vertices) pong.reserve(max_vertices);
}

double ConvexIntersectionAreaWith(const Ring& a, const Ring& b,
                                  ClipScratch* scratch) {
  if (a.size() < 3 || b.size() < 3) return 0.0;
  size_t cap_ping = scratch->ping.capacity();
  size_t cap_pong = scratch->pong.capacity();
  // Same clip sequence as ClipRingToConvex, ping/pong instead of a
  // fresh ring per half-plane.
  // GEOALIGN_HOT_LOOP_BEGIN (overlay clipping: assign within reserved
  // capacity; growth is counted below)
  scratch->ping.assign(a.begin(), a.end());  // NOLINT(geoalign-hot-alloc)
  size_t n = b.size();
  for (size_t i = 0; i < n && scratch->ping.size() >= 3; ++i) {
    const Point& p = b[i];
    const Point& q = i + 1 < n ? b[i + 1] : b[0];
    HalfPlane hp;
    hp.normal = {q.y - p.y, p.x - q.x};
    hp.offset = Dot(hp.normal, p);
    ClipRingToHalfPlaneInto(scratch->ping, hp, &scratch->pong);
    std::swap(scratch->ping, scratch->pong);
  }
  // GEOALIGN_HOT_LOOP_END
  // std::swap exchanges the rings' capacities, so compare as an
  // unordered pair: only genuine growth counts as an alloc event.
  size_t now_ping = scratch->ping.capacity();
  size_t now_pong = scratch->pong.capacity();
  if (std::min(now_ping, now_pong) != std::min(cap_ping, cap_pong) ||
      std::max(now_ping, now_pong) != std::max(cap_ping, cap_pong)) {
    ++scratch->alloc_events;
  }
  if (scratch->ping.size() < 3) return 0.0;
  return RingArea(scratch->ping);
}

}  // namespace geoalign::geom
