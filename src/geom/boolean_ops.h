#ifndef GEOALIGN_GEOM_BOOLEAN_OPS_H_
#define GEOALIGN_GEOM_BOOLEAN_OPS_H_

#include "geom/polygon.h"

namespace geoalign::geom {

/// Exact area of intersection of two simple polygons (holes allowed,
/// convexity NOT required).
///
/// Method: each polygon is decomposed into a signed triangle fan (so
/// that the signed indicator functions sum to the winding number, 1
/// inside and 0 outside for a simple polygon); the intersection area
/// is then the double sum of signed pairwise triangle-triangle
/// intersection areas, each computed by convex clipping. O(|A|·|B|)
/// triangle pairs.
///
/// This measure-only operator is what the areal-interpolation overlay
/// needs (aggregates in intersections, never intersection shapes); see
/// DESIGN.md §2. Geometric output of boolean ops is provided for
/// convex operands via `ClipRingToConvex`.
double IntersectionArea(const Polygon& a, const Polygon& b);

/// |A ∪ B| via inclusion–exclusion.
double UnionArea(const Polygon& a, const Polygon& b);

/// |A \ B| = |A| - |A ∩ B|.
double DifferenceArea(const Polygon& a, const Polygon& b);

/// |A Δ B| = |A| + |B| - 2 |A ∩ B|.
double SymmetricDifferenceArea(const Polygon& a, const Polygon& b);

/// A signed triangle used in fan decompositions.
struct SignedTriangle {
  Point a, b, c;  ///< CCW order
  double sign;    ///< +1 or -1
};

/// Signed fan decomposition of a polygon (outer ring fans positive,
/// hole rings negative); degenerate triangles are dropped. Exposed for
/// testing and reuse.
std::vector<SignedTriangle> SignedFan(const Polygon& poly);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_BOOLEAN_OPS_H_
