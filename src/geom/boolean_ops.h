#ifndef GEOALIGN_GEOM_BOOLEAN_OPS_H_
#define GEOALIGN_GEOM_BOOLEAN_OPS_H_

#include <cstdint>

#include "geom/convex_clip.h"
#include "geom/polygon.h"

namespace geoalign::geom {

/// Exact area of intersection of two simple polygons (holes allowed,
/// convexity NOT required).
///
/// Method: each polygon is decomposed into a signed triangle fan (so
/// that the signed indicator functions sum to the winding number, 1
/// inside and 0 outside for a simple polygon); the intersection area
/// is then the double sum of signed pairwise triangle-triangle
/// intersection areas, each computed by convex clipping. O(|A|·|B|)
/// triangle pairs.
///
/// This measure-only operator is what the areal-interpolation overlay
/// needs (aggregates in intersections, never intersection shapes); see
/// DESIGN.md §2. Geometric output of boolean ops is provided for
/// convex operands via `ClipRingToConvex`.
double IntersectionArea(const Polygon& a, const Polygon& b);

/// |A ∪ B| via inclusion–exclusion.
double UnionArea(const Polygon& a, const Polygon& b);

/// |A \ B| = |A| - |A ∩ B|.
double DifferenceArea(const Polygon& a, const Polygon& b);

/// |A Δ B| = |A| + |B| - 2 |A ∩ B|.
double SymmetricDifferenceArea(const Polygon& a, const Polygon& b);

/// A signed triangle used in fan decompositions.
struct SignedTriangle {
  Point a, b, c;  ///< CCW order
  double sign;    ///< +1 or -1
};

/// Signed fan decomposition of a polygon (outer ring fans positive,
/// hole rings negative); degenerate triangles are dropped. Exposed for
/// testing and reuse.
std::vector<SignedTriangle> SignedFan(const Polygon& poly);

/// Bounding boxes of fan triangles, one per triangle, computed with
/// the same Expand sequence the per-pair path used — so pruning
/// decisions based on them are bit-identical to recomputing boxes in
/// the tri×tri loop.
std::vector<BBox> FanBBoxes(const std::vector<SignedTriangle>& fan);

/// Per-worker scratch for the prepared-fan intersection kernel: the
/// clip ping/pong rings plus the two staging triangle rings. Reserve
/// once (overlay workers own one each), then IntersectionAreaPrepared
/// never allocates; alloc_events() reads back any growth that did
/// happen (the `overlay.hot_path_allocs` telemetry).
struct FanScratch {
  ClipScratch clip;
  Ring tri_a;
  Ring tri_b;

  /// Pre-grows the clip rings for subjects of up to `max_vertices`
  /// vertices (triangles need 8; the convex fast path clips whole
  /// rings and passes outer-ring bounds). Monotonic.
  void Reserve(size_t max_vertices);

  uint64_t alloc_events() const { return clip.alloc_events; }
};

/// The cached-fan core of IntersectionArea: both polygons arrive as
/// precomputed signed fans with per-triangle bboxes (`SignedFan` +
/// `FanBBoxes`), and every intermediate ring comes from `scratch`.
/// Arithmetic, pruning, and accumulation order are exactly those of
/// IntersectionArea, so the result is bit-identical — the overlay
/// engine leans on this to cache fans per unit instead of
/// re-decomposing per candidate pair. Callers are responsible for the
/// polygon-bounds prune that IntersectionArea performs up front.
double IntersectionAreaPrepared(const SignedTriangle* fan_a,
                                const BBox* boxes_a, size_t size_a,
                                const SignedTriangle* fan_b,
                                const BBox* boxes_b, size_t size_b,
                                FanScratch* scratch);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_BOOLEAN_OPS_H_
