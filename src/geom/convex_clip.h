#ifndef GEOALIGN_GEOM_CONVEX_CLIP_H_
#define GEOALIGN_GEOM_CONVEX_CLIP_H_

#include <cstdint>

#include "geom/polygon.h"

namespace geoalign::geom {

/// A half-plane {p : dot(normal, p) <= offset}. The boundary line is
/// dot(normal, p) == offset; points on it are kept by clipping.
struct HalfPlane {
  Point normal;
  double offset = 0.0;

  /// The half-plane of points at least as close to `a` as to `b`
  /// (the Voronoi bisector constraint). Requires a != b.
  static HalfPlane Bisector(const Point& a, const Point& b);

  bool Contains(const Point& p, double tol = 0.0) const {
    return Dot(normal, p) <= offset + tol;
  }
};

/// Clips `subject` (any simple ring) to the half-plane. The result may
/// be empty or degenerate; callers should check RingArea.
Ring ClipRingToHalfPlane(const Ring& subject, const HalfPlane& hp);

/// Allocation-free variant: clears `*out` and appends the clipped
/// ring. Identical arithmetic (and therefore bit-identical output) to
/// ClipRingToHalfPlane; reuses out's capacity, growing it only when
/// the result cannot fit. `out` must not alias `subject`.
void ClipRingToHalfPlaneInto(const Ring& subject, const HalfPlane& hp,
                             Ring* out);

/// Sutherland–Hodgman: clips `subject` (any simple ring) against a
/// CONVEX clip ring given in counter-clockwise order. Exact for convex
/// `subject`; for non-convex subjects the classic caveat applies
/// (output may contain zero-width bridges but its area is correct).
Ring ClipRingToConvex(const Ring& subject, const Ring& convex_clip);

/// Area of the intersection of two CONVEX rings.
double ConvexIntersectionArea(const Ring& a, const Ring& b);

/// Reusable ping/pong rings for the allocation-free clipping path.
/// One scratch serves one clip at a time; overlay workers each own one
/// (partition::OverlayWorkspace) and Reserve it once, so steady-state
/// clipping never touches the heap. `alloc_events` counts every
/// capacity growth after Reserve — the `overlay.hot_path_allocs`
/// telemetry reads it back.
struct ClipScratch {
  Ring ping;
  Ring pong;
  uint64_t alloc_events = 0;

  /// Pre-grows both rings for subjects/clips of up to `max_vertices`
  /// vertices each (a subject of n vertices clipped by m half-planes
  /// has at most n + m vertices). Monotonic.
  void Reserve(size_t max_vertices);
};

/// Allocation-free ConvexIntersectionArea: same arithmetic in the same
/// order (bit-identical result), with every intermediate ring drawn
/// from `scratch` instead of freshly allocated. The subject ring `a`
/// is copied into the scratch, so `a`/`b` may be long-lived geometry.
double ConvexIntersectionAreaWith(const Ring& a, const Ring& b,
                                  ClipScratch* scratch);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_CONVEX_CLIP_H_
