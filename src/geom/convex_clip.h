#ifndef GEOALIGN_GEOM_CONVEX_CLIP_H_
#define GEOALIGN_GEOM_CONVEX_CLIP_H_

#include "geom/polygon.h"

namespace geoalign::geom {

/// A half-plane {p : dot(normal, p) <= offset}. The boundary line is
/// dot(normal, p) == offset; points on it are kept by clipping.
struct HalfPlane {
  Point normal;
  double offset = 0.0;

  /// The half-plane of points at least as close to `a` as to `b`
  /// (the Voronoi bisector constraint). Requires a != b.
  static HalfPlane Bisector(const Point& a, const Point& b);

  bool Contains(const Point& p, double tol = 0.0) const {
    return Dot(normal, p) <= offset + tol;
  }
};

/// Clips `subject` (any simple ring) to the half-plane. The result may
/// be empty or degenerate; callers should check RingArea.
Ring ClipRingToHalfPlane(const Ring& subject, const HalfPlane& hp);

/// Sutherland–Hodgman: clips `subject` (any simple ring) against a
/// CONVEX clip ring given in counter-clockwise order. Exact for convex
/// `subject`; for non-convex subjects the classic caveat applies
/// (output may contain zero-width bridges but its area is correct).
Ring ClipRingToConvex(const Ring& subject, const Ring& convex_clip);

/// Area of the intersection of two CONVEX rings.
double ConvexIntersectionArea(const Ring& a, const Ring& b);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_CONVEX_CLIP_H_
