#include "geom/bbox.h"

#include <algorithm>

namespace geoalign::geom {

void BBox::Expand(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void BBox::Expand(const BBox& other) {
  if (other.Empty()) return;
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

bool BBox::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool BBox::Intersects(const BBox& other) const {
  if (Empty() || other.Empty()) return false;
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

BBox BBox::Intersection(const BBox& other) const {
  BBox out;
  out.min_x = std::max(min_x, other.min_x);
  out.min_y = std::max(min_y, other.min_y);
  out.max_x = std::min(max_x, other.max_x);
  out.max_y = std::min(max_y, other.max_y);
  return out;
}

double BBox::Area() const {
  if (Empty()) return 0.0;
  return (max_x - min_x) * (max_y - min_y);
}

}  // namespace geoalign::geom
