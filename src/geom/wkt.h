#ifndef GEOALIGN_GEOM_WKT_H_
#define GEOALIGN_GEOM_WKT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/polygon.h"

namespace geoalign::geom {

/// Well-Known-Text serialization, the interchange format GIS tools
/// (PostGIS, GEOS, shapely, ArcGIS) speak. Supported geometries:
/// POINT, POLYGON (with holes), MULTIPOLYGON.

/// "POINT (x y)".
std::string ToWkt(const Point& p);

/// "POLYGON ((outer...), (hole...), ...)" — rings are closed in the
/// output (first vertex repeated at the end) per the WKT convention.
std::string ToWkt(const Polygon& poly);

/// "MULTIPOLYGON (((...)), ((...)))".
std::string ToWkt(const std::vector<Polygon>& polys);

/// Parses "POINT (x y)".
Result<Point> PointFromWkt(const std::string& text);

/// Parses "POLYGON ((...), ...)"; accepts open or closed rings.
Result<Polygon> PolygonFromWkt(const std::string& text);

/// Parses "MULTIPOLYGON (((...)), ...)"; also accepts a plain POLYGON
/// (returned as a single-element vector).
Result<std::vector<Polygon>> MultiPolygonFromWkt(const std::string& text);

}  // namespace geoalign::geom

#endif  // GEOALIGN_GEOM_WKT_H_
