#include "core/areal_weighting.h"

#include "sparse/sparse_ops.h"

namespace geoalign::core {

ArealWeighting::ArealWeighting(sparse::CsrMatrix measure_dm)
    : measure_dm_(std::move(measure_dm)),
      source_measures_(measure_dm_.RowSums()) {}

Result<CrosswalkResult> ArealWeighting::Crosswalk(
    const CrosswalkInput& input) const {
  if (input.objective_source.size() != measure_dm_.rows()) {
    return Status::InvalidArgument(
        "ArealWeighting: objective vector does not match measure DM rows");
  }
  CrosswalkResult result;
  Stopwatch watch;

  sparse::CsrMatrix estimated = measure_dm_;
  std::vector<size_t> zero_rows;
  sparse::DivideRowsOrZero(estimated, source_measures_, /*zero_tol=*/0.0,
                           &zero_rows);
  estimated.ScaleRows(input.objective_source);
  result.timing.Add("disaggregation", watch.ElapsedSeconds());
  watch.Restart();

  result.target_estimates = estimated.ColSums();
  result.timing.Add("reaggregation", watch.ElapsedSeconds());

  result.estimated_dm = std::move(estimated);
  result.zero_rows = std::move(zero_rows);
  return result;
}

}  // namespace geoalign::core
