#include "core/pipeline.h"

#include <memory>
#include <optional>
#include <unordered_map>

#include "common/thread_pool.h"

namespace geoalign::core {

CrosswalkPipeline::CrosswalkPipeline(
    std::vector<std::string> source_units,
    std::vector<std::string> target_units,
    std::vector<ReferenceAttribute> references,
    std::shared_ptr<const Interpolator> method)
    : source_units_(std::move(source_units)),
      target_units_(std::move(target_units)),
      references_(std::move(references)),
      method_(std::move(method)) {}

Result<CrosswalkPipeline> CrosswalkPipeline::Create(
    std::vector<std::string> source_units,
    std::vector<std::string> target_units,
    std::vector<ReferenceAttribute> references,
    std::shared_ptr<const Interpolator> method) {
  if (source_units.empty() || target_units.empty()) {
    return Status::InvalidArgument("CrosswalkPipeline: empty unit lists");
  }
  if (references.empty()) {
    return Status::InvalidArgument("CrosswalkPipeline: no references");
  }
  for (const ReferenceAttribute& ref : references) {
    if (ref.source_aggregates.size() != source_units.size() ||
        ref.disaggregation.rows() != source_units.size() ||
        ref.disaggregation.cols() != target_units.size()) {
      return Status::InvalidArgument(
          "CrosswalkPipeline: reference '" + ref.name +
          "' does not match the unit lists");
    }
  }
  if (method == nullptr) {
    method = std::make_shared<GeoAlign>();
  }
  return CrosswalkPipeline(std::move(source_units), std::move(target_units),
                           std::move(references), std::move(method));
}

Result<linalg::Vector> CrosswalkPipeline::ResolveColumn(
    const std::vector<std::pair<std::string, double>>& column,
    const std::vector<std::string>& units) const {
  std::unordered_map<std::string, size_t> index;
  index.reserve(units.size());
  for (size_t i = 0; i < units.size(); ++i) index.emplace(units[i], i);
  linalg::Vector out(units.size(), 0.0);
  for (const auto& [unit, value] : column) {
    auto it = index.find(unit);
    if (it == index.end()) {
      return Status::NotFound("CrosswalkPipeline: unknown unit '" + unit +
                              "'");
    }
    out[it->second] += value;
  }
  return out;
}

Result<CrosswalkResult> CrosswalkPipeline::Realign(
    const std::vector<std::pair<std::string, double>>& objective) const {
  CrosswalkInput input;
  GEOALIGN_ASSIGN_OR_RETURN(input.objective_source,
                            ResolveColumn(objective, source_units_));
  input.references = references_;
  return method_->Crosswalk(input);
}

Result<std::vector<CrosswalkResult>> CrosswalkPipeline::RealignMany(
    const std::vector<Column>& objectives, size_t threads) const {
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(threads));

  // With an outer pool, an interpolator that would itself spawn a pool
  // per crosswalk (GeoAlign with threads != 1) would oversubscribe the
  // machine; clone it in inline mode — the deterministic kernels make
  // this a pure scheduling change, never a numeric one.
  std::shared_ptr<const Interpolator> method = method_;
  if (pool != nullptr) {
    if (const auto* ga = dynamic_cast<const GeoAlign*>(method_.get())) {
      GeoAlignOptions inline_options = ga->options();
      inline_options.threads = 1;
      method = std::make_shared<GeoAlign>(inline_options);
    }
  }

  std::vector<std::optional<Result<CrosswalkResult>>> results(
      objectives.size());
  common::ParallelForChunks(pool.get(), objectives.size(), [&](size_t i) {
    CrosswalkInput input;
    Result<linalg::Vector> column =
        ResolveColumn(objectives[i], source_units_);
    if (!column.ok()) {
      results[i].emplace(column.status());
      return;
    }
    input.objective_source = std::move(column).value();
    input.references = references_;
    results[i].emplace(method->Crosswalk(input));
  });

  std::vector<CrosswalkResult> out;
  out.reserve(objectives.size());
  for (std::optional<Result<CrosswalkResult>>& r : results) {
    if (!r->ok()) return r->status();
    out.push_back(std::move(*r).value());
  }
  return out;
}

Result<std::vector<CrosswalkPipeline::JoinedRow>> CrosswalkPipeline::Join(
    const std::vector<std::pair<std::string, double>>& objective,
    const std::vector<std::pair<std::string, double>>& target_attribute)
    const {
  GEOALIGN_ASSIGN_OR_RETURN(CrosswalkResult realigned, Realign(objective));
  GEOALIGN_ASSIGN_OR_RETURN(
      linalg::Vector target_vals,
      ResolveColumn(target_attribute, target_units_));
  std::vector<JoinedRow> rows;
  rows.reserve(target_units_.size());
  for (size_t j = 0; j < target_units_.size(); ++j) {
    rows.push_back(
        {target_units_[j], realigned.target_estimates[j], target_vals[j]});
  }
  return rows;
}

}  // namespace geoalign::core
