#include "core/pipeline.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sparse/simd/panel_kernels.h"

namespace geoalign::core {

namespace {

// Serving-surface telemetry (catalog: docs/observability.md). The
// registry keys are shared with BatchCrosswalk so "realign.*" counts
// every realigned column regardless of entry point.
obs::Histogram& RealignLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("realign.latency_us");
  return h;
}
obs::Histogram& ColumnsPerBatch() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("realign.columns_per_batch");
  return h;
}
obs::Counter& ColumnsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("realign.columns_total");
  return c;
}

// Builds a name→index map, rejecting duplicates (a duplicate would
// silently shadow the earlier unit during column resolution).
Result<std::unordered_map<std::string, size_t>> BuildUnitIndex(
    const std::vector<std::string>& units, const char* which) {
  std::unordered_map<std::string, size_t> index;
  index.reserve(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    auto [it, inserted] = index.emplace(units[i], i);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument(
          std::string("CrosswalkPipeline: duplicate ") + which +
          " unit name '" + units[i] + "'");
    }
  }
  return index;
}

}  // namespace

CrosswalkPipeline::CrosswalkPipeline(
    std::vector<std::string> source_units,
    std::vector<std::string> target_units,
    std::vector<ReferenceAttribute> references,
    std::shared_ptr<const Interpolator> method)
    : source_units_(std::move(source_units)),
      target_units_(std::move(target_units)),
      references_(std::move(references)),
      method_(std::move(method)) {}

Result<CrosswalkPipeline> CrosswalkPipeline::Create(
    std::vector<std::string> source_units,
    std::vector<std::string> target_units,
    std::vector<ReferenceAttribute> references,
    std::shared_ptr<const Interpolator> method) {
  if (source_units.empty() || target_units.empty()) {
    return Status::InvalidArgument("CrosswalkPipeline: empty unit lists");
  }
  if (references.empty()) {
    return Status::InvalidArgument("CrosswalkPipeline: no references");
  }
  for (const ReferenceAttribute& ref : references) {
    if (ref.source_aggregates.size() != source_units.size() ||
        ref.disaggregation.rows() != source_units.size() ||
        ref.disaggregation.cols() != target_units.size()) {
      return Status::InvalidArgument(
          "CrosswalkPipeline: reference '" + ref.name +
          "' does not match the unit lists");
    }
  }
  if (method == nullptr) {
    method = std::make_shared<GeoAlign>();
  }
  CrosswalkPipeline pipeline(std::move(source_units),
                             std::move(target_units), std::move(references),
                             std::move(method));
  GEOALIGN_ASSIGN_OR_RETURN(
      pipeline.source_index_,
      BuildUnitIndex(pipeline.source_units_, "source"));
  GEOALIGN_ASSIGN_OR_RETURN(
      pipeline.target_index_,
      BuildUnitIndex(pipeline.target_units_, "target"));

  // Compile step: a GeoAlign method gets its objective-independent
  // work hoisted into one shared plan here. Compilation failures (e.g.
  // a reference whose aggregates cannot be normalized) intentionally
  // do NOT fail Create — the legacy contract surfaces those errors at
  // Realign time, so we fall back to the per-call path instead.
  if (const auto* ga =
          dynamic_cast<const GeoAlign*>(pipeline.method_.get())) {
    Result<CrosswalkPlan> plan = ga->Compile(pipeline.references_);
    if (plan.ok()) {
      pipeline.plan_ = std::make_shared<const CrosswalkPlan>(
          std::move(plan).value());
      // The plan owns prepared copies of every reference; drop the
      // now-redundant originals (they were only read per Realign call).
      pipeline.references_.clear();
      pipeline.references_.shrink_to_fit();
    }
  }
  return pipeline;
}

Result<CrosswalkPipeline> CrosswalkPipeline::Create(
    std::vector<std::string> source_units,
    std::vector<std::string> target_units,
    std::vector<ReferenceAttributeView> references,
    std::shared_ptr<const Interpolator> method) {
  if (source_units.empty() || target_units.empty()) {
    return Status::InvalidArgument("CrosswalkPipeline: empty unit lists");
  }
  if (references.empty()) {
    return Status::InvalidArgument("CrosswalkPipeline: no references");
  }
  for (const ReferenceAttributeView& ref : references) {
    if (ref.source_aggregates.size() != source_units.size() ||
        ref.disaggregation.rows() != source_units.size() ||
        ref.disaggregation.cols() != target_units.size()) {
      return Status::InvalidArgument(
          "CrosswalkPipeline: reference '" + ref.name +
          "' does not match the unit lists");
    }
  }
  if (method == nullptr) {
    method = std::make_shared<GeoAlign>();
  }
  const auto* ga = dynamic_cast<const GeoAlign*>(method.get());
  if (ga == nullptr) {
    return Status::InvalidArgument(
        "CrosswalkPipeline: view-based Create requires a GeoAlign method");
  }
  const GeoAlignOptions options = ga->options();
  CrosswalkPipeline pipeline(std::move(source_units), std::move(target_units),
                             {}, std::move(method));
  GEOALIGN_ASSIGN_OR_RETURN(
      pipeline.source_index_,
      BuildUnitIndex(pipeline.source_units_, "source"));
  GEOALIGN_ASSIGN_OR_RETURN(
      pipeline.target_index_,
      BuildUnitIndex(pipeline.target_units_, "target"));
  // Unlike the owning Create there is nothing to fall back to per call
  // (the pipeline holds no owning reference copies), so a compile
  // error fails Create instead of resurfacing at Realign time.
  GEOALIGN_ASSIGN_OR_RETURN(
      CrosswalkPlan plan,
      CrosswalkPlan::Compile(std::move(references), options));
  pipeline.plan_ = std::make_shared<const CrosswalkPlan>(std::move(plan));
  return pipeline;
}

Result<linalg::Vector> CrosswalkPipeline::ResolveColumn(
    const std::vector<std::pair<std::string, double>>& column,
    const std::unordered_map<std::string, size_t>& index) const {
  linalg::Vector out(index.size(), 0.0);
  for (const auto& [unit, value] : column) {
    auto it = index.find(unit);
    if (it == index.end()) {
      return Status::NotFound("CrosswalkPipeline: unknown unit '" + unit +
                              "'");
    }
    out[it->second] += value;
  }
  return out;
}

Result<CrosswalkResult> CrosswalkPipeline::Realign(
    const std::vector<std::pair<std::string, double>>& objective) const {
  // Serving entry: make sure spans and audit records below carry a
  // request id even when the caller opened no RequestScope.
  obs::EnsureRequestScope ensure_request;
  GEOALIGN_TRACE_SPAN("realign");
  obs::Stopwatch realign_watch;
  ColumnsTotal().Add(1);
  struct LatencyRecorder {
    obs::Stopwatch& watch;
    ~LatencyRecorder() { RealignLatencyUs().Record(watch.ElapsedMicros()); }
  } recorder{realign_watch};
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector objective_source,
                            ResolveColumn(objective, source_index_));
  if (plan_ != nullptr) {
    return plan_->Execute(objective_source);
  }
  CrosswalkInput input;
  input.objective_source = std::move(objective_source);
  input.references = references_;
  // Non-GeoAlign interpolators (baselines, custom methods) have no
  // compiled-plan form; this also serves GeoAlign when its plan failed
  // to compile, preserving the legacy error-at-Realign contract.
  return method_->Crosswalk(input);  // NOLINT(geoalign-plan-bypass)
}

Result<std::vector<CrosswalkResult>> CrosswalkPipeline::RealignMany(
    const std::vector<Column>& objectives, size_t threads,
    ExecuteOutput output) const {
  obs::EnsureRequestScope ensure_request;
  // Pool workers have their own (empty) thread-local request context;
  // each worker lambda below re-establishes this token so every span
  // and audit record of the fan-out stays attributed to the request.
  const obs::RequestToken request = obs::CurrentRequest();
  GEOALIGN_TRACE_SPAN("realign.batch");
  ColumnsPerBatch().Record(static_cast<double>(objectives.size()));
  ColumnsTotal().Add(objectives.size());
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(threads));

  if (plan_ != nullptr && output == ExecuteOutput::kAggregatesOnly &&
      plan_->references().aligned()) {
    // Aligned aggregates-only serving path: resolve every column
    // first, then group the resolved columns into consecutive panels
    // of plan_->panel_width() — the width is the plan's execute-time
    // answer (active ISA, GEOALIGN_PANEL_WIDTH), never caller state,
    // so the PlanCache fingerprint stays ISA-independent. One panel =
    // one shared-structure traversal serving every lane; outer
    // parallelism runs across panels and the bits match the
    // per-column path exactly at every width and thread count.
    const size_t n = objectives.size();
    std::vector<std::optional<Result<CrosswalkResult>>> results(n);
    std::vector<linalg::Vector> resolved(n);
    std::vector<size_t> valid;
    valid.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Result<linalg::Vector> column =
          ResolveColumn(objectives[i], source_index_);
      if (!column.ok()) {
        results[i].emplace(column.status());
      } else {
        resolved[i] = std::move(column).value();
        valid.push_back(i);
      }
    }
    const size_t width = plan_->panel_width();
    const size_t num_panels = (valid.size() + width - 1) / width;
    const bool outer_inline =
        pool == nullptr || pool->size() <= 1 || num_panels <= 1;
    std::vector<ExecuteWorkspace> bank(outer_inline ? 1 : pool->size() + 1);
    for (ExecuteWorkspace& ws : bank) {
      ws.Prepare(plan_->workspace_spec(), /*slots=*/1);
      ws.PreparePanel(plan_->workspace_spec(),
                      std::min(width, std::max<size_t>(valid.size(), 1)));
    }
    common::ParallelForChunks(pool.get(), num_panels, [&](size_t p) {
      obs::RequestScope request_scope(request);
      obs::Stopwatch panel_watch;
      const size_t begin = p * width;
      const size_t count = std::min(width, valid.size() - begin);
      std::array<common::ColumnView, sparse::simd::kMaxPanelWidth> objs;
      std::array<std::optional<Result<CrosswalkResult>>*,
                 sparse::simd::kMaxPanelWidth>
          slots;
      for (size_t k = 0; k < count; ++k) {
        objs[k] = common::ColumnView(resolved[valid[begin + k]]);
        slots[k] = &results[valid[begin + k]];
      }
      size_t wi = common::ThreadPool::CurrentWorkerIndex();
      ExecuteWorkspace& ws =
          bank[outer_inline || wi == common::ThreadPool::kNoWorkerIndex
                   ? 0
                   : wi + 1];
      plan_->ExecutePanelWith(objs.data(), slots.data(), count, &ws);
      // One traversal served `count` columns; the latency histogram
      // records per-panel time here (docs/observability.md).
      RealignLatencyUs().Record(panel_watch.ElapsedMicros());
    });
    std::vector<CrosswalkResult> out;
    out.reserve(n);
    for (std::optional<Result<CrosswalkResult>>& r : results) {
      if (!r->ok()) return r->status();
      out.push_back(std::move(*r).value());
    }
    return out;
  }

  if (plan_ != nullptr) {
    // Serving path: every column executes the one shared plan. With an
    // outer pool the inner kernels run inline (oversubscription
    // guard); without one, every column shares one inner pool instead
    // of spinning a pool per call. Either way the deterministic
    // kernels make the bits independent of the threading shape.
    std::unique_ptr<common::ThreadPool> inner =
        pool == nullptr ? common::MakePoolOrNull(common::ResolveThreadCount(
                              plan_->options().threads))
                        : nullptr;

    // One reusable workspace per worker slot, sized once from the
    // plan-compiled spec — steady-state columns grow nothing (the
    // execute.hot_path_allocs counter stays flat from column 0).
    const bool outer_inline =
        pool == nullptr || pool->size() <= 1 || objectives.size() == 1;
    std::vector<ExecuteWorkspace> bank(outer_inline ? 1 : pool->size() + 1);
    const size_t fused_slots =
        inner != nullptr && inner->size() > 1 ? inner->size() + 1 : 1;
    for (ExecuteWorkspace& ws : bank) {
      ws.Prepare(plan_->workspace_spec(), fused_slots);
    }

    std::vector<std::optional<Result<CrosswalkResult>>> results(
        objectives.size());
    common::ParallelForChunks(pool.get(), objectives.size(), [&](size_t i) {
      obs::RequestScope request_scope(request);
      obs::Stopwatch column_watch;
      Result<linalg::Vector> column =
          ResolveColumn(objectives[i], source_index_);
      if (!column.ok()) {
        results[i].emplace(column.status());
        return;
      }
      // Inline runs use slot 0; outer-pool workers take their worker
      // index (one slot per thread, so a workspace never sees two
      // concurrent executes).
      size_t wi = common::ThreadPool::CurrentWorkerIndex();
      ExecuteWorkspace& ws =
          bank[outer_inline || wi == common::ThreadPool::kNoWorkerIndex
                   ? 0
                   : wi + 1];
      results[i].emplace(plan_->ExecuteWith(std::move(column).value(),
                                            pool != nullptr ? nullptr
                                                            : inner.get(),
                                            output, &ws));
      RealignLatencyUs().Record(column_watch.ElapsedMicros());
    });
    std::vector<CrosswalkResult> out;
    out.reserve(objectives.size());
    for (std::optional<Result<CrosswalkResult>>& r : results) {
      if (!r->ok()) return r->status();
      out.push_back(std::move(*r).value());
    }
    return out;
  }

  // With an outer pool, an interpolator that would itself spawn a pool
  // per crosswalk (GeoAlign with threads != 1) would oversubscribe the
  // machine; clone it in inline mode — the deterministic kernels make
  // this a pure scheduling change, never a numeric one.
  std::shared_ptr<const Interpolator> method = method_;
  if (pool != nullptr) {
    if (const auto* ga = dynamic_cast<const GeoAlign*>(method_.get())) {
      GeoAlignOptions inline_options = ga->options();
      inline_options.threads = 1;
      method = std::make_shared<GeoAlign>(inline_options);
    }
  }

  std::vector<std::optional<Result<CrosswalkResult>>> results(
      objectives.size());
  common::ParallelForChunks(pool.get(), objectives.size(), [&](size_t i) {
    obs::RequestScope request_scope(request);
    obs::Stopwatch column_watch;
    CrosswalkInput input;
    Result<linalg::Vector> column =
        ResolveColumn(objectives[i], source_index_);
    if (!column.ok()) {
      results[i].emplace(column.status());
      return;
    }
    input.objective_source = std::move(column).value();
    input.references = references_;
    // Per-call fallback for interpolators without a compiled-plan form
    // (see Realign).
    results[i].emplace(
        method->Crosswalk(input));  // NOLINT(geoalign-plan-bypass)
    RealignLatencyUs().Record(column_watch.ElapsedMicros());
  });

  std::vector<CrosswalkResult> out;
  out.reserve(objectives.size());
  for (std::optional<Result<CrosswalkResult>>& r : results) {
    if (!r->ok()) return r->status();
    out.push_back(std::move(*r).value());
    if (output == ExecuteOutput::kAggregatesOnly) {
      // Per-call interpolators have no fused form; honor the requested
      // shape by dropping the materialized DM.
      out.back().estimated_dm = sparse::CsrMatrix();
    }
  }
  return out;
}

Result<std::vector<CrosswalkPipeline::JoinedRow>> CrosswalkPipeline::Join(
    const std::vector<std::pair<std::string, double>>& objective,
    const std::vector<std::pair<std::string, double>>& target_attribute)
    const {
  GEOALIGN_ASSIGN_OR_RETURN(CrosswalkResult realigned, Realign(objective));
  GEOALIGN_ASSIGN_OR_RETURN(
      linalg::Vector target_vals,
      ResolveColumn(target_attribute, target_index_));
  std::vector<JoinedRow> rows;
  rows.reserve(target_units_.size());
  for (size_t j = 0; j < target_units_.size(); ++j) {
    rows.push_back(
        {target_units_[j], realigned.target_estimates[j], target_vals[j]});
  }
  return rows;
}

}  // namespace geoalign::core
