#include "core/plan_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "sparse/prepared_reference.h"

namespace geoalign::core {

namespace {

// Registry mirrors of PlanCacheStats, aggregated across instances
// (catalog: docs/observability.md).
obs::Counter& CacheHits() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("plan_cache.hits");
  return c;
}
obs::Counter& CacheMisses() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("plan_cache.misses");
  return c;
}
obs::Counter& CacheEvictions() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("plan_cache.evictions");
  return c;
}
obs::Counter& CacheInsertRaces() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("plan_cache.insert_races");
  return c;
}
obs::Histogram& CacheCompileLatencyUs() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "plan_cache.compile_latency_us");
  return h;
}

// Mixes everything execution-relevant about (references, options) into
// one lane. Seeded differently per lane so a collision would have to
// defeat two independent 64-bit hashes at once.
uint64_t FingerprintLane(const std::vector<ReferenceAttribute>& references,
                         const GeoAlignOptions& options, uint64_t seed) {
  sparse::Fnv1a hash(seed);
  hash.MixSize(references.size());
  for (const ReferenceAttribute& ref : references) {
    hash.MixString(ref.name);
    hash.MixDoubles(ref.source_aggregates);
    hash.MixSize(ref.disaggregation.rows());
    hash.MixSize(ref.disaggregation.cols());
    hash.MixSizes(ref.disaggregation.row_ptr());
    hash.MixSizes(ref.disaggregation.col_idx());
    hash.MixDoubles(ref.disaggregation.values());
  }
  hash.MixU64(static_cast<uint64_t>(options.scale_mode));
  hash.MixU64(static_cast<uint64_t>(options.solver));
  hash.MixU64(static_cast<uint64_t>(options.denominator));
  hash.MixU64(static_cast<uint64_t>(options.zero_row_fallback));
  hash.MixDouble(options.zero_tolerance);
  hash.MixDouble(options.solver_options.tolerance);
  hash.MixSize(options.solver_options.max_iterations);
  hash.MixDouble(options.solver_options.ridge_on_singular);
  // options.threads is intentionally NOT mixed (see class comment).
  if (options.fallback_dm != nullptr) {
    const sparse::CsrMatrix& fb = *options.fallback_dm;
    hash.MixSize(fb.rows());
    hash.MixSize(fb.cols());
    hash.MixSizes(fb.row_ptr());
    hash.MixSizes(fb.col_idx());
    hash.MixDoubles(fb.values());
  } else {
    hash.MixU64(0);
  }
  return hash.value();
}

}  // namespace

PlanCache::Key PlanCache::MakeKey(
    const std::vector<ReferenceAttribute>& references,
    const GeoAlignOptions& options) {
  Key key;
  key.lane0 = FingerprintLane(references, options, sparse::Fnv1a::kDefaultSeed);
  key.lane1 = FingerprintLane(references, options, 0x6a09e667f3bcc909ull);
  return key;
}

std::shared_ptr<const CrosswalkPlan> PlanCache::LookupLocked(
    const Key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  ++stats_.hits;
  CacheHits().Add(1);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

std::shared_ptr<const CrosswalkPlan> PlanCache::InsertOrAdoptLocked(
    const Key& key, std::shared_ptr<const CrosswalkPlan> plan) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread compiled the same key while we were unlocked;
    // keep the incumbent so all callers share one plan. The dropped
    // compile is recorded as an insert race (see PlanCacheStats).
    ++stats_.insert_races;
    CacheInsertRaces().Add(1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_.emplace(key, lru_.begin());
  EvictLocked();
  return lru_.front().plan;
}

void PlanCache::EvictLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    CacheEvictions().Add(1);
  }
}

Result<std::shared_ptr<const CrosswalkPlan>> PlanCache::GetOrCompile(
    const std::vector<ReferenceAttribute>& references,
    const GeoAlignOptions& options) {
  Key key = MakeKey(references, options);

  {
    common::MutexLock lock(mu_);
    if (capacity_ > 0) {
      if (std::shared_ptr<const CrosswalkPlan> hit = LookupLocked(key)) {
        return hit;
      }
    }
    ++stats_.misses;
  }
  CacheMisses().Add(1);

  // Compile outside the lock: plan compilation walks every reference
  // DM and must not serialize concurrent callers on unrelated keys.
  obs::Stopwatch compile_watch;
  GEOALIGN_ASSIGN_OR_RETURN(CrosswalkPlan compiled,
                            CrosswalkPlan::Compile(references, options));
  CacheCompileLatencyUs().Record(compile_watch.ElapsedMicros());
  auto plan =
      std::make_shared<const CrosswalkPlan>(std::move(compiled));
  if (capacity_ == 0) return plan;

  common::MutexLock lock(mu_);
  return InsertOrAdoptLocked(key, std::move(plan));
}

size_t PlanCache::size() const {
  common::MutexLock lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

void PlanCache::Clear() {
  common::MutexLock lock(mu_);
  index_.clear();
  lru_.clear();
}

}  // namespace geoalign::core
