#include "core/regression.h"

#include <algorithm>

#include "linalg/qr.h"

namespace geoalign::core {

RegressionBaseline::RegressionBaseline(RegressionOptions options)
    : options_(options) {}

Result<CrosswalkResult> RegressionBaseline::Crosswalk(
    const CrosswalkInput& input) const {
  if (input.references.empty()) {
    return Status::InvalidArgument("Regression: no references");
  }
  size_t ns = input.NumSourceUnits();
  size_t nt = input.NumTargetUnits();
  size_t num_refs = input.references.size();
  CrosswalkResult result;
  Stopwatch watch;

  // Design matrix at source level; prediction matrix at target level.
  size_t cols = num_refs + (options_.include_intercept ? 1 : 0);
  linalg::Matrix design(ns, cols);
  linalg::Matrix predict(nt, cols);
  for (size_t k = 0; k < num_refs; ++k) {
    const ReferenceAttribute& ref = input.references[k];
    for (size_t i = 0; i < ns; ++i) design(i, k) = ref.source_aggregates[i];
    linalg::Vector target = ref.TargetAggregates();
    for (size_t j = 0; j < nt; ++j) predict(j, k) = target[j];
  }
  if (options_.include_intercept) {
    for (size_t i = 0; i < ns; ++i) design(i, num_refs) = 1.0;
    // An intercept contributes per-unit; at target level the unit
    // count differs, so scale by the unit-count ratio to keep totals
    // comparable (the standard per-areal-unit regression convention).
    double ratio = static_cast<double>(ns) / static_cast<double>(nt);
    for (size_t j = 0; j < nt; ++j) predict(j, num_refs) = ratio;
  }

  auto coeffs = linalg::LeastSquaresQr(design, input.objective_source);
  if (!coeffs.ok()) {
    // Rank-deficient design (duplicate references): drop to a uniform
    // mix rather than failing outright.
    linalg::Vector uniform(cols, 0.0);
    double total = 0.0;
    for (size_t k = 0; k < num_refs; ++k) {
      total += linalg::Sum(input.references[k].source_aggregates);
    }
    double objective_total = linalg::Sum(input.objective_source);
    for (size_t k = 0; k < num_refs; ++k) {
      uniform[k] = total > 0.0 ? objective_total / total : 0.0;
    }
    coeffs = uniform;
  }
  result.timing.Add("weight_learning", watch.ElapsedSeconds());
  watch.Restart();

  result.target_estimates = predict.MatVec(*coeffs);
  if (options_.clamp_non_negative) {
    for (double& v : result.target_estimates) v = std::max(0.0, v);
  }
  result.weights = std::move(coeffs).value();
  result.estimated_dm = sparse::CsrMatrix(ns, nt);
  result.timing.Add("prediction", watch.ElapsedSeconds());
  return result;
}

}  // namespace geoalign::core
