#include "core/dasymetric.h"

#include "sparse/sparse_ops.h"

namespace geoalign::core {

Dasymetric::Dasymetric(size_t reference_index, std::string display_name)
    : reference_index_(reference_index),
      display_name_(std::move(display_name)) {}

Dasymetric::Dasymetric(std::string reference_name)
    : by_name_(true),
      reference_name_(std::move(reference_name)),
      display_name_("dasymetric(" + reference_name_ + ")") {}

std::string Dasymetric::name() const { return display_name_; }

Result<size_t> Dasymetric::ResolveReference(
    const CrosswalkInput& input) const {
  if (by_name_) return input.FindReference(reference_name_);
  if (reference_index_ >= input.references.size()) {
    return Status::OutOfRange("Dasymetric: reference index out of range");
  }
  return reference_index_;
}

Result<CrosswalkResult> Dasymetric::Crosswalk(
    const CrosswalkInput& input) const {
  GEOALIGN_ASSIGN_OR_RETURN(size_t ref_idx, ResolveReference(input));
  const ReferenceAttribute& ref = input.references[ref_idx];
  if (ref.source_aggregates.size() != input.objective_source.size()) {
    return Status::InvalidArgument("Dasymetric: size mismatch");
  }
  CrosswalkResult result;
  Stopwatch watch;

  sparse::CsrMatrix estimated = ref.disaggregation;
  std::vector<size_t> zero_rows;
  sparse::DivideRowsOrZero(estimated, ref.source_aggregates,
                           /*zero_tol=*/0.0, &zero_rows);
  estimated.ScaleRows(input.objective_source);
  result.timing.Add("disaggregation", watch.ElapsedSeconds());
  watch.Restart();

  result.target_estimates = estimated.ColSums();
  result.timing.Add("reaggregation", watch.ElapsedSeconds());

  result.estimated_dm = std::move(estimated);
  result.zero_rows = std::move(zero_rows);
  return result;
}

}  // namespace geoalign::core
