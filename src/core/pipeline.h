#ifndef GEOALIGN_CORE_PIPELINE_H_
#define GEOALIGN_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/geoalign.h"

namespace geoalign::core {

/// End-to-end aggregate data integration (the system sketched in the
/// paper's conclusion): joins an aggregate table reported on source
/// units with a table reported on target units by realigning the
/// former — the Fig. 1 steam-consumption ⋈ per-capita-income join.
///
/// Unit identifiers are strings (zip codes, county FIPS, ...); the
/// pipeline handles name→index resolution, runs the interpolator, and
/// emits a joined table keyed by target unit.
class CrosswalkPipeline {
 public:
  /// `references` carry the crosswalk knowledge (aggregates + DMs in
  /// the index order of the unit name lists). `method` defaults to
  /// GeoAlign with default options when null. Duplicate names within
  /// either unit list are rejected (they would silently shadow earlier
  /// indices during column resolution).
  ///
  /// Create is the COMPILE step of the serving path: it hoists the
  /// name→index maps and, when `method` is GeoAlign, compiles the
  /// shared CrosswalkPlan once; Realign/RealignMany then only execute.
  /// (If plan compilation fails — e.g. a reference GeoAlign cannot
  /// normalize — Create still succeeds and the error surfaces at
  /// Realign time, matching the legacy behaviour.)
  static Result<CrosswalkPipeline> Create(
      std::vector<std::string> source_units,
      std::vector<std::string> target_units,
      std::vector<ReferenceAttribute> references,
      std::shared_ptr<const Interpolator> method = nullptr);

  /// Zero-copy Create: reference aggregate columns and CSR arrays stay
  /// borrowed caller memory through plan compilation (attach keepalives
  /// to the views to tie lifetime to the pipeline). Requires a GeoAlign
  /// method (default when null) — there is no per-call fallback for
  /// views, so compile errors surface here rather than at Realign time.
  static Result<CrosswalkPipeline> Create(
      std::vector<std::string> source_units,
      std::vector<std::string> target_units,
      std::vector<ReferenceAttributeView> references,
      std::shared_ptr<const Interpolator> method = nullptr);

  /// Realigns a (unit name, value) column from source to target units.
  /// Unknown unit names error; source units absent from the column get
  /// value 0. Returns estimates in target-unit index order.
  Result<CrosswalkResult> Realign(
      const std::vector<std::pair<std::string, double>>& objective) const;

  /// A (unit name, value) objective column, as accepted by Realign.
  using Column = std::vector<std::pair<std::string, double>>;

  /// Realigns many independent objective columns concurrently — the
  /// portal shape of the paper's §6: every column of a table realigned
  /// at once. `threads`: 0 = one per hardware thread, 1 = sequential.
  /// Results are index-aligned with `objectives` and bit-identical to
  /// looping over Realign for every thread count; on error the
  /// lowest-index failing column's status is returned.
  ///
  /// `output` selects the result shape: ExecuteOutput::kAggregatesOnly
  /// serves each column through the fused zero-materialization lane
  /// (results carry an empty estimated_dm; target_estimates, weights,
  /// and zero_rows are bit-identical to kFullDm). The compiled plan's
  /// workspace spec sizes one reusable workspace per worker slot up
  /// front, so steady-state columns execute without hot-path buffer
  /// growth.
  Result<std::vector<CrosswalkResult>> RealignMany(
      const std::vector<Column>& objectives, size_t threads = 0,
      ExecuteOutput output = ExecuteOutput::kFullDm) const;

  /// One row of the joined output.
  struct JoinedRow {
    std::string target_unit;
    double objective_estimate;
    double target_value;
  };

  /// Realigns `objective` and joins with `target_attribute` (a column
  /// keyed by target unit name); target units absent from the column
  /// get value 0.
  Result<std::vector<JoinedRow>> Join(
      const std::vector<std::pair<std::string, double>>& objective,
      const std::vector<std::pair<std::string, double>>& target_attribute)
      const;

  const std::vector<std::string>& source_units() const {
    return source_units_;
  }
  const std::vector<std::string>& target_units() const {
    return target_units_;
  }
  const Interpolator& method() const { return *method_; }

  /// The compiled plan shared by Realign/RealignMany, or null when the
  /// method is not GeoAlign (or its references failed to compile).
  const CrosswalkPlan* plan() const { return plan_.get(); }

 private:
  CrosswalkPipeline(std::vector<std::string> source_units,
                    std::vector<std::string> target_units,
                    std::vector<ReferenceAttribute> references,
                    std::shared_ptr<const Interpolator> method);

  Result<linalg::Vector> ResolveColumn(
      const std::vector<std::pair<std::string, double>>& column,
      const std::unordered_map<std::string, size_t>& index) const;

  std::vector<std::string> source_units_;
  std::vector<std::string> target_units_;
  /// Hoisted name→index maps; built (and checked for duplicates) once
  /// in Create instead of once per Realign call.
  std::unordered_map<std::string, size_t> source_index_;
  std::unordered_map<std::string, size_t> target_index_;
  /// Reference attributes, kept only for interpolators that take the
  /// per-call CrosswalkInput path; empty once `plan_` is compiled.
  std::vector<ReferenceAttribute> references_;
  std::shared_ptr<const Interpolator> method_;
  std::shared_ptr<const CrosswalkPlan> plan_;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_PIPELINE_H_
