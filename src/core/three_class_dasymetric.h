#ifndef GEOALIGN_CORE_THREE_CLASS_DASYMETRIC_H_
#define GEOALIGN_CORE_THREE_CLASS_DASYMETRIC_H_

#include <string>

#include "core/interpolator.h"

namespace geoalign::core {

/// Options for the class-based dasymetric method.
struct ThreeClassOptions {
  /// Number of density classes (Langford's evaluation used 3:
  /// urban / suburban / rural).
  size_t num_classes = 3;
  /// Reference attribute (by index) whose intersection-level density
  /// classifies the cells.
  size_t reference_index = 0;
  /// When non-empty, the classifying reference is resolved by NAME per
  /// call instead of by index (robust to leave-one-out re-indexing).
  std::string reference_name;
};

/// The class-based ("3-class") dasymetric method [Langford 2006 — the
/// paper's citation 32]: intersection cells are binned into density
/// classes using a reference attribute, a per-class density for the
/// OBJECTIVE is estimated by non-negative least squares on the source
/// units (a^s_o[i] ≈ Σ_c d_c · area_{i,c}), and each source unit's
/// mass is spread over its intersections proportionally to
/// d_class(cell) · area(cell), rescaled per row so the method stays
/// volume preserving.
///
/// Sits between areal weighting (1 class) and the fully reference-
/// proportional dasymetric method; included as an additional baseline
/// from the paper's related-work lineage.
class ThreeClassDasymetric : public Interpolator {
 public:
  /// `measure_dm` is the intersection-measure matrix (areas), as used
  /// by ArealWeighting.
  ThreeClassDasymetric(sparse::CsrMatrix measure_dm,
                       ThreeClassOptions options = {});

  std::string name() const override { return "3-class dasymetric"; }

  Result<CrosswalkResult> Crosswalk(
      const CrosswalkInput& input) const override;

 private:
  sparse::CsrMatrix measure_dm_;
  ThreeClassOptions options_;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_THREE_CLASS_DASYMETRIC_H_
