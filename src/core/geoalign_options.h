#ifndef GEOALIGN_CORE_GEOALIGN_OPTIONS_H_
#define GEOALIGN_CORE_GEOALIGN_OPTIONS_H_

#include <cstddef>

#include "linalg/simplex_ls.h"

namespace geoalign::sparse {
class CsrMatrix;
}  // namespace geoalign::sparse

namespace geoalign::core {

/// How reference scales are handled inside Eq. 14.
enum class ScaleMode {
  /// DM_rk and a^s_rk are both divided by max_i a^s_rk[i] before the
  /// weighted combination — the scale-free reading of the paper's
  /// "adapt it to the scale of reference attributes" remark. Volume
  /// preservation holds exactly. Default.
  kNormalized,
  /// Weights are applied to the raw matrices/vectors (ablation only;
  /// mixes reference magnitudes).
  kRaw,
};

/// Which solver learns the weights β (Eq. 15). Alternatives exist for
/// the ablation study; the paper's formulation is kSimplex.
enum class WeightSolver {
  /// min ||Aβ - b||², Σβ = 1, β >= 0 (paper Eq. 15).
  kSimplex,
  /// Lawson–Hanson NNLS, then rescale to Σβ = 1.
  kNnlsNormalized,
  /// Unconstrained least squares, negatives clamped to 0, rescaled.
  kClampedLs,
  /// β uniform over all references (no learning).
  kUniform,
};

/// Where Eq. 14's per-row denominator Σ_k β_k a'^s_rk[i] comes from.
enum class DenominatorMode {
  /// Row sums of the weighted reference DMs. Identical to the
  /// aggregate vectors when the input is consistent, but keeps volume
  /// preservation (Eq. 16) exact even when the reported aggregates are
  /// noisy — the regime of the paper's §4.4.1 robustness study, whose
  /// near-1 deviation ratios are only reproducible this way. Default.
  kFromDmRowSums,
  /// The literal Eq. 14 denominator: the references' reported source
  /// aggregate vectors. Under inconsistent (noisy) aggregates each
  /// row's mass is scaled by the aggregate error. Ablation only.
  kFromAggregates,
};

/// Behaviour for source rows whose weighted reference mass is zero
/// (Eq. 14's "otherwise" branch).
enum class ZeroRowFallback {
  /// Emit an all-zero row (the paper's choice). The objective mass of
  /// that source unit is lost — volume preservation holds only on
  /// rows with reference support.
  kZero,
  /// Distribute the row by the supplied fallback DM (typically area),
  /// keeping the method volume preserving everywhere.
  kFallbackDm,
};

/// What a plan execute must produce. An execute-time parameter of
/// `CrosswalkPlan::Execute`/`ExecuteWith` (not a compile-time option,
/// so it never affects plan-cache keys): the same compiled plan serves
/// both shapes.
enum class ExecuteOutput {
  /// Materialize the estimated DM̂_o (Eq. 14) and re-aggregate it —
  /// `CrosswalkResult::estimated_dm` is populated. Default; the only
  /// choice for callers that inspect the DM.
  kFullDm,
  /// Fused Eq. 14+17: scatter straight into the target accumulator
  /// without ever allocating DM̂_o. `estimated_dm` comes back empty
  /// (0×0); `target_estimates`, `weights`, `zero_rows`, timing, and
  /// every error path are bit-/behavior-identical to kFullDm.
  kAggregatesOnly,
};

/// Options controlling the GeoAlign interpolator.
struct GeoAlignOptions {
  ScaleMode scale_mode = ScaleMode::kNormalized;
  WeightSolver solver = WeightSolver::kSimplex;
  DenominatorMode denominator = DenominatorMode::kFromDmRowSums;
  ZeroRowFallback zero_row_fallback = ZeroRowFallback::kZero;
  /// Row denominators with |d| <= zero_tolerance take the fallback.
  double zero_tolerance = 0.0;
  /// Required when zero_row_fallback == kFallbackDm: a consistent DM
  /// (e.g. the measure/area DM) used for unsupported rows. Not owned;
  /// must outlive the interpolator. (CrosswalkPlan::Compile snapshots
  /// the pointee, so a compiled plan does NOT require the original to
  /// stay alive.)
  const sparse::CsrMatrix* fallback_dm = nullptr;
  /// Worker threads for the disaggregation (Eq. 14) and re-aggregation
  /// (Eq. 17) phases: 0 = one per hardware thread, 1 = run inline on
  /// the calling thread (legacy single-threaded execution). Outputs
  /// are bit-identical for every value — the parallel kernels use
  /// fixed chunk boundaries and ordered combines (the deterministic-
  /// reduction contract, docs/parallelism.md).
  size_t threads = 0;
  /// Options forwarded to the simplex solver.
  linalg::SimplexLsOptions solver_options;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_GEOALIGN_OPTIONS_H_
