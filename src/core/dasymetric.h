#ifndef GEOALIGN_CORE_DASYMETRIC_H_
#define GEOALIGN_CORE_DASYMETRIC_H_

#include "core/interpolator.h"

namespace geoalign::core {

/// The single-reference dasymetric method [Wright 1936; Langford 2006]
/// — the state-of-the-art baseline the paper compares against:
///
///   DM̂_o[i,j] = DM_r[i,j] / a^s_r[i] · a^s_o[i]
///
/// i.e. the objective is split across a source unit's intersections in
/// the same proportions as the chosen reference attribute. Source rows
/// where the reference is zero produce zero rows (reported in
/// `zero_rows`). Volume preserving wherever the reference has support.
class Dasymetric : public Interpolator {
 public:
  /// Uses the reference at `reference_index` in the input.
  explicit Dasymetric(size_t reference_index,
                      std::string display_name = "dasymetric");

  /// Uses the reference with the given name (resolved per call).
  explicit Dasymetric(std::string reference_name);

  std::string name() const override;

  Result<CrosswalkResult> Crosswalk(
      const CrosswalkInput& input) const override;

 private:
  Result<size_t> ResolveReference(const CrosswalkInput& input) const;

  size_t reference_index_ = 0;
  bool by_name_ = false;
  std::string reference_name_;
  std::string display_name_;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_DASYMETRIC_H_
