#ifndef GEOALIGN_CORE_AREAL_WEIGHTING_H_
#define GEOALIGN_CORE_AREAL_WEIGHTING_H_

#include "core/interpolator.h"

namespace geoalign::core {

/// The areal weighting method [Markoff & Shapiro 1973; Goodchild &
/// Lam 1980]: the homogeneity-assumption baseline,
///
///   DM̂_o[i,j] = |u^s_i ∩ u^t_j| / |u^s_i| · a^s_o[i].
///
/// The measure (area) disaggregation matrix is supplied at
/// construction (obtained from a partition overlay; see
/// `OverlayResult::MeasureDm`), so the interpolator itself stays
/// dimension-independent like the others.
class ArealWeighting : public Interpolator {
 public:
  /// `measure_dm` is the |U^s| x |U^t| matrix of intersection
  /// measures; row sums are the source unit measures.
  explicit ArealWeighting(sparse::CsrMatrix measure_dm);

  std::string name() const override { return "areal_weighting"; }

  Result<CrosswalkResult> Crosswalk(
      const CrosswalkInput& input) const override;

  const sparse::CsrMatrix& measure_dm() const { return measure_dm_; }

 private:
  sparse::CsrMatrix measure_dm_;
  linalg::Vector source_measures_;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_AREAL_WEIGHTING_H_
