#include "core/crosswalk_input.h"

#include <cmath>

#include "common/string_util.h"

namespace geoalign::core {

namespace {

// One reference as seen by validation — both the owning and the view
// input shapes lower to this, so their checks (and messages) cannot
// drift apart.
struct RefForValidate {
  const std::string* name;
  common::ColumnView source_aggregates;
  const sparse::CsrMatrix* disaggregation;
};

Status ValidateImpl(common::ColumnView objective_source,
                    const std::vector<RefForValidate>& references,
                    double consistency_tol) {
  if (references.empty()) {
    return Status::InvalidArgument("CrosswalkInput: no reference attributes");
  }
  size_t num_source = objective_source.size();
  if (num_source == 0) {
    return Status::InvalidArgument("CrosswalkInput: empty objective vector");
  }
  for (double v : objective_source) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument(
          "CrosswalkInput: objective aggregates must be finite and >= 0");
    }
  }
  size_t num_target = references[0].disaggregation->cols();
  if (num_target == 0) {
    return Status::InvalidArgument("CrosswalkInput: zero target units");
  }
  for (const RefForValidate& ref : references) {
    if (ref.source_aggregates.size() != num_source) {
      return Status::InvalidArgument(StrFormat(
          "reference '%s': source vector has %zu entries, expected %zu",
          ref.name->c_str(), ref.source_aggregates.size(), num_source));
    }
    if (ref.disaggregation->rows() != num_source ||
        ref.disaggregation->cols() != num_target) {
      return Status::InvalidArgument(StrFormat(
          "reference '%s': DM is %zux%zu, expected %zux%zu",
          ref.name->c_str(), ref.disaggregation->rows(),
          ref.disaggregation->cols(), num_source, num_target));
    }
    for (double v : ref.source_aggregates) {
      if (v < 0.0 || !std::isfinite(v)) {
        return Status::InvalidArgument(StrFormat(
            "reference '%s': negative or non-finite source aggregate",
            ref.name->c_str()));
      }
    }
    for (double v : ref.disaggregation->values()) {
      if (v < 0.0 || !std::isfinite(v)) {
        return Status::InvalidArgument(StrFormat(
            "reference '%s': negative or non-finite DM entry",
            ref.name->c_str()));
      }
    }
    linalg::Vector sums = ref.disaggregation->RowSums();
    for (size_t i = 0; i < num_source; ++i) {
      double lim =
          consistency_tol * std::max(1.0, ref.source_aggregates[i]);
      if (std::fabs(sums[i] - ref.source_aggregates[i]) > lim) {
        return Status::FailedPrecondition(StrFormat(
            "reference '%s': DM row %zu sums to %.9g, source aggregate "
            "is %.9g",
            ref.name->c_str(), i, sums[i], ref.source_aggregates[i]));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status CrosswalkInput::Validate(double consistency_tol) const {
  std::vector<RefForValidate> refs;
  refs.reserve(references.size());
  for (const ReferenceAttribute& ref : references) {
    refs.push_back({&ref.name, common::ColumnView(ref.source_aggregates),
                    &ref.disaggregation});
  }
  return ValidateImpl(common::ColumnView(objective_source), refs,
                      consistency_tol);
}

Status CrosswalkInputView::Validate(double consistency_tol) const {
  std::vector<RefForValidate> refs;
  refs.reserve(references.size());
  for (const ReferenceAttributeView& ref : references) {
    refs.push_back({&ref.name, ref.source_aggregates, &ref.disaggregation});
  }
  return ValidateImpl(objective_source, refs, consistency_tol);
}

Result<size_t> CrosswalkInput::FindReference(const std::string& name) const {
  for (size_t k = 0; k < references.size(); ++k) {
    if (references[k].name == name) return k;
  }
  return Status::NotFound("no reference named '" + name + "'");
}

Result<CrosswalkInput> CrosswalkInput::WithReferenceSubset(
    const std::vector<size_t>& keep) const {
  if (keep.empty()) {
    return Status::InvalidArgument("WithReferenceSubset: empty subset");
  }
  CrosswalkInput out;
  out.objective_source = objective_source;
  for (size_t k : keep) {
    if (k >= references.size()) {
      return Status::OutOfRange("WithReferenceSubset: index out of range");
    }
    out.references.push_back(references[k]);
  }
  return out;
}

}  // namespace geoalign::core
