#include "core/batch.h"

#include <memory>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace geoalign::core {

namespace {

// Same registry keys as CrosswalkPipeline: "realign.*" aggregates every
// realigned column across both serving surfaces.
obs::Histogram& RealignLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("realign.latency_us");
  return h;
}
obs::Histogram& ColumnsPerBatch() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("realign.columns_per_batch");
  return h;
}
obs::Counter& ColumnsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("realign.columns_total");
  return c;
}

}  // namespace

BatchCrosswalk::BatchCrosswalk(CrosswalkPlan plan)
    : plan_(std::move(plan)) {}

Result<BatchCrosswalk> BatchCrosswalk::Create(
    std::vector<ReferenceAttribute> references, GeoAlignOptions options) {
  if (references.empty()) {
    return Status::InvalidArgument("BatchCrosswalk: no references");
  }
  size_t num_source = references[0].source_aggregates.size();
  size_t num_target = references[0].disaggregation.cols();
  for (const ReferenceAttribute& ref : references) {
    if (ref.source_aggregates.size() != num_source ||
        ref.disaggregation.rows() != num_source ||
        ref.disaggregation.cols() != num_target) {
      return Status::InvalidArgument("BatchCrosswalk: reference '" +
                                     ref.name + "' shape mismatch");
    }
  }
  GEOALIGN_ASSIGN_OR_RETURN(
      CrosswalkPlan plan,
      CrosswalkPlan::Compile(references, options));
  return BatchCrosswalk(std::move(plan));
}

Result<BatchCrosswalk::BatchResult> BatchCrosswalk::RunOne(
    const Objective& objective, common::ThreadPool* pool,
    ExecuteWorkspace* workspace) const {
  if (objective.source.size() != plan_.num_source_units()) {
    return Status::InvalidArgument("BatchCrosswalk: objective '" +
                                   objective.name + "' wrong length");
  }
  obs::Stopwatch column_watch;
  ColumnsTotal().Add(1);
  // BatchResult never carries the DM, so take the fused lane: Eq. 14
  // and Eq. 17 in one pass over the shared structure, no DM̂_o
  // allocation (bit-identical to the materializing path).
  GEOALIGN_ASSIGN_OR_RETURN(
      CrosswalkResult full,
      plan_.ExecuteWith(objective.source, pool,
                        ExecuteOutput::kAggregatesOnly, workspace));
  RealignLatencyUs().Record(column_watch.ElapsedMicros());
  BatchResult result;
  result.name = objective.name;
  result.target_estimates = std::move(full.target_estimates);
  result.weights = std::move(full.weights);
  result.zero_rows = std::move(full.zero_rows);
  return result;
}

Result<std::vector<BatchCrosswalk::BatchResult>> BatchCrosswalk::Run(
    const std::vector<Objective>& objectives) const {
  GEOALIGN_TRACE_SPAN("realign.batch");
  ColumnsPerBatch().Record(static_cast<double>(objectives.size()));
  std::unique_ptr<common::ThreadPool> pool = common::MakePoolOrNull(
      common::ResolveThreadCount(plan_.options().threads));
  std::vector<BatchResult> out;
  out.reserve(objectives.size());
  if (pool == nullptr || objectives.size() <= 1) {
    // Single objective (or inline mode): spend any pool inside the
    // one crosswalk's sparse kernels instead. One workspace, sized
    // once from the plan-compiled spec, serves every column.
    ExecuteWorkspace workspace;
    workspace.Prepare(plan_.workspace_spec(),
                      pool != nullptr && pool->size() > 1 ? pool->size() + 1
                                                          : 1);
    for (const Objective& objective : objectives) {
      GEOALIGN_ASSIGN_OR_RETURN(BatchResult result,
                                RunOne(objective, pool.get(), &workspace));
      out.push_back(std::move(result));
    }
    return out;
  }
  // One task per objective, inner kernels inline: the thread budget
  // goes to the embarrassingly parallel outer loop. Inner chunk
  // boundaries are fixed either way, so the outputs carry exactly the
  // same bits as the sequential path; on error, the lowest-index
  // objective's status is returned, matching sequential behavior.
  // One workspace per worker slot, prepared up front so steady-state
  // columns never grow a buffer.
  std::vector<ExecuteWorkspace> bank(pool->size() + 1);
  for (ExecuteWorkspace& ws : bank) {
    ws.Prepare(plan_.workspace_spec(), /*slots=*/1);
  }
  std::vector<std::optional<Result<BatchResult>>> results(objectives.size());
  common::ParallelForChunks(pool.get(), objectives.size(), [&](size_t i) {
    size_t wi = common::ThreadPool::CurrentWorkerIndex();
    ExecuteWorkspace& ws =
        bank[wi == common::ThreadPool::kNoWorkerIndex ? 0 : wi + 1];
    results[i].emplace(RunOne(objectives[i], nullptr, &ws));
  });
  for (std::optional<Result<BatchResult>>& r : results) {
    if (!r->ok()) return r->status();
    out.push_back(std::move(*r).value());
  }
  return out;
}

}  // namespace geoalign::core
