#include "core/batch.h"

#include <cmath>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "sparse/sparse_ops.h"
#include "common/float_eq.h"

namespace geoalign::core {

BatchCrosswalk::BatchCrosswalk(std::vector<ReferenceAttribute> references,
                               GeoAlignOptions options)
    : references_(std::move(references)), options_(std::move(options)) {}

Result<BatchCrosswalk> BatchCrosswalk::Create(
    std::vector<ReferenceAttribute> references, GeoAlignOptions options) {
  if (references.empty()) {
    return Status::InvalidArgument("BatchCrosswalk: no references");
  }
  if (options.solver != WeightSolver::kSimplex) {
    return Status::Unimplemented(
        "BatchCrosswalk: only the simplex solver is batched");
  }
  BatchCrosswalk batch(std::move(references), std::move(options));
  batch.num_source_ = batch.references_[0].source_aggregates.size();
  batch.num_target_ = batch.references_[0].disaggregation.cols();

  std::vector<linalg::Vector> columns;
  batch.normalizers_.reserve(batch.references_.size());
  for (const ReferenceAttribute& ref : batch.references_) {
    if (ref.source_aggregates.size() != batch.num_source_ ||
        ref.disaggregation.rows() != batch.num_source_ ||
        ref.disaggregation.cols() != batch.num_target_) {
      return Status::InvalidArgument("BatchCrosswalk: reference '" +
                                     ref.name + "' shape mismatch");
    }
    GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector norm,
                              linalg::NormalizeByMax(ref.source_aggregates));
    columns.push_back(std::move(norm));
    batch.normalizers_.push_back(linalg::Max(ref.source_aggregates));
  }
  batch.design_ = linalg::Matrix::FromColumns(columns);
  batch.gram_ = batch.design_.Gram();
  return batch;
}

Result<BatchCrosswalk::BatchResult> BatchCrosswalk::RunOne(
    const Objective& objective, common::ThreadPool* pool) const {
  size_t num_refs = references_.size();
  if (objective.source.size() != num_source_) {
    return Status::InvalidArgument("BatchCrosswalk: objective '" +
                                   objective.name + "' wrong length");
  }
  // Weight learning with the shared Gram matrix.
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector b,
                            linalg::NormalizeByMax(objective.source));
  linalg::Vector atb = design_.MatTVec(b);
  GEOALIGN_ASSIGN_OR_RETURN(
      linalg::SimplexLsSolution sol,
      linalg::SolveSimplexLsFromNormalEquations(
          gram_, atb, linalg::Dot(b, b), options_.solver_options));

  // Disaggregation + re-aggregation (same math as GeoAlign).
  linalg::Vector effective(num_refs, 0.0);
  for (size_t k = 0; k < num_refs; ++k) {
    double norm = options_.scale_mode == ScaleMode::kNormalized
                      ? normalizers_[k]
                      : 1.0;
    effective[k] = sol.beta[k] / norm;
  }
  std::vector<const sparse::CsrMatrix*> dms;
  dms.reserve(num_refs);
  for (const ReferenceAttribute& ref : references_) {
    dms.push_back(&ref.disaggregation);
  }
  GEOALIGN_ASSIGN_OR_RETURN(sparse::CsrMatrix numerator,
                            sparse::WeightedSum(dms, effective, pool));
  linalg::Vector denom;
  if (options_.denominator == DenominatorMode::kFromDmRowSums) {
    denom = numerator.RowSums();
  } else {
    denom.assign(num_source_, 0.0);
    for (size_t k = 0; k < num_refs; ++k) {
      if (ExactlyZero(effective[k])) continue;
      linalg::Axpy(effective[k], references_[k].source_aggregates, denom);
    }
  }
  BatchResult result;
  result.name = objective.name;
  sparse::DivideRowsOrZero(numerator, denom, options_.zero_tolerance,
                           &result.zero_rows, pool);
  numerator.ScaleRows(objective.source);
  result.target_estimates = sparse::ColSumsDeterministic(numerator, pool);
  result.weights = std::move(sol.beta);
  return result;
}

Result<std::vector<BatchCrosswalk::BatchResult>> BatchCrosswalk::Run(
    const std::vector<Objective>& objectives) const {
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(options_.threads));
  std::vector<BatchResult> out;
  out.reserve(objectives.size());
  if (pool == nullptr || objectives.size() <= 1) {
    // Single objective (or inline mode): spend any pool inside the
    // one crosswalk's sparse kernels instead.
    for (const Objective& objective : objectives) {
      GEOALIGN_ASSIGN_OR_RETURN(BatchResult result,
                                RunOne(objective, pool.get()));
      out.push_back(std::move(result));
    }
    return out;
  }
  // One task per objective, inner kernels inline: the thread budget
  // goes to the embarrassingly parallel outer loop. Inner chunk
  // boundaries are fixed either way, so the outputs carry exactly the
  // same bits as the sequential path; on error, the lowest-index
  // objective's status is returned, matching sequential behavior.
  std::vector<std::optional<Result<BatchResult>>> results(objectives.size());
  common::ParallelForChunks(pool.get(), objectives.size(), [&](size_t i) {
    results[i].emplace(RunOne(objectives[i], nullptr));
  });
  for (std::optional<Result<BatchResult>>& r : results) {
    if (!r->ok()) return r->status();
    out.push_back(std::move(*r).value());
  }
  return out;
}

}  // namespace geoalign::core
