#include "core/batch.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sparse/simd/panel_kernels.h"

namespace geoalign::core {

namespace {

// Same registry keys as CrosswalkPipeline: "realign.*" aggregates every
// realigned column across both serving surfaces.
obs::Histogram& RealignLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("realign.latency_us");
  return h;
}
obs::Histogram& ColumnsPerBatch() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("realign.columns_per_batch");
  return h;
}
obs::Counter& ColumnsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("realign.columns_total");
  return c;
}

// Aligned serving path: objectives grouped into consecutive panels of
// plan.panel_width() — the width comes from the plan at execute time
// (active ISA, GEOALIGN_PANEL_WIDTH), never from the caller, so
// nothing ISA-dependent leaks into cached plan state. Each panel is
// one shared-structure traversal (CrosswalkPlan::ExecutePanelWith);
// outer parallelism moves from columns to panels. Bit-identity: every
// column carries exactly its per-column ExecuteWith bits, so grouping
// and thread count never change a result.
Result<std::vector<BatchCrosswalk::BatchResult>> RunPanels(
    const CrosswalkPlan& plan,
    const std::vector<BatchCrosswalk::Objective>& objectives,
    common::ThreadPool* pool, const obs::RequestToken& request) {
  const size_t n = objectives.size();
  std::vector<std::optional<Result<CrosswalkResult>>> results(n);
  std::vector<size_t> valid;
  valid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (objectives[i].source.size() != plan.num_source_units()) {
      results[i].emplace(Status::InvalidArgument(
          "BatchCrosswalk: objective '" + objectives[i].name +
          "' wrong length"));
    } else {
      valid.push_back(i);
    }
  }
  const size_t width = plan.panel_width();
  const size_t num_panels = (valid.size() + width - 1) / width;
  const bool outer_inline =
      pool == nullptr || pool->size() <= 1 || num_panels <= 1;
  std::vector<ExecuteWorkspace> bank(outer_inline ? 1 : pool->size() + 1);
  for (ExecuteWorkspace& ws : bank) {
    ws.Prepare(plan.workspace_spec(), /*slots=*/1);
    ws.PreparePanel(plan.workspace_spec(),
                    std::min(width, std::max<size_t>(valid.size(), 1)));
  }
  common::ParallelForChunks(pool, num_panels, [&](size_t p) {
    obs::RequestScope request_scope(request);
    obs::Stopwatch panel_watch;
    const size_t begin = p * width;
    const size_t count = std::min(width, valid.size() - begin);
    std::array<common::ColumnView, sparse::simd::kMaxPanelWidth> objs;
    std::array<std::optional<Result<CrosswalkResult>>*,
               sparse::simd::kMaxPanelWidth>
        slots;
    for (size_t k = 0; k < count; ++k) {
      objs[k] = common::ColumnView(objectives[valid[begin + k]].source);
      slots[k] = &results[valid[begin + k]];
    }
    size_t wi = common::ThreadPool::CurrentWorkerIndex();
    ExecuteWorkspace& ws =
        bank[outer_inline || wi == common::ThreadPool::kNoWorkerIndex
                 ? 0
                 : wi + 1];
    plan.ExecutePanelWith(objs.data(), slots.data(), count, &ws);
    ColumnsTotal().Add(count);
    // The panel lane serves `count` columns in one traversal; the
    // latency histogram records per-panel time (docs/observability.md).
    RealignLatencyUs().Record(panel_watch.ElapsedMicros());
  });
  std::vector<BatchCrosswalk::BatchResult> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!results[i]->ok()) return results[i]->status();
    CrosswalkResult full = std::move(*results[i]).value();
    BatchCrosswalk::BatchResult result;
    result.name = objectives[i].name;
    result.target_estimates = std::move(full.target_estimates);
    result.weights = std::move(full.weights);
    result.zero_rows = std::move(full.zero_rows);
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace

BatchCrosswalk::BatchCrosswalk(CrosswalkPlan plan)
    : plan_(std::move(plan)) {}

Result<BatchCrosswalk> BatchCrosswalk::Create(
    std::vector<ReferenceAttribute> references, GeoAlignOptions options) {
  if (references.empty()) {
    return Status::InvalidArgument("BatchCrosswalk: no references");
  }
  size_t num_source = references[0].source_aggregates.size();
  size_t num_target = references[0].disaggregation.cols();
  for (const ReferenceAttribute& ref : references) {
    if (ref.source_aggregates.size() != num_source ||
        ref.disaggregation.rows() != num_source ||
        ref.disaggregation.cols() != num_target) {
      return Status::InvalidArgument("BatchCrosswalk: reference '" +
                                     ref.name + "' shape mismatch");
    }
  }
  GEOALIGN_ASSIGN_OR_RETURN(
      CrosswalkPlan plan,
      CrosswalkPlan::Compile(references, options));
  return BatchCrosswalk(std::move(plan));
}

Result<BatchCrosswalk> BatchCrosswalk::Create(
    std::vector<ReferenceAttributeView> references, GeoAlignOptions options) {
  if (references.empty()) {
    return Status::InvalidArgument("BatchCrosswalk: no references");
  }
  size_t num_source = references[0].source_aggregates.size();
  size_t num_target = references[0].disaggregation.cols();
  for (const ReferenceAttributeView& ref : references) {
    if (ref.source_aggregates.size() != num_source ||
        ref.disaggregation.rows() != num_source ||
        ref.disaggregation.cols() != num_target) {
      return Status::InvalidArgument("BatchCrosswalk: reference '" +
                                     ref.name + "' shape mismatch");
    }
  }
  GEOALIGN_ASSIGN_OR_RETURN(
      CrosswalkPlan plan,
      CrosswalkPlan::Compile(std::move(references), options));
  return BatchCrosswalk(std::move(plan));
}

Result<BatchCrosswalk::BatchResult> BatchCrosswalk::RunOne(
    const Objective& objective, common::ThreadPool* pool,
    ExecuteWorkspace* workspace) const {
  if (objective.source.size() != plan_.num_source_units()) {
    return Status::InvalidArgument("BatchCrosswalk: objective '" +
                                   objective.name + "' wrong length");
  }
  // No-op when called from Run's fan-out (the worker already carries
  // the batch's request); gives direct callers an id of their own.
  obs::EnsureRequestScope ensure_request;
  obs::Stopwatch column_watch;
  ColumnsTotal().Add(1);
  // BatchResult never carries the DM, so take the fused lane: Eq. 14
  // and Eq. 17 in one pass over the shared structure, no DM̂_o
  // allocation (bit-identical to the materializing path).
  GEOALIGN_ASSIGN_OR_RETURN(
      CrosswalkResult full,
      plan_.ExecuteWith(objective.source, pool,
                        ExecuteOutput::kAggregatesOnly, workspace));
  RealignLatencyUs().Record(column_watch.ElapsedMicros());
  BatchResult result;
  result.name = objective.name;
  result.target_estimates = std::move(full.target_estimates);
  result.weights = std::move(full.weights);
  result.zero_rows = std::move(full.zero_rows);
  return result;
}

Result<std::vector<BatchCrosswalk::BatchResult>> BatchCrosswalk::Run(
    const std::vector<Objective>& objectives) const {
  obs::EnsureRequestScope ensure_request;
  // Worker lambdas re-establish this token so fan-out spans and audit
  // records stay attributed to the request (see CrosswalkPipeline).
  const obs::RequestToken request = obs::CurrentRequest();
  GEOALIGN_TRACE_SPAN("realign.batch");
  ColumnsPerBatch().Record(static_cast<double>(objectives.size()));
  std::unique_ptr<common::ThreadPool> pool = common::MakePoolOrNull(
      common::ResolveThreadCount(plan_.options().threads));
  if (plan_.references().aligned()) {
    return RunPanels(plan_, objectives, pool.get(), request);
  }
  std::vector<BatchResult> out;
  out.reserve(objectives.size());
  if (pool == nullptr || objectives.size() <= 1) {
    // Single objective (or inline mode): spend any pool inside the
    // one crosswalk's sparse kernels instead. One workspace, sized
    // once from the plan-compiled spec, serves every column.
    ExecuteWorkspace workspace;
    workspace.Prepare(plan_.workspace_spec(),
                      pool != nullptr && pool->size() > 1 ? pool->size() + 1
                                                          : 1);
    for (const Objective& objective : objectives) {
      GEOALIGN_ASSIGN_OR_RETURN(BatchResult result,
                                RunOne(objective, pool.get(), &workspace));
      out.push_back(std::move(result));
    }
    return out;
  }
  // One task per objective, inner kernels inline: the thread budget
  // goes to the embarrassingly parallel outer loop. Inner chunk
  // boundaries are fixed either way, so the outputs carry exactly the
  // same bits as the sequential path; on error, the lowest-index
  // objective's status is returned, matching sequential behavior.
  // One workspace per worker slot, prepared up front so steady-state
  // columns never grow a buffer.
  std::vector<ExecuteWorkspace> bank(pool->size() + 1);
  for (ExecuteWorkspace& ws : bank) {
    ws.Prepare(plan_.workspace_spec(), /*slots=*/1);
  }
  std::vector<std::optional<Result<BatchResult>>> results(objectives.size());
  common::ParallelForChunks(pool.get(), objectives.size(), [&](size_t i) {
    obs::RequestScope request_scope(request);
    size_t wi = common::ThreadPool::CurrentWorkerIndex();
    ExecuteWorkspace& ws =
        bank[wi == common::ThreadPool::kNoWorkerIndex ? 0 : wi + 1];
    results[i].emplace(RunOne(objectives[i], nullptr, &ws));
  });
  for (std::optional<Result<BatchResult>>& r : results) {
    if (!r->ok()) return r->status();
    out.push_back(std::move(*r).value());
  }
  return out;
}

}  // namespace geoalign::core
