#ifndef GEOALIGN_CORE_PYCNOPHYLACTIC_H_
#define GEOALIGN_CORE_PYCNOPHYLACTIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/vector_ops.h"

namespace geoalign::core {

/// Options for pycnophylactic interpolation.
struct PycnophylacticOptions {
  /// Smoothing sweeps.
  size_t iterations = 64;
  /// Blend factor toward the neighborhood mean per sweep (0, 1].
  double relaxation = 0.5;
};

/// Tobler's pycnophylactic (mass-preserving smooth) interpolation
/// [Tobler 1979] on a raster of atoms — the classic *intensive*
/// areal-interpolation approach, implemented as an extension baseline
/// (paper §5 discusses this family; GeoAlign's pitch is avoiding its
/// need for spatial structure).
///
/// The grid has nx * ny atoms (row-major, atom = y * nx + x). Each
/// atom carries a source-unit and a target-unit label. The objective's
/// source aggregates are spread uniformly within each source unit,
/// smoothed toward the 4-neighbor mean, clamped non-negative, and
/// rescaled each sweep so every source unit keeps its exact total
/// (volume preservation); the smoothed atom masses are then summed per
/// target unit.
///
/// Returns the estimated target aggregates (num_target entries).
Result<linalg::Vector> PycnophylacticInterpolate(
    size_t nx, size_t ny, const std::vector<uint32_t>& source_labels,
    size_t num_source, const std::vector<uint32_t>& target_labels,
    size_t num_target, const linalg::Vector& objective_source,
    const PycnophylacticOptions& options = {});

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_PYCNOPHYLACTIC_H_
