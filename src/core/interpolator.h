#ifndef GEOALIGN_CORE_INTERPOLATOR_H_
#define GEOALIGN_CORE_INTERPOLATOR_H_

#include <string>

#include "obs/timer.h"
#include "core/crosswalk_input.h"

namespace geoalign::core {

/// Output of a crosswalk: the estimated target aggregates plus the
/// estimated disaggregation matrix that produced them (its column sums
/// are the estimates; its row sums reproduce the source aggregates for
/// volume-preserving methods).
struct CrosswalkResult {
  linalg::Vector target_estimates;   ///< â^t_o (paper Eq. 17)
  sparse::CsrMatrix estimated_dm;    ///< DM̂_o (paper Eq. 14)

  /// Learned reference weights β (GeoAlign only; empty otherwise).
  linalg::Vector weights;

  /// Source rows whose denominator was zero and fell back (Eq. 14's
  /// "otherwise 0" branch).
  std::vector<size_t> zero_rows;

  /// Wall-clock per phase: "weight_learning", "disaggregation",
  /// "reaggregation" (the §4.3 breakdown).
  PhaseTimer timing;

  /// max_i |row_sum(estimated_dm)[i] - a^s_o[i]| — 0 (up to float) for
  /// volume-preserving methods on consistent inputs (Eq. 16).
  double VolumePreservationError(
      const linalg::Vector& objective_source) const {
    linalg::Vector sums = estimated_dm.RowSums();
    return linalg::NormInf(linalg::Sub(sums, objective_source));
  }
};

/// Interface shared by all aggregate-interpolation methods (GeoAlign
/// and the baselines it is evaluated against).
class Interpolator {
 public:
  virtual ~Interpolator() = default;

  /// Human-readable method name for reports.
  virtual std::string name() const = 0;

  /// Realigns the objective attribute from source to target units.
  virtual Result<CrosswalkResult> Crosswalk(
      const CrosswalkInput& input) const = 0;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_INTERPOLATOR_H_
