#include "core/geoalign.h"

#include <cmath>
#include <memory>

#include "common/thread_pool.h"
#include "sparse/coo_builder.h"
#include "sparse/sparse_ops.h"
#include "common/float_eq.h"

namespace geoalign::core {

namespace {

// Builds the normalized design matrix A (columns = a'^s_rk) and b
// (= a'^s_o) of Eq. 15.
Result<std::pair<linalg::Matrix, linalg::Vector>> BuildNormalizedSystem(
    const CrosswalkInput& input) {
  std::vector<linalg::Vector> cols;
  cols.reserve(input.references.size());
  for (const ReferenceAttribute& ref : input.references) {
    GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector norm,
                              linalg::NormalizeByMax(ref.source_aggregates));
    cols.push_back(std::move(norm));
  }
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector b,
                            linalg::NormalizeByMax(input.objective_source));
  return std::make_pair(linalg::Matrix::FromColumns(cols), std::move(b));
}

}  // namespace

GeoAlign::GeoAlign(GeoAlignOptions options) : options_(std::move(options)) {}

Result<linalg::Vector> GeoAlign::LearnWeights(
    const CrosswalkInput& input) const {
  GEOALIGN_ASSIGN_OR_RETURN(auto system, BuildNormalizedSystem(input));
  return internal::SolveWeightsForDesign(system.first, system.second,
                                         options_);
}

Result<CrosswalkPlan> GeoAlign::Compile(const CrosswalkInput& input) const {
  return CrosswalkPlan::Compile(input, options_);
}

Result<CrosswalkPlan> GeoAlign::Compile(
    const std::vector<ReferenceAttribute>& references) const {
  return CrosswalkPlan::Compile(references, options_);
}

Result<CrosswalkResult> GeoAlign::Crosswalk(
    const CrosswalkInput& input) const {
  // Thin compile-then-execute wrapper: one-shot callers pay one plan
  // compilation (what the legacy path redid inline anyway); repeated
  // callers should hold the plan. Bit-identical to CrosswalkUncompiled
  // by the CrosswalkPlan contract, which plan_equivalence_test pins.
  GEOALIGN_ASSIGN_OR_RETURN(CrosswalkPlan plan,
                            CrosswalkPlan::Compile(input, options_));
  return plan.Execute(input.objective_source);
}

Result<CrosswalkResult> CrosswalkUncompiled(const CrosswalkInput& input,
                                            const GeoAlignOptions& options) {
  if (input.references.empty()) {
    return Status::InvalidArgument("GeoAlign: no reference attributes");
  }
  if (options.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      options.fallback_dm == nullptr) {
    return Status::InvalidArgument(
        "GeoAlign: kFallbackDm requires options.fallback_dm");
  }
  CrosswalkResult result;
  Stopwatch watch;
  // The pool only changes who executes the fixed chunks, never the
  // combine order, so every thread count yields identical bits.
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(options.threads));

  // Step 1: weight learning (Eq. 15).
  GEOALIGN_ASSIGN_OR_RETURN(auto system, BuildNormalizedSystem(input));
  GEOALIGN_ASSIGN_OR_RETURN(
      linalg::Vector beta,
      internal::SolveWeightsForDesign(system.first, system.second, options));
  result.timing.Add("weight_learning", watch.ElapsedSeconds());
  watch.Restart();

  // Step 2: disaggregation (Eq. 14). Effective per-reference weight
  // folds the β_k together with the normalization factor so a single
  // sparse weighted sum produces both the numerator matrix and (via
  // the reference source vectors) the denominators.
  size_t num_refs = input.references.size();
  linalg::Vector effective(num_refs, 0.0);
  for (size_t k = 0; k < num_refs; ++k) {
    double norm = 1.0;
    if (options.scale_mode == ScaleMode::kNormalized) {
      norm = linalg::Max(input.references[k].source_aggregates);
      if (norm <= 0.0) {
        return Status::InvalidArgument(
            "GeoAlign: reference '" + input.references[k].name +
            "' has all-zero source aggregates");
      }
    }
    effective[k] = beta[k] / norm;
  }

  std::vector<const sparse::CsrMatrix*> dms;
  dms.reserve(num_refs);
  for (const ReferenceAttribute& ref : input.references) {
    dms.push_back(&ref.disaggregation);
  }
  GEOALIGN_ASSIGN_OR_RETURN(sparse::CsrMatrix numerator,
                            sparse::WeightedSum(dms, effective, pool.get()));

  linalg::Vector denom;
  if (options.denominator == DenominatorMode::kFromDmRowSums) {
    denom = numerator.RowSums();
  } else {
    denom.assign(input.NumSourceUnits(), 0.0);
    for (size_t k = 0; k < num_refs; ++k) {
      if (ExactlyZero(effective[k])) continue;
      linalg::Axpy(effective[k], input.references[k].source_aggregates,
                   denom);
    }
  }

  // Rows scale by a^s_o[i] / denom[i]; zero denominators fall back.
  std::vector<size_t> zero_rows;
  sparse::DivideRowsOrZero(numerator, denom, options.zero_tolerance,
                           &zero_rows, pool.get());
  numerator.ScaleRows(input.objective_source);
  sparse::CsrMatrix estimated = std::move(numerator);

  if (options.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      !zero_rows.empty()) {
    const sparse::CsrMatrix& fb = *options.fallback_dm;
    if (fb.rows() != estimated.rows() || fb.cols() != estimated.cols()) {
      return Status::InvalidArgument("GeoAlign: fallback DM shape mismatch");
    }
    // Rebuild the matrix, replacing the unsupported rows with the
    // fallback DM's rows rescaled to carry the objective mass.
    linalg::Vector fb_sums = fb.RowSums();
    std::vector<bool> is_zero_row(estimated.rows(), false);
    for (size_t r : zero_rows) is_zero_row[r] = true;
    sparse::CooBuilder builder(estimated.rows(), estimated.cols());
    for (size_t r = 0; r < estimated.rows(); ++r) {
      if (!is_zero_row[r]) {
        sparse::CsrMatrix::RowView row = estimated.Row(r);
        for (size_t k = 0; k < row.size; ++k) {
          builder.Add(r, row.cols[k], row.values[k]);
        }
        continue;
      }
      if (fb_sums[r] <= 0.0) continue;  // no fallback support either
      double scale = input.objective_source[r] / fb_sums[r];
      sparse::CsrMatrix::RowView row = fb.Row(r);
      for (size_t k = 0; k < row.size; ++k) {
        builder.Add(r, row.cols[k], row.values[k] * scale);
      }
    }
    estimated = builder.Build();
  }
  result.timing.Add("disaggregation", watch.ElapsedSeconds());
  watch.Restart();

  // Step 3: re-aggregation (Eq. 17).
  result.target_estimates = sparse::ColSumsDeterministic(estimated, pool.get());
  result.timing.Add("reaggregation", watch.ElapsedSeconds());

  result.estimated_dm = std::move(estimated);
  result.weights = std::move(beta);
  result.zero_rows = std::move(zero_rows);
  return result;
}

}  // namespace geoalign::core
