#include "core/execute_workspace.h"

namespace geoalign::core {

void ExecuteWorkspace::Prepare(const ExecuteWorkspaceSpec& spec,
                               size_t slots) {
  Reset(effective_weights_, spec.num_references);
  Reset(denominators_, spec.num_source);
  if (spec.aligned) fused_.Prepare(spec.fused, slots);
}

linalg::Vector& ExecuteWorkspace::EffectiveWeights(size_t n) {
  return Reset(effective_weights_, n);
}

linalg::Vector& ExecuteWorkspace::Denominators(size_t n) {
  return Reset(denominators_, n);
}

linalg::Vector& ExecuteWorkspace::Reset(linalg::Vector& v, size_t n) {
  if (v.capacity() < n) ++alloc_events_;
  v.assign(n, 0.0);
  return v;
}

}  // namespace geoalign::core
