#include "core/execute_workspace.h"

namespace geoalign::core {

void ExecuteWorkspace::Prepare(const ExecuteWorkspaceSpec& spec,
                               size_t slots) {
  Reset(effective_weights_, spec.num_references);
  Reset(denominators_, spec.num_source);
  if (spec.aligned) fused_.Prepare(spec.fused, slots);
}

void ExecuteWorkspace::PreparePanel(const ExecuteWorkspaceSpec& spec,
                                    size_t width) {
  size_t need = spec.num_references * width;
  if (panel_.lane_weights.size() < need) {
    ++alloc_events_;
    panel_.lane_weights.resize(need);
  }
  bool grew = false;
  auto reserve_ptrs = [&grew](auto& v, size_t n) {
    if (v.capacity() < n) {
      grew = true;
      v.reserve(n);
    }
  };
  reserve_ptrs(panel_.row_scales, width);
  reserve_ptrs(panel_.operand_aggregates, spec.num_references);
  reserve_ptrs(panel_.targets, width);
  reserve_ptrs(panel_.zero_lists, width);
  reserve_ptrs(panel_.lanes, width);
  if (grew) ++alloc_events_;
  if (spec.aligned) fused_.PreparePanel(spec.fused, width);
}

linalg::Vector& ExecuteWorkspace::EffectiveWeights(size_t n) {
  return Reset(effective_weights_, n);
}

linalg::Vector& ExecuteWorkspace::Denominators(size_t n) {
  return Reset(denominators_, n);
}

linalg::Vector& ExecuteWorkspace::Reset(linalg::Vector& v, size_t n) {
  if (v.capacity() < n) ++alloc_events_;
  v.assign(n, 0.0);
  return v;
}

}  // namespace geoalign::core
