#ifndef GEOALIGN_CORE_PLAN_CACHE_H_
#define GEOALIGN_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/crosswalk_plan.h"

namespace geoalign::core {

/// Counters for PlanCache observability (snapshot via stats()). The
/// same values are mirrored onto the process-wide metrics registry as
/// `plan_cache.hits` / `plan_cache.misses` / `plan_cache.evictions` /
/// `plan_cache.insert_races` (catalog: docs/observability.md); the
/// registry aggregates across every PlanCache instance while this
/// struct stays per-instance.
struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  /// GetOrCompile races: both threads missed the same key, both
  /// compiled outside the lock, and this caller lost the re-lock — its
  /// freshly compiled plan was dropped in favor of the incumbent.
  /// Every insert_race was already counted as a miss; a persistently
  /// nonzero rate means concurrent cold-start compiles are being
  /// duplicated (wasted work, not incorrect results).
  size_t insert_races = 0;
};

/// A small thread-safe LRU cache of compiled CrosswalkPlans for
/// callers that construct pipelines repeatedly over the same reference
/// sets — eval/cross_validation's leave-one-out loop revisits each
/// reference subset once per objective and is the first consumer.
///
/// Keys are CONTENT fingerprints (two independent FNV-1a lanes over
/// reference names/aggregates/CSR arrays, the option enums and
/// tolerances, and the fallback DM's content), never pointer
/// identities — equal inputs hit regardless of where they live.
/// `GeoAlignOptions::threads` is deliberately excluded: execution
/// results are bit-identical for every thread count (the
/// deterministic-reduction contract), so plans are shared across
/// thread configurations; use `Execute(obj, threads)`/`ExecuteWith`
/// when the cached plan's default should be overridden.
///
/// Compilation runs outside the cache lock; when two threads miss the
/// same key concurrently, both compile and the first insert wins (the
/// loser's plan is dropped, both callers get valid plans).
/// `capacity == 0` disables caching: every call compiles and is
/// counted as a miss.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 16) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for (references, options), compiling and
  /// inserting it on a miss. The shared_ptr keeps the plan alive even
  /// after eviction, so callers may hold it indefinitely.
  Result<std::shared_ptr<const CrosswalkPlan>> GetOrCompile(
      const std::vector<ReferenceAttribute>& references,
      const GeoAlignOptions& options);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  PlanCacheStats stats() const;
  void Clear();

 private:
  struct Key {
    uint64_t lane0 = 0;
    uint64_t lane1 = 0;
    bool operator==(const Key& other) const {
      return lane0 == other.lane0 && lane1 == other.lane1;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.lane0 ^ (k.lane1 * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const CrosswalkPlan> plan;
  };

  static Key MakeKey(const std::vector<ReferenceAttribute>& references,
                     const GeoAlignOptions& options);

  /// Returns the cached plan for `key` (touched to MRU, hit counted),
  /// or null on a miss.
  std::shared_ptr<const CrosswalkPlan> LookupLocked(const Key& key)
      GEOALIGN_REQUIRES(mu_);

  /// Inserts `plan` under `key`, evicting down to capacity — unless a
  /// racing caller inserted the key while this one compiled unlocked,
  /// in which case the incumbent is returned (and `plan` dropped) so
  /// all callers share one plan per key.
  std::shared_ptr<const CrosswalkPlan> InsertOrAdoptLocked(
      const Key& key, std::shared_ptr<const CrosswalkPlan> plan)
      GEOALIGN_REQUIRES(mu_);

  /// Pops LRU entries until size() <= capacity_, counting evictions.
  void EvictLocked() GEOALIGN_REQUIRES(mu_);

  /// Guards every mutable member below. Leaf lock: never held across
  /// plan compilation (GetOrCompile compiles unlocked and re-locks to
  /// insert) nor across any call out of this class, so no ordering
  /// edges exist.
  mutable common::Mutex mu_;
  const size_t capacity_;  ///< immutable after construction
  /// Recency list, front = most recently used. The eviction scan walks
  /// this ordered list; the unordered map below is only ever probed
  /// point-wise (find/emplace/erase), never iterated.
  std::list<Entry> lru_ GEOALIGN_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      GEOALIGN_GUARDED_BY(mu_);
  PlanCacheStats stats_ GEOALIGN_GUARDED_BY(mu_);
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_PLAN_CACHE_H_
