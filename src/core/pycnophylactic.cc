#include "core/pycnophylactic.h"

#include <algorithm>

namespace geoalign::core {

Result<linalg::Vector> PycnophylacticInterpolate(
    size_t nx, size_t ny, const std::vector<uint32_t>& source_labels,
    size_t num_source, const std::vector<uint32_t>& target_labels,
    size_t num_target, const linalg::Vector& objective_source,
    const PycnophylacticOptions& options) {
  size_t num_atoms = nx * ny;
  if (num_atoms == 0) {
    return Status::InvalidArgument("Pycnophylactic: empty grid");
  }
  if (source_labels.size() != num_atoms || target_labels.size() != num_atoms) {
    return Status::InvalidArgument("Pycnophylactic: label size mismatch");
  }
  if (objective_source.size() != num_source) {
    return Status::InvalidArgument("Pycnophylactic: objective size mismatch");
  }
  if (options.relaxation <= 0.0 || options.relaxation > 1.0) {
    return Status::InvalidArgument("Pycnophylactic: relaxation in (0,1]");
  }
  for (uint32_t l : source_labels) {
    if (l >= num_source) {
      return Status::InvalidArgument("Pycnophylactic: source label range");
    }
  }
  for (uint32_t l : target_labels) {
    if (l >= num_target) {
      return Status::InvalidArgument("Pycnophylactic: target label range");
    }
  }

  // Uniform initialization within each source unit.
  std::vector<size_t> unit_atom_count(num_source, 0);
  for (uint32_t l : source_labels) ++unit_atom_count[l];
  linalg::Vector value(num_atoms, 0.0);
  for (size_t a = 0; a < num_atoms; ++a) {
    value[a] = objective_source[source_labels[a]] /
               static_cast<double>(unit_atom_count[source_labels[a]]);
  }

  linalg::Vector smoothed(num_atoms, 0.0);
  linalg::Vector unit_sum(num_source, 0.0);
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    // 4-neighbor mean (edge atoms average their available neighbors).
    for (size_t y = 0; y < ny; ++y) {
      for (size_t x = 0; x < nx; ++x) {
        size_t a = y * nx + x;
        double acc = 0.0;
        int n = 0;
        if (x > 0) {
          acc += value[a - 1];
          ++n;
        }
        if (x + 1 < nx) {
          acc += value[a + 1];
          ++n;
        }
        if (y > 0) {
          acc += value[a - nx];
          ++n;
        }
        if (y + 1 < ny) {
          acc += value[a + nx];
          ++n;
        }
        smoothed[a] = n > 0 ? acc / n : value[a];
      }
    }
    // Relax toward the smoothed field, clamp non-negative.
    for (size_t a = 0; a < num_atoms; ++a) {
      value[a] = std::max(
          0.0, (1.0 - options.relaxation) * value[a] +
                   options.relaxation * smoothed[a]);
    }
    // Pycnophylactic constraint: restore each source unit's total.
    std::fill(unit_sum.begin(), unit_sum.end(), 0.0);
    for (size_t a = 0; a < num_atoms; ++a) {
      unit_sum[source_labels[a]] += value[a];
    }
    for (size_t a = 0; a < num_atoms; ++a) {
      uint32_t u = source_labels[a];
      if (unit_sum[u] > 0.0) {
        value[a] *= objective_source[u] / unit_sum[u];
      } else {
        // Unit mass vanished (all clamped); reset uniform.
        value[a] = objective_source[u] /
                   static_cast<double>(unit_atom_count[u]);
      }
    }
  }

  linalg::Vector target(num_target, 0.0);
  for (size_t a = 0; a < num_atoms; ++a) {
    target[target_labels[a]] += value[a];
  }
  return target;
}

}  // namespace geoalign::core
