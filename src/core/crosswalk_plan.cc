#include "core/crosswalk_plan.h"

#include <utility>

#include "common/float_eq.h"
#include "linalg/nnls.h"
#include "linalg/qr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/coo_builder.h"
#include "sparse/sparse_ops.h"

namespace geoalign::core {

namespace {

// Serving-path telemetry (catalog: docs/observability.md). Everything
// here OBSERVES only — no branch below may influence the reductions,
// preserving the bit-identity contract (tests/obs_test.cc pins
// enabled-vs-disabled equivalence).
obs::Counter& CompileCount() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("compile.count");
  return c;
}
obs::Histogram& CompileLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("compile.latency_us");
  return h;
}
obs::Counter& ExecuteCount() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.count");
  return c;
}
obs::Histogram& ExecuteLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("execute.latency_us");
  return h;
}
obs::Counter& ZeroRowsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.zero_rows");
  return c;
}
obs::Counter& FallbackRebuilds() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.fallback_rebuilds");
  return c;
}
// Workspace-growth events seen by executes (0 in steady state once a
// reused workspace is warm) and executes that completed through an
// externally supplied workspace without growing it.
obs::Counter& HotPathAllocs() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.hot_path_allocs");
  return c;
}
obs::Counter& WorkspaceReuse() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.workspace_reuse");
  return c;
}

// One per-solver counter so the weight-solve mix is visible per
// WeightSolver, not just in aggregate.
obs::Counter& WeightSolveCount(WeightSolver solver) {
  static obs::Counter& simplex =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.simplex");
  static obs::Counter& nnls =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.nnls_normalized");
  static obs::Counter& clamped =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.clamped_ls");
  static obs::Counter& uniform =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.uniform");
  switch (solver) {
    case WeightSolver::kSimplex:
      return simplex;
    case WeightSolver::kNnlsNormalized:
      return nnls;
    case WeightSolver::kClampedLs:
      return clamped;
    case WeightSolver::kUniform:
      return uniform;
  }
  return uniform;
}

}  // namespace

namespace internal {

Result<linalg::Vector> SolveWeightsForDesign(const linalg::Matrix& a,
                                             const linalg::Vector& b,
                                             const GeoAlignOptions& options) {
  GEOALIGN_TRACE_SPAN("execute.weight_solve");
  WeightSolveCount(options.solver).Add(1);
  size_t n = a.cols();
  switch (options.solver) {
    case WeightSolver::kSimplex: {
      GEOALIGN_ASSIGN_OR_RETURN(
          linalg::SimplexLsSolution sol,
          linalg::SolveSimplexLeastSquares(a, b, options.solver_options));
      return sol.beta;
    }
    case WeightSolver::kNnlsNormalized: {
      GEOALIGN_ASSIGN_OR_RETURN(linalg::NnlsSolution sol,
                                linalg::SolveNnls(a, b));
      double total = linalg::Sum(sol.x);
      if (total <= 0.0) {
        // NNLS degenerated to the zero vector; fall back to uniform.
        return linalg::Vector(n, 1.0 / static_cast<double>(n));
      }
      linalg::Scale(sol.x, 1.0 / total);
      return sol.x;
    }
    case WeightSolver::kClampedLs: {
      auto ls = linalg::LeastSquaresQr(a, b);
      if (!ls.ok()) {
        // Rank-deficient design (duplicate references): uniform.
        return linalg::Vector(n, 1.0 / static_cast<double>(n));
      }
      linalg::Vector beta = std::move(ls).value();
      double total = 0.0;
      for (double& v : beta) {
        if (v < 0.0) v = 0.0;
        total += v;
      }
      if (total <= 0.0) {
        return linalg::Vector(n, 1.0 / static_cast<double>(n));
      }
      linalg::Scale(beta, 1.0 / total);
      return beta;
    }
    case WeightSolver::kUniform:
      return linalg::Vector(n, 1.0 / static_cast<double>(n));
  }
  return Status::Internal("unknown weight solver");
}

}  // namespace internal

CrosswalkPlan::CrosswalkPlan(sparse::PreparedReferenceSet prepared,
                             GeoAlignOptions options)
    : prepared_(std::move(prepared)), options_(std::move(options)) {}

Result<CrosswalkPlan> CrosswalkPlan::Compile(
    const CrosswalkInput& input, const GeoAlignOptions& options) {
  return Compile(input.references, options);
}

Result<CrosswalkPlan> CrosswalkPlan::Compile(
    const std::vector<ReferenceAttribute>& references,
    const GeoAlignOptions& options) {
  GEOALIGN_TRACE_SPAN("compile");
  obs::Stopwatch compile_watch;
  // Same early validation (and messages) as the legacy per-call path.
  if (references.empty()) {
    return Status::InvalidArgument("GeoAlign: no reference attributes");
  }
  if (options.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      options.fallback_dm == nullptr) {
    return Status::InvalidArgument(
        "GeoAlign: kFallbackDm requires options.fallback_dm");
  }

  std::vector<sparse::ReferenceData> data;
  data.reserve(references.size());
  for (const ReferenceAttribute& ref : references) {
    data.push_back(sparse::ReferenceData{ref.name, ref.source_aggregates,
                                         ref.disaggregation});
  }
  GEOALIGN_ASSIGN_OR_RETURN(
      sparse::PreparedReferenceSet prepared,
      sparse::PreparedReferenceSet::Prepare(std::move(data)));

  CrosswalkPlan plan(std::move(prepared), options);

  {
    // Eq. 15 design matrix: the same normalized columns the legacy
    // BuildNormalizedSystem assembles per call.
    GEOALIGN_TRACE_SPAN("compile.design");
    std::vector<linalg::Vector> cols;
    cols.reserve(plan.prepared_.size());
    for (size_t k = 0; k < plan.prepared_.size(); ++k) {
      cols.push_back(plan.prepared_.reference(k).normalized_aggregates);
    }
    plan.design_ = linalg::Matrix::FromColumns(cols);
  }
  if (plan.options_.solver == WeightSolver::kSimplex) {
    // SolveSimplexLeastSquares(a, b) is literally
    // SolveSimplexLsFromNormalEquations(a.Gram(), a.MatTVec(b), b·b),
    // so hoisting the Gram matrix reproduces the legacy bits exactly.
    GEOALIGN_TRACE_SPAN("compile.gram");
    plan.gram_ = plan.design_.Gram();
  }

  // The plan-compiled workspace spec: every scratch size an execute
  // needs, resolved once here so serving loops never re-derive it.
  plan.workspace_spec_.num_references = plan.prepared_.size();
  plan.workspace_spec_.num_source = plan.prepared_.num_source();
  plan.workspace_spec_.aligned = plan.prepared_.aligned();
  if (plan.workspace_spec_.aligned) {
    plan.workspace_spec_.fused = sparse::FusedWorkspace::ComputeSpec(
        *plan.prepared_.dms()[0], plan.prepared_.size());
  }

  if (plan.options_.fallback_dm != nullptr) {
    // Snapshot the fallback DM so the plan owns everything it reads at
    // Execute time; a cached plan must not dangle on caller memory.
    plan.fallback_dm_ = std::make_shared<const sparse::CsrMatrix>(
        *plan.options_.fallback_dm);
    plan.options_.fallback_dm = plan.fallback_dm_.get();
    plan.fallback_shape_ok_ =
        plan.fallback_dm_->rows() == plan.prepared_.num_source() &&
        plan.fallback_dm_->cols() == plan.prepared_.num_target();
    if (plan.fallback_shape_ok_) {
      plan.fallback_row_sums_ = plan.fallback_dm_->RowSums();
    }
  }
  CompileCount().Add(1);
  CompileLatencyUs().Record(compile_watch.ElapsedMicros());
  return plan;
}

Result<linalg::Vector> CrosswalkPlan::SolveWeightsNormalized(
    const linalg::Vector& b_normalized) const {
  if (options_.solver == WeightSolver::kSimplex) {
    // Fast path bypasses SolveWeightsForDesign, so it carries its own
    // weight_solve span/counter.
    GEOALIGN_TRACE_SPAN("execute.weight_solve");
    WeightSolveCount(WeightSolver::kSimplex).Add(1);
    GEOALIGN_ASSIGN_OR_RETURN(
        linalg::SimplexLsSolution sol,
        linalg::SolveSimplexLsFromNormalEquations(
            gram_, design_.MatTVec(b_normalized),
            linalg::Dot(b_normalized, b_normalized),
            options_.solver_options));
    return sol.beta;
  }
  return internal::SolveWeightsForDesign(design_, b_normalized, options_);
}

Result<linalg::Vector> CrosswalkPlan::LearnWeights(
    const linalg::Vector& objective_source) const {
  if (objective_source.size() != prepared_.num_source()) {
    return Status::InvalidArgument(
        "CrosswalkPlan: objective length does not match source units");
  }
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector b,
                            linalg::NormalizeByMax(objective_source));
  return SolveWeightsNormalized(b);
}

Result<CrosswalkResult> CrosswalkPlan::Execute(
    const linalg::Vector& objective_source) const {
  return Execute(objective_source, options_.threads);
}

Result<CrosswalkResult> CrosswalkPlan::Execute(
    const linalg::Vector& objective_source, size_t threads) const {
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(threads));
  return ExecuteWith(objective_source, pool.get());
}

Result<CrosswalkResult> CrosswalkPlan::Execute(
    const linalg::Vector& objective_source, ExecuteOutput output) const {
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(options_.threads));
  return ExecuteWith(objective_source, pool.get(), output, nullptr);
}

Result<CrosswalkResult> CrosswalkPlan::ExecuteWith(
    const linalg::Vector& objective_source, common::ThreadPool* pool) const {
  return ExecuteWith(objective_source, pool, ExecuteOutput::kFullDm, nullptr);
}

Result<CrosswalkResult> CrosswalkPlan::ExecuteWith(
    const linalg::Vector& objective_source, common::ThreadPool* pool,
    ExecuteOutput output, ExecuteWorkspace* workspace) const {
  if (objective_source.size() != prepared_.num_source()) {
    return Status::InvalidArgument(
        "CrosswalkPlan: objective length does not match source units");
  }
  GEOALIGN_TRACE_SPAN("execute");
  obs::Stopwatch execute_watch;
  CrosswalkResult result;
  Stopwatch watch;

  // Step 1: weight learning (Eq. 15) over the precompiled design.
  // (The weight_solve span lives inside the solver dispatch so it
  // covers every WeightSolver, simplex fast path included.)
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector b,
                            linalg::NormalizeByMax(objective_source));
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector beta, SolveWeightsNormalized(b));
  result.timing.Add("weight_learning", watch.ElapsedSeconds());

  // Steps 2+3: disaggregation (Eq. 14) + re-aggregation (Eq. 17),
  // through one of two bit-identical lanes. The fused lane needs the
  // shared-structure invariant; a non-aligned prepared set asked for
  // aggregates only goes through the materializing lane and drops the
  // DM at the end.
  ExecuteWorkspace local_workspace;
  ExecuteWorkspace* ws =
      workspace != nullptr ? workspace : &local_workspace;
  const uint64_t allocs_before = ws->alloc_events();

  if (output == ExecuteOutput::kAggregatesOnly && prepared_.aligned()) {
    GEOALIGN_RETURN_IF_ERROR(
        ExecuteFusedAggregates(objective_source, beta, pool, ws, &result));
  } else {
    GEOALIGN_RETURN_IF_ERROR(
        ExecuteMaterializing(objective_source, beta, pool, ws, &result));
    if (output == ExecuteOutput::kAggregatesOnly) {
      result.estimated_dm = sparse::CsrMatrix();
    }
  }

  result.weights = std::move(beta);
  ZeroRowsTotal().Add(result.zero_rows.size());
  // Workspace telemetry (observe-only): growth events this execute,
  // and reuse of an externally supplied workspace that stayed warm.
  const uint64_t grown = ws->alloc_events() - allocs_before;
  HotPathAllocs().Add(grown);
  if (workspace != nullptr && grown == 0) WorkspaceReuse().Add(1);
  ExecuteCount().Add(1);
  ExecuteLatencyUs().Record(execute_watch.ElapsedMicros());
  return result;
}

const linalg::Vector& CrosswalkPlan::EffectiveWeights(
    const linalg::Vector& beta, ExecuteWorkspace* ws) const {
  // The scalar normalizers were hoisted at compile time; the division
  // itself must stay here — beta[k]/norm then times the raw DM is the
  // legacy operation order.
  size_t num_refs = prepared_.size();
  linalg::Vector& effective = ws->EffectiveWeights(num_refs);
  for (size_t k = 0; k < num_refs; ++k) {
    double norm = options_.scale_mode == ScaleMode::kNormalized
                      ? prepared_.reference(k).normalizer
                      : 1.0;
    effective[k] = beta[k] / norm;
  }
  return effective;
}

Status CrosswalkPlan::ExecuteMaterializing(
    const linalg::Vector& objective_source, const linalg::Vector& beta,
    common::ThreadPool* pool, ExecuteWorkspace* ws,
    CrosswalkResult* result) const {
  Stopwatch watch;
  sparse::CsrMatrix estimated;
  std::vector<size_t> zero_rows;
  {
    GEOALIGN_TRACE_SPAN("execute.eq14_disaggregate");
    size_t num_refs = prepared_.size();
    const linalg::Vector& effective = EffectiveWeights(beta, ws);

    Result<sparse::CsrMatrix> summed =
        prepared_.aligned()
            ? sparse::WeightedSumAligned(prepared_.dms(), effective, pool)
            : sparse::WeightedSum(prepared_.dms(), effective, pool);
    GEOALIGN_ASSIGN_OR_RETURN(sparse::CsrMatrix numerator, std::move(summed));

    linalg::Vector row_sums;
    const linalg::Vector* denom;
    if (options_.denominator == DenominatorMode::kFromDmRowSums) {
      row_sums = numerator.RowSums();
      denom = &row_sums;
    } else {
      linalg::Vector& agg = ws->Denominators(prepared_.num_source());
      for (size_t k = 0; k < num_refs; ++k) {
        if (ExactlyZero(effective[k])) continue;
        linalg::Axpy(effective[k], prepared_.reference(k).source_aggregates,
                     agg);
      }
      denom = &agg;
    }

    sparse::DivideRowsOrZero(numerator, *denom, options_.zero_tolerance,
                             &zero_rows, pool);
    numerator.ScaleRows(objective_source);
    estimated = std::move(numerator);

    if (options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
        !zero_rows.empty()) {
      if (!fallback_shape_ok_) {
        return Status::InvalidArgument("GeoAlign: fallback DM shape mismatch");
      }
      GEOALIGN_TRACE_SPAN("execute.fallback_rebuild");
      FallbackRebuilds().Add(1);
      const sparse::CsrMatrix& fb = *fallback_dm_;
      const linalg::Vector& fb_sums = fallback_row_sums_;
      std::vector<bool> is_zero_row(estimated.rows(), false);
      for (size_t r : zero_rows) is_zero_row[r] = true;
      sparse::CooBuilder builder(estimated.rows(), estimated.cols());
      for (size_t r = 0; r < estimated.rows(); ++r) {
        if (!is_zero_row[r]) {
          sparse::CsrMatrix::RowView row = estimated.Row(r);
          for (size_t k = 0; k < row.size; ++k) {
            builder.Add(r, row.cols[k], row.values[k]);
          }
          continue;
        }
        if (fb_sums[r] <= 0.0) continue;  // no fallback support either
        double scale = objective_source[r] / fb_sums[r];
        sparse::CsrMatrix::RowView row = fb.Row(r);
        for (size_t k = 0; k < row.size; ++k) {
          builder.Add(r, row.cols[k], row.values[k] * scale);
        }
      }
      estimated = builder.Build();
    }
  }
  result->timing.Add("disaggregation", watch.ElapsedSeconds());
  watch.Restart();

  {
    // Step 3: re-aggregation (Eq. 17).
    GEOALIGN_TRACE_SPAN("execute.eq17_reaggregate");
    result->target_estimates = sparse::ColSumsDeterministic(estimated, pool);
  }
  result->timing.Add("reaggregation", watch.ElapsedSeconds());

  result->estimated_dm = std::move(estimated);
  result->zero_rows = std::move(zero_rows);
  return Status::OK();
}

Status CrosswalkPlan::ExecuteFusedAggregates(
    const linalg::Vector& objective_source, const linalg::Vector& beta,
    common::ThreadPool* pool, ExecuteWorkspace* ws,
    CrosswalkResult* result) const {
  GEOALIGN_TRACE_SPAN("execute.fused");
  Stopwatch watch;
  const linalg::Vector& effective = EffectiveWeights(beta, ws);

  sparse::FusedAggregatesInputs in;
  in.mats = &prepared_.dms();
  in.weights = &effective;
  if (options_.denominator == DenominatorMode::kFromAggregates) {
    linalg::Vector& denom = ws->Denominators(prepared_.num_source());
    for (size_t k = 0; k < prepared_.size(); ++k) {
      if (ExactlyZero(effective[k])) continue;
      linalg::Axpy(effective[k], prepared_.reference(k).source_aggregates,
                   denom);
    }
    in.denominators = &denom;
  }  // kFromDmRowSums: the kernel derives the denominators in-pass.
  in.zero_tolerance = options_.zero_tolerance;
  in.row_scale = &objective_source;
  // A fallback DM whose shape never validated is withheld from the
  // kernel; the error below fires on exactly the executes where the
  // materializing lane's rebuild would have failed (zero rows hit).
  const bool use_fallback =
      options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      fallback_shape_ok_;
  in.fallback_dm = use_fallback ? fallback_dm_.get() : nullptr;
  in.fallback_row_sums = use_fallback ? &fallback_row_sums_ : nullptr;

  GEOALIGN_RETURN_IF_ERROR(sparse::FusedAggregatesAligned(
      in, workspace_spec_.fused, &result->target_estimates,
      &result->zero_rows, &ws->fused(), pool));

  if (options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      !result->zero_rows.empty()) {
    if (!fallback_shape_ok_) {
      return Status::InvalidArgument("GeoAlign: fallback DM shape mismatch");
    }
    FallbackRebuilds().Add(1);
  }
  // One pass does Eq. 14 and Eq. 17 together; report it as the
  // disaggregation phase and an explicit zero for re-aggregation so
  // the timing key set matches the materializing lane.
  result->timing.Add("disaggregation", watch.ElapsedSeconds());
  result->timing.Add("reaggregation", 0.0);
  return Status::OK();
}

}  // namespace geoalign::core
