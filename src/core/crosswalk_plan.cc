#include "core/crosswalk_plan.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/float_eq.h"
#include "sparse/simd/panel_kernels.h"
#include "linalg/nnls.h"
#include "linalg/qr.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/coo_builder.h"
#include "sparse/sparse_ops.h"

namespace geoalign::core {

namespace {

// Serving-path telemetry (catalog: docs/observability.md). Everything
// here OBSERVES only — no branch below may influence the reductions,
// preserving the bit-identity contract (tests/obs_test.cc pins
// enabled-vs-disabled equivalence).
obs::Counter& CompileCount() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("compile.count");
  return c;
}
obs::Histogram& CompileLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("compile.latency_us");
  return h;
}
obs::Counter& ExecuteCount() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.count");
  return c;
}
obs::Histogram& ExecuteLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("execute.latency_us");
  return h;
}
obs::Counter& ZeroRowsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.zero_rows");
  return c;
}
obs::Counter& FallbackRebuilds() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.fallback_rebuilds");
  return c;
}
// Workspace-growth events seen by executes (0 in steady state once a
// reused workspace is warm) and executes that completed through an
// externally supplied workspace without growing it.
obs::Counter& HotPathAllocs() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.hot_path_allocs");
  return c;
}
obs::Counter& WorkspaceReuse() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.workspace_reuse");
  return c;
}
// Bytes the ingest path duplicated to get reference data into a plan
// (aggregate columns + CSR arrays). The owning Compile overloads pay
// this once per reference; the view overloads keep it at zero — the
// zero-copy contract tests and bench/ingest_path assert on the delta.
obs::Counter& IngestBytesCopied() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("ingest.bytes_copied");
  return c;
}

// Panel-lane telemetry: panels served, their width distribution, and
// the ISA executes dispatch to (numeric Isa value; 0 = scalar,
// 1 = avx2, 2 = neon — docs/observability.md).
obs::Counter& PanelCount() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("execute.panel.count");
  return c;
}
obs::Histogram& PanelWidthHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "execute.panel_width", {1, 2, 4, 8, 16, 32, 64});
  return h;
}
obs::Gauge& ExecuteIsaGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("execute.isa");
  return g;
}

// One per-solver counter so the weight-solve mix is visible per
// WeightSolver, not just in aggregate.
obs::Counter& WeightSolveCount(WeightSolver solver) {
  static obs::Counter& simplex =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.simplex");
  static obs::Counter& nnls =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.nnls_normalized");
  static obs::Counter& clamped =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.clamped_ls");
  static obs::Counter& uniform =
      obs::MetricsRegistry::Global().GetCounter("weight_solve.uniform");
  switch (solver) {
    case WeightSolver::kSimplex:
      return simplex;
    case WeightSolver::kNnlsNormalized:
      return nnls;
    case WeightSolver::kClampedLs:
      return clamped;
    case WeightSolver::kUniform:
      return uniform;
  }
  return uniform;
}

}  // namespace

namespace internal {

Result<linalg::Vector> SolveWeightsForDesign(const linalg::Matrix& a,
                                             const linalg::Vector& b,
                                             const GeoAlignOptions& options) {
  GEOALIGN_TRACE_SPAN("execute.weight_solve");
  WeightSolveCount(options.solver).Add(1);
  size_t n = a.cols();
  switch (options.solver) {
    case WeightSolver::kSimplex: {
      GEOALIGN_ASSIGN_OR_RETURN(
          linalg::SimplexLsSolution sol,
          linalg::SolveSimplexLeastSquares(a, b, options.solver_options));
      return sol.beta;
    }
    case WeightSolver::kNnlsNormalized: {
      GEOALIGN_ASSIGN_OR_RETURN(linalg::NnlsSolution sol,
                                linalg::SolveNnls(a, b));
      double total = linalg::Sum(sol.x);
      if (total <= 0.0) {
        // NNLS degenerated to the zero vector; fall back to uniform.
        return linalg::Vector(n, 1.0 / static_cast<double>(n));
      }
      linalg::Scale(sol.x, 1.0 / total);
      return sol.x;
    }
    case WeightSolver::kClampedLs: {
      auto ls = linalg::LeastSquaresQr(a, b);
      if (!ls.ok()) {
        // Rank-deficient design (duplicate references): uniform.
        return linalg::Vector(n, 1.0 / static_cast<double>(n));
      }
      linalg::Vector beta = std::move(ls).value();
      double total = 0.0;
      for (double& v : beta) {
        if (v < 0.0) v = 0.0;
        total += v;
      }
      if (total <= 0.0) {
        return linalg::Vector(n, 1.0 / static_cast<double>(n));
      }
      linalg::Scale(beta, 1.0 / total);
      return beta;
    }
    case WeightSolver::kUniform:
      return linalg::Vector(n, 1.0 / static_cast<double>(n));
  }
  return Status::Internal("unknown weight solver");
}

}  // namespace internal

CrosswalkPlan::CrosswalkPlan(sparse::PreparedReferenceSet prepared,
                             GeoAlignOptions options)
    : prepared_(std::move(prepared)), options_(std::move(options)) {}

Result<CrosswalkPlan> CrosswalkPlan::Compile(
    const CrosswalkInput& input, const GeoAlignOptions& options) {
  return Compile(input.references, options);
}

Result<CrosswalkPlan> CrosswalkPlan::Compile(
    const std::vector<ReferenceAttribute>& references,
    const GeoAlignOptions& options) {
  GEOALIGN_TRACE_SPAN("compile");
  obs::Stopwatch compile_watch;
  // Same early validation (and messages) as the legacy per-call path.
  if (references.empty()) {
    return Status::InvalidArgument("GeoAlign: no reference attributes");
  }
  if (options.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      options.fallback_dm == nullptr) {
    return Status::InvalidArgument(
        "GeoAlign: kFallbackDm requires options.fallback_dm");
  }

  // The owning ingest path duplicates every reference (aggregate
  // column + CSR arrays) into plan-owned storage; the view overload
  // below is the copy-free path.
  std::vector<sparse::ReferenceData> data;
  data.reserve(references.size());
  uint64_t bytes_copied = 0;
  for (const ReferenceAttribute& ref : references) {
    bytes_copied +=
        ref.source_aggregates.size() * sizeof(double) +
        ref.disaggregation.row_ptr().size() * sizeof(size_t) +
        ref.disaggregation.nnz() * (sizeof(size_t) + sizeof(double));
    data.push_back(sparse::ReferenceData{ref.name, ref.source_aggregates,
                                         ref.disaggregation});
  }
  IngestBytesCopied().Add(bytes_copied);
  GEOALIGN_ASSIGN_OR_RETURN(
      sparse::PreparedReferenceSet prepared,
      sparse::PreparedReferenceSet::Prepare(std::move(data)));
  GEOALIGN_ASSIGN_OR_RETURN(CrosswalkPlan plan,
                            FinishCompile(std::move(prepared), options));
  CompileCount().Add(1);
  CompileLatencyUs().Record(compile_watch.ElapsedMicros());
  return plan;
}

Result<CrosswalkPlan> CrosswalkPlan::Compile(CrosswalkInputView input,
                                             const GeoAlignOptions& options) {
  return Compile(std::move(input.references), options);
}

Result<CrosswalkPlan> CrosswalkPlan::Compile(
    std::vector<ReferenceAttributeView> references,
    const GeoAlignOptions& options) {
  GEOALIGN_TRACE_SPAN("compile");
  obs::Stopwatch compile_watch;
  if (references.empty()) {
    return Status::InvalidArgument("GeoAlign: no reference attributes");
  }
  if (options.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      options.fallback_dm == nullptr) {
    return Status::InvalidArgument(
        "GeoAlign: kFallbackDm requires options.fallback_dm");
  }
  // Views flow straight into Prepare — no aggregate column or CSR
  // array is duplicated, so IngestBytesCopied stays untouched.
  GEOALIGN_ASSIGN_OR_RETURN(
      sparse::PreparedReferenceSet prepared,
      sparse::PreparedReferenceSet::Prepare(std::move(references)));
  GEOALIGN_ASSIGN_OR_RETURN(CrosswalkPlan plan,
                            FinishCompile(std::move(prepared), options));
  CompileCount().Add(1);
  CompileLatencyUs().Record(compile_watch.ElapsedMicros());
  return plan;
}

Result<CrosswalkPlan> CrosswalkPlan::FinishCompile(
    sparse::PreparedReferenceSet prepared, const GeoAlignOptions& options) {
  CrosswalkPlan plan(std::move(prepared), options);

  {
    // Eq. 15 design matrix: the same normalized columns the legacy
    // BuildNormalizedSystem assembles per call.
    GEOALIGN_TRACE_SPAN("compile.design");
    std::vector<linalg::Vector> cols;
    cols.reserve(plan.prepared_.size());
    for (size_t k = 0; k < plan.prepared_.size(); ++k) {
      cols.push_back(plan.prepared_.reference(k).normalized_aggregates);
    }
    plan.design_ = linalg::Matrix::FromColumns(cols);
  }
  if (plan.options_.solver == WeightSolver::kSimplex) {
    // SolveSimplexLeastSquares(a, b) is literally
    // SolveSimplexLsFromNormalEquations(a.Gram(), a.MatTVec(b), b·b),
    // so hoisting the Gram matrix reproduces the legacy bits exactly.
    GEOALIGN_TRACE_SPAN("compile.gram");
    plan.gram_ = plan.design_.Gram();
  }

  // The plan-compiled workspace spec: every scratch size an execute
  // needs, resolved once here so serving loops never re-derive it.
  plan.workspace_spec_.num_references = plan.prepared_.size();
  plan.workspace_spec_.num_source = plan.prepared_.num_source();
  plan.workspace_spec_.aligned = plan.prepared_.aligned();
  if (plan.workspace_spec_.aligned) {
    plan.workspace_spec_.fused = sparse::FusedWorkspace::ComputeSpec(
        *plan.prepared_.dms()[0], plan.prepared_.size());
  }

  if (plan.options_.fallback_dm != nullptr) {
    // Snapshot the fallback DM so the plan owns everything it reads at
    // Execute time; a cached plan must not dangle on caller memory.
    plan.fallback_dm_ = std::make_shared<const sparse::CsrMatrix>(
        *plan.options_.fallback_dm);
    plan.options_.fallback_dm = plan.fallback_dm_.get();
    plan.fallback_shape_ok_ =
        plan.fallback_dm_->rows() == plan.prepared_.num_source() &&
        plan.fallback_dm_->cols() == plan.prepared_.num_target();
    if (plan.fallback_shape_ok_) {
      plan.fallback_row_sums_ = plan.fallback_dm_->RowSums();
    }
  }
  return plan;
}

Result<linalg::Vector> CrosswalkPlan::SolveWeightsNormalized(
    const linalg::Vector& b_normalized) const {
  if (options_.solver == WeightSolver::kSimplex) {
    // Fast path bypasses SolveWeightsForDesign, so it carries its own
    // weight_solve span/counter.
    GEOALIGN_TRACE_SPAN("execute.weight_solve");
    WeightSolveCount(WeightSolver::kSimplex).Add(1);
    GEOALIGN_ASSIGN_OR_RETURN(
        linalg::SimplexLsSolution sol,
        linalg::SolveSimplexLsFromNormalEquations(
            gram_, design_.MatTVec(b_normalized),
            linalg::Dot(b_normalized, b_normalized),
            options_.solver_options));
    return sol.beta;
  }
  return internal::SolveWeightsForDesign(design_, b_normalized, options_);
}

Result<linalg::Vector> CrosswalkPlan::LearnWeights(
    common::ColumnView objective_source) const {
  if (objective_source.size() != prepared_.num_source()) {
    return Status::InvalidArgument(
        "CrosswalkPlan: objective length does not match source units");
  }
  GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector b,
                            linalg::NormalizeByMax(objective_source));
  return SolveWeightsNormalized(b);
}

Result<CrosswalkResult> CrosswalkPlan::Execute(
    common::ColumnView objective_source) const {
  return Execute(objective_source, options_.threads);
}

Result<CrosswalkResult> CrosswalkPlan::Execute(
    common::ColumnView objective_source, size_t threads) const {
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(threads));
  return ExecuteWith(objective_source, pool.get());
}

Result<CrosswalkResult> CrosswalkPlan::Execute(
    common::ColumnView objective_source, ExecuteOutput output) const {
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(options_.threads));
  return ExecuteWith(objective_source, pool.get(), output, nullptr);
}

Result<CrosswalkResult> CrosswalkPlan::ExecuteWith(
    common::ColumnView objective_source, common::ThreadPool* pool) const {
  return ExecuteWith(objective_source, pool, ExecuteOutput::kFullDm, nullptr);
}

Result<CrosswalkResult> CrosswalkPlan::ExecuteWith(
    common::ColumnView objective_source, common::ThreadPool* pool,
    ExecuteOutput output, ExecuteWorkspace* workspace) const {
  if (objective_source.size() != prepared_.num_source()) {
    return Status::InvalidArgument(
        "CrosswalkPlan: objective length does not match source units");
  }
  GEOALIGN_TRACE_SPAN("execute");
  obs::Stopwatch execute_watch;
  const char* audit_mode = "materializing";

  // The body runs inside a lambda so the single exit point below can
  // publish one flight-recorder audit record per execute, success or
  // failure (the recorder is always on; see obs/flight_recorder.h).
  Result<CrosswalkResult> outcome = [&]() -> Result<CrosswalkResult> {
    CrosswalkResult result;
    Stopwatch watch;

    // Step 1: weight learning (Eq. 15) over the precompiled design.
    // (The weight_solve span lives inside the solver dispatch so it
    // covers every WeightSolver, simplex fast path included.)
    GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector b,
                              linalg::NormalizeByMax(objective_source));
    GEOALIGN_ASSIGN_OR_RETURN(linalg::Vector beta, SolveWeightsNormalized(b));
    result.timing.Add("weight_learning", watch.ElapsedSeconds());

    // Steps 2+3: disaggregation (Eq. 14) + re-aggregation (Eq. 17),
    // through one of two bit-identical lanes. The fused lane needs the
    // shared-structure invariant; a non-aligned prepared set asked for
    // aggregates only goes through the materializing lane and drops the
    // DM at the end.
    ExecuteWorkspace local_workspace;
    ExecuteWorkspace* ws =
        workspace != nullptr ? workspace : &local_workspace;
    const uint64_t allocs_before = ws->alloc_events();

    if (output == ExecuteOutput::kAggregatesOnly && prepared_.aligned()) {
      audit_mode = "fused";
      GEOALIGN_RETURN_IF_ERROR(
          ExecuteFusedAggregates(objective_source, beta, pool, ws, &result));
    } else {
      GEOALIGN_RETURN_IF_ERROR(
          ExecuteMaterializing(objective_source, beta, pool, ws, &result));
      if (output == ExecuteOutput::kAggregatesOnly) {
        result.estimated_dm = sparse::CsrMatrix();
      }
    }

    result.weights = std::move(beta);
    ZeroRowsTotal().Add(result.zero_rows.size());
    // Workspace telemetry (observe-only): growth events this execute,
    // and reuse of an externally supplied workspace that stayed warm.
    const uint64_t grown = ws->alloc_events() - allocs_before;
    HotPathAllocs().Add(grown);
    if (workspace != nullptr && grown == 0) WorkspaceReuse().Add(1);
    ExecuteCount().Add(1);
    ExecuteLatencyUs().Record(execute_watch.ElapsedMicros());
    return result;
  }();

  obs::AuditRecord audit;
  audit.plan_fingerprint = prepared_.fingerprint();
  std::strncpy(audit.mode, audit_mode, sizeof(audit.mode) - 1);
  audit.rows = prepared_.num_source();
  audit.latency_us = static_cast<uint64_t>(execute_watch.ElapsedMicros());
  if (outcome.ok()) {
    audit.zero_rows = outcome->zero_rows.size();
    audit.fallback =
        options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
                !outcome->zero_rows.empty()
            ? 1
            : 0;
  } else {
    audit.ok = 0;
  }
  obs::FlightRecorder::Global().Record(audit);
  return outcome;
}

const linalg::Vector& CrosswalkPlan::EffectiveWeights(
    const linalg::Vector& beta, ExecuteWorkspace* ws) const {
  // The scalar normalizers were hoisted at compile time; the division
  // itself must stay here — beta[k]/norm then times the raw DM is the
  // legacy operation order.
  size_t num_refs = prepared_.size();
  linalg::Vector& effective = ws->EffectiveWeights(num_refs);
  for (size_t k = 0; k < num_refs; ++k) {
    double norm = options_.scale_mode == ScaleMode::kNormalized
                      ? prepared_.reference(k).normalizer
                      : 1.0;
    effective[k] = beta[k] / norm;
  }
  return effective;
}

Status CrosswalkPlan::ExecuteMaterializing(
    common::ColumnView objective_source, const linalg::Vector& beta,
    common::ThreadPool* pool, ExecuteWorkspace* ws,
    CrosswalkResult* result) const {
  Stopwatch watch;
  sparse::CsrMatrix estimated;
  std::vector<size_t> zero_rows;
  {
    GEOALIGN_TRACE_SPAN("execute.eq14_disaggregate");
    size_t num_refs = prepared_.size();
    const linalg::Vector& effective = EffectiveWeights(beta, ws);

    Result<sparse::CsrMatrix> summed =
        prepared_.aligned()
            ? sparse::WeightedSumAligned(prepared_.dms(), effective, pool)
            : sparse::WeightedSum(prepared_.dms(), effective, pool);
    GEOALIGN_ASSIGN_OR_RETURN(sparse::CsrMatrix numerator, std::move(summed));

    linalg::Vector row_sums;
    const linalg::Vector* denom;
    if (options_.denominator == DenominatorMode::kFromDmRowSums) {
      row_sums = numerator.RowSums();
      denom = &row_sums;
    } else {
      linalg::Vector& agg = ws->Denominators(prepared_.num_source());
      for (size_t k = 0; k < num_refs; ++k) {
        if (ExactlyZero(effective[k])) continue;
        linalg::Axpy(effective[k], prepared_.reference(k).source_aggregates,
                     agg);
      }
      denom = &agg;
    }

    sparse::DivideRowsOrZero(numerator, *denom, options_.zero_tolerance,
                             &zero_rows, pool);
    numerator.ScaleRows(objective_source);
    estimated = std::move(numerator);

    if (options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
        !zero_rows.empty()) {
      if (!fallback_shape_ok_) {
        return Status::InvalidArgument("GeoAlign: fallback DM shape mismatch");
      }
      GEOALIGN_TRACE_SPAN("execute.fallback_rebuild");
      FallbackRebuilds().Add(1);
      const sparse::CsrMatrix& fb = *fallback_dm_;
      const linalg::Vector& fb_sums = fallback_row_sums_;
      std::vector<bool> is_zero_row(estimated.rows(), false);
      for (size_t r : zero_rows) is_zero_row[r] = true;
      sparse::CooBuilder builder(estimated.rows(), estimated.cols());
      for (size_t r = 0; r < estimated.rows(); ++r) {
        if (!is_zero_row[r]) {
          sparse::CsrMatrix::RowView row = estimated.Row(r);
          for (size_t k = 0; k < row.size; ++k) {
            builder.Add(r, row.cols[k], row.values[k]);
          }
          continue;
        }
        if (fb_sums[r] <= 0.0) continue;  // no fallback support either
        double scale = objective_source[r] / fb_sums[r];
        sparse::CsrMatrix::RowView row = fb.Row(r);
        for (size_t k = 0; k < row.size; ++k) {
          builder.Add(r, row.cols[k], row.values[k] * scale);
        }
      }
      estimated = builder.Build();
    }
  }
  result->timing.Add("disaggregation", watch.ElapsedSeconds());
  watch.Restart();

  {
    // Step 3: re-aggregation (Eq. 17).
    GEOALIGN_TRACE_SPAN("execute.eq17_reaggregate");
    result->target_estimates = sparse::ColSumsDeterministic(estimated, pool);
  }
  result->timing.Add("reaggregation", watch.ElapsedSeconds());

  result->estimated_dm = std::move(estimated);
  result->zero_rows = std::move(zero_rows);
  return Status::OK();
}

Status CrosswalkPlan::ExecuteFusedAggregates(
    common::ColumnView objective_source, const linalg::Vector& beta,
    common::ThreadPool* pool, ExecuteWorkspace* ws,
    CrosswalkResult* result) const {
  GEOALIGN_TRACE_SPAN("execute.fused");
  Stopwatch watch;
  const linalg::Vector& effective = EffectiveWeights(beta, ws);

  sparse::FusedAggregatesInputs in;
  in.mats = &prepared_.dms();
  in.weights = &effective;
  if (options_.denominator == DenominatorMode::kFromAggregates) {
    linalg::Vector& denom = ws->Denominators(prepared_.num_source());
    for (size_t k = 0; k < prepared_.size(); ++k) {
      if (ExactlyZero(effective[k])) continue;
      linalg::Axpy(effective[k], prepared_.reference(k).source_aggregates,
                   denom);
    }
    in.denominators = &denom;
  }  // kFromDmRowSums: the kernel derives the denominators in-pass.
  in.zero_tolerance = options_.zero_tolerance;
  in.row_scale = objective_source;
  // A fallback DM whose shape never validated is withheld from the
  // kernel; the error below fires on exactly the executes where the
  // materializing lane's rebuild would have failed (zero rows hit).
  const bool use_fallback =
      options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      fallback_shape_ok_;
  in.fallback_dm = use_fallback ? fallback_dm_.get() : nullptr;
  in.fallback_row_sums = use_fallback ? &fallback_row_sums_ : nullptr;

  GEOALIGN_RETURN_IF_ERROR(sparse::FusedAggregatesAligned(
      in, workspace_spec_.fused, &result->target_estimates,
      &result->zero_rows, &ws->fused(), pool));

  if (options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      !result->zero_rows.empty()) {
    if (!fallback_shape_ok_) {
      return Status::InvalidArgument("GeoAlign: fallback DM shape mismatch");
    }
    FallbackRebuilds().Add(1);
  }
  // One pass does Eq. 14 and Eq. 17 together; report it as the
  // disaggregation phase and an explicit zero for re-aggregation so
  // the timing key set matches the materializing lane.
  result->timing.Add("disaggregation", watch.ElapsedSeconds());
  result->timing.Add("reaggregation", 0.0);
  return Status::OK();
}

size_t CrosswalkPlan::panel_width() const {
  // GEOALIGN_PANEL_WIDTH (bench sweeps, CI experiments) wins; read
  // once per process, like GEOALIGN_FORCE_ISA. Unparsable values mean
  // "unset".
  static const size_t env_width = [] {
    const char* env = std::getenv("GEOALIGN_PANEL_WIDTH");
    if (env == nullptr || *env == '\0') return size_t{0};
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed < 1) return size_t{0};
    return std::min(static_cast<size_t>(parsed),
                    sparse::simd::kMaxPanelWidth);
  }();
  if (env_width != 0) return env_width;
  // One shared-structure traversal serves the whole panel either way;
  // vector ISAs take wider panels to fill their lanes, the scalar
  // reference keeps the per-row working set smaller.
  return sparse::simd::ActiveIsa() == sparse::simd::Isa::kScalar ? 8 : 16;
}

void CrosswalkPlan::ExecutePanelWith(
    const common::ColumnView* objectives,
    std::optional<Result<CrosswalkResult>>* const* results, size_t count,
    ExecuteWorkspace* workspace) const {
  if (count == 0) return;
  if (!prepared_.aligned()) {
    // Serving loops only route aligned plans here; keep the entry
    // total by degrading to the per-column lane.
    for (size_t i = 0; i < count; ++i) {
      results[i]->emplace(ExecuteWith(objectives[i], nullptr,
                                      ExecuteOutput::kAggregatesOnly,
                                      workspace));
    }
    return;
  }
  ExecuteWorkspace local_workspace;
  ExecuteWorkspace* ws = workspace != nullptr ? workspace : &local_workspace;
  for (size_t base = 0; base < count; base += sparse::simd::kMaxPanelWidth) {
    ExecuteOnePanel(objectives + base, results + base,
                    std::min(sparse::simd::kMaxPanelWidth, count - base), ws);
  }
}

void CrosswalkPlan::ExecuteOnePanel(
    const common::ColumnView* objectives,
    std::optional<Result<CrosswalkResult>>* const* results, size_t count,
    ExecuteWorkspace* ws) const {
  GEOALIGN_TRACE_SPAN("execute.panel");
  obs::Stopwatch execute_watch;
  const uint64_t allocs_before = ws->alloc_events();
  // The ISA (and with it the preferred panel width) is an execute-time
  // property — nothing about it is baked into the plan or its
  // fingerprint, so a plan cached under one ISA serves them all.
  const sparse::simd::Isa isa = sparse::simd::ActiveIsa();
  ws->PreparePanel(workspace_spec_, count);

  // Step 1 per column: weight learning (Eq. 15) stays scalar — lanes
  // are only ganged for the sparse traversal. A column whose solve
  // fails gets its error; the surviving lanes still share one panel.
  ExecuteWorkspace::PanelScratch& ps = ws->panel();
  ps.lanes.clear();
  for (size_t i = 0; i < count; ++i) {
    if (objectives[i].size() != prepared_.num_source()) {
      results[i]->emplace(Status::InvalidArgument(
          "CrosswalkPlan: objective length does not match source units"));
      continue;
    }
    Stopwatch watch;
    Result<linalg::Vector> b = linalg::NormalizeByMax(objectives[i]);
    if (!b.ok()) {
      results[i]->emplace(b.status());
      continue;
    }
    Result<linalg::Vector> beta = SolveWeightsNormalized(b.value());
    if (!beta.ok()) {
      results[i]->emplace(beta.status());
      continue;
    }
    results[i]->emplace(CrosswalkResult{});
    CrosswalkResult& res = (*results[i])->value();
    res.weights = std::move(beta).value();
    res.timing.Add("weight_learning", watch.ElapsedSeconds());
    ps.lanes.push_back(i);
  }
  const size_t width = ps.lanes.size();
  if (width == 0) return;

  // Steps 2+3: one fused panel pass. Lane-major effective weights are
  // the per-column β_k / normalizer_k divisions, verbatim.
  const size_t num_refs = prepared_.size();
  for (size_t mi = 0; mi < num_refs; ++mi) {
    double norm = options_.scale_mode == ScaleMode::kNormalized
                      ? prepared_.reference(mi).normalizer
                      : 1.0;
    for (size_t li = 0; li < width; ++li) {
      const CrosswalkResult& res = (*results[ps.lanes[li]])->value();
      ps.lane_weights[mi * width + li] = res.weights[mi] / norm;
    }
  }
  ps.row_scales.clear();
  ps.targets.clear();
  ps.zero_lists.clear();
  for (size_t li = 0; li < width; ++li) {
    CrosswalkResult& res = (*results[ps.lanes[li]])->value();
    ps.row_scales.push_back(objectives[ps.lanes[li]]);
    ps.targets.push_back(&res.target_estimates);
    ps.zero_lists.push_back(&res.zero_rows);
  }
  ps.operand_aggregates.clear();
  sparse::FusedPanelInputs in;
  in.mats = &prepared_.dms();
  in.lane_weights = ps.lane_weights.data();
  in.width = width;
  in.row_scales = ps.row_scales.data();
  if (options_.denominator == DenominatorMode::kFromAggregates) {
    // The kernel re-derives each lane's denominators per row with the
    // same operand-ascending accumulation as the hoisted linalg::Axpy
    // loop of the single-column lane — bit-identical per element.
    for (size_t mi = 0; mi < num_refs; ++mi) {
      ps.operand_aggregates.push_back(
          prepared_.reference(mi).source_aggregates);
    }
    in.operand_aggregates = ps.operand_aggregates.data();
  }
  in.zero_tolerance = options_.zero_tolerance;
  const bool use_fallback =
      options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
      fallback_shape_ok_;
  in.fallback_dm = use_fallback ? fallback_dm_.get() : nullptr;
  in.fallback_row_sums = use_fallback ? &fallback_row_sums_ : nullptr;

  Stopwatch kernel_watch;
  Status st = sparse::FusedAggregatesPanel(in, workspace_spec_.fused, isa,
                                           ps.targets.data(),
                                           ps.zero_lists.data(), &ws->fused());
  const double kernel_seconds = kernel_watch.ElapsedSeconds();

  // One always-on flight-recorder audit record per panel (the panel is
  // the execute unit in this lane; per-lane context lives in results).
  obs::AuditRecord audit;
  audit.plan_fingerprint = prepared_.fingerprint();
  std::strncpy(audit.mode, "panel", sizeof(audit.mode) - 1);
  audit.panel_width = static_cast<uint32_t>(width);
  audit.isa = static_cast<uint32_t>(isa);
  audit.rows = prepared_.num_source();

  if (!st.ok()) {
    for (size_t li = 0; li < width; ++li) results[ps.lanes[li]]->emplace(st);
    audit.ok = 0;
    audit.latency_us = static_cast<uint64_t>(execute_watch.ElapsedMicros());
    obs::FlightRecorder::Global().Record(audit);
    return;
  }
  for (size_t li = 0; li < width; ++li) {
    CrosswalkResult& res = (*results[ps.lanes[li]])->value();
    if (options_.zero_row_fallback == ZeroRowFallback::kFallbackDm &&
        !res.zero_rows.empty()) {
      if (!fallback_shape_ok_) {
        // Error parity with the materializing rebuild: exactly the
        // columns whose zero rows would have needed the bad-shape
        // fallback fail.
        results[ps.lanes[li]]->emplace(Status::InvalidArgument(
            "GeoAlign: fallback DM shape mismatch"));
        continue;
      }
      FallbackRebuilds().Add(1);
      ++audit.fallback;
    }
    audit.zero_rows += res.zero_rows.size();
    ZeroRowsTotal().Add(res.zero_rows.size());
    res.timing.Add("disaggregation", kernel_seconds);
    res.timing.Add("reaggregation", 0.0);
    ExecuteCount().Add(1);
  }

  // Panel-lane telemetry (observe-only): the dispatched ISA, the
  // served width, and the usual workspace health counters — one
  // execute latency per panel, not per column.
  ExecuteIsaGauge().Set(static_cast<int64_t>(isa));
  PanelWidthHist().Record(static_cast<double>(width));
  PanelCount().Add(1);
  const uint64_t grown = ws->alloc_events() - allocs_before;
  HotPathAllocs().Add(grown);
  if (grown == 0) WorkspaceReuse().Add(1);
  ExecuteLatencyUs().Record(execute_watch.ElapsedMicros());
  audit.latency_us = static_cast<uint64_t>(execute_watch.ElapsedMicros());
  obs::FlightRecorder::Global().Record(audit);
}

}  // namespace geoalign::core
