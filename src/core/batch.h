#ifndef GEOALIGN_CORE_BATCH_H_
#define GEOALIGN_CORE_BATCH_H_

#include <string>
#include <vector>

#include "core/geoalign.h"

namespace geoalign::common {
class ThreadPool;
}

namespace geoalign::core {

/// Realigns MANY objective attributes over one shared reference set —
/// the shape of the paper's envisioned "automatic aggregate data
/// integration system" (§6), where a data portal realigns every
/// column of every table onto a canonical unit system.
///
/// Compared to looping over `GeoAlign::Crosswalk`, the batch reuses
/// everything objective-independent: the normalized design matrix and
/// its Gram matrix for weight learning, and the per-reference
/// normalization factors for disaggregation. With R references and B
/// objectives this removes the O(B · R · |U^s|) re-normalization and
/// O(B · R² · |U^s|) Gram rebuild.
class BatchCrosswalk {
 public:
  /// Validates and preprocesses the shared references. All objectives
  /// passed to `Run` must use source vectors of `references[0]`'s
  /// length.
  static Result<BatchCrosswalk> Create(
      std::vector<ReferenceAttribute> references,
      GeoAlignOptions options = {});

  /// One objective column to realign.
  struct Objective {
    std::string name;
    linalg::Vector source;  ///< a^s_o
  };

  /// One realigned column.
  struct BatchResult {
    std::string name;
    linalg::Vector target_estimates;
    linalg::Vector weights;
    std::vector<size_t> zero_rows;
  };

  /// Realigns every objective; results are index-aligned with input.
  /// With `options.threads` != 1 the independent objectives run
  /// concurrently on a pool (the paper-§6 portal shape: every column
  /// of every table realigned at once); outputs are bit-identical to
  /// the sequential order for any thread count.
  Result<std::vector<BatchResult>> Run(
      const std::vector<Objective>& objectives) const;

  size_t NumSourceUnits() const { return num_source_; }
  size_t NumTargetUnits() const { return num_target_; }
  const std::vector<ReferenceAttribute>& references() const {
    return references_;
  }

 private:
  BatchCrosswalk(std::vector<ReferenceAttribute> references,
                 GeoAlignOptions options);

  /// Realigns one objective; `pool` parallelizes the sparse kernels
  /// inside this single crosswalk (null = inline).
  Result<BatchResult> RunOne(const Objective& objective,
                             common::ThreadPool* pool) const;

  std::vector<ReferenceAttribute> references_;
  GeoAlignOptions options_;
  size_t num_source_ = 0;
  size_t num_target_ = 0;
  // Objective-independent precomputations.
  linalg::Matrix design_;             // normalized reference columns A
  linalg::Matrix gram_;               // A^T A
  linalg::Vector normalizers_;        // max_i a^s_rk[i] per reference
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_BATCH_H_
