#ifndef GEOALIGN_CORE_BATCH_H_
#define GEOALIGN_CORE_BATCH_H_

#include <string>
#include <vector>

#include "core/crosswalk_plan.h"
#include "core/geoalign.h"

namespace geoalign::common {
class ThreadPool;
}

namespace geoalign::core {

/// Realigns MANY objective attributes over one shared reference set —
/// the shape of the paper's envisioned "automatic aggregate data
/// integration system" (§6), where a data portal realigns every
/// column of every table onto a canonical unit system.
///
/// A thin batching façade over CrosswalkPlan: `Create` compiles the
/// plan once (normalized design matrix, Gram matrix, per-reference
/// normalizers, DM structure), `Run` executes it per objective. With R
/// references and B objectives this removes the O(B · R · |U^s|)
/// re-normalization and O(B · R² · |U^s|) Gram rebuild that looping
/// over `GeoAlign::Crosswalk` would pay. Every WeightSolver is
/// supported (the plan hoists the Gram matrix only for kSimplex).
class BatchCrosswalk {
 public:
  /// Validates and compiles the shared references. All objectives
  /// passed to `Run` must use source vectors of `references[0]`'s
  /// length.
  static Result<BatchCrosswalk> Create(
      std::vector<ReferenceAttribute> references,
      GeoAlignOptions options = {});

  /// Zero-copy Create: the reference views flow into the compiled plan
  /// without duplicating an aggregate column or CSR array. The viewed
  /// memory must outlive the batch (attach keepalives to the views to
  /// make that automatic).
  static Result<BatchCrosswalk> Create(
      std::vector<ReferenceAttributeView> references,
      GeoAlignOptions options = {});

  /// One objective column to realign.
  struct Objective {
    std::string name;
    linalg::Vector source;  ///< a^s_o
  };

  /// One realigned column. The batch surface never exposes DM̂_o, so
  /// Run executes through the fused aggregates-only lane — the DM is
  /// never materialized on this path.
  struct BatchResult {
    std::string name;
    linalg::Vector target_estimates;
    linalg::Vector weights;
    std::vector<size_t> zero_rows;
  };

  /// Realigns every objective; results are index-aligned with input.
  /// With `options.threads` != 1 the independent objectives run
  /// concurrently on a pool (the paper-§6 portal shape: every column
  /// of every table realigned at once); outputs are bit-identical to
  /// the sequential order for any thread count.
  Result<std::vector<BatchResult>> Run(
      const std::vector<Objective>& objectives) const;

  size_t NumSourceUnits() const { return plan_.num_source_units(); }
  size_t NumTargetUnits() const { return plan_.num_target_units(); }

  /// The compiled plan executed per objective (also exposes the
  /// prepared references).
  const CrosswalkPlan& plan() const { return plan_; }

 private:
  explicit BatchCrosswalk(CrosswalkPlan plan);

  /// Realigns one objective; `pool` parallelizes the sparse kernels
  /// inside this single crosswalk (null = inline). `workspace` is the
  /// reusable per-slot buffer arena, sized once from the plan-compiled
  /// workspace spec.
  Result<BatchResult> RunOne(const Objective& objective,
                             common::ThreadPool* pool,
                             ExecuteWorkspace* workspace) const;

  CrosswalkPlan plan_;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_BATCH_H_
