#include "core/three_class_dasymetric.h"

#include <algorithm>
#include <cmath>

#include "linalg/nnls.h"
#include "linalg/stats.h"
#include "sparse/coo_builder.h"

namespace geoalign::core {

ThreeClassDasymetric::ThreeClassDasymetric(sparse::CsrMatrix measure_dm,
                                           ThreeClassOptions options)
    : measure_dm_(std::move(measure_dm)), options_(options) {}

Result<CrosswalkResult> ThreeClassDasymetric::Crosswalk(
    const CrosswalkInput& input) const {
  size_t ref_index = options_.reference_index;
  if (!options_.reference_name.empty()) {
    GEOALIGN_ASSIGN_OR_RETURN(ref_index,
                              input.FindReference(options_.reference_name));
  }
  if (ref_index >= input.references.size()) {
    return Status::OutOfRange("3-class dasymetric: reference index");
  }
  if (options_.num_classes == 0) {
    return Status::InvalidArgument("3-class dasymetric: zero classes");
  }
  size_t ns = input.NumSourceUnits();
  if (measure_dm_.rows() != ns) {
    return Status::InvalidArgument(
        "3-class dasymetric: measure DM does not match input");
  }
  const sparse::CsrMatrix& ref_dm =
      input.references[ref_index].disaggregation;
  if (ref_dm.rows() != ns || ref_dm.cols() != measure_dm_.cols()) {
    return Status::InvalidArgument(
        "3-class dasymetric: reference DM shape mismatch");
  }
  CrosswalkResult result;
  Stopwatch watch;

  // 1. Density of the classifying reference per intersection cell, and
  // the class thresholds (quantiles over cells weighted equally).
  linalg::Vector densities;
  for (size_t i = 0; i < ns; ++i) {
    sparse::CsrMatrix::RowView area_row = measure_dm_.Row(i);
    for (size_t k = 0; k < area_row.size; ++k) {
      double area = area_row.values[k];
      if (area <= 0.0) continue;
      densities.push_back(ref_dm.At(i, area_row.cols[k]) / area);
    }
  }
  if (densities.empty()) {
    return Status::InvalidArgument("3-class dasymetric: empty measure DM");
  }
  std::vector<double> thresholds;
  for (size_t c = 1; c < options_.num_classes; ++c) {
    thresholds.push_back(linalg::Quantile(
        densities, static_cast<double>(c) /
                       static_cast<double>(options_.num_classes)));
  }
  auto class_of = [&thresholds](double density) {
    size_t c = 0;
    while (c < thresholds.size() && density > thresholds[c]) ++c;
    return c;
  };

  // 2. Per-source-unit area in each class, and the NNLS fit of the
  // objective's per-class densities: a^s_o[i] ~ sum_c d_c * A[i][c].
  linalg::Matrix class_areas(ns, options_.num_classes);
  for (size_t i = 0; i < ns; ++i) {
    sparse::CsrMatrix::RowView area_row = measure_dm_.Row(i);
    for (size_t k = 0; k < area_row.size; ++k) {
      double area = area_row.values[k];
      if (area <= 0.0) continue;
      double density = ref_dm.At(i, area_row.cols[k]) / area;
      class_areas(i, class_of(density)) += area;
    }
  }
  GEOALIGN_ASSIGN_OR_RETURN(
      linalg::NnlsSolution fit,
      linalg::SolveNnls(class_areas, input.objective_source));
  result.weights = fit.x;  // the estimated class densities
  result.timing.Add("weight_learning", watch.ElapsedSeconds());
  watch.Restart();

  // 3. Spread each source unit by d_class * area, rescaled to the
  // unit's actual aggregate (volume preservation). Units whose class
  // weights vanish fall back to plain area weighting.
  sparse::CooBuilder builder(ns, measure_dm_.cols());
  std::vector<size_t> zero_rows;
  for (size_t i = 0; i < ns; ++i) {
    sparse::CsrMatrix::RowView area_row = measure_dm_.Row(i);
    double total = 0.0;
    double area_total = 0.0;
    for (size_t k = 0; k < area_row.size; ++k) {
      double area = area_row.values[k];
      if (area <= 0.0) continue;
      double density = ref_dm.At(i, area_row.cols[k]) / area;
      total += fit.x[class_of(density)] * area;
      area_total += area;
    }
    bool fallback = total <= 0.0;
    if (fallback && area_total <= 0.0) {
      zero_rows.push_back(i);
      continue;
    }
    double scale = input.objective_source[i] / (fallback ? area_total : total);
    for (size_t k = 0; k < area_row.size; ++k) {
      double area = area_row.values[k];
      if (area <= 0.0) continue;
      double density = ref_dm.At(i, area_row.cols[k]) / area;
      double w = fallback ? area : fit.x[class_of(density)] * area;
      if (w > 0.0) builder.Add(i, area_row.cols[k], w * scale);
    }
  }
  result.estimated_dm = builder.Build();
  result.timing.Add("disaggregation", watch.ElapsedSeconds());
  watch.Restart();
  result.target_estimates = result.estimated_dm.ColSums();
  result.timing.Add("reaggregation", watch.ElapsedSeconds());
  result.zero_rows = std::move(zero_rows);
  return result;
}

}  // namespace geoalign::core
