#ifndef GEOALIGN_CORE_CROSSWALK_INPUT_H_
#define GEOALIGN_CORE_CROSSWALK_INPUT_H_

#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "linalg/vector_ops.h"
#include "sparse/csr_matrix.h"
#include "sparse/prepared_reference.h"

namespace geoalign::core {

/// One reference attribute α_r: its aggregate vector on the source
/// units plus its disaggregation matrix DM_r between source and target
/// units (paper §3.3). The matrix rows must (approximately) sum to the
/// source aggregates — `CrosswalkInput::Validate` checks this.
struct ReferenceAttribute {
  std::string name;
  linalg::Vector source_aggregates;  ///< a^s_r, one entry per source unit
  sparse::CsrMatrix disaggregation;  ///< DM_r, |U^s| x |U^t|

  /// a^t_r = column sums of DM_r, handy for metrics/diagnostics.
  linalg::Vector TargetAggregates() const {
    return disaggregation.ColSums();
  }
};

/// Everything an aggregate-interpolation method may consume: the
/// objective attribute's source aggregates and the available reference
/// attributes (Algorithm 1's inputs).
struct CrosswalkInput {
  linalg::Vector objective_source;  ///< a^s_o
  std::vector<ReferenceAttribute> references;

  size_t NumSourceUnits() const { return objective_source.size(); }
  size_t NumTargetUnits() const {
    return references.empty() ? 0 : references[0].disaggregation.cols();
  }

  /// Checks structural consistency:
  ///  - at least one reference; all shapes agree;
  ///  - all aggregates and DM entries non-negative;
  ///  - each DM_r's rows sum to a^s_r within `consistency_tol`
  ///    (relative), the precondition for exact volume preservation.
  Status Validate(double consistency_tol = 1e-6) const;

  /// Returns the index of the reference named `name`.
  Result<size_t> FindReference(const std::string& name) const;

  /// Copy of this input restricted to the given reference indices
  /// (order preserved as listed). Used by leave-n-out experiments.
  Result<CrosswalkInput> WithReferenceSubset(
      const std::vector<size_t>& keep) const;
};

/// Zero-copy flavor of ReferenceAttribute: the aggregate column is a
/// borrowed view (optionally guarded by a keepalive) and the DM is
/// typically a borrowed-mode CsrMatrix. Identical to — and directly
/// consumed as — the sparse layer's Prepare input.
using ReferenceAttributeView = sparse::ReferenceDataView;

/// Zero-copy flavor of CrosswalkInput for embedding hosts that already
/// hold the aggregate columns in columnar memory (Arrow buffers, the C
/// ABI): compile paths consume the views without duplicating a single
/// aggregate column. The viewed memory must outlive the compile call;
/// whatever the compile produces retains only what it needs (the plan
/// keeps reading the reference views, so those must outlive the plan —
/// pass keepalives to make that automatic).
struct CrosswalkInputView {
  common::ColumnView objective_source;  ///< a^s_o
  std::vector<ReferenceAttributeView> references;

  size_t NumSourceUnits() const { return objective_source.size(); }
  size_t NumTargetUnits() const {
    return references.empty() ? 0 : references[0].disaggregation.cols();
  }

  /// Same checks — and byte-identical messages — as
  /// CrosswalkInput::Validate.
  Status Validate(double consistency_tol = 1e-6) const;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_CROSSWALK_INPUT_H_
