#ifndef GEOALIGN_CORE_EXECUTE_WORKSPACE_H_
#define GEOALIGN_CORE_EXECUTE_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "sparse/fused_execute.h"

namespace geoalign::core {

/// Per-plan scratch sizing, computed once at `CrosswalkPlan::Compile`
/// (`CrosswalkPlan::workspace_spec()`). Serving loops that used to
/// re-resolve scratch sizes on every iteration size their workspace
/// bank from this instead — nothing about buffer sizes is decided per
/// call.
struct ExecuteWorkspaceSpec {
  size_t num_references = 0;
  size_t num_source = 0;
  /// True when the prepared references share one CSR structure — the
  /// precondition of the fused aggregates-only lane.
  bool aligned = false;
  /// Fused-kernel sizing (chunk count, widest row); meaningful only
  /// when `aligned`.
  sparse::FusedWorkspace::Spec fused;
};

/// Reusable per-execute buffers for `CrosswalkPlan::ExecuteWith`: the
/// effective-weight and denominator vectors plus the fused kernel's
/// arena. One workspace serves one concurrent execute at a time;
/// serving loops keep one per worker slot and reuse it across
/// objective columns so steady-state executes never grow a buffer.
///
/// alloc_events() counts buffer growth (including the fused arena's)
/// across the workspace's lifetime; `CrosswalkPlan::ExecuteWith`
/// reports the per-execute delta as `execute.hot_path_allocs` and
/// counts zero-growth externally-supplied workspaces as
/// `execute.workspace_reuse` (docs/observability.md). A workspace
/// passed through Prepare() once reports zero growth for every later
/// execute of that plan.
class ExecuteWorkspace {
 public:
  ExecuteWorkspace() = default;
  ExecuteWorkspace(const ExecuteWorkspace&) = delete;
  ExecuteWorkspace& operator=(const ExecuteWorkspace&) = delete;
  ExecuteWorkspace(ExecuteWorkspace&&) = default;
  ExecuteWorkspace& operator=(ExecuteWorkspace&&) = default;

  /// Per-panel serving scratch for CrosswalkPlan::ExecutePanelWith:
  /// the lane-major effective-weight staging plus the per-lane pointer
  /// arrays handed to sparse::FusedAggregatesPanel. Sized by
  /// PreparePanel; reused across panels so the steady-state panel lane
  /// grows nothing.
  struct PanelScratch {
    std::vector<double> lane_weights;  ///< references × width, lane-major
    std::vector<common::ColumnView> row_scales;
    std::vector<common::ColumnView> operand_aggregates;
    std::vector<linalg::Vector*> targets;
    std::vector<std::vector<size_t>*> zero_lists;
    std::vector<size_t> lanes;  ///< panel-local → caller column index
  };

  /// Eagerly grows every buffer to cover `spec` with `slots`
  /// concurrently usable fused row-scratch slots (1 when executes run
  /// inline, pool size + 1 when a pool runs the chunks). Monotonic;
  /// call once per (plan, pool) to make later executes growth-free.
  void Prepare(const ExecuteWorkspaceSpec& spec, size_t slots);

  /// Eagerly grows the panel-lane buffers (this scratch plus the fused
  /// arena's panel arenas) for panels of up to `width` columns.
  /// Monotonic like Prepare; serving loops call it once at the plan's
  /// panel width so later panel executes are growth-free.
  void PreparePanel(const ExecuteWorkspaceSpec& spec, size_t width);

  /// The panel serving scratch (sized by PreparePanel).
  PanelScratch& panel() { return panel_; }

  /// The effective-weight buffer, reset to `n` zeros (grows only if
  /// capacity is short).
  linalg::Vector& EffectiveWeights(size_t n);

  /// The Eq. 14 denominator buffer, reset to `n` zeros.
  linalg::Vector& Denominators(size_t n);

  /// The fused kernel's buffer arena.
  sparse::FusedWorkspace& fused() { return fused_; }

  /// Cumulative buffer growth events, fused arena included.
  uint64_t alloc_events() const {
    return alloc_events_ + fused_.alloc_events();
  }

 private:
  linalg::Vector& Reset(linalg::Vector& v, size_t n);

  linalg::Vector effective_weights_;
  linalg::Vector denominators_;
  sparse::FusedWorkspace fused_;
  PanelScratch panel_;
  uint64_t alloc_events_ = 0;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_EXECUTE_WORKSPACE_H_
