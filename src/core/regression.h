#ifndef GEOALIGN_CORE_REGRESSION_H_
#define GEOALIGN_CORE_REGRESSION_H_

#include "core/interpolator.h"

namespace geoalign::core {

/// Options for the regression baseline.
struct RegressionOptions {
  /// Adds an intercept column scaled by the unit measures is not
  /// available here, so a plain constant column is used.
  bool include_intercept = false;
  /// Clamp negative target predictions to zero.
  bool clamp_non_negative = true;
};

/// The classic regression family of areal-interpolation methods the
/// paper surveys in §5 [Flowerdew & Green 1994; Goodchild et al. 1993]:
/// fit the objective's SOURCE aggregates on the references' source
/// aggregates by ordinary least squares, then predict TARGET aggregates
/// from the references' target aggregates.
///
/// Included as a contrast baseline: unlike GeoAlign it is neither
/// volume preserving nor constrained to non-negative mixing, and it
/// suffers exactly the train/test linkage problem the paper points out
/// in §3.2 (source and target units are not samples from one
/// population). `CrosswalkResult::estimated_dm` is left empty — the
/// method has no disaggregation-matrix interpretation.
class RegressionBaseline : public Interpolator {
 public:
  explicit RegressionBaseline(RegressionOptions options = {});

  std::string name() const override { return "regression"; }

  Result<CrosswalkResult> Crosswalk(
      const CrosswalkInput& input) const override;

 private:
  RegressionOptions options_;
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_REGRESSION_H_
