#ifndef GEOALIGN_CORE_GEOALIGN_H_
#define GEOALIGN_CORE_GEOALIGN_H_

#include "core/crosswalk_plan.h"
#include "core/geoalign_options.h"
#include "core/interpolator.h"

namespace geoalign::core {

/// The paper's contribution (Algorithm 1): an adaptive multi-reference
/// crosswalk.
///
///  1. Weight learning — β = argmin ||A β - b||² on the probability
///     simplex, where A's columns are the max-normalized reference
///     aggregate vectors at source level and b is the normalized
///     objective (Eq. 15).
///  2. Disaggregation — DM̂_o[i,j] = (Σ_k β_k DM'_rk[i,j]) /
///     (Σ_k β_k a'^s_rk[i]) · a^s_o[i] (Eq. 14).
///  3. Re-aggregation — â^t_o = column sums of DM̂_o (Eq. 17).
///
/// Dimension-independent: nothing here inspects geometry, only
/// aggregate vectors and disaggregation matrices.
///
/// Two ways to run it:
///  - `Crosswalk(input)` — the Interpolator entry point; internally a
///    thin Compile → Execute wrapper.
///  - `Compile(input) → CrosswalkPlan`, then `plan.Execute(objective)`
///    for each objective column — amortizes every objective-
///    independent step (normalization, design/Gram assembly, DM
///    walks) across columns. Bit-identical to `Crosswalk` per the
///    CrosswalkPlan contract.
class GeoAlign : public Interpolator {
 public:
  explicit GeoAlign(GeoAlignOptions options = {});

  std::string name() const override { return "GeoAlign"; }

  Result<CrosswalkResult> Crosswalk(
      const CrosswalkInput& input) const override;

  /// Compiles the objective-independent half of Algorithm 1 for
  /// `input.references` (the objective column is ignored). The plan is
  /// immutable, independent of this interpolator's lifetime, and
  /// reusable for any number of `Execute` calls.
  Result<CrosswalkPlan> Compile(const CrosswalkInput& input) const;

  /// Same, from a bare reference list.
  Result<CrosswalkPlan> Compile(
      const std::vector<ReferenceAttribute>& references) const;

  /// Runs only step 1 and returns β. Exposed for experiments that
  /// inspect weights (e.g. §4.4.2 reference-selection analysis).
  Result<linalg::Vector> LearnWeights(const CrosswalkInput& input) const;

  const GeoAlignOptions& options() const { return options_; }

 private:
  GeoAlignOptions options_;
};

/// The legacy recompile-per-call implementation of Algorithm 1,
/// preserved verbatim from before the compile/execute split. This is
/// the reference oracle that `plan_equivalence_test` compares the
/// compiled path against, and the baseline arm of
/// bench/realign_throughput — it must keep redoing all objective-
/// independent work per call, so do not "optimize" it. Production code
/// goes through GeoAlign::Crosswalk or a CrosswalkPlan instead
/// (enforced in src/ hot paths by the geoalign-plan-bypass lint).
Result<CrosswalkResult> CrosswalkUncompiled(const CrosswalkInput& input,
                                            const GeoAlignOptions& options);

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_GEOALIGN_H_
