#ifndef GEOALIGN_CORE_CROSSWALK_PLAN_H_
#define GEOALIGN_CORE_CROSSWALK_PLAN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "core/crosswalk_input.h"
#include "core/execute_workspace.h"
#include "core/geoalign_options.h"
#include "core/interpolator.h"
#include "linalg/matrix.h"
#include "sparse/prepared_reference.h"

namespace geoalign::core {

namespace internal {

/// Learns β for a prebuilt normalized design (Eq. 15) under every
/// WeightSolver — the solver dispatch previously private to
/// GeoAlign::Crosswalk, shared verbatim by the legacy path and the
/// compiled plan so both learn bit-identical weights.
Result<linalg::Vector> SolveWeightsForDesign(const linalg::Matrix& a,
                                             const linalg::Vector& b,
                                             const GeoAlignOptions& options);

}  // namespace internal

/// The compiled, objective-independent half of a GeoAlign crosswalk
/// (Algorithm 1): prepared references, the normalized design matrix of
/// Eq. 15 (plus its Gram matrix for the simplex solver), and a
/// snapshot of the zero-row fallback DM. Compile once, then Execute
/// for any number of objective columns.
///
/// Bit-identity contract: for every objective vector and every
/// {ScaleMode, WeightSolver, DenominatorMode, ZeroRowFallback} ×
/// threads combination, `Compile(input, opts) → Execute(obj)` produces
/// exactly the bits of the legacy per-call path (`CrosswalkUncompiled`
/// in core/geoalign.h). The hoisted quantities make that possible:
///  - the simplex solve goes through SolveSimplexLsFromNormalEquations,
///    which is the literal tail of SolveSimplexLeastSquares, so a
///    precomputed Gram matrix changes nothing;
///  - DMs stay raw with a scalar normalizer folded into the per-execute
///    effective weights, exactly as the legacy loop does (pre-scaling
///    the matrix values would reorder IEEE divisions);
///  - the structure-sharing WeightedSumAligned kernel accumulates per
///    entry in operand order from 0.0, the same addition sequence as
///    the general scatter-gather kernel.
///
/// Immutable after Compile and safe to share across threads: Execute
/// is const and touches no mutable state. Move-only (the prepared set
/// holds internal pointers that survive moves but not copies).
class CrosswalkPlan {
 public:
  /// Compiles the objective-independent work for `input.references`
  /// (the objective column in `input` is ignored). Surfaces the same
  /// errors as the legacy path's per-call preprocessing: no
  /// references, shape mismatches, non-normalizable aggregates, and a
  /// missing fallback DM under ZeroRowFallback::kFallbackDm. When a
  /// fallback DM is supplied it is snapshotted, so the plan never
  /// dangles on the caller's pointer.
  static Result<CrosswalkPlan> Compile(const CrosswalkInput& input,
                                       const GeoAlignOptions& options);

  /// Same, from a bare reference list.
  static Result<CrosswalkPlan> Compile(
      const std::vector<ReferenceAttribute>& references,
      const GeoAlignOptions& options);

  /// Zero-copy compile: the reference aggregate columns stay borrowed
  /// caller memory all the way into the prepared set — no aggregate
  /// column is duplicated (the `ingest.bytes_copied` counter stays
  /// flat). The viewed memory must outlive the plan; attach keepalives
  /// to the views to make that automatic. Surfaces the same errors —
  /// and produces the same fingerprint for the same bytes — as the
  /// owning overloads, so PlanCache keys are ingest-path independent.
  static Result<CrosswalkPlan> Compile(CrosswalkInputView input,
                                       const GeoAlignOptions& options);

  /// Same, from a bare reference-view list.
  static Result<CrosswalkPlan> Compile(
      std::vector<ReferenceAttributeView> references,
      const GeoAlignOptions& options);

  CrosswalkPlan(CrosswalkPlan&&) = default;
  CrosswalkPlan& operator=(CrosswalkPlan&&) = default;
  CrosswalkPlan(const CrosswalkPlan&) = delete;
  CrosswalkPlan& operator=(const CrosswalkPlan&) = delete;

  /// Runs weight learning (Eq. 15) + disaggregation (Eq. 14) +
  /// re-aggregation (Eq. 17) for one objective column, spinning up a
  /// pool per `options().threads` (the legacy Crosswalk behaviour).
  /// Objective columns are borrowed views (a `linalg::Vector` converts
  /// implicitly) valid for the duration of the call only.
  Result<CrosswalkResult> Execute(common::ColumnView objective_source) const;

  /// Same, overriding the thread count for this execution only
  /// (0 = hardware concurrency, 1 = inline).
  Result<CrosswalkResult> Execute(common::ColumnView objective_source,
                                  size_t threads) const;

  /// Same as Execute(objective_source), selecting the output shape:
  /// ExecuteOutput::kAggregatesOnly takes the fused Eq. 14+17 lane
  /// (aligned reference structures) and never materializes DM̂_o.
  Result<CrosswalkResult> Execute(common::ColumnView objective_source,
                                  ExecuteOutput output) const;

  /// Same, running the parallel kernels on a caller-owned pool
  /// (nullptr = inline). This is the serving-path entry: RealignMany
  /// and BatchCrosswalk execute one shared plan across their outer
  /// pool.
  Result<CrosswalkResult> ExecuteWith(common::ColumnView objective_source,
                                      common::ThreadPool* pool) const;

  /// Full serving-path entry: output shape plus an optional reusable
  /// workspace (sized per workspace_spec(); grown only if needed, so
  /// steady-state executes through a prepared workspace perform zero
  /// hot-path buffer growth — the `execute.hot_path_allocs` /
  /// `execute.workspace_reuse` counters). A workspace serves one
  /// concurrent execute at a time; nullptr uses a per-call local one.
  /// Bit-identity: output shape and workspace reuse never change any
  /// produced value — `target_estimates`, `weights`, and `zero_rows`
  /// carry exactly the kFullDm/no-workspace bits.
  Result<CrosswalkResult> ExecuteWith(common::ColumnView objective_source,
                                      common::ThreadPool* pool,
                                      ExecuteOutput output,
                                      ExecuteWorkspace* workspace) const;

  /// Executes `count` objective columns as fused column panels
  /// (aggregates-only): weight learning stays scalar per column, then
  /// one shared-structure traversal per panel serves every lane
  /// through the vectorized sparse::FusedAggregatesPanel kernel,
  /// dispatched on the active ISA (sparse/simd/). `results[i]`
  /// receives column i's result or error — the same per-column
  /// statuses and exactly the same bits as per-column
  /// ExecuteWith(kAggregatesOnly) calls, at every panel width, ISA,
  /// and thread count.
  ///
  /// `objectives` is an array of `count` borrowed column views and
  /// `results` an array of `count` non-null pointers; `workspace` is
  /// the reusable per-slot arena (nullptr uses a per-call local one).
  /// Serving loops slice their columns into panels of panel_width()
  /// and run one call per panel; counts above simd::kMaxPanelWidth are
  /// split internally. Non-aligned prepared sets fall back to
  /// per-column ExecuteWith.
  void ExecutePanelWith(const common::ColumnView* objectives,
                        std::optional<Result<CrosswalkResult>>* const* results,
                        size_t count, ExecuteWorkspace* workspace) const;

  /// The serving panel width (columns per ExecutePanelWith call) —
  /// derived at execute time from the active SIMD ISA, overridable
  /// with GEOALIGN_PANEL_WIDTH (clamped to [1, simd::kMaxPanelWidth]).
  /// Deliberately NOT part of the plan or its fingerprint: a PlanCache
  /// entry compiled under one ISA must execute identically under any
  /// other, so serving layers ask the plan at execute time instead of
  /// baking a width into cached state (BatchCrosswalk::Run and
  /// CrosswalkPipeline::RealignMany never take a caller width).
  size_t panel_width() const;

  /// Weight learning only (Eq. 15) — β for one objective column.
  Result<linalg::Vector> LearnWeights(
      common::ColumnView objective_source) const;

  size_t num_source_units() const { return prepared_.num_source(); }
  size_t num_target_units() const { return prepared_.num_target(); }
  const GeoAlignOptions& options() const { return options_; }
  const sparse::PreparedReferenceSet& references() const { return prepared_; }

  /// Content fingerprint of the prepared reference set (names,
  /// aggregates, CSR arrays) — the reference half of a PlanCache key.
  uint64_t fingerprint() const { return prepared_.fingerprint(); }

  /// Scratch sizing for ExecuteWorkspace, fixed at Compile time —
  /// serving loops size their workspace bank from this once instead of
  /// re-resolving scratch sizes per call.
  const ExecuteWorkspaceSpec& workspace_spec() const {
    return workspace_spec_;
  }

 private:
  CrosswalkPlan(sparse::PreparedReferenceSet prepared,
                GeoAlignOptions options);

  /// The shared Compile tail: design matrix, Gram, workspace spec,
  /// fallback snapshot — everything after the prepared set exists.
  /// Telemetry stays in the public Compile entries.
  static Result<CrosswalkPlan> FinishCompile(
      sparse::PreparedReferenceSet prepared, const GeoAlignOptions& options);

  /// β for an already max-normalized objective vector.
  Result<linalg::Vector> SolveWeightsNormalized(
      const linalg::Vector& b_normalized) const;

  /// Eq. 14+15-effective-weight prologue shared by both lanes: fills
  /// the workspace's effective-weight buffer with β_k / normalizer_k.
  const linalg::Vector& EffectiveWeights(const linalg::Vector& beta,
                                         ExecuteWorkspace* ws) const;

  /// The materializing lane: WeightedSum → DivideRowsOrZero →
  /// ScaleRows → [fallback rebuild] → ColSumsDeterministic; fills
  /// result's estimated_dm / target_estimates / zero_rows / timing.
  Status ExecuteMaterializing(common::ColumnView objective_source,
                              const linalg::Vector& beta,
                              common::ThreadPool* pool, ExecuteWorkspace* ws,
                              CrosswalkResult* result) const;

  /// The fused aggregates-only lane (aligned structures only):
  /// sparse::FusedAggregatesAligned straight into target_estimates.
  Status ExecuteFusedAggregates(common::ColumnView objective_source,
                                const linalg::Vector& beta,
                                common::ThreadPool* pool,
                                ExecuteWorkspace* ws,
                                CrosswalkResult* result) const;

  /// One panel (count <= simd::kMaxPanelWidth) of the panel lane:
  /// per-column weight solves, lane-major weight staging, one
  /// FusedAggregatesPanel call, per-column result fill.
  void ExecuteOnePanel(const common::ColumnView* objectives,
                       std::optional<Result<CrosswalkResult>>* const* results,
                       size_t count, ExecuteWorkspace* ws) const;

  sparse::PreparedReferenceSet prepared_;
  GeoAlignOptions options_;
  linalg::Matrix design_;  ///< Eq. 15 design A (normalized columns)
  linalg::Matrix gram_;    ///< A^T A; populated for kSimplex only
  /// Owned snapshot of options.fallback_dm (kFallbackDm only); after
  /// Compile, options_.fallback_dm points here, never at caller memory.
  std::shared_ptr<const sparse::CsrMatrix> fallback_dm_;
  linalg::Vector fallback_row_sums_;  ///< row sums of *fallback_dm_
  bool fallback_shape_ok_ = false;
  ExecuteWorkspaceSpec workspace_spec_;  ///< scratch sizing, see accessor
};

}  // namespace geoalign::core

#endif  // GEOALIGN_CORE_CROSSWALK_PLAN_H_
