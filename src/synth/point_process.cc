#include "synth/point_process.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace geoalign::synth {

std::vector<geom::Point> SampleUniform(const geom::BBox& bounds, size_t n,
                                       Rng& rng) {
  std::vector<geom::Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({rng.Uniform(bounds.min_x, bounds.max_x),
                   rng.Uniform(bounds.min_y, bounds.max_y)});
  }
  return out;
}

std::vector<geom::Point> SampleGaussianMixture(
    const geom::BBox& bounds, const std::vector<GaussianCluster>& mixture,
    size_t n, Rng& rng) {
  GEOALIGN_CHECK(!mixture.empty()) << "SampleGaussianMixture: empty mixture";
  std::vector<double> weights;
  weights.reserve(mixture.size());
  for (const GaussianCluster& c : mixture) weights.push_back(c.weight);
  std::vector<geom::Point> out;
  out.reserve(n);
  while (out.size() < n) {
    const GaussianCluster& c = mixture[rng.Categorical(weights)];
    geom::Point p{rng.Gaussian(c.center.x, c.sigma),
                  rng.Gaussian(c.center.y, c.sigma)};
    if (bounds.Contains(p)) out.push_back(p);
  }
  return out;
}

std::vector<geom::Point> SampleThomasProcess(const geom::BBox& bounds,
                                             size_t num_parents,
                                             double mean_children,
                                             double sigma, Rng& rng) {
  std::vector<geom::Point> parents = SampleUniform(bounds, num_parents, rng);
  std::vector<geom::Point> out;
  for (const geom::Point& parent : parents) {
    int64_t children = rng.Poisson(mean_children);
    for (int64_t c = 0; c < children; ++c) {
      // A bounded number of rejection retries keeps edge parents from
      // spinning; dropped offspring just thin the process slightly.
      for (int attempt = 0; attempt < 16; ++attempt) {
        geom::Point p{rng.Gaussian(parent.x, sigma),
                      rng.Gaussian(parent.y, sigma)};
        if (bounds.Contains(p)) {
          out.push_back(p);
          break;
        }
      }
    }
  }
  return out;
}

std::vector<geom::Point> SampleCorridors(
    const geom::BBox& bounds,
    const std::vector<std::pair<geom::Point, geom::Point>>& segments,
    double width, size_t n, Rng& rng) {
  GEOALIGN_CHECK(!segments.empty()) << "SampleCorridors: no segments";
  std::vector<double> lengths;
  lengths.reserve(segments.size());
  for (const auto& [a, b] : segments) {
    lengths.push_back(std::max(geom::Distance(a, b), 1e-12));
  }
  std::vector<geom::Point> out;
  out.reserve(n);
  size_t guard = 0;
  while (out.size() < n && guard < 64 * n + 1024) {
    ++guard;
    const auto& [a, b] = segments[rng.Categorical(lengths)];
    double t = rng.NextDouble();
    geom::Point base{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
    geom::Point p{rng.Gaussian(base.x, width), rng.Gaussian(base.y, width)};
    if (bounds.Contains(p)) out.push_back(p);
  }
  return out;
}

std::vector<geom::Point> ThinPoints(const std::vector<geom::Point>& points,
                                    double keep_prob, double jitter_sigma,
                                    const geom::BBox& bounds, Rng& rng) {
  std::vector<geom::Point> out;
  out.reserve(
      static_cast<size_t>(static_cast<double>(points.size()) * keep_prob) + 1);
  for (const geom::Point& p : points) {
    if (!rng.Bernoulli(keep_prob)) continue;
    geom::Point q{rng.Gaussian(p.x, jitter_sigma),
                  rng.Gaussian(p.y, jitter_sigma)};
    q.x = std::clamp(q.x, bounds.min_x, bounds.max_x);
    q.y = std::clamp(q.y, bounds.min_y, bounds.max_y);
    out.push_back(q);
  }
  return out;
}

}  // namespace geoalign::synth
