#ifndef GEOALIGN_SYNTH_UNIVERSE_H_
#define GEOALIGN_SYNTH_UNIVERSE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/crosswalk_input.h"
#include "synth/dataset_suite.h"

namespace geoalign::synth {

/// The six nested universes of the paper's scalability study (§4.3):
/// New York ⊂ Mid-Atlantic ⊂ Northeast ⊂ Eastern Time Zone ⊂ Non-West
/// ⊂ United States. Each is a prefix of the same deterministic state
/// sequence, so a smaller universe's geography and data are exactly a
/// subset of a larger one's.
enum class UniverseId {
  kNewYork,
  kMidAtlantic,
  kNortheast,
  kEasternTime,
  kNonWest,
  kUnitedStates,
};

/// All universes in ascending size order.
std::vector<UniverseId> AllUniverses();

/// Display name used in reports ("New York State", ...).
const char* UniverseName(UniverseId id);

/// Number of state tiles in the universe (1, 3, 9, 17, 37, 49).
size_t UniverseStateCount(UniverseId id);

/// Options for building a universe.
struct UniverseOptions {
  uint64_t seed = 2018;
  /// Multiplies per-state zip/county counts (and with them the atom
  /// grid). 1.0 reproduces paper-scale unit counts (US ≈ 30k zips /
  /// 3.1k counties); tests use small fractions.
  double scale = 1.0;
  /// Dataset collection; defaults to the NY suite for kNewYork and the
  /// US suite otherwise (the scalability benchmark overrides this to
  /// use the US suite everywhere, like the paper's §4.3 subsetting).
  std::optional<SuiteKind> suite;
};

/// A fully materialized experimental universe: geography, zip×county
/// overlay, area DM, and the dataset collection.
struct Universe {
  std::string name;
  std::unique_ptr<SyntheticGeography> geography;
  partition::OverlayResult overlay;
  sparse::CsrMatrix measure_dm;  ///< area reference (areal weighting)
  std::vector<Dataset> datasets;

  size_t NumZips() const { return geography->zips().NumUnits(); }
  size_t NumCounties() const { return geography->counties().NumUnits(); }

  /// Index of the dataset with the given name.
  Result<size_t> FindDataset(const std::string& dataset_name) const;

  /// Builds the cross-validation input for `test_index`: the test
  /// dataset's source vector is the objective; every other dataset
  /// becomes a reference (paper §4.1).
  Result<core::CrosswalkInput> MakeLeaveOneOutInput(size_t test_index) const;
};

/// Builds the universe deterministically from options.
Result<Universe> BuildUniverse(UniverseId id, const UniverseOptions& options);

}  // namespace geoalign::synth

#endif  // GEOALIGN_SYNTH_UNIVERSE_H_
