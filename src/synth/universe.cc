#include "synth/universe.h"

#include <algorithm>
#include <cmath>

namespace geoalign::synth {

std::vector<UniverseId> AllUniverses() {
  return {UniverseId::kNewYork,     UniverseId::kMidAtlantic,
          UniverseId::kNortheast,   UniverseId::kEasternTime,
          UniverseId::kNonWest,     UniverseId::kUnitedStates};
}

const char* UniverseName(UniverseId id) {
  switch (id) {
    case UniverseId::kNewYork:
      return "New York State";
    case UniverseId::kMidAtlantic:
      return "Mid-Atlantic States";
    case UniverseId::kNortheast:
      return "Northeast States";
    case UniverseId::kEasternTime:
      return "Eastern Time Zone States";
    case UniverseId::kNonWest:
      return "Non-West States";
    case UniverseId::kUnitedStates:
      return "United States";
  }
  return "?";
}

size_t UniverseStateCount(UniverseId id) {
  switch (id) {
    case UniverseId::kNewYork:
      return 1;
    case UniverseId::kMidAtlantic:
      return 3;
    case UniverseId::kNortheast:
      return 9;
    case UniverseId::kEasternTime:
      return 17;
    case UniverseId::kNonWest:
      return 37;
    case UniverseId::kUnitedStates:
      return 49;
  }
  return 0;
}

Result<size_t> Universe::FindDataset(const std::string& dataset_name) const {
  for (size_t i = 0; i < datasets.size(); ++i) {
    if (datasets[i].name == dataset_name) return i;
  }
  return Status::NotFound("no dataset named '" + dataset_name + "'");
}

Result<core::CrosswalkInput> Universe::MakeLeaveOneOutInput(
    size_t test_index) const {
  if (test_index >= datasets.size()) {
    return Status::OutOfRange("MakeLeaveOneOutInput: bad dataset index");
  }
  core::CrosswalkInput input;
  input.objective_source = datasets[test_index].source;
  for (size_t k = 0; k < datasets.size(); ++k) {
    if (k == test_index) continue;
    core::ReferenceAttribute ref;
    ref.name = datasets[k].name;
    ref.source_aggregates = datasets[k].source;
    ref.disaggregation = datasets[k].dm;
    input.references.push_back(std::move(ref));
  }
  return input;
}

Result<Universe> BuildUniverse(UniverseId id, const UniverseOptions& options) {
  if (options.scale <= 0.0 || options.scale > 4.0) {
    return Status::InvalidArgument("BuildUniverse: scale out of range");
  }
  size_t num_states = UniverseStateCount(id);

  // Per-state unit counts come from a fixed master stream so every
  // universe sees the same values for its shared states (the paper's
  // nesting / factor-control argument, §4.3). State 0 is pinned to
  // New York's real counts.
  GeographyParams params;
  params.num_states = num_states;
  params.seed = options.seed;
  Rng counts_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  for (size_t s = 0; s < num_states; ++s) {
    size_t zips;
    size_t counties;
    if (s == 0) {
      zips = 1763;
      counties = 62;
    } else {
      zips = 450 + counts_rng.UniformInt(uint64_t{330});
      counties = 44 + counts_rng.UniformInt(uint64_t{42});
    }
    zips = std::max<size_t>(
        8, static_cast<size_t>(
               std::llround(static_cast<double>(zips) * options.scale)));
    counties = std::max<size_t>(
        2, static_cast<size_t>(
               std::llround(static_cast<double>(counties) * options.scale)));
    params.zips_per_state.push_back(zips);
    params.counties_per_state.push_back(counties);
  }

  Universe uni;
  uni.name = UniverseName(id);
  GEOALIGN_ASSIGN_OR_RETURN(SyntheticGeography geo,
                            SyntheticGeography::Build(params));
  uni.geography = std::make_unique<SyntheticGeography>(std::move(geo));
  GEOALIGN_ASSIGN_OR_RETURN(
      uni.overlay, partition::OverlayCells(uni.geography->zips(),
                                           uni.geography->counties()));
  uni.measure_dm = uni.overlay.MeasureDm();

  SuiteKind suite = options.suite.value_or(id == UniverseId::kNewYork
                                               ? SuiteKind::kNewYorkState
                                               : SuiteKind::kUnitedStates);
  GEOALIGN_ASSIGN_OR_RETURN(
      uni.datasets,
      GenerateDatasets(*uni.geography, uni.overlay, suite,
                       options.seed ^ 0xda3e39cb94b95bdbULL));
  return uni;
}

}  // namespace geoalign::synth
