#ifndef GEOALIGN_SYNTH_GEOGRAPHY_H_
#define GEOALIGN_SYNTH_GEOGRAPHY_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "partition/cell_partition.h"
#include "synth/point_process.h"

namespace geoalign::synth {

/// Parameters of a synthetic multi-state geography.
struct GeographyParams {
  /// States used; laid out on a row-major grid of square tiles,
  /// `grid_cols` tiles per row.
  size_t num_states = 1;
  size_t grid_cols = 7;
  /// Side length of each state tile.
  double state_size = 100.0;
  /// Atom-grid resolution is chosen so each zip averages about this
  /// many atoms.
  double atoms_per_zip = 10.0;
  /// Requested unit counts per state (size num_states). Actual counts
  /// may come out slightly lower when a seed captures no atom.
  std::vector<size_t> zips_per_state;
  std::vector<size_t> counties_per_state;
  /// Population centers per state (one dominant metro + towns).
  size_t cities_per_state = 8;
  uint64_t seed = 42;
};

/// Synthetic stand-in for the paper's real geographies (see DESIGN.md
/// §3): the universe is a union of square state tiles, each rasterized
/// into a fine atom grid (atoms model census blocks). Zip-code and
/// county partitions are independent seed-grown unions of atoms within
/// each state — two genuinely unaligned partitions that never straddle
/// state lines, so any prefix of states is itself a valid universe
/// (the paper's nested NY ⊂ Mid-Atlantic ⊂ ... ⊂ US hierarchy).
class SyntheticGeography {
 public:
  static Result<SyntheticGeography> Build(const GeographyParams& params);

  SyntheticGeography(const SyntheticGeography&) = delete;
  SyntheticGeography& operator=(const SyntheticGeography&) = delete;
  SyntheticGeography(SyntheticGeography&&) = default;
  SyntheticGeography& operator=(SyntheticGeography&&) = default;

  const partition::AtomSpace& atoms() const { return *atoms_; }
  const partition::CellPartition& zips() const { return *zips_; }
  const partition::CellPartition& counties() const { return *counties_; }

  /// Geometric center of each atom (index-aligned with the atom space).
  const std::vector<geom::Point>& atom_centers() const {
    return atom_centers_;
  }

  /// Population centers (Gaussian components of the population
  /// intensity surface) across all states.
  const std::vector<GaussianCluster>& cities() const { return cities_; }

  size_t NumStates() const { return state_bounds_.size(); }
  const geom::BBox& state_bounds(size_t s) const { return state_bounds_[s]; }
  /// State owning each atom.
  const std::vector<uint32_t>& atom_states() const { return atom_states_; }

  /// Raster shape of one state's atom block (atoms of a state are
  /// contiguous, row-major within the state tile).
  struct StateRaster {
    size_t nx = 0;
    size_t ny = 0;
    size_t atom_offset = 0;
  };
  const StateRaster& state_raster(size_t s) const { return rasters_[s]; }

  const GeographyParams& params() const { return params_; }

 private:
  SyntheticGeography() = default;

  GeographyParams params_;
  std::unique_ptr<partition::AtomSpace> atoms_;
  std::unique_ptr<partition::CellPartition> zips_;
  std::unique_ptr<partition::CellPartition> counties_;
  std::vector<geom::Point> atom_centers_;
  std::vector<GaussianCluster> cities_;
  std::vector<geom::BBox> state_bounds_;
  std::vector<uint32_t> atom_states_;
  std::vector<StateRaster> rasters_;
};

}  // namespace geoalign::synth

#endif  // GEOALIGN_SYNTH_GEOGRAPHY_H_
