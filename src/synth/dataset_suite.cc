#include "synth/dataset_suite.h"

#include <cmath>

#include "common/logging.h"
#include "partition/disaggregation.h"
#include "common/float_eq.h"

namespace geoalign::synth {

namespace {

// Distance from p to segment [a, b].
double SegmentDistance(const geom::Point& p, const geom::Point& a,
                       const geom::Point& b) {
  geom::Point ab = b - a;
  double len2 = Dot(ab, ab);
  if (ExactlyZero(len2)) return Distance(p, a);
  double t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  return Distance(p, {a.x + t * ab.x, a.y + t * ab.y});
}

// Rescales a non-negative field to mean 1 (no-op for an all-zero
// field), so mixture weights are comparable across surfaces.
void NormalizeToMeanOne(linalg::Vector* field) {
  double mean = linalg::Mean(*field);
  if (mean > 0.0) {
    for (double& v : *field) v /= mean;
  }
}

// Gaussian-mixture surface over the geography's own city list, with
// sigmas shrunk by `sigma_shrink` and only the `per_state` heaviest
// components per state (1 keeps just the metro). Result has mean 1.
linalg::Vector CitySurface(const SyntheticGeography& geo, double sigma_shrink,
                           size_t per_state, double base) {
  size_t cities_per_state = geo.params().cities_per_state;
  per_state = std::min(per_state, cities_per_state);
  const std::vector<GaussianCluster>& cities = geo.cities();
  size_t num_atoms = geo.atom_centers().size();
  linalg::Vector out(num_atoms, 0.0);
  for (size_t a = 0; a < num_atoms; ++a) {
    const geom::Point& p = geo.atom_centers()[a];
    size_t s = geo.atom_states()[a];
    size_t begin = s * cities_per_state;
    double acc = base;
    // Cities are generated metro-first per state.
    for (size_t c = 0; c < per_state; ++c) {
      const GaussianCluster& city = cities[begin + c];
      double sigma = city.sigma * sigma_shrink;
      double d2 = geom::DistanceSquared(p, city.center);
      acc += city.weight * std::exp(-d2 / (2.0 * sigma * sigma));
    }
    out[a] = acc;
  }
  NormalizeToMeanOne(&out);
  return out;
}

// A dataset-specific Gaussian-mixture surface with its own random
// centers (per state), independent of the population surface.
linalg::Vector OwnSurface(const SyntheticGeography& geo, size_t per_state,
                          double sigma_frac, double base, Rng& rng) {
  size_t num_states = geo.NumStates();
  std::vector<GaussianCluster> centers;
  centers.reserve(num_states * per_state);
  for (size_t s = 0; s < num_states; ++s) {
    const geom::BBox& tile = geo.state_bounds(s);
    for (size_t c = 0; c < per_state; ++c) {
      GaussianCluster g;
      g.center = {rng.Uniform(tile.min_x, tile.max_x),
                  rng.Uniform(tile.min_y, tile.max_y)};
      g.sigma = geo.params().state_size * sigma_frac *
                rng.Uniform(0.6, 1.6);
      g.weight = rng.Uniform(0.4, 2.0);
      centers.push_back(g);
    }
  }
  size_t num_atoms = geo.atom_centers().size();
  linalg::Vector out(num_atoms, base);
  for (size_t a = 0; a < num_atoms; ++a) {
    const geom::Point& p = geo.atom_centers()[a];
    size_t s = geo.atom_states()[a];
    for (size_t c = 0; c < per_state; ++c) {
      const GaussianCluster& g = centers[s * per_state + c];
      double d2 = geom::DistanceSquared(p, g.center);
      out[a] += g.weight * std::exp(-d2 / (2.0 * g.sigma * g.sigma));
    }
  }
  NormalizeToMeanOne(&out);
  return out;
}

// "Accidents" corridor intensity: roads connect each state's metro
// (first city) to its towns; intensity decays with distance to the
// nearest road. Mean 1.
linalg::Vector CorridorSurface(const SyntheticGeography& geo) {
  size_t cities_per_state = geo.params().cities_per_state;
  const std::vector<GaussianCluster>& cities = geo.cities();
  size_t num_atoms = geo.atom_centers().size();
  linalg::Vector out(num_atoms, 0.0);
  double width = geo.params().state_size * 0.025;
  for (size_t a = 0; a < num_atoms; ++a) {
    size_t s = geo.atom_states()[a];
    size_t base = s * cities_per_state;
    const geom::Point metro = cities[base].center;
    double best = Distance(geo.atom_centers()[a], metro);
    for (size_t c = 1; c < cities_per_state; ++c) {
      best = std::min(best, SegmentDistance(geo.atom_centers()[a], metro,
                                            cities[base + c].center));
    }
    out[a] = 0.04 + std::exp(-best * best / (2.0 * width * width));
  }
  NormalizeToMeanOne(&out);
  return out;
}

// The shared surfaces every layer mixes from.
struct Surfaces {
  linalg::Vector pop;       ///< broad population surface (cities + rural)
  linalg::Vector urban;     ///< concentrated metro-core surface
  linalg::Vector corridor;  ///< road corridors
  linalg::Vector hab;       ///< habitability: rural settlement density
  linalg::Vector rural;     ///< wasteland: low habitability, far from cities
  linalg::Vector area;      ///< atom measures (mean 1)
};

// Business-district surface: one compact core per state, offset from
// the metro's residential center (real CBDs do not coincide with the
// population centroid), plus a faint secondary core at the first town.
linalg::Vector UrbanCoreSurface(const SyntheticGeography& geo) {
  size_t cities_per_state = geo.params().cities_per_state;
  const std::vector<GaussianCluster>& cities = geo.cities();
  size_t num_atoms = geo.atom_centers().size();
  linalg::Vector out(num_atoms, 0.0);
  for (size_t a = 0; a < num_atoms; ++a) {
    const geom::Point& p = geo.atom_centers()[a];
    size_t s = geo.atom_states()[a];
    const GaussianCluster& metro = cities[s * cities_per_state];
    // Deterministic per-state offset direction (golden-angle spiral).
    double ang = 2.399963229728653 * static_cast<double>(s + 1);
    geom::Point cbd{metro.center.x + 0.9 * metro.sigma * std::cos(ang),
                    metro.center.y + 0.9 * metro.sigma * std::sin(ang)};
    double core_sigma = 0.45 * metro.sigma;
    double acc = 0.001;
    acc += metro.weight * std::exp(-geom::DistanceSquared(p, cbd) /
                                   (2.0 * core_sigma * core_sigma));
    if (cities_per_state > 1) {
      const GaussianCluster& town = cities[s * cities_per_state + 1];
      double ts = 0.5 * town.sigma;
      acc += 0.25 * town.weight *
             std::exp(-geom::DistanceSquared(p, town.center) / (2.0 * ts * ts));
    }
    out[a] = acc;
  }
  NormalizeToMeanOne(&out);
  return out;
}

// All surfaces have mean 1. `rng` drives the habitability field only,
// so it is shared by every layer of a suite.
Surfaces BuildSurfaces(const SyntheticGeography& geo, Rng& rng) {
  Surfaces s;
  linalg::Vector city = CitySurface(
      geo, /*sigma_shrink=*/1.0, geo.params().cities_per_state, /*base=*/0.0);
  s.urban = UrbanCoreSurface(geo);
  s.corridor = CorridorSurface(geo);

  // Habitability: rural settlement is granular — many small villages
  // over a low floor — so a giant rural unit's population sits in a
  // few spots rather than spreading smoothly. Without this, the rural
  // base would make population an (unrealistically) perfect proxy for
  // area.
  s.hab = OwnSurface(geo, /*per_state=*/40, /*sigma_frac=*/0.015,
                     /*base=*/0.02, rng);

  // Population: cities plus habitability-weighted rural base with a
  // ~15% rural mass share.
  constexpr double kRuralShare = 0.10;
  double base_coef = kRuralShare / (1.0 - kRuralShare);
  s.pop.resize(city.size());
  for (size_t a = 0; a < city.size(); ++a) {
    s.pop[a] = city[a] + base_coef * s.hab[a];
  }
  NormalizeToMeanOne(&s.pop);

  // Wasteland: far from cities AND low habitability.
  s.rural.resize(city.size());
  for (size_t a = 0; a < city.size(); ++a) {
    s.rural[a] = 1.0 / (0.05 + s.hab[a] + 3.0 * city[a]);
  }
  NormalizeToMeanOne(&s.rural);

  s.area = geo.atoms().measures;
  NormalizeToMeanOne(&s.area);
  return s;
}

/// Declarative recipe for one layer: a mixture of the shared surfaces
/// plus an optional private surface, dense (continuous with
/// multiplicative noise) or sparse (Poisson counts).
struct LayerSpec {
  const char* name;
  double w_pop = 0.0;
  double w_urban = 0.0;
  double w_corridor = 0.0;
  double w_hab = 0.0;
  double w_rural = 0.0;
  double w_area = 0.0;
  double w_own = 0.0;
  /// Private-surface shape (used when w_own > 0).
  size_t own_centers_per_state = 6;
  double own_sigma_frac = 0.05;
  /// Mean value per atom.
  double scale = 1.0;
  /// Dense layers: multiplicative noise level. Sparse: ignored.
  double noise = 0.08;
  /// Sparse counting layer (Poisson draws) vs dense continuous.
  bool poisson = false;
  /// Exact layer (no randomness at all), e.g. area.
  bool exact = false;
};

linalg::Vector RealizeLayer(const LayerSpec& spec, const Surfaces& s,
                            const SyntheticGeography& geo, Rng& rng) {
  size_t num_atoms = geo.atom_centers().size();
  linalg::Vector own;
  if (spec.w_own > 0.0) {
    own = OwnSurface(geo, spec.own_centers_per_state, spec.own_sigma_frac,
                     /*base=*/0.05, rng);
  }
  linalg::Vector out(num_atoms, 0.0);
  for (size_t a = 0; a < num_atoms; ++a) {
    double mix = spec.w_pop * s.pop[a] + spec.w_urban * s.urban[a] +
                 spec.w_corridor * s.corridor[a] + spec.w_hab * s.hab[a] +
                 spec.w_rural * s.rural[a] + spec.w_area * s.area[a];
    if (spec.w_own > 0.0) mix += spec.w_own * own[a];
    double mean = spec.scale * mix;
    if (spec.exact) {
      out[a] = mean;
    } else if (spec.poisson) {
      out[a] = static_cast<double>(rng.Poisson(mean));
    } else {
      out[a] = std::max(0.0, mean * (1.0 + spec.noise * rng.NextGaussian()));
    }
  }
  return out;
}

// Builds one Dataset from atom values.
Result<Dataset> Materialize(std::string name, linalg::Vector atom_values,
                            const SyntheticGeography& geo,
                            const partition::OverlayResult& overlay) {
  Dataset d;
  d.name = std::move(name);
  d.source = geo.zips().AggregateAtomValues(atom_values);
  d.target = geo.counties().AggregateAtomValues(atom_values);
  GEOALIGN_ASSIGN_OR_RETURN(d.dm,
                            partition::DmFromAtomValues(overlay, atom_values));
  d.atom_values = std::move(atom_values);
  return d;
}

std::vector<LayerSpec> SuiteSpecs(SuiteKind kind) {
  // Weights encode which surfaces a layer follows at the intersection
  // level; they drive both the source-level correlation structure and
  // the intra-unit distribution mismatch that separates the methods
  // (see DESIGN.md §3).
  switch (kind) {
    case SuiteKind::kNewYorkState:
      return {
          {.name = "Attorney Registration", .w_pop = 0.20, .w_urban = 0.80,
           .scale = 30.0, .noise = 0.12},
          {.name = "DMV License Facilities", .w_pop = 0.55, .w_own = 0.45,
           .own_centers_per_state = 10, .own_sigma_frac = 0.06,
           .scale = 0.035, .poisson = true},
          {.name = "Food Service Inspections", .w_pop = 0.55,
           .w_urban = 0.45, .scale = 55.0, .noise = 0.10},
          {.name = "Liquor Licenses", .w_pop = 0.60, .w_urban = 0.40,
           .scale = 28.0, .noise = 0.12},
          {.name = "New York State Restaurants", .w_pop = 0.50,
           .w_urban = 0.50, .scale = 0.12, .poisson = true},
          {.name = "Population", .w_pop = 1.0, .scale = 1700.0,
           .noise = 0.04},
          {.name = "USPS Business Address", .w_pop = 0.25, .w_urban = 0.75,
           .scale = 130.0, .noise = 0.08},
          {.name = "USPS Residential Address", .w_pop = 0.97, .w_own = 0.03,
           .own_centers_per_state = 8, .scale = 640.0, .noise = 0.05},
      };
    case SuiteKind::kUnitedStates:
      return {
          {.name = "Accidents", .w_pop = 0.25, .w_corridor = 0.75,
           .scale = 12.0, .noise = 0.15},
          {.name = "Area (Sq. Miles)", .w_area = 1.0, .scale = 1.0,
           .exact = true},
          {.name = "Cemeteries", .w_pop = 0.25, .w_hab = 0.45,
           .w_own = 0.30, .own_centers_per_state = 12,
           .own_sigma_frac = 0.08, .scale = 0.05, .poisson = true},
          {.name = "Population", .w_pop = 1.0, .scale = 1700.0,
           .noise = 0.04},
          {.name = "Public Buildings", .w_pop = 0.45, .w_urban = 0.25,
           .w_own = 0.30, .own_centers_per_state = 8, .scale = 0.30,
           .poisson = true},
          {.name = "Shopping Centers", .w_pop = 0.30, .w_urban = 0.70,
           .scale = 0.22, .poisson = true},
          {.name = "Starbucks", .w_pop = 0.10, .w_urban = 0.90,
           .scale = 0.12, .poisson = true},
          {.name = "USA Uninhabited Places", .w_rural = 0.85, .w_own = 0.15,
           .own_centers_per_state = 10, .own_sigma_frac = 0.10,
           .scale = 0.18, .poisson = true},
          {.name = "USPS Business Address", .w_pop = 0.25, .w_urban = 0.75,
           .scale = 130.0, .noise = 0.08},
          {.name = "USPS Residential Address", .w_pop = 0.97, .w_own = 0.03,
           .own_centers_per_state = 8, .scale = 640.0, .noise = 0.05},
      };
  }
  return {};
}

}  // namespace

linalg::Vector PopulationIntensity(const SyntheticGeography& geo) {
  return CitySurface(geo, /*sigma_shrink=*/1.0,
                     geo.params().cities_per_state, /*base=*/0.004);
}

std::vector<std::string> SuiteDatasetNames(SuiteKind kind) {
  std::vector<std::string> names;
  for (const LayerSpec& spec : SuiteSpecs(kind)) {
    names.emplace_back(spec.name);
  }
  return names;
}

Result<std::vector<Dataset>> GenerateDatasets(
    const SyntheticGeography& geo, const partition::OverlayResult& overlay,
    SuiteKind kind, uint64_t seed) {
  Rng rng(seed);
  Rng surface_rng = rng.Fork();
  Surfaces surfaces = BuildSurfaces(geo, surface_rng);
  std::vector<Dataset> out;
  for (const LayerSpec& spec : SuiteSpecs(kind)) {
    // Each layer gets a forked stream so the list composition of one
    // suite never perturbs another layer's values.
    Rng layer_rng = rng.Fork();
    linalg::Vector values = RealizeLayer(spec, surfaces, geo, layer_rng);
    GEOALIGN_ASSIGN_OR_RETURN(
        Dataset d, Materialize(spec.name, std::move(values), geo, overlay));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace geoalign::synth
