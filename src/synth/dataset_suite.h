#ifndef GEOALIGN_SYNTH_DATASET_SUITE_H_
#define GEOALIGN_SYNTH_DATASET_SUITE_H_

#include <string>
#include <vector>

#include "partition/overlay.h"
#include "synth/geography.h"

namespace geoalign::synth {

/// One synthetic attribute with everything the experiments need: raw
/// atom-level values (the "individual-level data"), exact aggregates
/// at zip (source) and county (target) level, and the exact
/// disaggregation matrix between them.
struct Dataset {
  std::string name;
  linalg::Vector atom_values;
  linalg::Vector source;      ///< zip aggregates a^s
  linalg::Vector target;      ///< county aggregates a^t (ground truth)
  sparse::CsrMatrix dm;       ///< zip × county disaggregation matrix
};

/// Which of the paper's two dataset collections to synthesize.
enum class SuiteKind {
  /// The 8 New York State datasets of Fig. 5a: Attorney Registration,
  /// DMV License Facilities, Food Service Inspections, Liquor
  /// Licenses, New York State Restaurants, Population, USPS Business
  /// Address, USPS Residential Address.
  kNewYorkState,
  /// The 10 United States datasets of Fig. 5b: Accidents, Area (Sq.
  /// Miles), Cemeteries, Population, Public Buildings, Shopping
  /// Centers, Starbucks, USA Uninhabited Places, USPS Business
  /// Address, USPS Residential Address.
  kUnitedStates,
};

/// Population intensity at each atom: a Gaussian-mixture surface over
/// the geography's city centers (plus a small rural base), normalized
/// to max 1. All other layers are transformations of this surface,
/// which pins down the cross-dataset correlation structure the paper's
/// robustness analysis (§4.4.2) depends on.
linalg::Vector PopulationIntensity(const SyntheticGeography& geo);

/// Synthesizes the named dataset collection over `geo`. `overlay` must
/// be the zips×counties overlay of the same geography (used to build
/// exact DMs). Deterministic in `seed`.
Result<std::vector<Dataset>> GenerateDatasets(
    const SyntheticGeography& geo, const partition::OverlayResult& overlay,
    SuiteKind kind, uint64_t seed);

/// Dataset names of a suite, in generation order.
std::vector<std::string> SuiteDatasetNames(SuiteKind kind);

}  // namespace geoalign::synth

#endif  // GEOALIGN_SYNTH_DATASET_SUITE_H_
