#ifndef GEOALIGN_SYNTH_GEOMETRIC_UNIVERSE_H_
#define GEOALIGN_SYNTH_GEOMETRIC_UNIVERSE_H_

#include <memory>

#include "core/crosswalk_input.h"
#include "partition/overlay.h"
#include "partition/polygon_partition.h"
#include "synth/dataset_suite.h"

namespace geoalign::synth {

/// Options for the geometric-path universe.
struct GeometricUniverseOptions {
  size_t num_zips = 400;
  size_t num_counties = 30;
  double world_size = 100.0;
  /// Population points (the densest layer; others are derived).
  size_t population_points = 150000;
  /// City count for the intensity mixture.
  size_t num_cities = 8;
  uint64_t seed = 4242;
};

/// A universe built entirely through the GEOMETRIC pipeline — the
/// ArcGIS-style path the paper's authors used to prepare their data
/// (§4.1): Voronoi zip polygons and coarser Voronoi county polygons
/// are overlaid with the R-tree + clipping machinery, and every
/// dataset is an actual point set located in both layers. Complements
/// the cell-partition universes (universe.h), which model the
/// crosswalk-file path; integration tests check the two paths agree.
struct GeometricUniverse {
  std::unique_ptr<partition::PolygonPartition> zips;
  std::unique_ptr<partition::PolygonPartition> counties;
  partition::OverlayResult overlay;  ///< geometric overlay (areas)
  sparse::CsrMatrix measure_dm;      ///< area reference
  /// Point-backed datasets (atom_values left empty; source/target/dm
  /// are exact aggregates of the generated points).
  std::vector<Dataset> datasets;

  size_t NumZips() const { return zips->NumUnits(); }
  size_t NumCounties() const { return counties->NumUnits(); }

  /// Leave-one-out input, as in Universe::MakeLeaveOneOutInput.
  Result<core::CrosswalkInput> MakeLeaveOneOutInput(size_t test_index) const;
};

/// Builds the universe deterministically. Point counts scale with
/// `population_points`; generation cost is O(points · log units).
Result<GeometricUniverse> BuildGeometricUniverse(
    const GeometricUniverseOptions& options);

}  // namespace geoalign::synth

#endif  // GEOALIGN_SYNTH_GEOMETRIC_UNIVERSE_H_
