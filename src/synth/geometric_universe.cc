#include "synth/geometric_universe.h"

#include <algorithm>

#include "common/random.h"
#include "geom/voronoi.h"
#include "partition/disaggregation.h"
#include "synth/point_process.h"

namespace geoalign::synth {

namespace {

// Voronoi layer over sites sampled with probability `city_frac` around
// the cities (population-balanced units) and uniformly otherwise.
Result<partition::PolygonPartition> VoronoiLayer(
    const geom::BBox& world, size_t n,
    const std::vector<GaussianCluster>& cities, double city_frac, Rng& rng) {
  std::vector<double> weights;
  for (const GaussianCluster& c : cities) weights.push_back(c.weight);
  std::vector<geom::Point> sites;
  sites.reserve(n);
  while (sites.size() < n) {
    if (cities.empty() || !rng.Bernoulli(city_frac)) {
      sites.push_back({rng.Uniform(world.min_x, world.max_x),
                       rng.Uniform(world.min_y, world.max_y)});
      continue;
    }
    const GaussianCluster& c = cities[rng.Categorical(weights)];
    geom::Point p{rng.Gaussian(c.center.x, 2.0 * c.sigma),
                  rng.Gaussian(c.center.y, 2.0 * c.sigma)};
    if (world.Contains(p)) sites.push_back(p);
  }
  GEOALIGN_ASSIGN_OR_RETURN(std::vector<geom::Ring> rings,
                            geom::VoronoiCells(sites, world));
  std::vector<geom::Polygon> polys;
  polys.reserve(rings.size());
  for (geom::Ring& ring : rings) {
    if (ring.size() >= 3) polys.emplace_back(std::move(ring));
  }
  return partition::PolygonPartition::Create(std::move(polys));
}

// Builds a point-backed dataset; aggregates come from the DM marginals
// so source/target/dm are exactly consistent even if a stray boundary
// point fails to locate in one layer.
Result<Dataset> PointDataset(std::string name,
                             const partition::PolygonPartition& zips,
                             const partition::PolygonPartition& counties,
                             const std::vector<geom::Point>& points) {
  linalg::Vector ones(points.size(), 1.0);
  Dataset d;
  d.name = std::move(name);
  GEOALIGN_ASSIGN_OR_RETURN(
      d.dm, partition::DmFromPoints(zips, counties, points, ones));
  d.source = d.dm.RowSums();
  d.target = d.dm.ColSums();
  return d;
}

}  // namespace

Result<core::CrosswalkInput> GeometricUniverse::MakeLeaveOneOutInput(
    size_t test_index) const {
  if (test_index >= datasets.size()) {
    return Status::OutOfRange("GeometricUniverse: bad dataset index");
  }
  core::CrosswalkInput input;
  input.objective_source = datasets[test_index].source;
  for (size_t k = 0; k < datasets.size(); ++k) {
    if (k == test_index) continue;
    core::ReferenceAttribute ref;
    ref.name = datasets[k].name;
    ref.source_aggregates = datasets[k].source;
    ref.disaggregation = datasets[k].dm;
    input.references.push_back(std::move(ref));
  }
  return input;
}

Result<GeometricUniverse> BuildGeometricUniverse(
    const GeometricUniverseOptions& options) {
  if (options.num_zips < 4 || options.num_counties < 2 ||
      options.num_counties >= options.num_zips) {
    return Status::InvalidArgument(
        "GeometricUniverse: need counties < zips and sane counts");
  }
  Rng rng(options.seed);
  geom::BBox world(0, 0, options.world_size, options.world_size);

  // Population intensity mixture: one metro + towns.
  std::vector<GaussianCluster> cities;
  for (size_t c = 0; c < options.num_cities; ++c) {
    GaussianCluster city;
    city.center = {rng.Uniform(0.1 * options.world_size,
                               0.9 * options.world_size),
                   rng.Uniform(0.1 * options.world_size,
                               0.9 * options.world_size)};
    bool metro = (c == 0);
    city.sigma = options.world_size *
                 (metro ? rng.Uniform(0.04, 0.06) : rng.Uniform(0.015, 0.04));
    city.weight = metro ? rng.Uniform(20.0, 40.0) : rng.Uniform(0.2, 1.0);
    cities.push_back(city);
  }

  GeometricUniverse uni;
  GEOALIGN_ASSIGN_OR_RETURN(
      partition::PolygonPartition zips,
      VoronoiLayer(world, options.num_zips, cities, 0.25, rng));
  uni.zips =
      std::make_unique<partition::PolygonPartition>(std::move(zips));
  GEOALIGN_ASSIGN_OR_RETURN(
      partition::PolygonPartition counties,
      VoronoiLayer(world, options.num_counties, cities, 0.15, rng));
  uni.counties =
      std::make_unique<partition::PolygonPartition>(std::move(counties));

  GEOALIGN_ASSIGN_OR_RETURN(
      uni.overlay,
      partition::OverlayPolygons(*uni.zips, *uni.counties,
                                 /*min_area=*/1e-9, /*threads=*/0));
  uni.measure_dm = uni.overlay.MeasureDm();

  // Point layers. Population mixes the city mixture with a uniform
  // rural component.
  size_t n_pop = options.population_points;
  std::vector<geom::Point> population =
      SampleGaussianMixture(world, cities, n_pop - n_pop / 8, rng);
  {
    std::vector<geom::Point> rural = SampleUniform(world, n_pop / 8, rng);
    population.insert(population.end(), rural.begin(), rural.end());
  }
  std::vector<geom::Point> residential =
      ThinPoints(population, 0.55, options.world_size * 0.002, world, rng);
  // Business: CBD-offset compact cores.
  std::vector<GaussianCluster> cores;
  for (size_t c = 0; c < std::min<size_t>(3, cities.size()); ++c) {
    GaussianCluster core = cities[c];
    core.center.x += 0.8 * core.sigma;
    core.sigma *= 0.45;
    cores.push_back(core);
  }
  std::vector<geom::Point> business =
      SampleGaussianMixture(world, cores, n_pop / 5, rng);
  std::vector<geom::Point> restaurants =
      ThinPoints(business, 0.12, options.world_size * 0.004, world, rng);
  std::vector<geom::Point> cemeteries =
      SampleThomasProcess(world, 60, 4.0, options.world_size * 0.01, rng);

  GEOALIGN_ASSIGN_OR_RETURN(
      Dataset pop_ds,
      PointDataset("Population", *uni.zips, *uni.counties, population));
  uni.datasets.push_back(std::move(pop_ds));
  GEOALIGN_ASSIGN_OR_RETURN(
      Dataset res_ds, PointDataset("USPS Residential Address", *uni.zips,
                                   *uni.counties, residential));
  uni.datasets.push_back(std::move(res_ds));
  GEOALIGN_ASSIGN_OR_RETURN(
      Dataset bus_ds, PointDataset("USPS Business Address", *uni.zips,
                                   *uni.counties, business));
  uni.datasets.push_back(std::move(bus_ds));
  GEOALIGN_ASSIGN_OR_RETURN(
      Dataset rest_ds,
      PointDataset("Restaurants", *uni.zips, *uni.counties, restaurants));
  uni.datasets.push_back(std::move(rest_ds));
  GEOALIGN_ASSIGN_OR_RETURN(
      Dataset cem_ds,
      PointDataset("Cemeteries", *uni.zips, *uni.counties, cemeteries));
  uni.datasets.push_back(std::move(cem_ds));

  // Area dataset straight from the geometric overlay.
  Dataset area;
  area.name = "Area (Sq. Miles)";
  area.dm = uni.measure_dm;
  area.source = area.dm.RowSums();
  area.target = area.dm.ColSums();
  uni.datasets.push_back(std::move(area));
  return uni;
}

}  // namespace geoalign::synth
