#include "synth/geography.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "spatial/grid_index.h"

namespace geoalign::synth {

namespace {

// Assigns each atom center to its nearest seed and compacts away seeds
// that captured no atom. Returns the number of units actually used.
uint32_t AssignNearestSeed(const std::vector<geom::Point>& centers,
                           size_t begin, size_t end,
                           const std::vector<geom::Point>& seeds,
                           const geom::BBox& bounds, uint32_t label_offset,
                           std::vector<uint32_t>* labels) {
  spatial::PointGridIndex index(seeds, bounds);
  std::vector<uint32_t> raw(end - begin);
  std::vector<uint32_t> used(seeds.size(), 0);
  for (size_t a = begin; a < end; ++a) {
    uint32_t s = index.Nearest(centers[a]);
    raw[a - begin] = s;
    used[s] = 1;
  }
  // Compact to the dense range of seeds that captured atoms.
  std::vector<uint32_t> remap(seeds.size(), 0);
  uint32_t next = 0;
  for (size_t s = 0; s < seeds.size(); ++s) {
    if (used[s]) remap[s] = next++;
  }
  for (size_t a = begin; a < end; ++a) {
    (*labels)[a] = label_offset + remap[raw[a - begin]];
  }
  return next;
}

// Samples unit seeds with a population-skewed density: with
// probability `city_frac` a seed is drawn around a city (sigma widened
// so seed clusters are looser than the density peaks themselves),
// otherwise uniformly. Real zip codes and counties are laid out for
// roughly balanced population, so urban units are small and rural
// units large — the size heterogeneity that separates area-based from
// reference-based interpolation.
std::vector<geom::Point> SampleSeeds(const geom::BBox& tile, size_t n,
                                     const std::vector<GaussianCluster>& cities,
                                     double city_frac, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(cities.size());
  for (const GaussianCluster& c : cities) weights.push_back(c.weight);
  std::vector<geom::Point> seeds;
  seeds.reserve(n);
  while (seeds.size() < n) {
    if (cities.empty() || !rng.Bernoulli(city_frac)) {
      seeds.push_back({rng.Uniform(tile.min_x, tile.max_x),
                       rng.Uniform(tile.min_y, tile.max_y)});
      continue;
    }
    const GaussianCluster& c = cities[rng.Categorical(weights)];
    geom::Point p{rng.Gaussian(c.center.x, 1.8 * c.sigma),
                  rng.Gaussian(c.center.y, 1.8 * c.sigma)};
    if (tile.Contains(p)) seeds.push_back(p);
  }
  return seeds;
}

}  // namespace

Result<SyntheticGeography> SyntheticGeography::Build(
    const GeographyParams& params) {
  if (params.num_states == 0) {
    return Status::InvalidArgument("Geography: need at least one state");
  }
  if (params.zips_per_state.size() != params.num_states ||
      params.counties_per_state.size() != params.num_states) {
    return Status::InvalidArgument(
        "Geography: per-state unit counts must match num_states");
  }
  if (params.state_size <= 0.0 || params.atoms_per_zip < 1.0) {
    return Status::InvalidArgument("Geography: bad sizes");
  }

  SyntheticGeography geo;
  geo.params_ = params;
  Rng rng(params.seed);

  // Lay out state tiles and size each state's atom raster.
  size_t total_atoms = 0;
  for (size_t s = 0; s < params.num_states; ++s) {
    size_t col = s % params.grid_cols;
    size_t row = s / params.grid_cols;
    double colf = static_cast<double>(col);
    double rowf = static_cast<double>(row);
    geom::BBox tile(colf * params.state_size, rowf * params.state_size,
                    (colf + 1.0) * params.state_size,
                    (rowf + 1.0) * params.state_size);
    geo.state_bounds_.push_back(tile);

    double want_atoms =
        static_cast<double>(params.zips_per_state[s]) * params.atoms_per_zip;
    size_t side = std::max<size_t>(
        8, static_cast<size_t>(std::ceil(std::sqrt(want_atoms))));
    StateRaster raster;
    raster.nx = side;
    raster.ny = side;
    raster.atom_offset = total_atoms;
    geo.rasters_.push_back(raster);
    total_atoms += side * side;
  }

  // Materialize atoms (centers + uniform measures within a state).
  geo.atoms_ = std::make_unique<partition::AtomSpace>();
  geo.atoms_->measures.resize(total_atoms);
  geo.atom_centers_.resize(total_atoms);
  geo.atom_states_.resize(total_atoms);
  for (size_t s = 0; s < params.num_states; ++s) {
    const StateRaster& raster = geo.rasters_[s];
    const geom::BBox& tile = geo.state_bounds_[s];
    double dx = tile.width() / static_cast<double>(raster.nx);
    double dy = tile.height() / static_cast<double>(raster.ny);
    double measure = dx * dy;
    for (size_t y = 0; y < raster.ny; ++y) {
      for (size_t x = 0; x < raster.nx; ++x) {
        size_t a = raster.atom_offset + y * raster.nx + x;
        geo.atom_centers_[a] = {
            tile.min_x + (static_cast<double>(x) + 0.5) * dx,
            tile.min_y + (static_cast<double>(y) + 0.5) * dy};
        geo.atoms_->measures[a] = measure;
        geo.atom_states_[a] = static_cast<uint32_t>(s);
      }
    }
  }

  // Grow zip and county partitions per state from independent seed
  // sets; labels are globally dense.
  std::vector<uint32_t> zip_labels(total_atoms);
  std::vector<uint32_t> county_labels(total_atoms);
  uint32_t zip_count = 0;
  uint32_t county_count = 0;
  for (size_t s = 0; s < params.num_states; ++s) {
    const StateRaster& raster = geo.rasters_[s];
    const geom::BBox& tile = geo.state_bounds_[s];
    size_t begin = raster.atom_offset;
    size_t end = begin + raster.nx * raster.ny;

    // Population centers first (seed placement depends on them): one
    // dominant metro plus towns. The metro is heavy and compact, so
    // density contrasts within units are strong enough to break the
    // homogeneity assumption (the regime the paper evaluates in).
    std::vector<GaussianCluster> state_cities;
    for (size_t c = 0; c < params.cities_per_state; ++c) {
      GaussianCluster city;
      city.center = {rng.Uniform(tile.min_x + 0.1 * tile.width(),
                                 tile.max_x - 0.1 * tile.width()),
                     rng.Uniform(tile.min_y + 0.1 * tile.height(),
                                 tile.max_y - 0.1 * tile.height())};
      bool metro = (c == 0);
      city.sigma = params.state_size *
                   (metro ? rng.Uniform(0.025, 0.035)
                          : rng.Uniform(0.012, 0.03));
      city.weight = metro ? rng.Uniform(50.0, 90.0) : rng.Uniform(0.15, 0.7);
      state_cities.push_back(city);
      geo.cities_.push_back(city);
    }

    std::vector<geom::Point> zip_seeds = SampleSeeds(
        tile, std::max<size_t>(1, params.zips_per_state[s]), state_cities,
        /*city_frac=*/0.10, rng);
    zip_count += AssignNearestSeed(geo.atom_centers_, begin, end, zip_seeds,
                                   tile, zip_count, &zip_labels);
    std::vector<geom::Point> county_seeds = SampleSeeds(
        tile, std::max<size_t>(1, params.counties_per_state[s]), state_cities,
        /*city_frac=*/0.35, rng);
    county_count +=
        AssignNearestSeed(geo.atom_centers_, begin, end, county_seeds, tile,
                          county_count, &county_labels);
  }

  auto zips = partition::CellPartition::Create(geo.atoms_.get(),
                                               std::move(zip_labels),
                                               zip_count);
  GEOALIGN_RETURN_IF_ERROR(zips.status());
  auto counties = partition::CellPartition::Create(
      geo.atoms_.get(), std::move(county_labels), county_count);
  GEOALIGN_RETURN_IF_ERROR(counties.status());
  geo.zips_ = std::make_unique<partition::CellPartition>(
      std::move(zips).value());
  geo.counties_ = std::make_unique<partition::CellPartition>(
      std::move(counties).value());
  return geo;
}

}  // namespace geoalign::synth
