#ifndef GEOALIGN_SYNTH_POINT_PROCESS_H_
#define GEOALIGN_SYNTH_POINT_PROCESS_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "geom/bbox.h"
#include "geom/point.h"

namespace geoalign::synth {

/// Spatial point processes used to synthesize the individual-level
/// layers the paper aggregates (restaurant inspections, Starbucks
/// locations, accidents, ...). All samplers are deterministic given
/// the Rng state.

/// One Gaussian component of a population-like intensity surface.
struct GaussianCluster {
  geom::Point center;
  double sigma;
  double weight;  ///< relative mass of the component
};

/// n i.i.d. uniform points in `bounds`.
std::vector<geom::Point> SampleUniform(const geom::BBox& bounds, size_t n,
                                       Rng& rng);

/// n points from a Gaussian mixture, rejection-sampled into `bounds`.
/// Requires a non-empty mixture with positive weights.
std::vector<geom::Point> SampleGaussianMixture(
    const geom::BBox& bounds, const std::vector<GaussianCluster>& mixture,
    size_t n, Rng& rng);

/// Thomas cluster process: `num_parents` uniform parents each spawn
/// Poisson(mean_children) offspring displaced by N(0, sigma²),
/// rejection-sampled into `bounds`. Models clustered urban phenomena.
std::vector<geom::Point> SampleThomasProcess(const geom::BBox& bounds,
                                             size_t num_parents,
                                             double mean_children,
                                             double sigma, Rng& rng);

/// n points spread along the given segments (e.g. roads between
/// cities) with Gaussian cross-road jitter of `width`, rejected into
/// `bounds`. Segments are chosen proportionally to their length.
std::vector<geom::Point> SampleCorridors(
    const geom::BBox& bounds,
    const std::vector<std::pair<geom::Point, geom::Point>>& segments,
    double width, size_t n, Rng& rng);

/// Independent thinning + jitter: keeps each input point with
/// probability `keep_prob`, displaced by N(0, jitter_sigma²), clamped
/// into `bounds`. Produces layers strongly correlated with the input
/// (the USPS-residential-vs-population relationship).
std::vector<geom::Point> ThinPoints(const std::vector<geom::Point>& points,
                                    double keep_prob, double jitter_sigma,
                                    const geom::BBox& bounds, Rng& rng);

}  // namespace geoalign::synth

#endif  // GEOALIGN_SYNTH_POINT_PROCESS_H_
