#ifndef GEOALIGN_COMMON_SPAN_H_
#define GEOALIGN_COMMON_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace geoalign::common {

/// Non-owning, immutable view over a contiguous run of `T` — the unit
/// of the zero-copy ingest path. A `ConstSpan` is two words (pointer +
/// length), trivially copyable, and carries **no lifetime**: the caller
/// guarantees the viewed memory outlives every read through the span
/// (pair it with a keepalive — see `Buffer` below — when the producer
/// wants to hand off ownership instead).
///
/// Converts implicitly from `const std::vector<T>&` so every existing
/// owning call site keeps compiling unchanged when a parameter is
/// retyped from `const std::vector<T>&` to `ConstSpan<T>`.
template <typename T>
class ConstSpan {
 public:
  constexpr ConstSpan() = default;
  constexpr ConstSpan(const T* data, size_t size)
      : data_(data), size_(size) {}
  // Implicit on purpose: vector arguments flow into span parameters.
  // NOLINTNEXTLINE(google-explicit-constructor)
  ConstSpan(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}
  // Brace-list arguments ({1.0, 2.0}) bind to span parameters; the
  // backing array lives to the end of the full expression, so this is
  // only for arguments, never for storing a span. GCC's lifetime
  // warning flags exactly that storage hazard, which the contract
  // above already forbids.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr ConstSpan(std::initializer_list<T> il)
      : data_(il.begin()), size_(il.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

  constexpr ConstSpan subspan(size_t offset, size_t count) const {
    return ConstSpan(data_ + offset, count);
  }

  /// Elementwise equality (bit-level for floating T via ==). Hidden
  /// friends so mixed span/vector comparisons resolve through the
  /// implicit vector→span conversion.
  friend bool operator==(ConstSpan a, ConstSpan b) {
    if (a.size_ != b.size_) return false;
    if (a.data_ == b.data_) return true;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(ConstSpan a, ConstSpan b) { return !(a == b); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// One borrowed aggregate column: the view type every compile/execute
/// entry point accepts. Values, not identity — two ColumnViews over
/// the same bytes are interchangeable.
using ColumnView = ConstSpan<double>;

/// Optional ownership transfer for callers that *do* want the library
/// to keep their column alive: a ref-counted double buffer plus the
/// view over it. `keepalive()` is a type-erased handle suitable for
/// storing next to any view whose memory it guards; the view stays
/// valid as long as at least one copy of the keepalive lives.
class Buffer {
 public:
  Buffer() = default;

  /// Takes ownership of `v` (one move, no copy).
  static Buffer FromVector(std::vector<double> v) {
    Buffer b;
    b.storage_ =
        std::make_shared<const std::vector<double>>(std::move(v));
    return b;
  }

  ColumnView view() const {
    return storage_ == nullptr ? ColumnView()
                               : ColumnView(storage_->data(), storage_->size());
  }

  /// Type-erased lifetime handle (empty when the buffer is empty).
  std::shared_ptr<const void> keepalive() const { return storage_; }

 private:
  std::shared_ptr<const std::vector<double>> storage_;
};

}  // namespace geoalign::common

#endif  // GEOALIGN_COMMON_SPAN_H_
