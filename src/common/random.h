#ifndef GEOALIGN_COMMON_RANDOM_H_
#define GEOALIGN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace geoalign {

/// Deterministic pseudo-random generator (PCG-XSH-RR 64/32).
///
/// All synthetic data in the project is produced from explicit `Rng`
/// instances seeded by the caller, so every experiment is reproducible
/// bit-for-bit. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint32_t;

  /// Seeds the generator; the same (seed, stream) pair always yields
  /// the same sequence.
  explicit Rng(uint64_t seed, uint64_t stream = 0) { Reseed(seed, stream); }

  void Reseed(uint64_t seed, uint64_t stream = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT32_MAX; }
  result_type operator()() { return NextU32(); }

  /// Next 32 raw bits.
  uint32_t NextU32();
  /// Next 64 raw bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double NextGaussian();
  /// Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small
  /// lambda, normal approximation above 64).
  int64_t Poisson(double lambda);

  /// Exponential with the given rate (> 0).
  double Exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to
  /// non-negative `weights`. Requires a positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each dataset
  /// or replicate its own stream without coupling their sequences.
  Rng Fork();

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace geoalign

#endif  // GEOALIGN_COMMON_RANDOM_H_
