#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/thread_annotations.h"
#include "obs/flight_recorder.h"

namespace geoalign {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
std::atomic<LogSink> g_sink{nullptr};

/// Serializes emission: without it two threads' fprintf calls may
/// interleave within one line on some libc buffering modes, and a
/// custom sink would race outright. The mutex guards the emission
/// *side effect* (the stream / sink call), not any data member, so
/// there is no GUARDED_BY site — just the critical section below.
common::Mutex& EmitMutex() {
  static common::Mutex* mu = new common::Mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level); }
LogLevel GetLogThreshold() { return g_threshold.load(); }

void SetLogSink(LogSink sink) { g_sink.store(sink); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::string line = stream_.str();
    LogSink sink = g_sink.load();
    common::MutexLock lock(EmitMutex());
    if (sink != nullptr) {
      sink(level_, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  if (level_ == LogLevel::kFatal) {
    // Post-mortem dump of recent execute audits + last metrics
    // snapshot before the abort (no-op unless a dump path is
    // configured; see obs/flight_recorder.h). We are not in a signal
    // context here, so the allocating dump path is fine.
    obs::NotifyFatal();
    std::abort();
  }
}

}  // namespace internal
}  // namespace geoalign
