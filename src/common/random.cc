#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace geoalign {

void Rng::Reseed(uint64_t seed, uint64_t stream) {
  state_ = 0;
  inc_ = (stream << 1u) | 1u;
  NextU32();
  state_ += seed;
  NextU32();
  has_cached_gaussian_ = false;
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random bits into [0,1); the shifted value fits a double exactly.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  GEOALIGN_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GEOALIGN_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

int64_t Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    double v = Gaussian(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  double l = std::exp(-lambda);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

double Rng::Exponential(double rate) {
  GEOALIGN_DCHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GEOALIGN_DCHECK(w >= 0.0);
    total += w;
  }
  GEOALIGN_CHECK(total > 0.0) << "Categorical needs positive total weight";
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64(), NextU64()); }

}  // namespace geoalign
