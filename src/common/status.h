#ifndef GEOALIGN_COMMON_STATUS_H_
#define GEOALIGN_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace geoalign {

/// Machine-readable failure category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kIOError,
};

/// Returns the canonical spelling of `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Error-or-success result of an operation, in the style of
/// absl::Status / arrow::Status. Library code never throws; fallible
/// functions return `Status` (or `Result<T>`, below) instead.
///
/// The OK status carries no message and is cheap to copy (no
/// allocation). Error statuses carry a code and a human-readable
/// message.
///
/// The class is `[[nodiscard]]`: any call that returns a `Status` by
/// value must consume it (check `ok()`, propagate it with
/// `GEOALIGN_RETURN_IF_ERROR`, or assert with `CheckOK`). Silently
/// dropping an error is a compile error under GEOALIGN_WERROR.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Intended for
  /// call sites where failure is a programming error.
  void CheckOK() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error: holds either a `T` or a non-OK `Status`.
/// Mirrors arrow::Result / absl::StatusOr at the size this project needs.
/// `[[nodiscard]]` for the same reason as `Status`: a discarded
/// `Result` is a silently dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return some_t;` inside a Result-returning
  /// function reads naturally, matching absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}

  /// Implicit from a non-OK status: `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Value accessors; must not be called unless `ok()`.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, aborting with the status message on error.
  /// Convenience for tests/examples where errors are fatal.
  T ValueOrDie() && {
    status_.CheckOK();
    return *std::move(value_);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) status_.CheckOK();
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function. This is
/// the canonical error-propagation macro; use it instead of hand-rolled
/// `if (!s.ok()) return s;` chains.
#define GEOALIGN_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::geoalign::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Older spelling of GEOALIGN_RETURN_IF_ERROR, kept for source
/// compatibility; new code should use GEOALIGN_RETURN_IF_ERROR.
#define GEOALIGN_RETURN_NOT_OK(expr) GEOALIGN_RETURN_IF_ERROR(expr)

/// Evaluates a Result-returning expression, assigning the value to
/// `lhs` or propagating the error. `lhs` may include a declaration.
#define GEOALIGN_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  GEOALIGN_ASSIGN_OR_RETURN_IMPL(                               \
      GEOALIGN_CONCAT_NAME(_result_, __LINE__), lhs, rexpr)

#define GEOALIGN_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                   \
  if (!result.ok()) return result.status();                \
  lhs = std::move(result).value()

#define GEOALIGN_CONCAT_NAME(x, y) GEOALIGN_CONCAT_NAME_INNER(x, y)
#define GEOALIGN_CONCAT_NAME_INNER(x, y) x##y

}  // namespace geoalign

#endif  // GEOALIGN_COMMON_STATUS_H_
