#ifndef GEOALIGN_COMMON_STRING_UTIL_H_
#define GEOALIGN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace geoalign {

/// Splits `text` at every occurrence of `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a double / int64; rejects trailing garbage.
Result<double> ParseDouble(std::string_view text);
Result<int64_t> ParseInt64(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view text);

}  // namespace geoalign

#endif  // GEOALIGN_COMMON_STRING_UTIL_H_
