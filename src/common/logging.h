#ifndef GEOALIGN_COMMON_LOGGING_H_
#define GEOALIGN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace geoalign {

/// Severity for the minimal logging facility. FATAL aborts the process
/// after emitting the message.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Sets the minimum severity that is actually emitted (default: Info).
/// Lock-free (std::atomic) and safe to call concurrently with logging.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// Destination for fully-formatted log lines. The default (nullptr)
/// writes to stderr. Emission is serialized under one mutex regardless
/// of sink, so concurrent log lines never interleave mid-line
/// (regression-tested under TSan in tests/common_test.cc).
using LogSink = void (*)(LogLevel level, const std::string& line);

/// Replaces the emission sink (nullptr restores stderr). Intended for
/// tests and embedders capturing log output.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// GEOALIGN_LOG(INFO) << "message"; — emitted to stderr when at or
/// above the configured threshold.
#define GEOALIGN_LOG(severity)                                  \
  ::geoalign::internal::LogMessage(                             \
      ::geoalign::LogLevel::k##severity, __FILE__, __LINE__)

/// Invariant check that is active in all build modes. On failure logs
/// the condition and aborts.
#define GEOALIGN_CHECK(cond)                                          \
  if (!(cond))                                                        \
  GEOALIGN_LOG(Fatal) << "Check failed: " #cond " "

#define GEOALIGN_CHECK_OK(status_expr)                          \
  do {                                                          \
    ::geoalign::Status _s = (status_expr);                      \
    if (!_s.ok()) GEOALIGN_LOG(Fatal) << _s.ToString();         \
  } while (false)

/// Debug-only check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define GEOALIGN_DCHECK(cond) \
  if (false) GEOALIGN_LOG(Fatal) << ""
#else
#define GEOALIGN_DCHECK(cond) GEOALIGN_CHECK(cond)
#endif

}  // namespace geoalign

#endif  // GEOALIGN_COMMON_LOGGING_H_
