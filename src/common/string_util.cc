#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace geoalign {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view text) {
  std::string_view t = StripWhitespace(text);
  if (t.empty()) return Status::InvalidArgument("empty number");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("cannot parse double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string_view t = StripWhitespace(text);
  if (t.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("cannot parse integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace geoalign
