#ifndef GEOALIGN_COMMON_STOPWATCH_H_
#define GEOALIGN_COMMON_STOPWATCH_H_

#include <chrono>
#include <string>
#include <vector>

namespace geoalign {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase timings (e.g. "weight_learning",
/// "disaggregation", "reaggregation") so experiments can report the
/// per-phase breakdown the paper discusses in §4.3.
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase (created on first use).
  void Add(const std::string& phase, double seconds);

  /// Total over all phases.
  double TotalSeconds() const;

  /// Seconds recorded for `phase` (0 if never recorded).
  double Seconds(const std::string& phase) const;

  /// Phase names in insertion order.
  std::vector<std::string> Phases() const;

  void Clear();

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace geoalign

#endif  // GEOALIGN_COMMON_STOPWATCH_H_
