#ifndef GEOALIGN_COMMON_THREAD_POOL_H_
#define GEOALIGN_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace geoalign::common {

/// Resolves a user-facing thread-count option: 0 means "use every
/// hardware thread" (at least 1); any other value is taken literally.
size_t ResolveThreadCount(size_t requested);

/// Fixed-size FIFO thread pool — no work stealing: tasks run in
/// submission order on whichever worker frees up first. Determinism of
/// the parallel helpers below never depends on which worker executes a
/// task, only on the fixed chunk boundaries and the ordered combine,
/// so the simple queue is enough.
///
/// The destructor drains the queue (every submitted task still runs)
/// and joins all workers.
class ThreadPool {
 public:
  /// Spawns max(1, num_threads) workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `task`. The future reports completion and re-throws any
  /// exception the task raised. Submitting to a pool whose destructor
  /// has started is a programming error and throws.
  std::future<void> Submit(std::function<void()> task);

  /// Sentinel returned by CurrentWorkerIndex() off pool threads.
  static constexpr size_t kNoWorkerIndex = static_cast<size_t>(-1);

  /// Index of the calling thread within the pool that spawned it
  /// ([0, size())), or kNoWorkerIndex when the caller is not a pool
  /// worker. Lets chunked kernels pick a private scratch slot without
  /// any synchronization. Note the index identifies the thread within
  /// its *owning* pool — a kernel running inline on a worker of some
  /// outer pool must key its slot choice off whether *its own*
  /// invocation was pooled, not off this value alone.
  static size_t CurrentWorkerIndex();

 private:
  void WorkerLoop(size_t worker_index);

  /// Guards the submission queue and the shutdown flag; cv_ signals
  /// queue-not-empty / stopping. Leaf lock: nothing is called with
  /// mu_ held except queue operations, so no ordering edges exist.
  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ GEOALIGN_GUARDED_BY(mu_);
  bool stopping_ GEOALIGN_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, joined only by the destructor;
  /// size() reads the never-resized vector — no guard needed.
  std::vector<std::thread> workers_;
};

/// Convenience for Options-style plumbing: a live pool for `threads`
/// workers, or null when threads <= 1 (callers then run inline —
/// exactly the legacy single-threaded behavior).
std::unique_ptr<ThreadPool> MakePoolOrNull(size_t threads);

/// Half-open index range of one deterministic chunk.
struct ChunkRange {
  size_t begin;
  size_t end;
};

/// Splits [0, n) into fixed chunks of ~`grain` elements.
///
/// THE DETERMINISM CONTRACT: boundaries depend only on `n` and `grain`
/// — never on the thread count or the pool — so any computation that
/// (a) makes each chunk self-contained and (b) combines per-chunk
/// results in chunk-index order produces bit-identical output for
/// every thread count, including the inline (no-pool) path.
///
/// When n/grain would exceed kMaxChunks the grain is widened so the
/// chunk count stays bounded (still a function of n and grain only).
std::vector<ChunkRange> DeterministicChunks(size_t n, size_t grain);

/// Upper bound on the number of chunks DeterministicChunks emits;
/// bounds the transient memory of chunked reductions.
inline constexpr size_t kMaxChunks = 512;

/// Runs fn(chunk_index) for every chunk_index in [0, num_chunks).
/// With a null pool (or a single chunk) the chunks run inline on the
/// calling thread in ascending order. If any chunk throws, the
/// exception of the smallest-index throwing chunk is re-thrown — but
/// never before every already-started chunk has finished (on the pool
/// path all chunks run to completion first; inline, chunks after the
/// throwing one are never started).
void ParallelForChunks(ThreadPool* pool, size_t num_chunks,
                       const std::function<void(size_t)>& fn);

/// Chunked parallel loop over [0, n): fn(chunk_index, begin, end) is
/// called once per deterministic chunk. Same execution and exception
/// semantics as ParallelForChunks.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn);

/// Deterministic chunked reduction: partials[c] = chunk_fn(begin_c,
/// end_c) computed possibly in parallel, then combine(acc, partial)
/// applied in chunk-index order. Per the DeterministicChunks contract
/// the result is bit-identical for every pool size. T must be
/// default-constructible and movable.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduceOrdered(ThreadPool* pool, size_t n, size_t grain, T init,
                        const ChunkFn& chunk_fn, const CombineFn& combine) {
  std::vector<ChunkRange> chunks = DeterministicChunks(n, grain);
  std::vector<T> partials(chunks.size());
  ParallelForChunks(pool, chunks.size(), [&](size_t c) {
    partials[c] = chunk_fn(chunks[c].begin, chunks[c].end);
  });
  T acc = std::move(init);
  for (size_t c = 0; c < chunks.size(); ++c) {
    combine(acc, std::move(partials[c]));
  }
  return acc;
}

}  // namespace geoalign::common

#endif  // GEOALIGN_COMMON_THREAD_POOL_H_
