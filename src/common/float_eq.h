#ifndef GEOALIGN_COMMON_FLOAT_EQ_H_
#define GEOALIGN_COMMON_FLOAT_EQ_H_

#include <cmath>

namespace geoalign {

/// Intent-documenting exact floating-point comparisons.
///
/// Raw `==` / `!=` between doubles is forbidden in library code by
/// tools/geoalign_lint.py (rule `float-eq`): most such comparisons are
/// accidental and numerically fragile. The kernels do, however, rely on
/// *deliberate* exact comparisons — sparsity checks ("was this entry
/// never written?"), zero-denominator fallbacks (the "otherwise 0"
/// branch of paper Eq. 14), and degenerate-geometry guards — where the
/// value being tested was either assigned exactly or produced by an
/// operation whose exact-zero result is meaningful. Those sites call
/// these helpers so the intent is named and greppable, and the lint can
/// keep flagging everything else.

/// True iff `x` is exactly +0.0 or -0.0. Use for sparsity /
/// never-written checks and exact-zero fallback branches.
[[nodiscard]] inline bool ExactlyZero(double x) {
  return x == 0.0;  // NOLINT(geoalign-float-eq): named exact comparison
}

/// True iff `a` and `b` are bitwise-comparable equal under IEEE `==`
/// (so +0.0 == -0.0, and NaN compares unequal to everything). Use only
/// when both operands are exact copies of the same computation.
[[nodiscard]] inline bool ExactlyEqual(double a, double b) {
  return a == b;  // NOLINT(geoalign-float-eq): named exact comparison
}

/// Approximate comparison with an absolute tolerance, for callers that
/// genuinely want closeness rather than identity.
[[nodiscard]] inline bool ApproxEqual(double a, double b,
                                      double abs_tol = 1e-12) {
  return std::fabs(a - b) <= abs_tol;
}

}  // namespace geoalign

#endif  // GEOALIGN_COMMON_FLOAT_EQ_H_
