#include "common/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <exception>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace geoalign::common {

namespace {

// Pool telemetry (metric catalog: docs/observability.md). References
// are resolved once; increments are lock-free and no-ops while
// telemetry is disabled. The gauge tracks instantaneous queue depth,
// so it can drift if the switch flips mid-flight — counters stay exact.
obs::Counter& TasksExecuted() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("thread_pool.tasks_executed");
  return c;
}
obs::Counter& BusyMicros() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("thread_pool.busy_micros");
  return c;
}
obs::Counter& WorkersStarted() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("thread_pool.workers_started");
  return c;
}
obs::Gauge& QueueDepth() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("thread_pool.queue_depth");
  return g;
}

// Index of this thread within the pool that spawned it; workers set it
// once at startup and it is never written again, so reads are free.
thread_local size_t t_worker_index = ThreadPool::kNoWorkerIndex;

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  WorkersStarted().Add(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(mu_);
    // Submitting to a pool whose destructor has begun is a programming
    // error, and the Status contract forbids throwing from library
    // code; fail fast instead of racing the worker shutdown.
    GEOALIGN_CHECK(!stopping_) << "ThreadPool::Submit after shutdown";
    queue_.push_back(std::move(packaged));
  }
  QueueDepth().Add(1);
  cv_.NotifyOne();
  return future;
}

size_t ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_worker_index = worker_index;
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      // Predicate loop at the call site (not a wait-with-lambda) so
      // the thread-safety analysis sees the guarded reads.
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepth().Sub(1);
    if (obs::Enabled()) {
      obs::Stopwatch watch;
      task();  // exceptions land in the task's future
      BusyMicros().Add(
          static_cast<uint64_t>(std::llround(watch.ElapsedMicros())));
      TasksExecuted().Add(1);
    } else {
      task();  // exceptions land in the task's future
    }
  }
}

std::unique_ptr<ThreadPool> MakePoolOrNull(size_t threads) {
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

std::vector<ChunkRange> DeterministicChunks(size_t n, size_t grain) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  grain = std::max<size_t>(1, grain);
  // Bound the chunk count (transient memory of reductions); the
  // widened grain is still a function of (n, grain) only.
  size_t count = (n + grain - 1) / grain;
  if (count > kMaxChunks) {
    grain = (n + kMaxChunks - 1) / kMaxChunks;
    count = (n + grain - 1) / grain;
  }
  chunks.reserve(count);
  for (size_t begin = 0; begin < n; begin += grain) {
    chunks.push_back({begin, std::min(n, begin + grain)});
  }
  return chunks;
}

void ParallelForChunks(ThreadPool* pool, size_t num_chunks,
                       const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  if (pool == nullptr || pool->size() <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    futures.push_back(pool->Submit([&fn, c] { fn(c); }));
  }
  // Every chunk must finish before we return (the closures reference
  // caller state), so collect the first exception instead of throwing
  // mid-drain.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  std::vector<ChunkRange> chunks = DeterministicChunks(n, grain);
  ParallelForChunks(pool, chunks.size(), [&](size_t c) {
    fn(c, chunks[c].begin, chunks[c].end);
  });
}

}  // namespace geoalign::common
