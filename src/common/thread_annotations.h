#ifndef GEOALIGN_COMMON_THREAD_ANNOTATIONS_H_
#define GEOALIGN_COMMON_THREAD_ANNOTATIONS_H_

// Compile-time concurrency contracts (docs/static_analysis.md).
//
// This header is the ONLY place in src/ allowed to name the raw std
// locking primitives (enforced by the `geoalign-raw-mutex` lint): it
// provides (a) the Clang Thread Safety Analysis attribute macros and
// (b) thin annotated wrappers — common::Mutex, common::MutexLock,
// common::CondVar — over std::mutex / std::condition_variable. With
// the wrappers, every guarded-by relationship in the tree is a
// *capability contract* the compiler checks: a clang build with
// -Wthread-safety -Wthread-safety-beta (CMake option
// GEOALIGN_THREAD_SAFETY, ci gate `tsa`) turns an unguarded read, a
// missing-REQUIRES call, a double lock, or an unlock-without-lock into
// a build error. On compilers without the capability attribute system
// (GCC) every macro expands to nothing and the wrappers are zero-cost
// forwarding shims, so the annotations never change codegen.
//
// Deliberately header-only and standard-library-only: src/obs/ sits
// below common in the link graph (thread_pool and logging are
// themselves instrumented) yet guards its registries with these
// wrappers, so this header must behave like <mutex> itself — no
// logging, no status, no link dependency on geoalign_common.
//
// The negative-compile fixtures in tests/tsa_fixtures/ (driven by
// tests/tsa_test.sh) regression-test the annotations themselves: each
// fixture seeds one locking bug that MUST fail to compile under
// -Wthread-safety, so a wrapper edit that silently weakens the
// analysis breaks the `tsa` gate.

#include <condition_variable>
#include <mutex>

// Attribute shim. Clang's spelling of the capability system; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. Gated on
// __clang__ because GCC would emit -Wattributes (fatal under -Werror)
// for the unknown attributes.
#if defined(__clang__)
#define GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability (names it in diagnostics).
#define GEOALIGN_CAPABILITY(x) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define GEOALIGN_SCOPED_CAPABILITY \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define GEOALIGN_GUARDED_BY(x) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer
/// itself may be read freely).
#define GEOALIGN_PT_GUARDED_BY(x) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Documents (and checks) lock-ordering edges between two mutexes.
#define GEOALIGN_ACQUIRED_BEFORE(...) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define GEOALIGN_ACQUIRED_AFTER(...) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function precondition: the listed capabilities are held on entry
/// and still held on exit. The `*Locked` private-helper idiom
/// (e.g. PlanCache::EvictLocked) pairs the name suffix with this
/// attribute so the contract is visible both to readers and the
/// analysis.
#define GEOALIGN_REQUIRES(...) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define GEOALIGN_REQUIRES_SHARED(...)     \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(   \
      requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities.
#define GEOALIGN_ACQUIRE(...) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define GEOALIGN_RELEASE(...) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define GEOALIGN_TRY_ACQUIRE(...)       \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE( \
      try_acquire_capability(__VA_ARGS__))

/// Function must be called with the listed capabilities NOT held
/// (deadlock prevention for self-locking entry points).
#define GEOALIGN_EXCLUDES(...) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Tells the analysis a capability is held without acquiring it
/// (runtime-checked entry points from external callers).
#define GEOALIGN_ASSERT_CAPABILITY(x) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the named capability.
#define GEOALIGN_RETURN_CAPABILITY(x) \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Policy
/// (docs/static_analysis.md): requires a comment explaining why the
/// analysis cannot see the invariant; never used to silence a real
/// finding.
#define GEOALIGN_NO_THREAD_SAFETY_ANALYSIS \
  GEOALIGN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace geoalign::common {

/// Annotated exclusive mutex over std::mutex. Same cost, but a
/// *capability* to the analysis: members declare
/// `GEOALIGN_GUARDED_BY(mu_)`, helpers declare
/// `GEOALIGN_REQUIRES(mu_)`, and clang proves every access site.
class GEOALIGN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GEOALIGN_ACQUIRE() { mu_.lock(); }
  void Unlock() GEOALIGN_RELEASE() { mu_.unlock(); }
  bool TryLock() GEOALIGN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Analysis-only assertion that the calling context holds this
  /// mutex (std::mutex cannot be queried at runtime). Use at entry
  /// points whose callers acquired the lock through a channel the
  /// analysis cannot follow; pair with a comment naming that channel.
  void AssertHeld() const GEOALIGN_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex — the project's only blessed way to hold one
/// (a scoped capability: clang tracks acquisition at construction and
/// release at scope exit, so an early return can never leak the lock).
class GEOALIGN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GEOALIGN_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() GEOALIGN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to common::Mutex. Wait requires the mutex
/// held (checked); the predicate loop stays at the call site —
/// `while (!pred()) cv_.Wait(mu_);` — so guarded reads in the
/// predicate are visible to the analysis instead of hidden inside a
/// lambda it cannot attribute.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before
  /// returning (spurious wakeups possible — always loop).
  void Wait(Mutex& mu) GEOALIGN_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the unique_lock wrapper without unlocking: ownership
    // stays with the caller's MutexLock exactly as the annotation
    // says.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace geoalign::common

#endif  // GEOALIGN_COMMON_THREAD_ANNOTATIONS_H_
