#include "sparse/coo_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::sparse {

void CooBuilder::Add(size_t r, size_t c, double value) {
  GEOALIGN_DCHECK(r < rows_ && c < cols_);
  entries_.push_back({r, c, value});
}

CsrMatrix CooBuilder::Build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix out(rows_, cols_);
  size_t i = 0;
  for (size_t r = 0; r < rows_; ++r) {
    while (i < entries_.size() && entries_[i].row == r) {
      size_t c = entries_[i].col;
      double acc = 0.0;
      while (i < entries_.size() && entries_[i].row == r &&
             entries_[i].col == c) {
        acc += entries_[i].value;
        ++i;
      }
      if (!ExactlyZero(acc)) {
        out.col_idx_.push_back(c);
        out.values_.push_back(acc);
      }
    }
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  entries_.clear();
  return out;
}

}  // namespace geoalign::sparse
