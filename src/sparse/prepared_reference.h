#ifndef GEOALIGN_SPARSE_PREPARED_REFERENCE_H_
#define GEOALIGN_SPARSE_PREPARED_REFERENCE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "linalg/vector_ops.h"
#include "sparse/csr_matrix.h"

namespace geoalign::sparse {

/// Incremental 64-bit FNV-1a hash used to fingerprint prepared
/// reference sets (and, in core::PlanCache, option structs). Two
/// instances seeded differently give an effectively 128-bit key.
class Fnv1a {
 public:
  static constexpr uint64_t kDefaultSeed = 0xcbf29ce484222325ull;

  explicit Fnv1a(uint64_t seed = kDefaultSeed) : state_(seed) {}

  void MixBytes(const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      state_ ^= p[i];
      state_ *= 0x100000001b3ull;
    }
  }
  void MixU64(uint64_t v) { MixBytes(&v, sizeof(v)); }
  void MixSize(size_t v) { MixU64(static_cast<uint64_t>(v)); }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    MixU64(bits);
  }
  // Span parameters (vectors convert implicitly): the mixed byte
  // sequence is identical whichever ingest path produced the data, so
  // fingerprints — and therefore PlanCache keys — do not depend on
  // whether the arrays are owned or borrowed.
  void MixDoubles(common::ConstSpan<double> v) {
    MixSize(v.size());
    MixBytes(v.data(), v.size() * sizeof(double));
  }
  void MixSizes(common::ConstSpan<size_t> v) {
    MixSize(v.size());
    MixBytes(v.data(), v.size() * sizeof(size_t));
  }
  void MixString(const std::string& s) {
    MixSize(s.size());
    MixBytes(s.data(), s.size());
  }

  uint64_t value() const { return state_; }

 private:
  uint64_t state_;
};

/// Raw per-reference inputs to PreparedReferenceSet::Prepare: one
/// reference attribute α_r as the core layer sees it, without any core
/// dependency (core depends on sparse, never the reverse).
struct ReferenceData {
  std::string name;
  linalg::Vector source_aggregates;  ///< a^s_r, one entry per source unit
  CsrMatrix disaggregation;          ///< DM_r, |U^s| x |U^t|
};

/// Zero-copy flavor of ReferenceData: the aggregate column is a
/// borrowed view and the DM is typically in borrowed mode
/// (CsrMatrix::FromBorrowed). `keepalive` optionally guards the
/// aggregate memory; the DM carries its own keepalive. The viewed
/// memory must stay alive for the lifetime of whatever Prepare
/// produces (keepalives make that automatic for ref-counted hosts).
struct ReferenceDataView {
  std::string name;
  common::ColumnView source_aggregates;
  CsrMatrix disaggregation;
  std::shared_ptr<const void> keepalive;
};

/// One reference after objective-independent compilation: everything
/// Eq. 14/15 need that does not depend on the objective column,
/// computed once and immutable afterwards.
///
/// The disaggregation matrix is kept RAW (not pre-divided by the
/// normalizer): ScaleMode::kNormalized folds 1/normalizer into the
/// per-execute effective weights instead, because IEEE division does
/// not commute bit-exactly with the weighted row merge — pre-scaling
/// the values would break the bit-identity contract between the
/// compiled path and the legacy per-call path.
///
/// `source_aggregates` is a view: over caller memory on the zero-copy
/// ingest path (guarded by `aggregates_keepalive` when provided), or
/// over a buffer adopted from the owning path. Either way the bytes
/// are never duplicated by Prepare itself.
struct PreparedReference {
  std::string name;
  common::ColumnView source_aggregates;  ///< a^s_r (borrowed view)
  std::shared_ptr<const void> aggregates_keepalive;
  CsrMatrix disaggregation;              ///< DM_r, raw values
  linalg::Vector normalized_aggregates;  ///< a^s_r / max_i a^s_r[i] (Eq. 15 column)
  double normalizer = 1.0;               ///< max_i a^s_r[i]
  linalg::Vector dm_row_sums;            ///< per-row sums of DM_r
};

/// An immutable, shareable set of prepared references — the sparse
/// half of a compiled CrosswalkPlan. Detects once whether every
/// reference DM shares one column-index structure (the common case
/// when all DMs come from the same overlay), which lets the executor
/// use the structure-sharing weighted-sum kernel.
///
/// Move-only: the cached DM pointer vector aliases the prepared
/// references, which stay valid across moves of the owning vector but
/// not across copies.
class PreparedReferenceSet {
 public:
  /// Validates shapes, max-normalizes every aggregate vector (the
  /// ScaleMode::kNormalized / Eq. 15 preprocessing; errors mirror the
  /// legacy per-call path's NormalizeByMax failures), walks every DM
  /// once for its row sums, and fingerprints the whole set.
  ///
  /// Zero-copy contract: the aggregate views and any borrowed DM
  /// arrays are referenced, never duplicated — the prepared set reads
  /// caller memory through the views for its whole lifetime.
  static Result<PreparedReferenceSet> Prepare(
      std::vector<ReferenceDataView> references);

  /// Owning adapter: moves each aggregate vector into a ref-counted
  /// keepalive (one move, no byte copy) and forwards to the view
  /// Prepare. Behavior and error messages are identical.
  static Result<PreparedReferenceSet> Prepare(
      std::vector<ReferenceData> references);

  PreparedReferenceSet(PreparedReferenceSet&&) = default;
  PreparedReferenceSet& operator=(PreparedReferenceSet&&) = default;
  PreparedReferenceSet(const PreparedReferenceSet&) = delete;
  PreparedReferenceSet& operator=(const PreparedReferenceSet&) = delete;

  size_t size() const { return refs_.size(); }
  size_t num_source() const { return num_source_; }
  size_t num_target() const { return num_target_; }
  const PreparedReference& reference(size_t k) const { return refs_[k]; }

  /// Pointers to every reference's raw DM, in reference order — the
  /// operand list for sparse::WeightedSum / WeightedSumAligned.
  const std::vector<const CsrMatrix*>& dms() const { return dms_; }

  /// True when all DMs share identical row_ptr/col_idx arrays.
  bool aligned() const { return aligned_; }

  /// Content fingerprint (names, aggregates, CSR arrays) — the
  /// reference-set half of a PlanCache key.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  PreparedReferenceSet() = default;

  std::vector<PreparedReference> refs_;
  std::vector<const CsrMatrix*> dms_;
  bool aligned_ = false;
  uint64_t fingerprint_ = 0;
  size_t num_source_ = 0;
  size_t num_target_ = 0;
};

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_PREPARED_REFERENCE_H_
