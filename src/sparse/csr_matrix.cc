#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::sparse {

namespace {

/// Shared structural validation for both construction paths.
Status ValidateCsr(size_t rows, size_t cols,
                   common::ConstSpan<size_t> row_ptr,
                   common::ConstSpan<size_t> col_idx,
                   common::ConstSpan<double> values) {
  if (row_ptr.size() != rows + 1) {
    return Status::InvalidArgument("CSR: row_ptr must have rows+1 entries");
  }
  if (row_ptr.front() != 0 || row_ptr.back() != col_idx.size() ||
      col_idx.size() != values.size()) {
    return Status::InvalidArgument("CSR: inconsistent array lengths");
  }
  for (size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return Status::InvalidArgument("CSR: row_ptr not monotone");
    }
    for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] >= cols) {
        return Status::InvalidArgument("CSR: column index out of range");
      }
      if (k > row_ptr[r] && col_idx[k] <= col_idx[k - 1]) {
        return Status::InvalidArgument(
            "CSR: column indices must be strictly increasing per row");
      }
    }
  }
  return Status::OK();
}

}  // namespace

CsrMatrix::CsrMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

Result<CsrMatrix> CsrMatrix::FromCsrArrays(size_t rows, size_t cols,
                                           std::vector<size_t> row_ptr,
                                           std::vector<size_t> col_idx,
                                           std::vector<double> values) {
  GEOALIGN_RETURN_IF_ERROR(
      ValidateCsr(rows, cols, row_ptr, col_idx, values));
  CsrMatrix m(rows, cols);
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

Result<CsrMatrix> CsrMatrix::FromBorrowed(
    const CsrView& view, std::shared_ptr<const void> keepalive) {
  GEOALIGN_RETURN_IF_ERROR(ValidateCsr(view.rows, view.cols, view.row_ptr,
                                       view.col_idx, view.values));
  CsrMatrix m(view.rows, view.cols);
  m.row_ptr_.clear();  // unused in borrowed mode
  m.borrowed_ = true;
  m.view_row_ptr_ = view.row_ptr;
  m.view_col_idx_ = view.col_idx;
  m.view_values_ = view.values;
  m.keepalive_ = std::move(keepalive);
  return m;
}

CsrMatrix CsrMatrix::FromDense(const linalg::Matrix& m, double prune_below) {
  CsrMatrix out(m.rows(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      double v = m(r, c);
      if (!ExactlyZero(v) && std::fabs(v) > prune_below) {
        out.col_idx_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  return out;
}

void CsrMatrix::EnsureOwned() {
  if (!borrowed_) return;
  row_ptr_.assign(view_row_ptr_.begin(), view_row_ptr_.end());
  col_idx_.assign(view_col_idx_.begin(), view_col_idx_.end());
  values_.assign(view_values_.begin(), view_values_.end());
  borrowed_ = false;
  view_row_ptr_ = {};
  view_col_idx_ = {};
  view_values_ = {};
  keepalive_.reset();
}

double CsrMatrix::At(size_t r, size_t c) const {
  GEOALIGN_DCHECK(r < rows_ && c < cols_);
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<size_t> ci = col_idx();
  const size_t* begin = ci.data() + rp[r];
  const size_t* end = ci.data() + rp[r + 1];
  const size_t* it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) {
    return values()[static_cast<size_t>(it - ci.data())];
  }
  return 0.0;
}

CsrMatrix::RowView CsrMatrix::Row(size_t r) const {
  GEOALIGN_DCHECK(r < rows_);
  common::ConstSpan<size_t> rp = row_ptr();
  RowView v;
  v.cols = col_idx().data() + rp[r];
  v.values = values().data() + rp[r];
  v.size = rp[r + 1] - rp[r];
  return v;
}

linalg::Vector CsrMatrix::RowSums() const {
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<double> vals = values();
  linalg::Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t k = rp[r]; k < rp[r + 1]; ++k) acc += vals[k];
    out[r] = acc;
  }
  return out;
}

linalg::Vector CsrMatrix::ColSums() const {
  common::ConstSpan<size_t> ci = col_idx();
  common::ConstSpan<double> vals = values();
  linalg::Vector out(cols_, 0.0);
  for (size_t k = 0; k < vals.size(); ++k) out[ci[k]] += vals[k];
  return out;
}

double CsrMatrix::Total() const {
  double acc = 0.0;
  for (double v : values()) acc += v;
  return acc;
}

linalg::Vector CsrMatrix::MatVec(common::ConstSpan<double> x) const {
  GEOALIGN_CHECK(x.size() == cols_) << "CSR MatVec: size mismatch";
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<size_t> ci = col_idx();
  common::ConstSpan<double> vals = values();
  linalg::Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += vals[k] * x[ci[k]];
    }
    out[r] = acc;
  }
  return out;
}

linalg::Vector CsrMatrix::MatTVec(common::ConstSpan<double> x) const {
  GEOALIGN_CHECK(x.size() == rows_) << "CSR MatTVec: size mismatch";
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<size_t> ci = col_idx();
  common::ConstSpan<double> vals = values();
  linalg::Vector out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double xr = x[r];
    if (ExactlyZero(xr)) continue;
    for (size_t k = rp[r]; k < rp[r + 1]; ++k) {
      out[ci[k]] += vals[k] * xr;
    }
  }
  return out;
}

void CsrMatrix::ScaleRows(common::ConstSpan<double> s) {
  GEOALIGN_CHECK(s.size() == rows_) << "CSR ScaleRows: size mismatch";
  EnsureOwned();
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      values_[k] *= s[r];
    }
  }
}

void CsrMatrix::Scale(double s) {
  EnsureOwned();
  for (double& v : values_) v *= s;
}

CsrMatrix CsrMatrix::Transposed() const {
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<size_t> ci = col_idx();
  common::ConstSpan<double> vals = values();
  CsrMatrix out(cols_, rows_);
  // Count entries per output row (input column).
  std::vector<size_t> counts(cols_, 0);
  for (size_t c : ci) ++counts[c];
  out.row_ptr_.assign(cols_ + 1, 0);
  for (size_t c = 0; c < cols_; ++c) {
    out.row_ptr_[c + 1] = out.row_ptr_[c] + counts[c];
  }
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<size_t> next(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = rp[r]; k < rp[r + 1]; ++k) {
      size_t pos = next[ci[k]]++;
      out.col_idx_[pos] = r;
      out.values_[pos] = vals[k];
    }
  }
  return out;
}

linalg::Matrix CsrMatrix::ToDense() const {
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<size_t> ci = col_idx();
  common::ConstSpan<double> vals = values();
  linalg::Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = rp[r]; k < rp[r + 1]; ++k) {
      out(r, ci[k]) = vals[k];
    }
  }
  return out;
}

void CsrMatrix::Prune(double threshold) {
  common::ConstSpan<size_t> rp = row_ptr();
  common::ConstSpan<size_t> ci = col_idx();
  common::ConstSpan<double> vals = values();
  std::vector<size_t> new_row_ptr(rows_ + 1, 0);
  std::vector<size_t> new_cols;
  std::vector<double> new_vals;
  new_cols.reserve(nnz());
  new_vals.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (std::fabs(vals[k]) > threshold) {
        new_cols.push_back(ci[k]);
        new_vals.push_back(vals[k]);
      }
    }
    new_row_ptr[r + 1] = new_cols.size();
  }
  row_ptr_ = std::move(new_row_ptr);
  col_idx_ = std::move(new_cols);
  values_ = std::move(new_vals);
  borrowed_ = false;
  view_row_ptr_ = {};
  view_col_idx_ = {};
  view_values_ = {};
  keepalive_.reset();
}

bool CsrMatrix::AllClose(const CsrMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t r = 0; r < rows_; ++r) {
    RowView a = Row(r);
    RowView b = other.Row(r);
    size_t ia = 0;
    size_t ib = 0;
    while (ia < a.size || ib < b.size) {
      size_t ca = ia < a.size ? a.cols[ia] : SIZE_MAX;
      size_t cb = ib < b.size ? b.cols[ib] : SIZE_MAX;
      double va = 0.0;
      double vb = 0.0;
      if (ca <= cb) va = a.values[ia++];
      if (cb <= ca) vb = b.values[ib++];
      if (std::fabs(va - vb) > tol) return false;
    }
  }
  return true;
}

}  // namespace geoalign::sparse
