#ifndef GEOALIGN_SPARSE_FUSED_EXECUTE_H_
#define GEOALIGN_SPARSE_FUSED_EXECUTE_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/thread_pool.h"
#include "sparse/csr_matrix.h"
#include "sparse/simd/isa.h"

namespace geoalign::sparse {

/// Reusable buffers for FusedAggregatesAligned: per-chunk partial
/// target vectors, per-chunk zero-row lists, per-slot row scratch, and
/// the active-operand staging arrays. One workspace serves one
/// concurrent execute at a time; serving loops keep one per worker
/// slot and reuse it across columns so the steady-state kernel never
/// touches the heap.
///
/// Prepare() grows buffers monotonically and counts every buffer that
/// actually grew in alloc_events() — the source of the
/// `execute.hot_path_allocs` counter (docs/observability.md). A
/// workspace prepared once for a plan's Spec reports zero further
/// events for every later execute of that plan.
class FusedWorkspace {
 public:
  /// Sizing for one shared CSR structure, computable once at plan
  /// compile time (the plan-compiled workspace spec).
  struct Spec {
    size_t rows = 0;
    size_t cols = 0;
    size_t max_row_nnz = 0;      ///< widest row of the shared structure
    size_t max_operands = 0;     ///< reference count upper bound
  };

  /// Derives the Spec of a shared structure (row/col counts, widest
  /// row) for `num_operands` aligned matrices.
  static Spec ComputeSpec(const CsrMatrix& structure, size_t num_operands);

  FusedWorkspace() = default;
  FusedWorkspace(const FusedWorkspace&) = delete;
  FusedWorkspace& operator=(const FusedWorkspace&) = delete;
  FusedWorkspace(FusedWorkspace&&) = default;
  FusedWorkspace& operator=(FusedWorkspace&&) = default;

  /// Ensures every buffer covers `spec` with `slots` concurrently
  /// usable row-scratch slots (1 for inline execution, pool size + 1
  /// when a pool runs the chunks). Monotonic: buffers never shrink.
  void Prepare(const Spec& spec, size_t slots);

  /// Ensures the column-panel buffers cover `spec` at panel width
  /// `width` (clamped to [1, simd::kMaxPanelWidth]). Monotonic like
  /// Prepare; the panel arenas are sized cols × width and
  /// max_row_nnz × width doubles, so serving loops prepare once at the
  /// plan's panel width and every later panel execute is growth-free.
  void PreparePanel(const Spec& spec, size_t width);

  /// Cumulative count of buffer growth events across every Prepare.
  uint64_t alloc_events() const { return alloc_events_; }

 private:
  friend Status FusedAggregatesAligned(
      const struct FusedAggregatesInputs& in, const Spec& spec,
      linalg::Vector* target_estimates, std::vector<size_t>* zero_rows,
      FusedWorkspace* workspace, common::ThreadPool* pool);
  friend Status FusedAggregatesPanel(const struct FusedPanelInputs& in,
                                     const Spec& spec, simd::Isa isa,
                                     linalg::Vector* const* target_estimates,
                                     std::vector<size_t>* const* zero_rows,
                                     FusedWorkspace* workspace);

  /// One row whose denominator fell below tolerance in at least one
  /// panel lane; bit p of `lanes` marks the affected lanes.
  struct PanelZeroRow {
    size_t row = 0;
    uint64_t lanes = 0;
  };

  // Chunk boundaries for spec.rows at kColSumGrain — fixed per plan,
  // so they are computed in Prepare, not per execute.
  std::vector<common::ChunkRange> chunks_;
  size_t chunk_rows_ = 0;  ///< rows the chunks_ cover

  // Flat per-chunk partial target arena; slices are padded to a cache
  // line (8 doubles) so concurrent chunks never false-share.
  std::vector<double> partials_;
  size_t partial_stride_ = 0;

  // Flat per-slot row scratch (numerator accumulators), same padding.
  std::vector<double> row_scratch_;
  size_t scratch_stride_ = 0;
  size_t slots_ = 0;

  // Per-chunk zero-row lists, each reserved to its chunk's row count.
  std::vector<std::vector<size_t>> chunk_zero_;

  // Active-operand staging (value arrays + weights of the operands the
  // materializing kernel would keep).
  std::vector<const double*> active_values_;
  std::vector<double> active_weights_;

  // --- Column-panel arenas (PreparePanel; lane-major layout: the
  // doubles of one logical cell's `width` lanes are contiguous). The
  // panel kernel walks its chunks sequentially on one thread, so one
  // partial + one accumulator per workspace suffice.
  size_t panel_width_ = 0;                 ///< prepared lane capacity
  std::vector<double> panel_scratch_;      ///< max_row_nnz × width
  std::vector<double> panel_partial_;      ///< cols × width (per chunk)
  std::vector<double> panel_accum_;        ///< cols × width (combined)
  std::vector<double> panel_weights_;      ///< active ops × width
  std::vector<double> panel_row_;          ///< denom/inv/rscale, 3 × width
  std::vector<PanelZeroRow> panel_zero_;   ///< reserved to spec.rows
  std::vector<const double*> active_aggs_; ///< kFromAggregates operands

  uint64_t alloc_events_ = 0;
};

/// Inputs of the fused Eq. 14 + Eq. 17 pass. All pointers are borrowed
/// and must outlive the call; `mats` must be non-empty matrices
/// sharing one CSR structure (the PreparedReferenceSet "aligned"
/// case).
struct FusedAggregatesInputs {
  /// Aligned operand matrices (the raw reference DMs).
  const std::vector<const CsrMatrix*>* mats = nullptr;
  /// Effective per-operand weights β_k / normalizer_k (exact zeros are
  /// skipped, as in WeightedSumAligned).
  const linalg::Vector* weights = nullptr;
  /// Per-row Eq. 14 denominators (DenominatorMode::kFromAggregates);
  /// null means "row sums of the weighted numerator"
  /// (DenominatorMode::kFromDmRowSums).
  const linalg::Vector* denominators = nullptr;
  /// Rows with |denominator| <= zero_tolerance are zero rows.
  double zero_tolerance = 0.0;
  /// Per-row scale a^s_o (the objective column), as a borrowed view —
  /// caller memory flows straight into the kernel. Required (a
  /// default-constructed view is rejected).
  common::ColumnView row_scale;
  /// Optional zero-row fallback DM (same shape as the operands) and
  /// its precomputed row sums; both set or both null. Zero rows with
  /// positive fallback support scatter row_scale[r]/fallback_sums[r]
  /// times the fallback row instead of vanishing.
  const CsrMatrix* fallback_dm = nullptr;
  const linalg::Vector* fallback_row_sums = nullptr;
};

/// One fused pass over the shared structure: accumulates the
/// β-weighted numerator per entry (Eq. 14 numerator), applies the
/// per-row denominator and the objective row scale, and scatters
/// directly into per-chunk partial target vectors that are combined in
/// chunk-index order (Eq. 17) — without ever materializing the
/// estimated DM.
///
/// Bit-identity contract: `target_estimates` and `zero_rows` carry
/// exactly the bits of the materializing pipeline
///   WeightedSumAligned → RowSums/denominators → DivideRowsOrZero →
///   ScaleRows → [zero-row fallback rebuild] → ColSumsDeterministic
/// for every pool size, because the scatter reuses the column-sum
/// chunking (kColSumGrain) and every per-entry/per-row operation
/// replays the materializing kernels' arithmetic in the same order.
/// (Entries those kernels prune are exact ±0.0 here; adding them to a
/// partial that accumulates from +0.0 can never flip a bit, so
/// skipping the materialization is bit-neutral.)
///
/// `spec` is the plan-compiled sizing (FusedWorkspace::ComputeSpec of
/// the shared structure); `workspace` must be non-null and is prepared
/// (grown only if needed) internally.
Status FusedAggregatesAligned(const FusedAggregatesInputs& in,
                              const FusedWorkspace::Spec& spec,
                              linalg::Vector* target_estimates,
                              std::vector<size_t>* zero_rows,
                              FusedWorkspace* workspace,
                              common::ThreadPool* pool = nullptr);

/// Inputs of the column-panel fused pass: `width` objective columns
/// (1..simd::kMaxPanelWidth) executed against one shared CSR traversal.
/// All pointers are borrowed and must outlive the call.
struct FusedPanelInputs {
  /// Aligned operand matrices (the raw reference DMs).
  const std::vector<const CsrMatrix*>* mats = nullptr;
  /// Lane-major effective weights: lane_weights[mi * width + p] is
  /// operand mi's β_p / normalizer for panel lane p. Operands whose
  /// weight is exactly zero in EVERY lane are skipped (the
  /// WeightedSumAligned filter); a lane-local exact zero contributes
  /// ±0.0 to that lane's +0.0-seeded accumulator, which is bit-neutral.
  const double* lane_weights = nullptr;
  /// Panel width (lane count), 1..simd::kMaxPanelWidth.
  size_t width = 0;
  /// Per-lane objective columns a^s_o (each length rows), as borrowed
  /// views.
  const common::ColumnView* row_scales = nullptr;
  /// DenominatorMode::kFromAggregates: per-operand source-aggregate
  /// vectors (each length rows, indexed like *mats); the kernel then
  /// derives each lane's denominator per row by the same
  /// operand-ascending accumulation from 0.0 as the hoisted
  /// linalg::Axpy loop. Null selects kFromDmRowSums (denominators from
  /// the weighted numerator's row sums, in-pass).
  const common::ColumnView* operand_aggregates = nullptr;
  /// Rows with |denominator| <= zero_tolerance are zero rows (per lane).
  double zero_tolerance = 0.0;
  /// Optional zero-row fallback DM + row sums, as in
  /// FusedAggregatesInputs; applied per lane.
  const CsrMatrix* fallback_dm = nullptr;
  const linalg::Vector* fallback_row_sums = nullptr;
};

/// The cache-blocked multi-column form of FusedAggregatesAligned: one
/// traversal of the shared structure serves `in.width` objective
/// columns, with the per-entry accumulate/scatter vectorized across
/// panel lanes by the `isa` kernel table (sparse/simd/). Runs inline
/// on the calling thread — serving loops parallelize across panels,
/// not within one.
///
/// Bit-identity contract: lane p's `target_estimates[p]` /
/// `zero_rows[p]` carry exactly the bits of a single-column
/// FusedAggregatesAligned call (and therefore of the materializing
/// pipeline) for column p, at every panel width, ISA, and thread
/// count. Structurally guaranteed: each lane performs the scalar
/// sequence of its own column (lane-wise kernels, fixed in-lane
/// order, no FMA), the chunk grid is the same kColSumGrain
/// DeterministicChunks, and the per-chunk partials are combined in
/// ascending chunk index by a single thread. Verified differentially
/// by tests/simd_kernel_test.cc.
///
/// `target_estimates` and `zero_rows` are arrays of `in.width`
/// non-null pointers.
Status FusedAggregatesPanel(const FusedPanelInputs& in,
                            const FusedWorkspace::Spec& spec, simd::Isa isa,
                            linalg::Vector* const* target_estimates,
                            std::vector<size_t>* const* zero_rows,
                            FusedWorkspace* workspace);

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_FUSED_EXECUTE_H_
