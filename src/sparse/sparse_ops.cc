#include "sparse/sparse_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace geoalign::sparse {

Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b, double alpha,
                      double beta) {
  return WeightedSum({&a, &b}, {alpha, beta});
}

Result<CsrMatrix> WeightedSum(const std::vector<const CsrMatrix*>& mats,
                              const linalg::Vector& weights) {
  if (mats.empty()) {
    return Status::InvalidArgument("WeightedSum: no matrices");
  }
  if (mats.size() != weights.size()) {
    return Status::InvalidArgument("WeightedSum: weight count mismatch");
  }
  size_t rows = mats[0]->rows();
  size_t cols = mats[0]->cols();
  for (const CsrMatrix* m : mats) {
    if (m->rows() != rows || m->cols() != cols) {
      return Status::InvalidArgument("WeightedSum: shape mismatch");
    }
  }

  CsrMatrix out(rows, cols);
  std::vector<size_t> out_rowptr(rows + 1, 0);
  std::vector<size_t> out_cols;
  std::vector<double> out_vals;

  // Scatter-gather row merge using a dense accumulator over columns
  // touched in the current row.
  std::vector<double> acc(cols, 0.0);
  std::vector<size_t> touched;
  for (size_t r = 0; r < rows; ++r) {
    touched.clear();
    for (size_t mi = 0; mi < mats.size(); ++mi) {
      double w = weights[mi];
      if (w == 0.0) continue;
      CsrMatrix::RowView row = mats[mi]->Row(r);
      for (size_t k = 0; k < row.size; ++k) {
        size_t c = row.cols[k];
        if (acc[c] == 0.0) touched.push_back(c);
        acc[c] += w * row.values[k];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (size_t c : touched) {
      if (acc[c] != 0.0) {
        out_cols.push_back(c);
        out_vals.push_back(acc[c]);
      }
      acc[c] = 0.0;
    }
    out_rowptr[r + 1] = out_cols.size();
  }
  return CsrMatrix::FromCsrArrays(rows, cols, std::move(out_rowptr),
                                  std::move(out_cols), std::move(out_vals));
}

void DivideRowsOrZero(CsrMatrix& m, const linalg::Vector& denom,
                      double zero_tol, std::vector<size_t>* zero_rows) {
  GEOALIGN_CHECK(denom.size() == m.rows())
      << "DivideRowsOrZero: size mismatch";
  linalg::Vector scale(m.rows(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    if (std::fabs(denom[r]) <= zero_tol) {
      if (zero_rows != nullptr) zero_rows->push_back(r);
      scale[r] = 0.0;
    } else {
      scale[r] = 1.0 / denom[r];
    }
  }
  m.ScaleRows(scale);
  m.Prune(0.0);
}

}  // namespace geoalign::sparse
