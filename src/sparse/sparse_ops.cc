#include "sparse/sparse_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"
#include "sparse/kernel_grains.h"
#include "sparse/simd/panel_kernels.h"

namespace geoalign::sparse {

namespace {

// Row-chunk grains live in sparse/kernel_grains.h — kColSumGrain is
// shared with the fused execute kernel, which must chunk exactly like
// ColSumsDeterministic to stay bit-identical.

// Private per-chunk output of a row-parallel merge kernel.
struct ChunkOut {
  std::vector<size_t> cols;
  std::vector<double> vals;
  std::vector<size_t> row_nnz;  // entries per row in this chunk
};

// Stitches per-chunk outputs back into one CSR matrix in chunk order —
// the deterministic combine step shared by WeightedSum and
// WeightedSumAligned.
Result<CsrMatrix> StitchRowChunks(size_t rows, size_t cols,
                                  std::vector<ChunkOut>& parts) {
  std::vector<size_t> out_rowptr(rows + 1, 0);
  size_t total_nnz = 0;
  size_t r = 0;
  for (const ChunkOut& part : parts) {
    for (size_t nnz : part.row_nnz) {
      total_nnz += nnz;
      out_rowptr[++r] = total_nnz;
    }
  }
  std::vector<size_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(total_nnz);
  out_vals.reserve(total_nnz);
  for (ChunkOut& part : parts) {
    out_cols.insert(out_cols.end(), part.cols.begin(), part.cols.end());
    out_vals.insert(out_vals.end(), part.vals.begin(), part.vals.end());
  }
  return CsrMatrix::FromCsrArrays(rows, cols, std::move(out_rowptr),
                                  std::move(out_cols), std::move(out_vals));
}

}  // namespace

Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b, double alpha,
                      double beta) {
  return WeightedSum({&a, &b}, {alpha, beta});
}

Result<CsrMatrix> WeightedSum(const std::vector<const CsrMatrix*>& mats,
                              const linalg::Vector& weights,
                              common::ThreadPool* pool) {
  if (mats.empty()) {
    return Status::InvalidArgument("WeightedSum: no matrices");
  }
  if (mats.size() != weights.size()) {
    return Status::InvalidArgument("WeightedSum: weight count mismatch");
  }
  size_t rows = mats[0]->rows();
  size_t cols = mats[0]->cols();
  for (const CsrMatrix* m : mats) {
    if (m->rows() != rows || m->cols() != cols) {
      return Status::InvalidArgument("WeightedSum: shape mismatch");
    }
  }

  // Each chunk merges its own row range into private output arrays —
  // rows are self-contained, so chunking changes no bit of the result.
  std::vector<common::ChunkRange> chunks =
      common::DeterministicChunks(rows, kRowMergeGrain);
  std::vector<ChunkOut> parts(chunks.size());
  common::ParallelForChunks(pool, chunks.size(), [&](size_t ci) {
    const common::ChunkRange& range = chunks[ci];
    ChunkOut& part = parts[ci];
    part.row_nnz.reserve(range.end - range.begin);
    // Scatter-gather row merge using a dense accumulator over columns
    // touched in the current row.
    std::vector<double> acc(cols, 0.0);
    std::vector<size_t> touched;
    for (size_t r = range.begin; r < range.end; ++r) {
      touched.clear();
      for (size_t mi = 0; mi < mats.size(); ++mi) {
        double w = weights[mi];
        if (ExactlyZero(w)) continue;
        CsrMatrix::RowView row = mats[mi]->Row(r);
        for (size_t k = 0; k < row.size; ++k) {
          size_t c = row.cols[k];
          if (ExactlyZero(acc[c])) touched.push_back(c);
          acc[c] += w * row.values[k];
        }
      }
      std::sort(touched.begin(), touched.end());
      size_t before = part.cols.size();
      for (size_t c : touched) {
        if (!ExactlyZero(acc[c])) {
          part.cols.push_back(c);
          part.vals.push_back(acc[c]);
        }
        acc[c] = 0.0;
      }
      part.row_nnz.push_back(part.cols.size() - before);
    }
  });
  return StitchRowChunks(rows, cols, parts);
}

Result<CsrMatrix> WeightedSumAligned(const std::vector<const CsrMatrix*>& mats,
                                     const linalg::Vector& weights,
                                     common::ThreadPool* pool) {
  if (mats.empty()) {
    return Status::InvalidArgument("WeightedSumAligned: no matrices");
  }
  if (mats.size() != weights.size()) {
    return Status::InvalidArgument(
        "WeightedSumAligned: weight count mismatch");
  }
  size_t rows = mats[0]->rows();
  size_t cols = mats[0]->cols();
  for (const CsrMatrix* m : mats) {
    if (m->rows() != rows || m->cols() != cols) {
      return Status::InvalidArgument("WeightedSumAligned: shape mismatch");
    }
    // Full structure equality is the caller's precondition (checked
    // once at plan-compile time); re-verify only in debug builds.
    GEOALIGN_DCHECK(m->row_ptr() == mats[0]->row_ptr() &&
                    m->col_idx() == mats[0]->col_idx())
        << "WeightedSumAligned: sparsity structures differ";
  }

  // Operands that the scatter-gather path would skip entirely.
  std::vector<const CsrMatrix*> active_mats;
  std::vector<double> active_weights;
  active_mats.reserve(mats.size());
  active_weights.reserve(mats.size());
  for (size_t mi = 0; mi < mats.size(); ++mi) {
    if (ExactlyZero(weights[mi])) continue;
    active_mats.push_back(mats[mi]);
    active_weights.push_back(weights[mi]);
  }

  common::ConstSpan<size_t> row_ptr = mats[0]->row_ptr();
  common::ConstSpan<size_t> col_idx = mats[0]->col_idx();
  std::vector<common::ChunkRange> chunks =
      common::DeterministicChunks(rows, kRowMergeGrain);
  std::vector<ChunkOut> parts(chunks.size());
  // The value lane is elementwise over the shared entry span, so it
  // dispatches to the vectorized simd kernels: per entry the operands
  // still accumulate in ascending order from 0.0 (the operand loop is
  // outer, the entry loop inner — a pure loop interchange), which
  // keeps every entry bit-identical to the scatter-gather kernel at
  // every ISA (tests/simd_kernel_test.cc).
  const simd::PanelKernels& kern = simd::KernelsFor(simd::ActiveIsa());
  common::ParallelForChunks(pool, chunks.size(), [&](size_t ci) {
    const common::ChunkRange& range = chunks[ci];
    ChunkOut& part = parts[ci];
    part.row_nnz.reserve(range.end - range.begin);
    const size_t span_begin = row_ptr[range.begin];
    const size_t span = row_ptr[range.end] - span_begin;
    std::vector<double> acc(span, 0.0);
    for (size_t mi = 0; mi < active_mats.size(); ++mi) {
      kern.axpy_scalar(acc.data(), active_weights[mi],
                       active_mats[mi]->values().data() + span_begin, span);
    }
    for (size_t r = range.begin; r < range.end; ++r) {
      size_t before = part.cols.size();
      for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        double v = acc[k - span_begin];
        if (!ExactlyZero(v)) {
          part.cols.push_back(col_idx[k]);
          part.vals.push_back(v);
        }
      }
      part.row_nnz.push_back(part.cols.size() - before);
    }
  });
  return StitchRowChunks(rows, cols, parts);
}

void DivideRowsOrZero(CsrMatrix& m, const linalg::Vector& denom,
                      double zero_tol, std::vector<size_t>* zero_rows,
                      common::ThreadPool* pool) {
  GEOALIGN_CHECK(denom.size() == m.rows())
      << "DivideRowsOrZero: size mismatch";
  // mutable_values() first: it materializes an owned copy of a
  // borrowed matrix, so the row_ptr span below views the final storage.
  std::vector<double>& values = m.mutable_values();
  common::ConstSpan<size_t> row_ptr = m.row_ptr();
  std::vector<common::ChunkRange> chunks =
      common::DeterministicChunks(m.rows(), kRowScaleGrain);
  std::vector<std::vector<size_t>> chunk_zero(chunks.size());
  common::ParallelForChunks(pool, chunks.size(), [&](size_t ci) {
    for (size_t r = chunks[ci].begin; r < chunks[ci].end; ++r) {
      double scale;
      if (std::fabs(denom[r]) <= zero_tol) {
        chunk_zero[ci].push_back(r);
        scale = 0.0;
      } else {
        scale = 1.0 / denom[r];
      }
      for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        values[k] *= scale;
      }
    }
  });
  if (zero_rows != nullptr) {
    // Chunks are in ascending row order, so this concatenation matches
    // the sequential reporting order.
    for (const std::vector<size_t>& z : chunk_zero) {
      zero_rows->insert(zero_rows->end(), z.begin(), z.end());
    }
  }
  m.Prune(0.0);
}

linalg::Vector ColSumsDeterministic(const CsrMatrix& m,
                                    common::ThreadPool* pool) {
  common::ConstSpan<size_t> row_ptr = m.row_ptr();
  common::ConstSpan<size_t> col_idx = m.col_idx();
  common::ConstSpan<double> values = m.values();
  size_t cols = m.cols();
  return common::ParallelReduceOrdered<linalg::Vector>(
      pool, m.rows(), kColSumGrain, linalg::Vector(cols, 0.0),
      [&](size_t begin, size_t end) {
        linalg::Vector part(cols, 0.0);
        for (size_t r = begin; r < end; ++r) {
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            part[col_idx[k]] += values[k];
          }
        }
        return part;
      },
      [](linalg::Vector& acc, linalg::Vector&& part) {
        for (size_t c = 0; c < acc.size(); ++c) acc[c] += part[c];
      });
}

}  // namespace geoalign::sparse
