#ifndef GEOALIGN_SPARSE_COO_BUILDER_H_
#define GEOALIGN_SPARSE_COO_BUILDER_H_

#include <vector>

#include "sparse/csr_matrix.h"

namespace geoalign::sparse {

/// Accumulates (row, col, value) triplets and compiles them into a
/// `CsrMatrix`. Duplicate coordinates are summed, matching the way
/// overlays accumulate aggregates into disaggregation-matrix cells.
class CooBuilder {
 public:
  CooBuilder(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

  /// Adds `value` at (r, c); values at repeated coordinates add up.
  /// Coordinates must be in range.
  void Add(size_t r, size_t c, double value);

  /// Number of accumulated triplets (before deduplication).
  size_t triplet_count() const { return entries_.size(); }

  /// Sorts, merges duplicates, drops exact zeros, and produces the CSR
  /// matrix. The builder is left empty and reusable.
  CsrMatrix Build();

 private:
  struct Entry {
    size_t row;
    size_t col;
    double value;
  };

  size_t rows_;
  size_t cols_;
  std::vector<Entry> entries_;
};

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_COO_BUILDER_H_
