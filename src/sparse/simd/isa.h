#ifndef GEOALIGN_SPARSE_SIMD_ISA_H_
#define GEOALIGN_SPARSE_SIMD_ISA_H_

#include <cstdint>
#include <vector>

// Compile-time ISA availability of this build. The AVX2 translation
// unit is compiled with -mavx2 on x86 only and is invoked strictly
// after a runtime cpuid check; NEON is baseline on aarch64 so its unit
// needs no extra flags.
#if defined(__x86_64__) || defined(__i386__)
#define GEOALIGN_SIMD_X86 1
#else
#define GEOALIGN_SIMD_X86 0
#endif
#if defined(__aarch64__)
#define GEOALIGN_SIMD_NEON 1
#else
#define GEOALIGN_SIMD_NEON 0
#endif

namespace geoalign::sparse::simd {

/// Instruction sets the panel kernels dispatch over. Every variant is
/// bit-identical to kScalar by construction (lane-wise IEEE mul/add/
/// div only, no FMA, fixed in-lane reduction order); the dispatch
/// picks throughput, never results. tests/simd_kernel_test.cc holds
/// each variant to that contract differentially.
enum class Isa : uint8_t {
  kScalar = 0,  ///< portable reference implementation (always present)
  kAvx2 = 1,    ///< x86-64 AVX2, 4 double lanes per vector
  kNeon = 2,    ///< aarch64 NEON, 2 double lanes per vector
};

/// Stable lowercase name ("scalar", "avx2", "neon") — the spelling
/// GEOALIGN_FORCE_ISA accepts and `execute.isa` telemetry reports.
const char* IsaName(Isa isa);

/// True when this build contains `isa` AND the running CPU supports
/// it. kScalar is always supported.
bool IsaSupported(Isa isa);

/// Every supported ISA, kScalar first — the differential harness
/// iterates this so each dispatched variant is proven against the
/// scalar reference on the machine actually running the tests.
std::vector<Isa> SupportedIsas();

/// The widest supported ISA (what dispatch picks by default).
Isa BestSupportedIsa();

/// The ISA executes dispatch to right now, in precedence order:
///  1. a ForceIsa/ScopedForceIsa programmatic override (tests),
///  2. the GEOALIGN_FORCE_ISA environment variable
///     ("scalar" | "avx2" | "neon" | "native"; read once per process),
///  3. BestSupportedIsa().
/// Unsupported requests degrade to kScalar, never to a crash: forcing
/// "avx2" on a CPU without it runs the reference implementation.
Isa ActiveIsa();

/// Programmatic ActiveIsa override (precedence over the environment).
/// Pass kScalar..kNeon to force, or call ClearForcedIsa to restore.
/// Unsupported ISAs clamp to kScalar. Not thread-safe against
/// concurrent executes — a test-only knob, like the env variable.
void ForceIsa(Isa isa);
void ClearForcedIsa();

/// RAII ForceIsa for tests: forces in the constructor, restores the
/// previous override (or none) in the destructor.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(Isa isa);
  ~ScopedForceIsa();
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  int prev_;  ///< previous override slot (-1 = none)
};

}  // namespace geoalign::sparse::simd

#endif  // GEOALIGN_SPARSE_SIMD_ISA_H_
