#ifndef GEOALIGN_SPARSE_SIMD_PANEL_KERNELS_H_
#define GEOALIGN_SPARSE_SIMD_PANEL_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "sparse/simd/isa.h"

namespace geoalign::sparse::simd {

/// Widest panel the kernels accept. zero_mask reports one bit per
/// lane, so the bound is the uint64_t width; it also caps the panel
/// scratch the fused workspace sizes (cols × width doubles per array).
inline constexpr size_t kMaxPanelWidth = 64;

/// The vectorized micro-kernels of the column-panel execute path, one
/// table per ISA. Every kernel is a pure lane-wise map: lane p of an
/// n-lane call performs exactly the scalar instruction sequence of the
/// reference implementation — IEEE mul/add/div/compare only, operands
/// in the same order, no FMA contraction, no cross-lane shuffles — so
/// a vectorized call is bit-identical to n scalar calls by
/// construction. tests/simd_kernel_test.cc enforces that differentially
/// for every table returned by KernelsFor on the running machine.
///
/// Masked kernels replicate the reference's "skip exact ±0.0" branches
/// branch-free with a select: skipped lanes keep the destination's
/// ORIGINAL bits (never an added +0.0), so the identity holds for
/// every destination value — including a -0.0 a caller might hand in —
/// not just the +0.0-seeded accumulators of the fused path.
struct PanelKernels {
  /// dst[p] += w[p] * v — the Eq. 14 numerator step: one CSR entry's
  /// value broadcast against the per-lane effective weights.
  void (*axpy_broadcast)(double* dst, const double* w, double v, size_t n);

  /// dst[i] += w * src[i] — the elementwise value lane of
  /// WeightedSumAligned: one operand's weight broadcast over a span of
  /// shared-structure entry values.
  void (*axpy_scalar)(double* dst, double w, const double* src, size_t n);

  /// sum[p] += acc[p] for lanes where acc[p] is not exactly ±0.0 — the
  /// kFromDmRowSums row-sum update (pruned entries excluded).
  void (*masked_add)(double* sum, const double* acc, size_t n);

  /// part[p] += (acc[p] * inv[p]) * rscale[p] for lanes where acc[p]
  /// is not exactly ±0.0 — DivideRowsOrZero + ScaleRows + the Eq. 17
  /// scatter, fused per entry. The acc==0 mask also guards the
  /// 0 × inf = NaN hazard when a lane's denominator underflowed.
  void (*scatter_scaled)(double* part, const double* acc, const double* inv,
                         const double* rscale, size_t n);

  /// dst[i] += src[i] — the ordered per-chunk partial combine.
  void (*add)(double* dst, const double* src, size_t n);

  /// Bit p set iff |denom[p]| <= tol (the zero-row predicate).
  /// Requires n <= kMaxPanelWidth.
  uint64_t (*zero_mask)(const double* denom, double tol, size_t n);

  /// inv[p] = 1.0 / denom[p]. Callers must only pass lanes that
  /// cleared zero_mask — the reference path never divides by a
  /// below-tolerance denominator.
  void (*reciprocal)(double* inv, const double* denom, size_t n);
};

/// The kernel table for `isa`; an ISA this build/CPU cannot run
/// resolves to the scalar reference table.
const PanelKernels& KernelsFor(Isa isa);

namespace internal {
/// Per-ISA tables (dispatch detail; tests reach them via KernelsFor).
const PanelKernels& ScalarKernels();
#if GEOALIGN_SIMD_X86
const PanelKernels& Avx2Kernels();
#endif
#if GEOALIGN_SIMD_NEON
const PanelKernels& NeonKernels();
#endif
}  // namespace internal

}  // namespace geoalign::sparse::simd

#endif  // GEOALIGN_SPARSE_SIMD_PANEL_KERNELS_H_
