#include "sparse/simd/panel_kernels.h"

// AVX2 panel kernels: 4 double lanes per vector, unaligned loads (the
// panel arenas are contiguous but width-strided). This translation
// unit is compiled with -mavx2 (src/CMakeLists.txt) and must only be
// reached through KernelsFor, which gates on the runtime cpuid check
// in IsaSupported.
//
// Bit-identity rules (docs/parallelism.md):
//  - mul/add/div stay separate instructions (_mm256_mul_pd +
//    _mm256_add_pd, never _mm256_fmadd_pd) so each lane performs the
//    scalar reference's exact rounding sequence;
//  - "skip exact ±0.0" branches become compare-and-blend: skipped
//    lanes keep the destination's original bits, exactly like the
//    reference's branch (a forced "+ 0.0" would flip a -0.0
//    destination to +0.0);
//  - remainder lanes (n % 4) run the scalar loop verbatim.

#if GEOALIGN_SIMD_X86

#include <immintrin.h>

#include <cmath>

#include "common/float_eq.h"

namespace geoalign::sparse::simd {

namespace {

void AxpyBroadcastAvx2(double* dst, const double* w, double v, size_t n) {
  const __m256d vv = _mm256_set1_pd(v);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    __m256d d = _mm256_loadu_pd(dst + p);
    __m256d prod = _mm256_mul_pd(_mm256_loadu_pd(w + p), vv);
    _mm256_storeu_pd(dst + p, _mm256_add_pd(d, prod));
  }
  for (; p < n; ++p) dst[p] += w[p] * v;
}

void AxpyScalarAvx2(double* dst, double w, const double* src, size_t n) {
  const __m256d wv = _mm256_set1_pd(w);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_loadu_pd(dst + i);
    __m256d prod = _mm256_mul_pd(wv, _mm256_loadu_pd(src + i));
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, prod));
  }
  for (; i < n; ++i) dst[i] += w * src[i];
}

void MaskedAddAvx2(double* sum, const double* acc, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    __m256d a = _mm256_loadu_pd(acc + p);
    __m256d s = _mm256_loadu_pd(sum + p);
    // Lanes where acc is exactly ±0.0 keep the ORIGINAL sum bits
    // (blend, not add-zero) — exactly the reference's skip branch,
    // even for a -0.0 destination.
    __m256d is_zero = _mm256_cmp_pd(a, zero, _CMP_EQ_OQ);
    _mm256_storeu_pd(sum + p,
                     _mm256_blendv_pd(_mm256_add_pd(s, a), s, is_zero));
  }
  for (; p < n; ++p) {
    if (!ExactlyZero(acc[p])) sum[p] += acc[p];
  }
}

void ScatterScaledAvx2(double* part, const double* acc, const double* inv,
                       const double* rscale, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    __m256d a = _mm256_loadu_pd(acc + p);
    __m256d t = _mm256_mul_pd(_mm256_mul_pd(a, _mm256_loadu_pd(inv + p)),
                              _mm256_loadu_pd(rscale + p));
    // Blending acc==±0.0 lanes back to the original partial AFTER the
    // multiply replicates the reference's skip exactly (including a
    // -0.0 destination) and keeps the 0 × inf = NaN an underflowed
    // denominator would inject out of the result.
    __m256d is_zero = _mm256_cmp_pd(a, zero, _CMP_EQ_OQ);
    __m256d d = _mm256_loadu_pd(part + p);
    _mm256_storeu_pd(part + p,
                     _mm256_blendv_pd(_mm256_add_pd(d, t), d, is_zero));
  }
  for (; p < n; ++p) {
    if (ExactlyZero(acc[p])) continue;
    part[p] += (acc[p] * inv[p]) * rscale[p];
  }
}

void AddAvx2(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

uint64_t ZeroMaskAvx2(const double* denom, double tol, size_t n) {
  // |x| via clearing the sign bit — bit-exact fabs for every input
  // including NaN payloads (the compare then mirrors fabs(x) <= tol).
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d tolv = _mm256_set1_pd(tol);
  uint64_t mask = 0;
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    __m256d mag = _mm256_andnot_pd(sign, _mm256_loadu_pd(denom + p));
    __m256d le = _mm256_cmp_pd(mag, tolv, _CMP_LE_OQ);
    mask |= static_cast<uint64_t>(
                static_cast<unsigned>(_mm256_movemask_pd(le)))
            << p;
  }
  for (; p < n; ++p) {
    if (std::fabs(denom[p]) <= tol) mask |= uint64_t{1} << p;
  }
  return mask;
}

void ReciprocalAvx2(double* inv, const double* denom, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    // Full-precision IEEE divide — never the _mm256_rcp approximation.
    _mm256_storeu_pd(inv + p,
                     _mm256_div_pd(one, _mm256_loadu_pd(denom + p)));
  }
  for (; p < n; ++p) inv[p] = 1.0 / denom[p];
}

}  // namespace

namespace internal {

const PanelKernels& Avx2Kernels() {
  static const PanelKernels table{
      AxpyBroadcastAvx2, AxpyScalarAvx2, MaskedAddAvx2, ScatterScaledAvx2,
      AddAvx2,           ZeroMaskAvx2,   ReciprocalAvx2,
  };
  return table;
}

}  // namespace internal

}  // namespace geoalign::sparse::simd

#endif  // GEOALIGN_SIMD_X86
