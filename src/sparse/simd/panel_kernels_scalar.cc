#include <cmath>

#include "common/float_eq.h"
#include "sparse/simd/panel_kernels.h"

// The scalar reference implementation: the ground truth every
// vectorized table is proven against (tests/simd_kernel_test.cc), and
// the table dispatch falls back to. These loops are the per-lane
// semantics — the AVX2/NEON units replicate them 4/2 lanes at a time
// with the same operand order and no contraction (-ffp-contract=off
// project-wide keeps the compiler from fusing a*b+c here either).

namespace geoalign::sparse::simd {

namespace {

void AxpyBroadcastScalar(double* dst, const double* w, double v, size_t n) {
  for (size_t p = 0; p < n; ++p) dst[p] += w[p] * v;
}

void AxpyScalarScalar(double* dst, double w, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += w * src[i];
}

void MaskedAddScalar(double* sum, const double* acc, size_t n) {
  for (size_t p = 0; p < n; ++p) {
    if (!ExactlyZero(acc[p])) sum[p] += acc[p];
  }
}

void ScatterScaledScalar(double* part, const double* acc, const double* inv,
                         const double* rscale, size_t n) {
  for (size_t p = 0; p < n; ++p) {
    if (ExactlyZero(acc[p])) continue;
    part[p] += (acc[p] * inv[p]) * rscale[p];
  }
}

void AddScalar(double* dst, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

uint64_t ZeroMaskScalar(const double* denom, double tol, size_t n) {
  uint64_t mask = 0;
  for (size_t p = 0; p < n; ++p) {
    if (std::fabs(denom[p]) <= tol) mask |= uint64_t{1} << p;
  }
  return mask;
}

void ReciprocalScalar(double* inv, const double* denom, size_t n) {
  for (size_t p = 0; p < n; ++p) inv[p] = 1.0 / denom[p];
}

}  // namespace

namespace internal {

const PanelKernels& ScalarKernels() {
  static const PanelKernels table{
      AxpyBroadcastScalar, AxpyScalarScalar, MaskedAddScalar,
      ScatterScaledScalar, AddScalar,        ZeroMaskScalar,
      ReciprocalScalar,
  };
  return table;
}

}  // namespace internal

const PanelKernels& KernelsFor(Isa isa) {
  if (!IsaSupported(isa)) return internal::ScalarKernels();
  switch (isa) {
#if GEOALIGN_SIMD_X86
    case Isa::kAvx2:
      return internal::Avx2Kernels();
#endif
#if GEOALIGN_SIMD_NEON
    case Isa::kNeon:
      return internal::NeonKernels();
#endif
    default:
      return internal::ScalarKernels();
  }
}

}  // namespace geoalign::sparse::simd
