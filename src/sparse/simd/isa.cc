#include "sparse/simd/isa.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace geoalign::sparse::simd {

namespace {

// Programmatic override slot: -1 = none, else the forced Isa value.
std::atomic<int> g_forced{-1};

Isa ParseIsaOrScalar(const char* name) {
  if (std::strcmp(name, "native") == 0) return BestSupportedIsa();
  if (std::strcmp(name, "avx2") == 0) return Isa::kAvx2;
  if (std::strcmp(name, "neon") == 0) return Isa::kNeon;
  // "scalar" and anything unrecognized both run the reference
  // implementation — a typo must degrade to correct-but-slow.
  return Isa::kScalar;
}

// GEOALIGN_FORCE_ISA, resolved against the running CPU once per
// process (-1 = unset). CI's simd gate sets it per test process.
int EnvForcedIsa() {
  static const int parsed = [] {
    const char* env = std::getenv("GEOALIGN_FORCE_ISA");
    if (env == nullptr || *env == '\0') return -1;
    Isa isa = ParseIsaOrScalar(env);
    if (!IsaSupported(isa)) isa = Isa::kScalar;
    return static_cast<int>(isa);
  }();
  return parsed;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if GEOALIGN_SIMD_X86
      // Runtime check: the AVX2 unit is compiled with -mavx2 but its
      // kernels are only reachable through this predicate.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
      // Advanced SIMD is baseline on aarch64: compiled in = supported.
      return GEOALIGN_SIMD_NEON != 0;
  }
  return false;
}

std::vector<Isa> SupportedIsas() {
  // Reserve up front: push_back must never reallocate here — GCC 12's
  // array-bounds analysis misreads the grow-from-capacity-1 path as an
  // out-of-bounds placement new under the sanitizer flag sets.
  std::vector<Isa> isas;
  isas.reserve(3);
  isas.push_back(Isa::kScalar);
  if (IsaSupported(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  if (IsaSupported(Isa::kNeon)) isas.push_back(Isa::kNeon);
  return isas;
}

Isa BestSupportedIsa() {
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaSupported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

Isa ActiveIsa() {
  int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  int env = EnvForcedIsa();
  if (env >= 0) return static_cast<Isa>(env);
  return BestSupportedIsa();
}

void ForceIsa(Isa isa) {
  if (!IsaSupported(isa)) isa = Isa::kScalar;
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ClearForcedIsa() { g_forced.store(-1, std::memory_order_relaxed); }

ScopedForceIsa::ScopedForceIsa(Isa isa)
    : prev_(g_forced.load(std::memory_order_relaxed)) {
  ForceIsa(isa);
}

ScopedForceIsa::~ScopedForceIsa() {
  g_forced.store(prev_, std::memory_order_relaxed);
}

}  // namespace geoalign::sparse::simd
