#include "sparse/simd/panel_kernels.h"

// NEON panel kernels: 2 double lanes per vector, baseline on aarch64
// (no extra compile flags). Mirrors the AVX2 unit kernel-for-kernel;
// see panel_kernels_avx2.cc for the bit-identity rules. vmulq_f64 +
// vaddq_f64 stay separate (never vfmaq_f64) and -ffp-contract=off
// keeps the compiler from re-fusing them.

#if GEOALIGN_SIMD_NEON

#include <arm_neon.h>

#include <cmath>

#include "common/float_eq.h"

namespace geoalign::sparse::simd {

namespace {

void AxpyBroadcastNeon(double* dst, const double* w, double v, size_t n) {
  const float64x2_t vv = vdupq_n_f64(v);
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    float64x2_t prod = vmulq_f64(vld1q_f64(w + p), vv);
    vst1q_f64(dst + p, vaddq_f64(vld1q_f64(dst + p), prod));
  }
  for (; p < n; ++p) dst[p] += w[p] * v;
}

void AxpyScalarNeon(double* dst, double w, const double* src, size_t n) {
  const float64x2_t wv = vdupq_n_f64(w);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t prod = vmulq_f64(wv, vld1q_f64(src + i));
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += w * src[i];
}

void MaskedAddNeon(double* sum, const double* acc, size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    float64x2_t a = vld1q_f64(acc + p);
    float64x2_t s = vld1q_f64(sum + p);
    // vceqq yields all-ones lanes where acc == ±0.0; those lanes keep
    // the ORIGINAL sum bits (select, not add-zero) — exactly the
    // reference's skip branch, even for a -0.0 destination.
    uint64x2_t is_zero = vceqq_f64(a, zero);
    vst1q_f64(sum + p, vbslq_f64(is_zero, s, vaddq_f64(s, a)));
  }
  for (; p < n; ++p) {
    if (!ExactlyZero(acc[p])) sum[p] += acc[p];
  }
}

void ScatterScaledNeon(double* part, const double* acc, const double* inv,
                       const double* rscale, size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    float64x2_t a = vld1q_f64(acc + p);
    float64x2_t t =
        vmulq_f64(vmulq_f64(a, vld1q_f64(inv + p)), vld1q_f64(rscale + p));
    // Select the original partial back on acc==±0.0 lanes after the
    // multiply: replicates the reference's skip exactly (including a
    // -0.0 destination) and keeps 0 × inf NaNs out of the result.
    uint64x2_t is_zero = vceqq_f64(a, zero);
    float64x2_t d = vld1q_f64(part + p);
    vst1q_f64(part + p, vbslq_f64(is_zero, d, vaddq_f64(d, t)));
  }
  for (; p < n; ++p) {
    if (ExactlyZero(acc[p])) continue;
    part[p] += (acc[p] * inv[p]) * rscale[p];
  }
}

void AddNeon(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

uint64_t ZeroMaskNeon(const double* denom, double tol, size_t n) {
  const float64x2_t tolv = vdupq_n_f64(tol);
  uint64_t mask = 0;
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    float64x2_t mag = vabsq_f64(vld1q_f64(denom + p));
    uint64x2_t le = vcleq_f64(mag, tolv);
    mask |= (vgetq_lane_u64(le, 0) & 1u) << p;
    mask |= (vgetq_lane_u64(le, 1) & 1u) << (p + 1);
  }
  for (; p < n; ++p) {
    if (std::fabs(denom[p]) <= tol) mask |= uint64_t{1} << p;
  }
  return mask;
}

void ReciprocalNeon(double* inv, const double* denom, size_t n) {
  const float64x2_t one = vdupq_n_f64(1.0);
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    // Full-precision IEEE divide — never the vrecpeq approximation.
    vst1q_f64(inv + p, vdivq_f64(one, vld1q_f64(denom + p)));
  }
  for (; p < n; ++p) inv[p] = 1.0 / denom[p];
}

}  // namespace

namespace internal {

const PanelKernels& NeonKernels() {
  static const PanelKernels table{
      AxpyBroadcastNeon, AxpyScalarNeon, MaskedAddNeon, ScatterScaledNeon,
      AddNeon,           ZeroMaskNeon,   ReciprocalNeon,
  };
  return table;
}

}  // namespace internal

}  // namespace geoalign::sparse::simd

#endif  // GEOALIGN_SIMD_NEON
