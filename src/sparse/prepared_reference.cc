#include "sparse/prepared_reference.h"

#include <utility>

#include "obs/trace.h"

namespace geoalign::sparse {

Result<PreparedReferenceSet> PreparedReferenceSet::Prepare(
    std::vector<ReferenceDataView> references) {
  if (references.empty()) {
    return Status::InvalidArgument(
        "PreparedReferenceSet: no reference attributes");
  }
  size_t rows = references[0].disaggregation.rows();
  size_t cols = references[0].disaggregation.cols();
  for (const ReferenceDataView& ref : references) {
    if (ref.disaggregation.rows() != rows ||
        ref.disaggregation.cols() != cols) {
      return Status::InvalidArgument(
          "PreparedReferenceSet: reference '" + ref.name +
          "' disaggregation shape mismatch");
    }
    if (ref.source_aggregates.size() != rows) {
      return Status::InvalidArgument(
          "PreparedReferenceSet: reference '" + ref.name +
          "' aggregate length does not match disaggregation rows");
    }
  }

  GEOALIGN_TRACE_SPAN("compile.prepare_references");
  PreparedReferenceSet set;
  set.num_source_ = rows;
  set.num_target_ = cols;
  set.refs_.reserve(references.size());
  for (ReferenceDataView& ref : references) {
    PreparedReference prepared;
    // Same normalization (and therefore same failure messages) as the
    // legacy per-call BuildNormalizedSystem.
    GEOALIGN_ASSIGN_OR_RETURN(
        prepared.normalized_aggregates,
        linalg::NormalizeByMax(ref.source_aggregates));
    // NormalizeByMax succeeded, so entries are non-negative with at
    // least one positive: the max is a valid positive normalizer.
    prepared.normalizer = linalg::Max(ref.source_aggregates);
    prepared.dm_row_sums = ref.disaggregation.RowSums();
    prepared.name = std::move(ref.name);
    prepared.source_aggregates = ref.source_aggregates;
    prepared.aggregates_keepalive = std::move(ref.keepalive);
    prepared.disaggregation = std::move(ref.disaggregation);
    set.refs_.push_back(std::move(prepared));
  }
  {
    // Mixes exactly the bytes (in exactly the order) the pre-split
    // single-loop version mixed, just from the moved-into fields.
    GEOALIGN_TRACE_SPAN("compile.fingerprint");
    Fnv1a hash;
    hash.MixSize(set.refs_.size());
    hash.MixSize(rows);
    hash.MixSize(cols);
    for (const PreparedReference& ref : set.refs_) {
      hash.MixString(ref.name);
      hash.MixDoubles(ref.source_aggregates);
      hash.MixSizes(ref.disaggregation.row_ptr());
      hash.MixSizes(ref.disaggregation.col_idx());
      hash.MixDoubles(ref.disaggregation.values());
    }
    set.fingerprint_ = hash.value();
  }

  set.dms_.reserve(set.refs_.size());
  for (const PreparedReference& ref : set.refs_) {
    set.dms_.push_back(&ref.disaggregation);
  }
  set.aligned_ = true;
  const CsrMatrix& first = set.refs_[0].disaggregation;
  for (size_t k = 1; k < set.refs_.size() && set.aligned_; ++k) {
    const CsrMatrix& dm = set.refs_[k].disaggregation;
    set.aligned_ = dm.row_ptr() == first.row_ptr() &&
                   dm.col_idx() == first.col_idx();
  }
  return set;
}

Result<PreparedReferenceSet> PreparedReferenceSet::Prepare(
    std::vector<ReferenceData> references) {
  std::vector<ReferenceDataView> views;
  views.reserve(references.size());
  for (ReferenceData& ref : references) {
    ReferenceDataView view;
    view.name = std::move(ref.name);
    // One move into a ref-counted holder; the bytes are not copied.
    auto held = std::make_shared<const linalg::Vector>(
        std::move(ref.source_aggregates));
    view.source_aggregates = common::ColumnView(held->data(), held->size());
    view.keepalive = std::move(held);
    view.disaggregation = std::move(ref.disaggregation);
    views.push_back(std::move(view));
  }
  return Prepare(std::move(views));
}

}  // namespace geoalign::sparse
