#include "sparse/fused_execute.h"

#include <algorithm>
#include <cmath>

#include "common/float_eq.h"
#include "common/logging.h"
#include "sparse/kernel_grains.h"
#include "sparse/simd/panel_kernels.h"

namespace geoalign::sparse {

namespace {

// Per-chunk / per-slot slices are padded to a cache line (8 doubles)
// so concurrent chunks never false-share a line of the arena.
constexpr size_t kLineDoubles = 8;

size_t PadStride(size_t n) {
  return (n + (kLineDoubles - 1)) & ~(kLineDoubles - 1);
}

}  // namespace

FusedWorkspace::Spec FusedWorkspace::ComputeSpec(const CsrMatrix& structure,
                                                 size_t num_operands) {
  Spec spec;
  spec.rows = structure.rows();
  spec.cols = structure.cols();
  spec.max_operands = num_operands;
  common::ConstSpan<size_t> row_ptr = structure.row_ptr();
  for (size_t r = 0; r < spec.rows; ++r) {
    spec.max_row_nnz = std::max(spec.max_row_nnz, row_ptr[r + 1] - row_ptr[r]);
  }
  return spec;
}

void FusedWorkspace::Prepare(const Spec& spec, size_t slots) {
  slots = std::max<size_t>(1, slots);

  // Chunk boundaries depend only on the row count (the deterministic-
  // reduction contract), so they are recomputed only when it changes —
  // the "hoist per-call scratch sizing into the plan-compiled spec"
  // rule: a workspace prepared for one plan re-resolves nothing.
  if (chunk_rows_ != spec.rows || (spec.rows != 0 && chunks_.empty())) {
    ++alloc_events_;
    chunks_ = common::DeterministicChunks(spec.rows, kColSumGrain);
    chunk_rows_ = spec.rows;
  }

  partial_stride_ = PadStride(spec.cols);
  size_t need_partials = chunks_.size() * partial_stride_;
  if (partials_.size() < need_partials) {
    ++alloc_events_;
    partials_.resize(need_partials);
  }

  scratch_stride_ = PadStride(spec.max_row_nnz);
  size_t need_scratch = slots * scratch_stride_;
  if (row_scratch_.size() < need_scratch) {
    ++alloc_events_;
    row_scratch_.resize(need_scratch);
  }
  slots_ = std::max(slots_, slots);

  if (chunk_zero_.size() < chunks_.size()) {
    ++alloc_events_;
    chunk_zero_.resize(chunks_.size());
  }
  bool grew_zero_lists = false;
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    size_t chunk_rows = chunks_[ci].end - chunks_[ci].begin;
    if (chunk_zero_[ci].capacity() < chunk_rows) {
      grew_zero_lists = true;
      chunk_zero_[ci].reserve(chunk_rows);
    }
  }
  if (grew_zero_lists) ++alloc_events_;

  if (active_values_.capacity() < spec.max_operands ||
      active_weights_.capacity() < spec.max_operands) {
    ++alloc_events_;
    active_values_.reserve(spec.max_operands);
    active_weights_.reserve(spec.max_operands);
  }
}

void FusedWorkspace::PreparePanel(const Spec& spec, size_t width) {
  width = std::min(std::max<size_t>(1, width), simd::kMaxPanelWidth);

  // The chunk grid is shared with the single-column kernel (and
  // recomputed only when the row count changes).
  if (chunk_rows_ != spec.rows || (spec.rows != 0 && chunks_.empty())) {
    ++alloc_events_;
    chunks_ = common::DeterministicChunks(spec.rows, kColSumGrain);
    chunk_rows_ = spec.rows;
  }

  panel_width_ = std::max(panel_width_, width);
  auto grow = [this](std::vector<double>& v, size_t need) {
    if (v.size() < need) {
      ++alloc_events_;
      v.resize(need);
    }
  };
  grow(panel_scratch_, spec.max_row_nnz * panel_width_);
  grow(panel_partial_, spec.cols * panel_width_);
  grow(panel_accum_, spec.cols * panel_width_);
  grow(panel_weights_, spec.max_operands * panel_width_);
  grow(panel_row_, 3 * panel_width_);

  // Each row contributes at most one zero entry per panel pass.
  if (panel_zero_.capacity() < spec.rows) {
    ++alloc_events_;
    panel_zero_.reserve(spec.rows);
  }
  if (active_values_.capacity() < spec.max_operands ||
      active_weights_.capacity() < spec.max_operands ||
      active_aggs_.capacity() < spec.max_operands) {
    ++alloc_events_;
    active_values_.reserve(spec.max_operands);
    active_weights_.reserve(spec.max_operands);
    active_aggs_.reserve(spec.max_operands);
  }
}

Status FusedAggregatesAligned(const FusedAggregatesInputs& in,
                              const FusedWorkspace::Spec& spec,
                              linalg::Vector* target_estimates,
                              std::vector<size_t>* zero_rows,
                              FusedWorkspace* workspace,
                              common::ThreadPool* pool) {
  if (in.mats == nullptr || in.weights == nullptr ||
      in.row_scale.data() == nullptr || target_estimates == nullptr ||
      zero_rows == nullptr || workspace == nullptr) {
    return Status::InvalidArgument("FusedAggregatesAligned: null argument");
  }
  const std::vector<const CsrMatrix*>& mats = *in.mats;
  if (mats.empty()) {
    return Status::InvalidArgument("FusedAggregatesAligned: no matrices");
  }
  if (mats.size() != in.weights->size()) {
    return Status::InvalidArgument(
        "FusedAggregatesAligned: weight count mismatch");
  }
  size_t rows = mats[0]->rows();
  size_t cols = mats[0]->cols();
  for (const CsrMatrix* m : mats) {
    if (m->rows() != rows || m->cols() != cols) {
      return Status::InvalidArgument(
          "FusedAggregatesAligned: shape mismatch");
    }
    // Full structure equality is the caller's precondition (checked
    // once at plan-compile time); re-verify only in debug builds.
    GEOALIGN_DCHECK(m->row_ptr() == mats[0]->row_ptr() &&
                    m->col_idx() == mats[0]->col_idx())
        << "FusedAggregatesAligned: sparsity structures differ";
  }
  if (in.row_scale.size() != rows ||
      (in.denominators != nullptr && in.denominators->size() != rows)) {
    return Status::InvalidArgument(
        "FusedAggregatesAligned: vector length mismatch");
  }
  if ((in.fallback_dm == nullptr) != (in.fallback_row_sums == nullptr)) {
    return Status::InvalidArgument(
        "FusedAggregatesAligned: fallback DM and row sums must be set "
        "together");
  }
  if (in.fallback_dm != nullptr &&
      (in.fallback_dm->rows() != rows || in.fallback_dm->cols() != cols ||
       in.fallback_row_sums->size() != rows)) {
    return Status::InvalidArgument(
        "FusedAggregatesAligned: fallback shape mismatch");
  }
  if (spec.rows != rows || spec.cols != cols ||
      spec.max_operands < mats.size()) {
    return Status::InvalidArgument(
        "FusedAggregatesAligned: workspace spec does not cover operands");
  }

  FusedWorkspace& ws = *workspace;
  const bool pooled = pool != nullptr && pool->size() > 1;
  ws.Prepare(spec, pooled ? pool->size() + 1 : 1);

  // Operands the scatter-gather path would skip entirely — the same
  // filtering as WeightedSumAligned, staged in preallocated arrays.
  ws.active_values_.clear();
  ws.active_weights_.clear();
  for (size_t mi = 0; mi < mats.size(); ++mi) {
    if (ExactlyZero((*in.weights)[mi])) continue;
    ws.active_values_.push_back(mats[mi]->values().data());
    ws.active_weights_.push_back((*in.weights)[mi]);
  }
  const size_t n_active = ws.active_values_.size();
  const double* const* active_vals = ws.active_values_.data();
  const double* active_w = ws.active_weights_.data();

  common::ConstSpan<size_t> row_ptr = mats[0]->row_ptr();
  common::ConstSpan<size_t> col_idx = mats[0]->col_idx();
  const std::vector<common::ChunkRange>& chunks = ws.chunks_;

  // GEOALIGN_HOT_LOOP_BEGIN
  // The fused Eq. 14 + Eq. 17 scatter. Zero heap allocations in this
  // region (machine-checked by the geoalign-hot-alloc lint): every
  // buffer was sized by Prepare above. Chunking is kColSumGrain — the
  // ColSumsDeterministic boundaries — so the per-target addition order
  // is exactly the materializing path's.
  common::ParallelForChunks(pool, chunks.size(), [&](size_t ci) {
    const common::ChunkRange& range = chunks[ci];
    size_t wi = common::ThreadPool::CurrentWorkerIndex();
    size_t slot =
        (!pooled || wi == common::ThreadPool::kNoWorkerIndex) ? 0 : wi + 1;
    GEOALIGN_DCHECK(slot < ws.slots_) << "fused execute: slot out of range";
    double* scratch = ws.row_scratch_.data() + slot * ws.scratch_stride_;
    double* part = ws.partials_.data() + ci * ws.partial_stride_;
    std::fill(part, part + cols, 0.0);
    std::vector<size_t>& zrows = ws.chunk_zero_[ci];
    zrows.clear();
    for (size_t r = range.begin; r < range.end; ++r) {
      const size_t rb = row_ptr[r];
      const size_t re = row_ptr[r + 1];
      // Eq. 14 numerator: accumulate per entry in operand order from
      // 0.0 — WeightedSumAligned's addition sequence, into the row
      // scratch instead of a materialized CSR.
      double denom;
      if (in.denominators != nullptr) {
        denom = (*in.denominators)[r];
        for (size_t k = rb; k < re; ++k) {
          double acc = 0.0;
          for (size_t mi = 0; mi < n_active; ++mi) {
            acc += active_w[mi] * active_vals[mi][k];
          }
          scratch[k - rb] = acc;
        }
      } else {
        // kFromDmRowSums: the materializing path prunes exact-zero
        // numerator entries before RowSums, so the row sum here skips
        // them too.
        double row_sum = 0.0;
        for (size_t k = rb; k < re; ++k) {
          double acc = 0.0;
          for (size_t mi = 0; mi < n_active; ++mi) {
            acc += active_w[mi] * active_vals[mi][k];
          }
          scratch[k - rb] = acc;
          if (!ExactlyZero(acc)) row_sum += acc;
        }
        denom = row_sum;
      }
      if (std::fabs(denom) <= in.zero_tolerance) {
        // Eq. 14's "otherwise 0" branch: record the zero row; with a
        // fallback DM, scatter the fallback row directly (the
        // CooBuilder rebuild of the materializing path, minus the
        // rebuild — CooBuilder::Build drops exact zeros, and adding
        // ±0.0 to a +0.0-seeded partial never changes a bit).
        // Capacity was reserved to the chunk's row count in Prepare,
        // so this never grows.
        zrows.push_back(r);  // NOLINT(geoalign-hot-alloc)
        if (in.fallback_dm != nullptr) {
          double fb_sum = (*in.fallback_row_sums)[r];
          if (fb_sum > 0.0) {
            double fb_scale = in.row_scale[r] / fb_sum;
            CsrMatrix::RowView fb_row = in.fallback_dm->Row(r);
            for (size_t k = 0; k < fb_row.size; ++k) {
              part[fb_row.cols[k]] += fb_row.values[k] * fb_scale;
            }
          }
        }
        continue;
      }
      const double inv = 1.0 / denom;           // DivideRowsOrZero
      const double rscale = in.row_scale[r];    // ScaleRows
      for (size_t k = rb; k < re; ++k) {
        const double acc = scratch[k - rb];
        if (ExactlyZero(acc)) continue;  // pruned by WeightedSumAligned
        // Entries DivideRowsOrZero's Prune(0.0) would drop divide to
        // exact ±0.0 here; scattering them is a bit-neutral no-op (the
        // partial accumulates from +0.0 and IEEE addition of ±0.0 to
        // it is the identity), so no branch is needed.
        part[col_idx[k]] += (acc * inv) * rscale;
      }
    }
  });
  // GEOALIGN_HOT_LOOP_END

  // Ordered combine — ColSumsDeterministic's reduction verbatim: the
  // per-chunk partials added into a +0.0 accumulator in ascending
  // chunk index.
  target_estimates->assign(cols, 0.0);
  double* target = target_estimates->data();
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    const double* part = ws.partials_.data() + ci * ws.partial_stride_;
    for (size_t c = 0; c < cols; ++c) target[c] += part[c];
  }

  // Chunks are in ascending row order, so concatenation matches the
  // sequential zero-row reporting order.
  zero_rows->clear();
  for (const std::vector<size_t>& z : ws.chunk_zero_) {
    zero_rows->insert(zero_rows->end(), z.begin(), z.end());
  }
  return Status::OK();
}

Status FusedAggregatesPanel(const FusedPanelInputs& in,
                            const FusedWorkspace::Spec& spec, simd::Isa isa,
                            linalg::Vector* const* target_estimates,
                            std::vector<size_t>* const* zero_rows,
                            FusedWorkspace* workspace) {
  if (in.mats == nullptr || in.lane_weights == nullptr ||
      in.row_scales == nullptr || target_estimates == nullptr ||
      zero_rows == nullptr || workspace == nullptr) {
    return Status::InvalidArgument("FusedAggregatesPanel: null argument");
  }
  const size_t width = in.width;
  if (width < 1 || width > simd::kMaxPanelWidth) {
    return Status::InvalidArgument(
        "FusedAggregatesPanel: panel width out of range");
  }
  const std::vector<const CsrMatrix*>& mats = *in.mats;
  if (mats.empty()) {
    return Status::InvalidArgument("FusedAggregatesPanel: no matrices");
  }
  size_t rows = mats[0]->rows();
  size_t cols = mats[0]->cols();
  for (const CsrMatrix* m : mats) {
    if (m->rows() != rows || m->cols() != cols) {
      return Status::InvalidArgument("FusedAggregatesPanel: shape mismatch");
    }
    GEOALIGN_DCHECK(m->row_ptr() == mats[0]->row_ptr() &&
                    m->col_idx() == mats[0]->col_idx())
        << "FusedAggregatesPanel: sparsity structures differ";
  }
  for (size_t p = 0; p < width; ++p) {
    if (in.row_scales[p].data() == nullptr ||
        in.row_scales[p].size() != rows || target_estimates[p] == nullptr ||
        zero_rows[p] == nullptr) {
      return Status::InvalidArgument(
          "FusedAggregatesPanel: bad per-lane argument");
    }
  }
  if (in.operand_aggregates != nullptr) {
    for (size_t mi = 0; mi < mats.size(); ++mi) {
      if (in.operand_aggregates[mi].data() == nullptr ||
          in.operand_aggregates[mi].size() != rows) {
        return Status::InvalidArgument(
            "FusedAggregatesPanel: aggregate length mismatch");
      }
    }
  }
  if ((in.fallback_dm == nullptr) != (in.fallback_row_sums == nullptr)) {
    return Status::InvalidArgument(
        "FusedAggregatesPanel: fallback DM and row sums must be set "
        "together");
  }
  if (in.fallback_dm != nullptr &&
      (in.fallback_dm->rows() != rows || in.fallback_dm->cols() != cols ||
       in.fallback_row_sums->size() != rows)) {
    return Status::InvalidArgument(
        "FusedAggregatesPanel: fallback shape mismatch");
  }
  if (spec.rows != rows || spec.cols != cols ||
      spec.max_operands < mats.size()) {
    return Status::InvalidArgument(
        "FusedAggregatesPanel: workspace spec does not cover operands");
  }

  FusedWorkspace& ws = *workspace;
  ws.PreparePanel(spec, width);
  const simd::PanelKernels& kern = simd::KernelsFor(isa);

  // Active operands: any lane nonzero. An operand that is zero in one
  // lane but live in another stays; its ±0.0 products are the IEEE
  // identity on that lane's +0.0-seeded accumulators, so per-lane bits
  // still match the per-column kernel's active-set filtering.
  ws.active_values_.clear();
  ws.active_aggs_.clear();
  size_t n_active = 0;
  for (size_t mi = 0; mi < mats.size(); ++mi) {
    const double* lanes = in.lane_weights + mi * width;
    bool any = false;
    for (size_t p = 0; p < width; ++p) {
      if (!ExactlyZero(lanes[p])) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    ws.active_values_.push_back(mats[mi]->values().data());
    if (in.operand_aggregates != nullptr) {
      ws.active_aggs_.push_back(in.operand_aggregates[mi].data());
    }
    std::copy(lanes, lanes + width,
              ws.panel_weights_.data() + n_active * width);
    ++n_active;
  }
  const double* const* active_vals = ws.active_values_.data();
  const double* const* active_aggs = ws.active_aggs_.data();
  const double* panel_w = ws.panel_weights_.data();

  common::ConstSpan<size_t> row_ptr = mats[0]->row_ptr();
  common::ConstSpan<size_t> col_idx = mats[0]->col_idx();
  const std::vector<common::ChunkRange>& chunks = ws.chunks_;

  double* scratch = ws.panel_scratch_.data();
  double* part = ws.panel_partial_.data();
  double* accum = ws.panel_accum_.data();
  double* denom = ws.panel_row_.data();
  double* inv = denom + width;
  double* rscale = inv + width;
  ws.panel_zero_.clear();

  std::fill(accum, accum + cols * width, 0.0);

  // GEOALIGN_HOT_LOOP_BEGIN
  // The panel form of the fused Eq. 14 + Eq. 17 scatter. Zero heap
  // allocations in this region (machine-checked); every buffer was
  // sized by PreparePanel. One thread walks the kColSumGrain chunks in
  // ascending order and folds each chunk's cols × width partial into
  // the accumulator — per lane, the exact chunk-partial addition order
  // of the pooled single-column kernel, independent of thread count.
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    const common::ChunkRange& range = chunks[ci];
    std::fill(part, part + cols * width, 0.0);
    for (size_t r = range.begin; r < range.end; ++r) {
      const size_t rb = row_ptr[r];
      const size_t re = row_ptr[r + 1];
      // Eq. 14 numerator, all lanes at once: per entry, broadcast the
      // operand value against the per-lane weights in operand order
      // from 0.0 — each lane replays WeightedSumAligned's sequence.
      if (in.operand_aggregates != nullptr) {
        // kFromAggregates: each lane's denominator accumulates the
        // operand aggregates in the same order (the hoisted
        // linalg::Axpy loop, per row).
        std::fill(denom, denom + width, 0.0);
        for (size_t mi = 0; mi < n_active; ++mi) {
          kern.axpy_broadcast(denom, panel_w + mi * width, active_aggs[mi][r],
                              width);
        }
        for (size_t k = rb; k < re; ++k) {
          double* acc = scratch + (k - rb) * width;
          std::fill(acc, acc + width, 0.0);
          for (size_t mi = 0; mi < n_active; ++mi) {
            kern.axpy_broadcast(acc, panel_w + mi * width,
                                active_vals[mi][k], width);
          }
        }
      } else {
        // kFromDmRowSums: row sums skip exact-zero numerator entries,
        // as the materializing path prunes them before RowSums.
        std::fill(denom, denom + width, 0.0);
        for (size_t k = rb; k < re; ++k) {
          double* acc = scratch + (k - rb) * width;
          std::fill(acc, acc + width, 0.0);
          for (size_t mi = 0; mi < n_active; ++mi) {
            kern.axpy_broadcast(acc, panel_w + mi * width,
                                active_vals[mi][k], width);
          }
          kern.masked_add(denom, acc, width);
        }
      }
      for (size_t p = 0; p < width; ++p) rscale[p] = in.row_scales[p][r];

      const uint64_t zmask = kern.zero_mask(denom, in.zero_tolerance, width);
      if (zmask == 0) {
        // Every lane live: vectorized divide + scatter.
        kern.reciprocal(inv, denom, width);
        for (size_t k = rb; k < re; ++k) {
          kern.scatter_scaled(part + col_idx[k] * width,
                              scratch + (k - rb) * width, inv, rscale, width);
        }
        continue;
      }
      // At least one lane hit the Eq. 14 "otherwise 0" branch: record
      // the lane set (capacity reserved to spec.rows in PreparePanel),
      // then finish the row per lane — zero lanes take the fallback
      // scatter, live lanes the scalar divide + scatter, both exactly
      // the single-column kernel's code.
      ws.panel_zero_.push_back(  // NOLINT(geoalign-hot-alloc)
          FusedWorkspace::PanelZeroRow{r, zmask});
      for (size_t p = 0; p < width; ++p) {
        if ((zmask >> p) & 1u) {
          if (in.fallback_dm != nullptr) {
            double fb_sum = (*in.fallback_row_sums)[r];
            if (fb_sum > 0.0) {
              double fb_scale = rscale[p] / fb_sum;
              CsrMatrix::RowView fb_row = in.fallback_dm->Row(r);
              for (size_t k = 0; k < fb_row.size; ++k) {
                part[fb_row.cols[k] * width + p] +=
                    fb_row.values[k] * fb_scale;
              }
            }
          }
          continue;
        }
        const double lane_inv = 1.0 / denom[p];
        for (size_t k = rb; k < re; ++k) {
          const double acc = scratch[(k - rb) * width + p];
          if (ExactlyZero(acc)) continue;
          part[col_idx[k] * width + p] += (acc * lane_inv) * rscale[p];
        }
      }
    }
    kern.add(accum, part, cols * width);
  }
  // GEOALIGN_HOT_LOOP_END

  // De-interleave the lane-major accumulator into the per-column
  // outputs — a pure copy, so the accumulated bits pass through.
  for (size_t p = 0; p < width; ++p) {
    target_estimates[p]->resize(cols);
    double* target = target_estimates[p]->data();
    for (size_t c = 0; c < cols; ++c) target[c] = accum[c * width + p];
  }
  for (size_t p = 0; p < width; ++p) zero_rows[p]->clear();
  for (const FusedWorkspace::PanelZeroRow& z : ws.panel_zero_) {
    for (size_t p = 0; p < width; ++p) {
      if ((z.lanes >> p) & 1u) zero_rows[p]->push_back(z.row);
    }
  }
  return Status::OK();
}

}  // namespace geoalign::sparse
