#ifndef GEOALIGN_SPARSE_SPARSE_OPS_H_
#define GEOALIGN_SPARSE_SPARSE_OPS_H_

#include <vector>

#include "sparse/csr_matrix.h"

namespace geoalign::sparse {

/// alpha * a + beta * b elementwise (shapes must match).
Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b,
                      double alpha = 1.0, double beta = 1.0);

/// Weighted sum  sum_k weights[k] * mats[k]  of same-shaped matrices.
/// This is the "Σ β_k DM_rk" inner step of paper Eq. 14; implemented
/// as one row-merge pass over all operands rather than repeated
/// pairwise adds.
Result<CsrMatrix> WeightedSum(const std::vector<const CsrMatrix*>& mats,
                              const linalg::Vector& weights);

/// Divides every entry of row r by denom[r]. Rows whose denominator is
/// (absolutely) below `zero_tol` are set entirely to zero and reported
/// in `zero_rows` when non-null — the paper's "otherwise 0" branch of
/// Eq. 14.
void DivideRowsOrZero(CsrMatrix& m, const linalg::Vector& denom,
                      double zero_tol, std::vector<size_t>* zero_rows);

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_SPARSE_OPS_H_
