#ifndef GEOALIGN_SPARSE_SPARSE_OPS_H_
#define GEOALIGN_SPARSE_SPARSE_OPS_H_

#include <vector>

#include "common/thread_pool.h"
#include "sparse/csr_matrix.h"

namespace geoalign::sparse {

/// alpha * a + beta * b elementwise (shapes must match).
Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b,
                      double alpha = 1.0, double beta = 1.0);

/// Weighted sum  sum_k weights[k] * mats[k]  of same-shaped matrices.
/// This is the "Σ β_k DM_rk" inner step of paper Eq. 14; implemented
/// as one row-merge pass over all operands rather than repeated
/// pairwise adds. With a pool the row chunks run in parallel; every
/// row is computed self-contained in the sequential operand order, so
/// the result is bit-identical for any pool size (including none).
Result<CsrMatrix> WeightedSum(const std::vector<const CsrMatrix*>& mats,
                              const linalg::Vector& weights,
                              common::ThreadPool* pool = nullptr);

/// WeightedSum for matrices that share one sparsity structure
/// (identical row_ptr/col_idx arrays — the PreparedReferenceSet
/// "aligned" case, e.g. every reference DM derived from the same
/// overlay). Skips the scatter-gather accumulator and walks the shared
/// structure directly. Structure equality is a precondition verified
/// by the caller (checked here only in debug builds); shapes and
/// weight count are still validated. Bit-identical to WeightedSum on
/// any aligned input, for any pool size.
Result<CsrMatrix> WeightedSumAligned(const std::vector<const CsrMatrix*>& mats,
                                     const linalg::Vector& weights,
                                     common::ThreadPool* pool = nullptr);

/// Divides every entry of row r by denom[r]. Rows whose denominator is
/// (absolutely) below `zero_tol` are set entirely to zero and reported
/// in `zero_rows` when non-null — the paper's "otherwise 0" branch of
/// Eq. 14. Parallel over row chunks; `zero_rows` comes back in
/// ascending row order and all output bits match the sequential path.
void DivideRowsOrZero(CsrMatrix& m, const linalg::Vector& denom,
                      double zero_tol, std::vector<size_t>* zero_rows,
                      common::ThreadPool* pool = nullptr);

/// Column sums (paper Eq. 17 re-aggregation) with the deterministic
/// chunked reduction: one partial column-sum vector per fixed row
/// chunk, combined in chunk-index order. Bit-identical for every pool
/// size; equals CsrMatrix::ColSums() whenever a single chunk covers
/// the matrix.
linalg::Vector ColSumsDeterministic(const CsrMatrix& m,
                                    common::ThreadPool* pool = nullptr);

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_SPARSE_OPS_H_
