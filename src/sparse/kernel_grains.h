#ifndef GEOALIGN_SPARSE_KERNEL_GRAINS_H_
#define GEOALIGN_SPARSE_KERNEL_GRAINS_H_

#include <cstddef>

namespace geoalign::sparse {

// Row-chunk grains for the parallel kernels. Values are part of the
// deterministic-reduction contract only in that they must not depend
// on the thread count; they are tuned for rows costing ~1-10 µs.
//
// kColSumGrain is shared between ColSumsDeterministic and the fused
// execute kernel (fused_execute.h): the fused scatter replays the
// column-sum chunking exactly, so both paths add the per-chunk
// partials in the same order and stay bit-identical.
inline constexpr size_t kRowMergeGrain = 128;  // WeightedSum row merge
inline constexpr size_t kRowScaleGrain = 512;  // DivideRowsOrZero
inline constexpr size_t kColSumGrain = 256;    // ColSumsDeterministic +
                                               // FusedAggregatesAligned

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_KERNEL_GRAINS_H_
