#ifndef GEOALIGN_SPARSE_CSR_MATRIX_H_
#define GEOALIGN_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace geoalign::sparse {

/// Borrowed CSR arrays, as handed over by an embedding host (Arrow
/// buffers, numpy arrays, the C ABI). Plain views — no lifetime.
struct CsrView {
  size_t rows = 0;
  size_t cols = 0;
  common::ConstSpan<size_t> row_ptr;
  common::ConstSpan<size_t> col_idx;
  common::ConstSpan<double> values;
};

/// Compressed-sparse-row matrix of doubles.
///
/// Disaggregation matrices are |U^s| x |U^t| and extremely sparse (a
/// zip code intersects a handful of counties), so the paper stores
/// them sparse (§4.3); this is the equivalent of the SciPy CSR matrix
/// used there. Column indices within each row are kept sorted and
/// unique.
///
/// Storage is either **owned** (the default: three vectors) or
/// **borrowed** (`FromBorrowed`: three caller spans plus an optional
/// keepalive). Read access always goes through the span accessors, so
/// every kernel is oblivious to which mode a matrix is in; mutation
/// first materializes an owned copy (`EnsureOwned`), so borrowed
/// caller memory is never written through.
class CsrMatrix {
 public:
  /// Empty rows x cols matrix (no stored entries).
  CsrMatrix(size_t rows, size_t cols);
  CsrMatrix() : CsrMatrix(0, 0) {}

  /// Builds directly from CSR arrays. `row_ptr` must have rows+1
  /// monotone entries; column indices must be < cols and strictly
  /// increasing within each row.
  static Result<CsrMatrix> FromCsrArrays(size_t rows, size_t cols,
                                         std::vector<size_t> row_ptr,
                                         std::vector<size_t> col_idx,
                                         std::vector<double> values);

  /// Zero-copy construction over caller-owned CSR arrays (same
  /// validation as FromCsrArrays). The caller keeps the arrays alive
  /// for the matrix's lifetime, or passes a `keepalive` handle that
  /// does. Mutating members copy-on-write; plain reads never copy.
  static Result<CsrMatrix> FromBorrowed(
      const CsrView& view, std::shared_ptr<const void> keepalive = nullptr);

  /// Densifies `m` (intended for tests and small examples).
  static CsrMatrix FromDense(const linalg::Matrix& m,
                             double prune_below = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values().size(); }

  /// True when this matrix views caller memory instead of owning it.
  bool borrowed() const { return borrowed_; }

  /// Value at (r, c); 0 for entries not stored. O(log nnz(row)).
  double At(size_t r, size_t c) const;

  /// Row r as (col, value) spans.
  struct RowView {
    const size_t* cols;
    const double* values;
    size_t size;
  };
  RowView Row(size_t r) const;

  /// Sum over each row / column.
  linalg::Vector RowSums() const;
  linalg::Vector ColSums() const;

  /// Sum of all stored values.
  double Total() const;

  /// this * x (x has cols() entries).
  linalg::Vector MatVec(common::ConstSpan<double> x) const;
  /// this^T * x (x has rows() entries).
  linalg::Vector MatTVec(common::ConstSpan<double> x) const;

  /// Multiplies every stored entry of row r by s[r].
  void ScaleRows(common::ConstSpan<double> s);
  /// Multiplies every stored entry by s.
  void Scale(double s);

  /// Transposed copy.
  CsrMatrix Transposed() const;

  /// Dense copy (tests / small problems only).
  linalg::Matrix ToDense() const;

  /// Removes stored entries with |value| <= threshold.
  void Prune(double threshold);

  /// True when shapes match and every (implicitly zero) entry differs
  /// by at most tol.
  bool AllClose(const CsrMatrix& other, double tol) const;

  common::ConstSpan<size_t> row_ptr() const {
    return borrowed_ ? view_row_ptr_ : common::ConstSpan<size_t>(row_ptr_);
  }
  common::ConstSpan<size_t> col_idx() const {
    return borrowed_ ? view_col_idx_ : common::ConstSpan<size_t>(col_idx_);
  }
  common::ConstSpan<double> values() const {
    return borrowed_ ? view_values_ : common::ConstSpan<double>(values_);
  }
  std::vector<double>& mutable_values() {
    EnsureOwned();
    return values_;
  }

 private:
  friend class CooBuilder;

  /// Copies borrowed storage into the owned vectors (no-op when
  /// already owned). Every mutator calls this first.
  void EnsureOwned();

  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_idx_;
  std::vector<double> values_;

  // Borrowed mode: views over caller memory, disjoint from the owned
  // vectors above (so the defaulted copy/move stay correct — copies
  // share the keepalive, never self-reference).
  bool borrowed_ = false;
  common::ConstSpan<size_t> view_row_ptr_;
  common::ConstSpan<size_t> view_col_idx_;
  common::ConstSpan<double> view_values_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_CSR_MATRIX_H_
