#ifndef GEOALIGN_SPARSE_CSR_MATRIX_H_
#define GEOALIGN_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace geoalign::sparse {

/// Compressed-sparse-row matrix of doubles.
///
/// Disaggregation matrices are |U^s| x |U^t| and extremely sparse (a
/// zip code intersects a handful of counties), so the paper stores
/// them sparse (§4.3); this is the equivalent of the SciPy CSR matrix
/// used there. Column indices within each row are kept sorted and
/// unique.
class CsrMatrix {
 public:
  /// Empty rows x cols matrix (no stored entries).
  CsrMatrix(size_t rows, size_t cols);
  CsrMatrix() : CsrMatrix(0, 0) {}

  /// Builds directly from CSR arrays. `row_ptr` must have rows+1
  /// monotone entries; column indices must be < cols and strictly
  /// increasing within each row.
  static Result<CsrMatrix> FromCsrArrays(size_t rows, size_t cols,
                                         std::vector<size_t> row_ptr,
                                         std::vector<size_t> col_idx,
                                         std::vector<double> values);

  /// Densifies `m` (intended for tests and small examples).
  static CsrMatrix FromDense(const linalg::Matrix& m,
                             double prune_below = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Value at (r, c); 0 for entries not stored. O(log nnz(row)).
  double At(size_t r, size_t c) const;

  /// Row r as (col, value) spans.
  struct RowView {
    const size_t* cols;
    const double* values;
    size_t size;
  };
  RowView Row(size_t r) const;

  /// Sum over each row / column.
  linalg::Vector RowSums() const;
  linalg::Vector ColSums() const;

  /// Sum of all stored values.
  double Total() const;

  /// this * x (x has cols() entries).
  linalg::Vector MatVec(const linalg::Vector& x) const;
  /// this^T * x (x has rows() entries).
  linalg::Vector MatTVec(const linalg::Vector& x) const;

  /// Multiplies every stored entry of row r by s[r].
  void ScaleRows(const linalg::Vector& s);
  /// Multiplies every stored entry by s.
  void Scale(double s);

  /// Transposed copy.
  CsrMatrix Transposed() const;

  /// Dense copy (tests / small problems only).
  linalg::Matrix ToDense() const;

  /// Removes stored entries with |value| <= threshold.
  void Prune(double threshold);

  /// True when shapes match and every (implicitly zero) entry differs
  /// by at most tol.
  bool AllClose(const CsrMatrix& other, double tol) const;

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

 private:
  friend class CooBuilder;

  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace geoalign::sparse

#endif  // GEOALIGN_SPARSE_CSR_MATRIX_H_
