#include "linalg/qr.h"

#include <cmath>

#include "common/float_eq.h"

namespace geoalign::linalg {

Result<QrFactorization> QrFactorization::Compute(const Matrix& a) {
  size_t m = a.rows();
  size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR: requires rows >= cols");
  }
  Matrix qr = a;
  Vector tau(n, 0.0);

  for (size_t k = 0; k < n; ++k) {
    // Householder reflector for column k below the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += qr(i, k) * qr(i, k);
    norm = std::sqrt(norm);
    if (ExactlyZero(norm)) {
      tau[k] = 0.0;
      continue;
    }
    double alpha = qr(k, k) >= 0.0 ? -norm : norm;
    double v0 = qr(k, k) - alpha;
    // v = (v0, qr(k+1..m-1, k)); normalize so v[0] = 1.
    if (!ExactlyZero(v0)) {
      for (size_t i = k + 1; i < m; ++i) qr(i, k) /= v0;
    }
    // With v scaled so v[0] = 1, H = I - tau v v^T maps the column to
    // alpha * e1 when tau = -v0 / alpha.
    tau[k] = -v0 / alpha;
    qr(k, k) = alpha;
    // Apply H to the trailing columns.
    for (size_t c = k + 1; c < n; ++c) {
      double dot = qr(k, c);
      for (size_t i = k + 1; i < m; ++i) dot += qr(i, k) * qr(i, c);
      dot *= tau[k];
      qr(k, c) -= dot;
      for (size_t i = k + 1; i < m; ++i) qr(i, c) -= dot * qr(i, k);
    }
  }
  return QrFactorization(std::move(qr), std::move(tau));
}

Result<Vector> QrFactorization::LeastSquares(const Vector& b) const {
  size_t m = qr_.rows();
  size_t n = qr_.cols();
  if (b.size() != m) {
    return Status::InvalidArgument("QR least squares: size mismatch");
  }
  // y = Q^T b applied reflector by reflector.
  Vector y = b;
  for (size_t k = 0; k < n; ++k) {
    if (ExactlyZero(tau_[k])) continue;
    double dot = y[k];
    for (size_t i = k + 1; i < m; ++i) dot += qr_(i, k) * y[i];
    dot *= tau_[k];
    y[k] -= dot;
    for (size_t i = k + 1; i < m; ++i) y[i] -= dot * qr_(i, k);
  }
  // Back substitution R x = y[0..n). A diagonal entry negligibly
  // small relative to the largest one signals (numerical) rank
  // deficiency.
  double max_diag = 0.0;
  for (size_t k = 0; k < n; ++k) {
    max_diag = std::max(max_diag, std::fabs(qr_(k, k)));
  }
  double rank_tol = 1e-12 * std::max(max_diag, 1e-300);
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double diag = qr_(ii, ii);
    if (std::fabs(diag) <= rank_tol) {
      return Status::InvalidArgument("QR least squares: rank deficient");
    }
    double acc = y[ii];
    for (size_t j = ii + 1; j < n; ++j) acc -= qr_(ii, j) * x[j];
    x[ii] = acc / diag;
  }
  return x;
}

Matrix QrFactorization::R() const {
  size_t n = qr_.cols();
  Matrix r(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Result<Vector> LeastSquaresQr(const Matrix& a, const Vector& b) {
  GEOALIGN_ASSIGN_OR_RETURN(QrFactorization qr, QrFactorization::Compute(a));
  return qr.LeastSquares(b);
}

}  // namespace geoalign::linalg
