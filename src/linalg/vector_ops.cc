#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::linalg {

double Dot(VectorView a, VectorView b) {
  GEOALIGN_CHECK(a.size() == b.size()) << "Dot: size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(VectorView a) { return std::sqrt(Dot(a, a)); }

double NormInf(VectorView a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

double Sum(VectorView a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

double Mean(VectorView a) {
  if (a.empty()) return 0.0;
  return Sum(a) / static_cast<double>(a.size());
}

double Max(VectorView a) {
  GEOALIGN_CHECK(!a.empty());
  return *std::max_element(a.begin(), a.end());
}

double Min(VectorView a) {
  GEOALIGN_CHECK(!a.empty());
  return *std::min_element(a.begin(), a.end());
}

void Axpy(double alpha, VectorView x, Vector& y) {
  GEOALIGN_CHECK(x.size() == y.size()) << "Axpy: size mismatch";
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(Vector& a, double s) {
  for (double& v : a) v *= s;
}

Vector Sub(VectorView a, VectorView b) {
  GEOALIGN_CHECK(a.size() == b.size()) << "Sub: size mismatch";
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Add(VectorView a, VectorView b) {
  GEOALIGN_CHECK(a.size() == b.size()) << "Add: size mismatch";
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Result<Vector> NormalizeByMax(VectorView a) {
  if (a.empty()) return Status::InvalidArgument("NormalizeByMax: empty");
  double mx = 0.0;
  for (double v : a) {
    if (v < 0.0) {
      return Status::InvalidArgument(
          "NormalizeByMax: negative aggregate encountered");
    }
    mx = std::max(mx, v);
  }
  if (ExactlyZero(mx)) {
    return Status::InvalidArgument("NormalizeByMax: all-zero vector");
  }
  Vector out(a.begin(), a.end());
  Scale(out, 1.0 / mx);
  return out;
}

bool AllClose(VectorView a, VectorView b, double tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace geoalign::linalg
