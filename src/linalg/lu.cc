#include "linalg/lu.h"

#include <cmath>

#include "common/float_eq.h"

namespace geoalign::linalg {

Result<LuFactorization> LuFactorization::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU: matrix must be square");
  }
  size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the
    // diagonal.
    size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      double v = std::fabs(lu(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (ExactlyZero(best)) {
      return Status::InvalidArgument("LU: singular matrix");
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }
    double inv_pivot = 1.0 / lu(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      double m = lu(r, k) * inv_pivot;
      lu(r, k) = m;
      if (ExactlyZero(m)) continue;
      for (size_t c = k + 1; c < n; ++c) {
        lu(r, c) -= m * lu(k, c);
      }
    }
  }
  return LuFactorization(std::move(lu), std::move(perm), sign);
}

Result<Vector> LuFactorization::Solve(const Vector& b) const {
  size_t n = lu_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("LU solve: size mismatch");
  }
  Vector x(n);
  // Apply permutation, then forward substitution (L has unit diagonal).
  for (size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::Determinant() const {
  double det = perm_sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  GEOALIGN_ASSIGN_OR_RETURN(LuFactorization lu, LuFactorization::Compute(a));
  return lu.Solve(b);
}

}  // namespace geoalign::linalg
