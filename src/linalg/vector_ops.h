#ifndef GEOALIGN_LINALG_VECTOR_OPS_H_
#define GEOALIGN_LINALG_VECTOR_OPS_H_

#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace geoalign::linalg {

/// Dense column vector. Free functions below treat it as a mathematical
/// vector; plain std::vector keeps interop with the rest of the project
/// trivial.
using Vector = std::vector<double>;

/// Read-only vector argument: a borrowed view. `Vector` converts
/// implicitly, so owning call sites are unchanged; zero-copy callers
/// (the C ABI, Arrow buffers) pass raw pointer + length directly.
using VectorView = common::ConstSpan<double>;

/// Dot product; requires equal sizes.
double Dot(VectorView a, VectorView b);

/// Euclidean norm.
double Norm2(VectorView a);

/// Max-norm (largest absolute entry; 0 for empty).
double NormInf(VectorView a);

/// Sum of entries.
double Sum(VectorView a);

/// Arithmetic mean (0 for empty).
double Mean(VectorView a);

/// Largest entry; requires non-empty.
double Max(VectorView a);

/// Smallest entry; requires non-empty.
double Min(VectorView a);

/// y += alpha * x (sizes must match).
void Axpy(double alpha, VectorView x, Vector& y);

/// Multiplies every entry by s.
void Scale(Vector& a, double s);

/// a - b elementwise.
Vector Sub(VectorView a, VectorView b);

/// a + b elementwise.
Vector Add(VectorView a, VectorView b);

/// Divides by the maximum entry, the normalization GeoAlign applies to
/// reference/objective aggregate vectors (paper §3.4). Returns an error
/// if any entry is negative or all entries are zero.
Result<Vector> NormalizeByMax(VectorView a);

/// True when every |a[i]-b[i]| <= tol.
bool AllClose(VectorView a, VectorView b, double tol);

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_VECTOR_OPS_H_
