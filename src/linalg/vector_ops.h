#ifndef GEOALIGN_LINALG_VECTOR_OPS_H_
#define GEOALIGN_LINALG_VECTOR_OPS_H_

#include <vector>

#include "common/status.h"

namespace geoalign::linalg {

/// Dense column vector. Free functions below treat it as a mathematical
/// vector; plain std::vector keeps interop with the rest of the project
/// trivial.
using Vector = std::vector<double>;

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& a);

/// Max-norm (largest absolute entry; 0 for empty).
double NormInf(const Vector& a);

/// Sum of entries.
double Sum(const Vector& a);

/// Arithmetic mean (0 for empty).
double Mean(const Vector& a);

/// Largest entry; requires non-empty.
double Max(const Vector& a);

/// Smallest entry; requires non-empty.
double Min(const Vector& a);

/// y += alpha * x (sizes must match).
void Axpy(double alpha, const Vector& x, Vector& y);

/// Multiplies every entry by s.
void Scale(Vector& a, double s);

/// a - b elementwise.
Vector Sub(const Vector& a, const Vector& b);

/// a + b elementwise.
Vector Add(const Vector& a, const Vector& b);

/// Divides by the maximum entry, the normalization GeoAlign applies to
/// reference/objective aggregate vectors (paper §3.4). Returns an error
/// if any entry is negative or all entries are zero.
Result<Vector> NormalizeByMax(const Vector& a);

/// True when every |a[i]-b[i]| <= tol.
bool AllClose(const Vector& a, const Vector& b, double tol);

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_VECTOR_OPS_H_
