#ifndef GEOALIGN_LINALG_NNLS_H_
#define GEOALIGN_LINALG_NNLS_H_

#include "linalg/matrix.h"

namespace geoalign::linalg {

/// Options for the non-negative least squares solver.
struct NnlsOptions {
  /// KKT tolerance on the dual (gradient) test.
  double tolerance = 1e-10;
  /// Safety cap on outer iterations; 0 means 3 * #columns + 10.
  size_t max_iterations = 0;
};

/// Solution of an NNLS problem.
struct NnlsSolution {
  Vector x;              ///< argmin, all entries >= 0
  double residual_norm;  ///< ||A x - b||_2
  size_t iterations;     ///< outer-loop iterations used
};

/// Solves min ||A x - b||_2 subject to x >= 0 with the Lawson–Hanson
/// active-set algorithm. Exposed both as a building block and as an
/// ablation alternative to the simplex-constrained solver (solve NNLS,
/// then rescale to sum 1).
Result<NnlsSolution> SolveNnls(const Matrix& a, const Vector& b,
                               const NnlsOptions& options = {});

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_NNLS_H_
