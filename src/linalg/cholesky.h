#ifndef GEOALIGN_LINALG_CHOLESKY_H_
#define GEOALIGN_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"

namespace geoalign::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix. Used to solve normal equations for small least-squares
/// subproblems.
class CholeskyFactorization {
 public:
  /// Factors symmetric positive-definite `a` (only the lower triangle
  /// is read). Fails if a non-positive pivot is encountered.
  static Result<CholeskyFactorization> Compute(const Matrix& a);

  /// Solves A x = b.
  Result<Vector> Solve(const Vector& b) const;

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

 private:
  explicit CholeskyFactorization(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_CHOLESKY_H_
