#include "linalg/cholesky.h"

#include <cmath>

namespace geoalign::linalg {

Result<CholeskyFactorization> CholeskyFactorization::Compute(
    const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0) {
          return Status::InvalidArgument(
              "Cholesky: matrix not positive definite");
        }
        l(i, j) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return CholeskyFactorization(std::move(l));
}

Result<Vector> CholeskyFactorization::Solve(const Vector& b) const {
  size_t n = l_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("Cholesky solve: size mismatch");
  }
  // Forward substitution L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  // Back substitution L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

}  // namespace geoalign::linalg
