#ifndef GEOALIGN_LINALG_MATRIX_H_
#define GEOALIGN_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace geoalign::linalg {

/// Dense row-major matrix of doubles.
///
/// Sized for the small systems GeoAlign solves (the weight-learning
/// design matrix has one column per reference attribute, i.e. usually
/// fewer than a dozen columns), but fully general.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from row-major nested initializer data; all rows must have
  /// equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Builds a matrix whose columns are the given vectors (the layout
  /// used for the weight-learning design matrix A in paper Eq. 15).
  static Matrix FromColumns(const std::vector<Vector>& cols);

  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Copies out row r / column c.
  Vector Row(size_t r) const;
  Vector Col(size_t c) const;

  /// this * x.
  Vector MatVec(const Vector& x) const;
  /// this^T * x.
  Vector MatTVec(const Vector& x) const;
  /// this * other.
  Matrix MatMul(const Matrix& other) const;
  /// this^T * this (Gram matrix), symmetric.
  Matrix Gram() const;
  /// Transposed copy.
  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// True when every entry differs by at most tol.
  bool AllClose(const Matrix& other, double tol) const;

  /// Raw row-major storage (rows() * cols() entries).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_MATRIX_H_
