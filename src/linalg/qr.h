#ifndef GEOALIGN_LINALG_QR_H_
#define GEOALIGN_LINALG_QR_H_

#include "linalg/matrix.h"

namespace geoalign::linalg {

/// Householder QR factorization of an m x n matrix with m >= n.
///
/// The numerically preferred path for unconstrained least squares:
/// `LeastSquares` solves min ||A x - b||_2 without forming the Gram
/// matrix, keeping the conditioning of A rather than A^T A.
class QrFactorization {
 public:
  /// Factors `a` (requires rows >= cols).
  static Result<QrFactorization> Compute(const Matrix& a);

  /// Solves the least-squares problem min ||A x - b||_2. Fails if A is
  /// rank deficient (a zero diagonal appears in R).
  Result<Vector> LeastSquares(const Vector& b) const;

  /// The upper-triangular factor R (n x n).
  Matrix R() const;

  size_t rows() const { return qr_.rows(); }
  size_t cols() const { return qr_.cols(); }

 private:
  QrFactorization(Matrix qr, Vector tau)
      : qr_(std::move(qr)), tau_(std::move(tau)) {}

  // Householder vectors stored below the diagonal of qr_, R on and
  // above it; tau_ holds the scalar factors.
  Matrix qr_;
  Vector tau_;
};

/// One-call unconstrained least squares min ||A x - b||_2 via QR.
Result<Vector> LeastSquaresQr(const Matrix& a, const Vector& b);

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_QR_H_
