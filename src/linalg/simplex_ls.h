#ifndef GEOALIGN_LINALG_SIMPLEX_LS_H_
#define GEOALIGN_LINALG_SIMPLEX_LS_H_

#include "linalg/matrix.h"

namespace geoalign::linalg {

/// Options for the simplex-constrained least squares solver.
struct SimplexLsOptions {
  /// Tolerance for primal feasibility and the dual (KKT) test.
  double tolerance = 1e-10;
  /// Safety cap on active-set changes; 0 means 10 * #columns + 20.
  size_t max_iterations = 0;
  /// Relative ridge added to the Gram matrix when the KKT system is
  /// singular (near-duplicate reference attributes, cf. paper §4.4.2
  /// where two references are ~96% correlated).
  double ridge_on_singular = 1e-10;
};

/// Solution of a simplex-constrained least squares problem.
struct SimplexLsSolution {
  Vector beta;           ///< argmin on the probability simplex
  double residual_norm;  ///< ||A beta - b||_2
  size_t iterations;     ///< active-set iterations used
};

/// Solves the paper's weight-learning problem (Eq. 15):
///
///   min_beta  ½ ||A beta - b||²
///   s.t.      sum_k beta_k = 1,   beta_k >= 0.
///
/// Active-set method: starting from the feasible uniform point, each
/// iteration solves the equality-constrained subproblem on the passive
/// variables through its KKT system, steps back to the feasible region
/// when a variable would go negative, and uses the Lagrange-multiplier
/// test to release active variables. Terminates at a KKT point, which
/// is the global optimum of this convex QP.
Result<SimplexLsSolution> SolveSimplexLeastSquares(
    const Matrix& a, const Vector& b, const SimplexLsOptions& options = {});

/// Same problem expressed through the normal equations: `gram` = A^T A,
/// `atb` = A^T b, and `btb` = b^T b (only used to report the residual
/// norm). Lets callers that solve many right-hand sides against one
/// design matrix (core::BatchCrosswalk) reuse the Gram matrix.
Result<SimplexLsSolution> SolveSimplexLsFromNormalEquations(
    const Matrix& gram, const Vector& atb, double btb,
    const SimplexLsOptions& options = {});

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_SIMPLEX_LS_H_
