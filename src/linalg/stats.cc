#include "linalg/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::linalg {

double Variance(const Vector& a) {
  if (a.size() < 2) return 0.0;
  double m = Mean(a);
  double acc = 0.0;
  for (double v : a) acc += (v - m) * (v - m);
  return acc / static_cast<double>(a.size() - 1);
}

double StdDev(const Vector& a) { return std::sqrt(Variance(a)); }

double Covariance(const Vector& a, const Vector& b) {
  GEOALIGN_CHECK(a.size() == b.size()) << "Covariance: size mismatch";
  if (a.size() < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - ma) * (b[i] - mb);
  return acc / static_cast<double>(a.size() - 1);
}

double PearsonCorrelation(const Vector& a, const Vector& b) {
  double sa = StdDev(a);
  double sb = StdDev(b);
  if (ExactlyZero(sa) || ExactlyZero(sb)) return 0.0;
  return Covariance(a, b) / (sa * sb);
}

double Quantile(Vector data, double q) {
  GEOALIGN_CHECK(!data.empty()) << "Quantile of empty sample";
  q = std::clamp(q, 0.0, 1.0);
  std::sort(data.begin(), data.end());
  if (data.size() == 1) return data[0];
  double pos = q * static_cast<double>(data.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, data.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

BoxStats ComputeBoxStats(const Vector& data) {
  GEOALIGN_CHECK(!data.empty()) << "BoxStats of empty sample";
  BoxStats s;
  s.min = Min(data);
  s.max = Max(data);
  s.q1 = Quantile(data, 0.25);
  s.median = Quantile(data, 0.5);
  s.q3 = Quantile(data, 0.75);
  s.mean = Mean(data);
  return s;
}

}  // namespace geoalign::linalg
