#include "linalg/matrix.h"

#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::linalg {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    GEOALIGN_CHECK(rows[r].size() == m.cols_) << "FromRows: ragged rows";
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::FromColumns(const std::vector<Vector>& cols) {
  if (cols.empty()) return Matrix();
  Matrix m(cols[0].size(), cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    GEOALIGN_CHECK(cols[c].size() == m.rows_) << "FromColumns: ragged cols";
    for (size_t r = 0; r < m.rows_; ++r) m(r, c) = cols[c][r];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t r) const {
  GEOALIGN_CHECK(r < rows_);
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(size_t c) const {
  GEOALIGN_CHECK(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Vector Matrix::MatVec(const Vector& x) const {
  GEOALIGN_CHECK(x.size() == cols_) << "MatVec: size mismatch";
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Vector Matrix::MatTVec(const Vector& x) const {
  GEOALIGN_CHECK(x.size() == rows_) << "MatTVec: size mismatch";
  Vector out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * x[r];
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  GEOALIGN_CHECK(cols_ == other.rows_) << "MatMul: size mismatch";
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(r, k);
      if (ExactlyZero(a)) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (size_t i = 0; i < cols_; ++i) {
      for (size_t j = i; j < cols_; ++j) {
        out(i, j) += row[i] * row[j];
      }
    }
  }
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace geoalign::linalg
