#ifndef GEOALIGN_LINALG_STATS_H_
#define GEOALIGN_LINALG_STATS_H_

#include <vector>

#include "linalg/vector_ops.h"

namespace geoalign::linalg {

/// Sample variance (denominator n-1; 0 when n < 2).
double Variance(const Vector& a);

/// Sample standard deviation.
double StdDev(const Vector& a);

/// Sample covariance of equal-length vectors (denominator n-1).
double Covariance(const Vector& a, const Vector& b);

/// Pearson correlation coefficient; 0 when either vector is constant.
/// Used for the leave-n-out reference ranking in paper §4.4.2.
double PearsonCorrelation(const Vector& a, const Vector& b);

/// Linear-interpolated quantile of the data (q in [0,1]); requires a
/// non-empty vector. Used to build the Fig. 7 box-plot summaries.
double Quantile(Vector data, double q);

/// Five-number summary (min, q1, median, q3, max) of a sample.
struct BoxStats {
  double min;
  double q1;
  double median;
  double q3;
  double max;
  double mean;
};

/// Computes box-plot statistics; requires a non-empty sample.
BoxStats ComputeBoxStats(const Vector& data);

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_STATS_H_
