#include "linalg/nnls.h"

#include <algorithm>
#include <cmath>

#include "linalg/qr.h"
#include "obs/metrics.h"

namespace geoalign::linalg {

namespace {

// Solver telemetry (docs/observability.md): one `solves` tick per
// successful solve, `iterations` accumulates outer-loop passes.
obs::Counter& NnlsSolves() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("solver.nnls.solves");
  return c;
}
obs::Counter& NnlsIterations() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("solver.nnls.iterations");
  return c;
}

// Solves the unconstrained least squares restricted to the passive
// columns, returning a full-size vector with zeros elsewhere.
Result<Vector> SolvePassive(const Matrix& a, const Vector& b,
                            const std::vector<bool>& passive) {
  size_t n = a.cols();
  std::vector<size_t> idx;
  for (size_t j = 0; j < n; ++j) {
    if (passive[j]) idx.push_back(j);
  }
  Vector full(n, 0.0);
  if (idx.empty()) return full;
  Matrix sub(a.rows(), idx.size());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < idx.size(); ++c) sub(r, c) = a(r, idx[c]);
  }
  GEOALIGN_ASSIGN_OR_RETURN(Vector z, LeastSquaresQr(sub, b));
  for (size_t c = 0; c < idx.size(); ++c) full[idx[c]] = z[c];
  return full;
}

}  // namespace

Result<NnlsSolution> SolveNnls(const Matrix& a, const Vector& b,
                               const NnlsOptions& options) {
  size_t n = a.cols();
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("NNLS: size mismatch");
  }
  size_t max_iter =
      options.max_iterations > 0 ? options.max_iterations : 3 * n + 10;

  std::vector<bool> passive(n, false);
  Vector x(n, 0.0);
  // Gradient of ½||Ax-b||² is A^T(Ax-b); w = -gradient.
  Vector w = a.MatTVec(Sub(b, a.MatVec(x)));

  size_t outer = 0;
  while (outer < max_iter) {
    // Pick the most-violating zero variable.
    double best = options.tolerance;
    size_t best_j = n;
    for (size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best) {
        best = w[j];
        best_j = j;
      }
    }
    if (best_j == n) break;  // KKT satisfied
    passive[best_j] = true;
    ++outer;

    for (;;) {
      GEOALIGN_ASSIGN_OR_RETURN(Vector z, SolvePassive(a, b, passive));
      // Feasible?
      bool feasible = true;
      for (size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        x = std::move(z);
        break;
      }
      // Step toward z until the first passive variable hits zero.
      double alpha = 1.0;
      for (size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= 0.0) {
          double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        x[j] += alpha * (z[j] - x[j]);
      }
      for (size_t j = 0; j < n; ++j) {
        if (passive[j] && x[j] <= options.tolerance) {
          x[j] = 0.0;
          passive[j] = false;
        }
      }
    }
    w = a.MatTVec(Sub(b, a.MatVec(x)));
  }

  NnlsSolution sol;
  sol.residual_norm = Norm2(Sub(a.MatVec(x), b));
  sol.x = std::move(x);
  sol.iterations = outer;
  NnlsSolves().Add(1);
  NnlsIterations().Add(outer);
  return sol;
}

}  // namespace geoalign::linalg
