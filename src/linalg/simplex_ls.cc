#include "linalg/simplex_ls.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/lu.h"
#include "obs/metrics.h"

namespace geoalign::linalg {

namespace {

// Solver telemetry (docs/observability.md): one `solves` tick per
// successful solve, `iterations` accumulates active-set steps.
obs::Counter& SimplexSolves() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("solver.simplex.solves");
  return c;
}
obs::Counter& SimplexIterations() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("solver.simplex.iterations");
  return c;
}

// Solves the equality-constrained subproblem restricted to the passive
// variables:
//   min ||A_P z - b||²  s.t.  1^T z = 1
// through the KKT system
//   [ G_P  1 ] [z]   [A_P^T b]
//   [ 1^T  0 ] [λ] = [  1    ]
// where G_P = A_P^T A_P. On a singular KKT matrix (duplicate passive
// columns) retries once with a small ridge on G_P.
Result<std::pair<Vector, double>> SolveEqualitySubproblem(
    const Matrix& gram, const Vector& atb, const std::vector<size_t>& idx,
    double ridge) {
  size_t p = idx.size();
  Matrix kkt(p + 1, p + 1);
  Vector rhs(p + 1, 0.0);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) kkt(i, j) = gram(idx[i], idx[j]);
    kkt(i, p) = 1.0;
    kkt(p, i) = 1.0;
    rhs[i] = atb[idx[i]];
  }
  rhs[p] = 1.0;

  auto lu = LuFactorization::Compute(kkt);
  if (!lu.ok()) {
    // Near-duplicate columns: regularize the Gram block and retry.
    double trace = 0.0;
    for (size_t i = 0; i < p; ++i) trace += gram(idx[i], idx[i]);
    double eps = ridge * std::max(trace, 1.0);
    for (size_t i = 0; i < p; ++i) kkt(i, i) += eps;
    GEOALIGN_ASSIGN_OR_RETURN(LuFactorization lu2,
                              LuFactorization::Compute(kkt));
    GEOALIGN_ASSIGN_OR_RETURN(Vector sol, lu2.Solve(rhs));
    Vector z(sol.begin(), sol.begin() + p);
    return std::make_pair(std::move(z), sol[p]);
  }
  GEOALIGN_ASSIGN_OR_RETURN(Vector sol, lu->Solve(rhs));
  Vector z(sol.begin(), sol.begin() + p);
  return std::make_pair(std::move(z), sol[p]);
}

// ||A beta - b||_2 from the normal-equation quantities.
double ResidualFromNormal(const Matrix& gram, const Vector& atb, double btb,
                          const Vector& beta) {
  double quad = Dot(beta, gram.MatVec(beta)) - 2.0 * Dot(beta, atb) + btb;
  return std::sqrt(std::max(0.0, quad));
}

}  // namespace

Result<SimplexLsSolution> SolveSimplexLsFromNormalEquations(
    const Matrix& gram, const Vector& atb, double btb,
    const SimplexLsOptions& options) {
  size_t n = gram.cols();
  if (n == 0) return Status::InvalidArgument("SimplexLS: no columns");
  if (gram.rows() != n || atb.size() != n) {
    return Status::InvalidArgument("SimplexLS: normal-equation shapes");
  }
  if (n == 1) {
    // The simplex is a single point.
    SimplexLsSolution sol;
    sol.beta = {1.0};
    sol.residual_norm = ResidualFromNormal(gram, atb, btb, sol.beta);
    sol.iterations = 0;
    SimplexSolves().Add(1);
    return sol;
  }
  size_t max_iter =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 20;
  double tol = options.tolerance;

  // Feasible start: uniform weights, all variables passive.
  std::vector<bool> passive(n, true);
  Vector beta(n, 1.0 / static_cast<double>(n));

  size_t iterations = 0;
  while (iterations < max_iter) {
    ++iterations;
    std::vector<size_t> idx;
    for (size_t j = 0; j < n; ++j) {
      if (passive[j]) idx.push_back(j);
    }
    GEOALIGN_CHECK(!idx.empty()) << "SimplexLS: empty passive set";

    GEOALIGN_ASSIGN_OR_RETURN(
        auto sub, SolveEqualitySubproblem(gram, atb, idx,
                                          options.ridge_on_singular));
    Vector& z_sub = sub.first;

    Vector z(n, 0.0);
    bool feasible = true;
    for (size_t k = 0; k < idx.size(); ++k) {
      z[idx[k]] = z_sub[k];
      if (z_sub[k] < -tol) feasible = false;
    }

    if (!feasible) {
      // Move from the (feasible) beta toward z until the first passive
      // variable hits zero, then fix the blockers at zero.
      double alpha = 1.0;
      for (size_t j : idx) {
        if (z[j] < beta[j]) {
          double denom = beta[j] - z[j];
          if (z[j] < 0.0 && denom > 0.0) {
            alpha = std::min(alpha, beta[j] / denom);
          }
        }
      }
      for (size_t j = 0; j < n; ++j) {
        beta[j] += alpha * (z[j] - beta[j]);
        if (beta[j] < 0.0) beta[j] = 0.0;
      }
      bool removed = false;
      for (size_t j : idx) {
        if (beta[j] <= tol) {
          beta[j] = 0.0;
          passive[j] = false;
          removed = true;
        }
      }
      if (!removed) {
        // Numerical stall: clamp the most negative target to zero.
        size_t worst = idx[0];
        for (size_t j : idx) {
          if (z[j] < z[worst]) worst = j;
        }
        beta[worst] = 0.0;
        passive[worst] = false;
      }
      continue;
    }

    // Passive subproblem solved and feasible: adopt it.
    beta = z;
    // KKT test for the active (zero) variables. Stationarity on the
    // passive set gives grad_j + mu = 0 with grad = G beta - A^T b;
    // an active variable may be released when grad_j + mu < 0.
    Vector grad = gram.MatVec(beta);
    for (size_t j = 0; j < n; ++j) grad[j] -= atb[j];
    double mu = 0.0;
    // Average over passive entries for numerical robustness.
    {
      double acc = 0.0;
      for (size_t j : idx) acc += -grad[j];
      mu = acc / static_cast<double>(idx.size());
    }
    double worst_violation = -tol;
    size_t worst_j = n;
    for (size_t j = 0; j < n; ++j) {
      if (passive[j]) continue;
      double reduced = grad[j] + mu;
      if (reduced < worst_violation) {
        worst_violation = reduced;
        worst_j = j;
      }
    }
    if (worst_j == n) {
      SimplexLsSolution sol;
      sol.residual_norm = ResidualFromNormal(gram, atb, btb, beta);
      sol.beta = std::move(beta);
      sol.iterations = iterations;
      SimplexSolves().Add(1);
      SimplexIterations().Add(iterations);
      return sol;
    }
    passive[worst_j] = true;
  }
  return Status::Internal("SimplexLS: iteration cap reached");
}

Result<SimplexLsSolution> SolveSimplexLeastSquares(
    const Matrix& a, const Vector& b, const SimplexLsOptions& options) {
  if (a.cols() == 0) return Status::InvalidArgument("SimplexLS: no columns");
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("SimplexLS: size mismatch");
  }
  return SolveSimplexLsFromNormalEquations(a.Gram(), a.MatTVec(b), Dot(b, b),
                                           options);
}

}  // namespace geoalign::linalg
