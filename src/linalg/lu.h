#ifndef GEOALIGN_LINALG_LU_H_
#define GEOALIGN_LINALG_LU_H_

#include "linalg/matrix.h"

namespace geoalign::linalg {

/// LU factorization with partial pivoting of a square matrix.
///
/// Used for the symmetric-indefinite KKT systems arising in the
/// equality-constrained least-squares subproblems of the simplex
/// solver (the constraint row makes the system indefinite, so Cholesky
/// does not apply).
class LuFactorization {
 public:
  /// Factors `a` (must be square). Fails on (numerically) singular
  /// input.
  static Result<LuFactorization> Compute(const Matrix& a);

  /// Solves A x = b for the factored A.
  Result<Vector> Solve(const Vector& b) const;

  /// Determinant of the factored matrix.
  double Determinant() const;

  size_t size() const { return lu_.rows(); }

 private:
  LuFactorization(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(sign) {}

  Matrix lu_;                  // packed L (unit diagonal) and U
  std::vector<size_t> perm_;   // row permutation
  int perm_sign_ = 1;
};

/// Convenience: solves the square system a x = b in one call.
Result<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

}  // namespace geoalign::linalg

#endif  // GEOALIGN_LINALG_LU_H_
