#include "eval/cross_validation.h"

#include <cmath>
#include <limits>

#include "core/regression.h"
#include "eval/metrics.h"

namespace geoalign::eval {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double CvReport::Lookup(const std::string& dataset,
                        const std::string& method) const {
  for (const CvCell& c : cells) {
    if (c.dataset == dataset && c.method == method) {
      return c.skipped ? kNaN : c.nrmse;
    }
  }
  return kNaN;
}

double CvReport::MeanNrmse(const std::string& method) const {
  double acc = 0.0;
  size_t n = 0;
  for (const CvCell& c : cells) {
    if (c.method == method && !c.skipped) {
      acc += c.nrmse;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : kNaN;
}

Result<CvReport> RunCrossValidation(const synth::Universe& universe,
                                    const CvOptions& options) {
  CvReport report;
  report.universe = universe.name;

  core::GeoAlign geoalign(options.geoalign_options);
  core::ArealWeighting areal(universe.measure_dm);

  for (size_t t = 0; t < universe.datasets.size(); ++t) {
    const synth::Dataset& test = universe.datasets[t];
    GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkInput input,
                              universe.MakeLeaveOneOutInput(t));
    GEOALIGN_RETURN_IF_ERROR(input.Validate());

    // GeoAlign with all remaining references — through the compiled
    // plan (cached across runs when options.plan_cache is supplied;
    // bit-identical to the per-call path either way).
    {
      core::CrosswalkResult res;
      if (options.plan_cache != nullptr) {
        GEOALIGN_ASSIGN_OR_RETURN(
            std::shared_ptr<const core::CrosswalkPlan> plan,
            options.plan_cache->GetOrCompile(input.references,
                                             options.geoalign_options));
        GEOALIGN_ASSIGN_OR_RETURN(res, plan->Execute(input.objective_source));
      } else {
        GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkPlan plan,
                                  geoalign.Compile(input));
        GEOALIGN_ASSIGN_OR_RETURN(res, plan.Execute(input.objective_source));
      }
      CvCell cell;
      cell.dataset = test.name;
      cell.method = "GeoAlign";
      cell.rmse = Rmse(res.target_estimates, test.target);
      cell.nrmse = Nrmse(res.target_estimates, test.target);
      report.cells.push_back(std::move(cell));
    }

    // Dasymetric baselines, each bound to one reference.
    for (const std::string& ref_name : options.dasymetric_references) {
      CvCell cell;
      cell.dataset = test.name;
      cell.method = "dasymetric(" + ref_name + ")";
      if (ref_name == test.name) {
        // The reference under test is withheld (paper §4.1).
        cell.skipped = true;
        cell.nrmse = kNaN;
        cell.rmse = kNaN;
        report.cells.push_back(std::move(cell));
        continue;
      }
      auto ref_idx = input.FindReference(ref_name);
      if (!ref_idx.ok()) {
        return Status::InvalidArgument("cross-validation: universe has no '" +
                                       ref_name + "' reference");
      }
      core::Dasymetric dasy(*ref_idx, cell.method);
      // Baseline interpolators have no compiled-plan form.
      GEOALIGN_ASSIGN_OR_RETURN(
          core::CrosswalkResult res,
          dasy.Crosswalk(input));  // NOLINT(geoalign-plan-bypass)
      cell.rmse = Rmse(res.target_estimates, test.target);
      cell.nrmse = Nrmse(res.target_estimates, test.target);
      report.cells.push_back(std::move(cell));
    }

    // OLS regression baseline (never skipped; it has no single
    // reference to withhold).
    if (options.run_regression) {
      core::RegressionBaseline reg;
      // Baseline interpolators have no compiled-plan form.
      GEOALIGN_ASSIGN_OR_RETURN(
          core::CrosswalkResult res,
          reg.Crosswalk(input));  // NOLINT(geoalign-plan-bypass)
      CvCell cell;
      cell.dataset = test.name;
      cell.method = "regression";
      cell.rmse = Rmse(res.target_estimates, test.target);
      cell.nrmse = Nrmse(res.target_estimates, test.target);
      report.cells.push_back(std::move(cell));
    }

    // Areal weighting (skipped when the test dataset IS area).
    if (options.run_areal_weighting) {
      CvCell cell;
      cell.dataset = test.name;
      cell.method = "areal_weighting";
      if (test.name == "Area (Sq. Miles)") {
        cell.skipped = true;
        cell.nrmse = kNaN;
        cell.rmse = kNaN;
      } else {
        // Baseline interpolators have no compiled-plan form.
        GEOALIGN_ASSIGN_OR_RETURN(
            core::CrosswalkResult res,
            areal.Crosswalk(input));  // NOLINT(geoalign-plan-bypass)
        cell.rmse = Rmse(res.target_estimates, test.target);
        cell.nrmse = Nrmse(res.target_estimates, test.target);
      }
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

}  // namespace geoalign::eval
