#ifndef GEOALIGN_EVAL_NOISE_H_
#define GEOALIGN_EVAL_NOISE_H_

#include "common/random.h"
#include "core/crosswalk_input.h"

namespace geoalign::eval {

/// Applies the paper's noise model (§4.4.1): an x% noise level
/// perturbs each value y to (1 ± x/100)·y, the sign drawn uniformly
/// per entry. Values stay non-negative for levels <= 100.
linalg::Vector PerturbVector(const linalg::Vector& values,
                             double level_percent, Rng& rng);

/// Perturbs the *source aggregate vectors* of every reference in the
/// input at the given noise level (DMs are left exact, matching the
/// experiment: the reference aggregates, not the crosswalk files, are
/// of uncertain accuracy). The perturbed input intentionally violates
/// strict DM/source consistency, as noisy real data would.
core::CrosswalkInput PerturbReferences(const core::CrosswalkInput& input,
                                       double level_percent, Rng& rng);

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_NOISE_H_
