#include "eval/noise_experiment.h"

#include <algorithm>

#include "eval/metrics.h"
#include "eval/noise.h"

namespace geoalign::eval {

Result<std::vector<NoiseCell>> RunNoiseExperiment(
    const synth::Universe& universe, const NoiseExperimentOptions& options) {
  if (options.replicates <= 0) {
    return Status::InvalidArgument("NoiseExperiment: replicates must be > 0");
  }
  core::GeoAlign geoalign(options.geoalign_options);
  Rng rng(options.seed);
  std::vector<NoiseCell> out;
  out.reserve(universe.datasets.size() * options.levels.size());

  for (size_t t = 0; t < universe.datasets.size(); ++t) {
    const synth::Dataset& test = universe.datasets[t];
    GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkInput input,
                              universe.MakeLeaveOneOutInput(t));
    // One-shot per fold; a plan would be compiled once and executed
    // once — nothing to amortize.
    GEOALIGN_ASSIGN_OR_RETURN(
        core::CrosswalkResult clean,
        geoalign.Crosswalk(input));  // NOLINT(geoalign-plan-bypass)
    double clean_rmse = Rmse(clean.target_estimates, test.target);
    double clean_nrmse = Nrmse(clean.target_estimates, test.target);

    for (double level : options.levels) {
      linalg::Vector ratios;
      ratios.reserve(options.replicates);
      for (int rep = 0; rep < options.replicates; ++rep) {
        core::CrosswalkInput noisy = PerturbReferences(input, level, rng);
        // The references are freshly perturbed every replicate, so no
        // plan can be reused.
        GEOALIGN_ASSIGN_OR_RETURN(
            core::CrosswalkResult res,
            geoalign.Crosswalk(noisy));  // NOLINT(geoalign-plan-bypass)
        double rmse = Rmse(res.target_estimates, test.target);
        ratios.push_back(rmse / std::max(clean_rmse, 1e-12));
      }
      NoiseCell cell;
      cell.dataset = test.name;
      cell.level_percent = level;
      cell.clean_nrmse = clean_nrmse;
      cell.deviation = linalg::ComputeBoxStats(ratios);
      out.push_back(std::move(cell));
    }
  }
  return out;
}

}  // namespace geoalign::eval
