#ifndef GEOALIGN_EVAL_CROSS_VALIDATION_H_
#define GEOALIGN_EVAL_CROSS_VALIDATION_H_

#include <string>
#include <vector>

#include "core/areal_weighting.h"
#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "core/plan_cache.h"
#include "synth/universe.h"

namespace geoalign::eval {

/// One (test dataset, method) measurement of the paper's §4.1
/// cross-validated protocol.
struct CvCell {
  std::string dataset;
  std::string method;
  double nrmse = 0.0;
  double rmse = 0.0;
  /// Methods are skipped when their reference *is* the test dataset
  /// (paper §4.1) — skipped cells carry NaNs and skipped=true.
  bool skipped = false;
};

/// Results of a full cross-validation sweep over one universe.
struct CvReport {
  std::string universe;
  std::vector<CvCell> cells;

  /// NRMSE of (dataset, method), NaN if missing/skipped.
  double Lookup(const std::string& dataset, const std::string& method) const;

  /// Mean NRMSE of a method over its non-skipped datasets.
  double MeanNrmse(const std::string& method) const;
};

/// Options for the cross-validation run.
struct CvOptions {
  /// Dasymetric baselines are run with these reference datasets
  /// (paper: the three population-level references). Names must exist
  /// in the universe.
  std::vector<std::string> dasymetric_references = {
      "Population", "USPS Residential Address", "USPS Business Address"};
  /// Include the areal weighting baseline (measure DM reference).
  bool run_areal_weighting = true;
  /// Include the OLS regression baseline (paper §5's regression
  /// family), method name "regression".
  bool run_regression = false;
  /// GeoAlign configuration.
  core::GeoAlignOptions geoalign_options;
  /// Optional cache of compiled GeoAlign plans, keyed by reference-set
  /// content + options. Each leave-one-out fold uses a distinct
  /// reference subset, so within one run every fold misses once; the
  /// payoff comes from repeated runs over the same universe (ablation
  /// sweeps re-running folds, report generation). Not owned; may be
  /// shared across concurrent runs (PlanCache is thread-safe). Null =
  /// compile per fold without caching. Cached or not, results are
  /// bit-identical.
  core::PlanCache* plan_cache = nullptr;
};

/// Runs the paper's cross-validated accuracy protocol on `universe`:
/// every dataset in turn is the objective; the remaining datasets are
/// GeoAlign's references; each dasymetric baseline uses its single
/// named reference; areal weighting uses the measure DM. NRMSE is
/// computed against the exact target-level ground truth.
Result<CvReport> RunCrossValidation(const synth::Universe& universe,
                                    const CvOptions& options = {});

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_CROSS_VALIDATION_H_
