#include "eval/reference_selection.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "linalg/stats.h"

namespace geoalign::eval {

std::string PolicyLabel(SubsetPolicy policy, size_t n_out) {
  switch (policy) {
    case SubsetPolicy::kAll:
      return "using all references";
    case SubsetPolicy::kLeastRelatedOut:
      return StrFormat("leave %zu least related reference%s out", n_out,
                       n_out == 1 ? "" : "s");
    case SubsetPolicy::kMostRelatedOut:
      return StrFormat("leave %zu most related reference%s out", n_out,
                       n_out == 1 ? "" : "s");
  }
  return "?";
}

std::vector<size_t> SelectReferences(const core::CrosswalkInput& input,
                                     SubsetPolicy policy, size_t n_out) {
  size_t num_refs = input.references.size();
  std::vector<size_t> all(num_refs);
  for (size_t k = 0; k < num_refs; ++k) all[k] = k;
  if (policy == SubsetPolicy::kAll || n_out == 0 || n_out >= num_refs) {
    return all;
  }
  // Rank by |corr(objective, reference)| at source level, ascending.
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(num_refs);
  for (size_t k = 0; k < num_refs; ++k) {
    double corr = linalg::PearsonCorrelation(
        input.objective_source, input.references[k].source_aggregates);
    ranked.emplace_back(std::fabs(corr), k);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<size_t> keep;
  keep.reserve(num_refs - n_out);
  if (policy == SubsetPolicy::kLeastRelatedOut) {
    for (size_t r = n_out; r < num_refs; ++r) keep.push_back(ranked[r].second);
  } else {
    for (size_t r = 0; r + n_out < num_refs; ++r) {
      keep.push_back(ranked[r].second);
    }
  }
  std::sort(keep.begin(), keep.end());
  return keep;
}

Result<std::vector<SelectionCell>> RunReferenceSelection(
    const synth::Universe& universe, const core::GeoAlignOptions& options) {
  core::GeoAlign geoalign(options);
  std::vector<SelectionCell> out;
  const std::vector<std::pair<SubsetPolicy, size_t>> policies = {
      {SubsetPolicy::kLeastRelatedOut, 1},
      {SubsetPolicy::kLeastRelatedOut, 2},
      {SubsetPolicy::kMostRelatedOut, 1},
      {SubsetPolicy::kMostRelatedOut, 2},
      {SubsetPolicy::kAll, 0},
  };
  for (size_t t = 0; t < universe.datasets.size(); ++t) {
    const synth::Dataset& test = universe.datasets[t];
    GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkInput full,
                              universe.MakeLeaveOneOutInput(t));
    for (const auto& [policy, n_out] : policies) {
      std::vector<size_t> keep = SelectReferences(full, policy, n_out);
      GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkInput input,
                                full.WithReferenceSubset(keep));
      // Every (fold, policy) pair crosswalks a distinct reference
      // subset exactly once; there is no plan reuse to amortize.
      GEOALIGN_ASSIGN_OR_RETURN(
          core::CrosswalkResult res,
          geoalign.Crosswalk(input));  // NOLINT(geoalign-plan-bypass)
      SelectionCell cell;
      cell.dataset = test.name;
      cell.policy = policy;
      cell.n_out = n_out;
      cell.nrmse = Nrmse(res.target_estimates, test.target);
      for (size_t k : keep) {
        cell.used_references.push_back(full.references[k].name);
      }
      out.push_back(std::move(cell));
    }
  }
  return out;
}

}  // namespace geoalign::eval
