#ifndef GEOALIGN_EVAL_NOISE_EXPERIMENT_H_
#define GEOALIGN_EVAL_NOISE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/geoalign.h"
#include "linalg/stats.h"
#include "synth/universe.h"

namespace geoalign::eval {

/// Options for the §4.4.1 noisy-reference robustness experiment.
struct NoiseExperimentOptions {
  /// Noise levels in percent (the paper's grid).
  std::vector<double> levels = {1, 2, 5, 10, 20, 30, 50};
  /// Replicates per (dataset, level) pair.
  int replicates = 20;
  uint64_t seed = 777;
  core::GeoAlignOptions geoalign_options;
};

/// One (dataset, level) measurement: box statistics of the deviation
/// ratio RMSE(perturbed)/RMSE(original) over the replicates.
struct NoiseCell {
  std::string dataset;
  double level_percent = 0.0;
  double clean_nrmse = 0.0;
  linalg::BoxStats deviation;
};

/// Runs the paper's Fig. 7 protocol on `universe`: for every dataset
/// (cross-validated objective) and every level, perturbs all reference
/// source aggregates to (1 ± level/100)·y per entry and measures the
/// RMSE deviation ratio. Deterministic in `options.seed`.
Result<std::vector<NoiseCell>> RunNoiseExperiment(
    const synth::Universe& universe,
    const NoiseExperimentOptions& options = {});

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_NOISE_EXPERIMENT_H_
