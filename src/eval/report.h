#ifndef GEOALIGN_EVAL_REPORT_H_
#define GEOALIGN_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace geoalign::eval {

/// Minimal fixed-width text-table writer used by the benchmark
/// harnesses to print the paper's tables/series.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed text/number rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable* table) : table_(table) {}
    RowBuilder& Text(const std::string& s);
    /// %.4g-formatted; NaN prints as "-".
    RowBuilder& Num(double v);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TextTable* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  /// Renders with aligned columns.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_REPORT_H_
