#include "eval/report.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace geoalign::eval {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  GEOALIGN_CHECK(row.size() == header_.size()) << "TextTable: row width";
  rows_.push_back(std::move(row));
}

TextTable::RowBuilder& TextTable::RowBuilder::Text(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Num(double v) {
  cells_.push_back(std::isnan(v) ? "-" : StrFormat("%.4g", v));
  return *this;
}

TextTable::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace geoalign::eval
