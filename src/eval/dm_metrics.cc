#include "eval/dm_metrics.h"

#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::eval {

namespace {

// Applies `fn(value_a, value_b)` over the union of stored entries.
template <typename Fn>
void ForEachPair(const sparse::CsrMatrix& a, const sparse::CsrMatrix& b,
                 Fn fn) {
  GEOALIGN_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "DM metrics: shape mismatch";
  for (size_t r = 0; r < a.rows(); ++r) {
    sparse::CsrMatrix::RowView ra = a.Row(r);
    sparse::CsrMatrix::RowView rb = b.Row(r);
    size_t ia = 0;
    size_t ib = 0;
    while (ia < ra.size || ib < rb.size) {
      size_t ca = ia < ra.size ? ra.cols[ia] : SIZE_MAX;
      size_t cb = ib < rb.size ? rb.cols[ib] : SIZE_MAX;
      double va = 0.0;
      double vb = 0.0;
      if (ca <= cb) va = ra.values[ia++];
      if (cb <= ca) vb = rb.values[ib++];
      fn(va, vb);
    }
  }
}

}  // namespace

double DmFrobeniusDistance(const sparse::CsrMatrix& a,
                           const sparse::CsrMatrix& b) {
  double acc = 0.0;
  ForEachPair(a, b, [&acc](double va, double vb) {
    double d = va - vb;
    acc += d * d;
  });
  return std::sqrt(acc);
}

double DmCosineSimilarity(const sparse::CsrMatrix& a,
                          const sparse::CsrMatrix& b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  ForEachPair(a, b, [&](double va, double vb) {
    dot += va * vb;
    na += va * va;
    nb += vb * vb;
  });
  if (ExactlyZero(na) || ExactlyZero(nb)) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double DmMisallocationShare(const sparse::CsrMatrix& a,
                            const sparse::CsrMatrix& b) {
  double l1 = 0.0;
  ForEachPair(a, b,
              [&l1](double va, double vb) { l1 += std::fabs(va - vb); });
  double denom = 2.0 * std::max(a.Total(), b.Total());
  if (denom <= 0.0) return 0.0;
  return l1 / denom;
}

}  // namespace geoalign::eval
