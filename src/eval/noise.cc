#include "eval/noise.h"

namespace geoalign::eval {

linalg::Vector PerturbVector(const linalg::Vector& values,
                             double level_percent, Rng& rng) {
  linalg::Vector out(values.size());
  double level = level_percent / 100.0;
  for (size_t i = 0; i < values.size(); ++i) {
    double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    out[i] = values[i] * (1.0 + sign * level);
    if (out[i] < 0.0) out[i] = 0.0;
  }
  return out;
}

core::CrosswalkInput PerturbReferences(const core::CrosswalkInput& input,
                                       double level_percent, Rng& rng) {
  core::CrosswalkInput out;
  out.objective_source = input.objective_source;
  out.references.reserve(input.references.size());
  for (const core::ReferenceAttribute& ref : input.references) {
    core::ReferenceAttribute noisy;
    noisy.name = ref.name;
    noisy.source_aggregates =
        PerturbVector(ref.source_aggregates, level_percent, rng);
    noisy.disaggregation = ref.disaggregation;
    out.references.push_back(std::move(noisy));
  }
  return out;
}

}  // namespace geoalign::eval
