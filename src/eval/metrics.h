#ifndef GEOALIGN_EVAL_METRICS_H_
#define GEOALIGN_EVAL_METRICS_H_

#include "linalg/vector_ops.h"

namespace geoalign::eval {

/// Root mean square error between estimates and ground truth
/// (equal-length, non-empty vectors).
double Rmse(const linalg::Vector& estimate, const linalg::Vector& truth);

/// RMSE normalized by the mean of the measured (true) data — the
/// NRMSE of paper Fig. 5, which makes errors comparable across
/// datasets of heterogeneous scale. Requires a nonzero truth mean.
double Nrmse(const linalg::Vector& estimate, const linalg::Vector& truth);

/// Mean absolute error.
double Mae(const linalg::Vector& estimate, const linalg::Vector& truth);

/// Largest absolute error.
double MaxAbsError(const linalg::Vector& estimate,
                   const linalg::Vector& truth);

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_METRICS_H_
