#ifndef GEOALIGN_EVAL_DM_METRICS_H_
#define GEOALIGN_EVAL_DM_METRICS_H_

#include "sparse/csr_matrix.h"

namespace geoalign::eval {

/// Similarity metrics between disaggregation matrices, used for the
/// paper's §4.4.2 observation that "the predicted disaggregation
/// matrix of the target attribute is almost the same" whether or not
/// one of two collinear references is dropped.

/// Frobenius norm of (a - b); shapes must match.
double DmFrobeniusDistance(const sparse::CsrMatrix& a,
                           const sparse::CsrMatrix& b);

/// Cosine similarity of the matrices viewed as vectors, in [-1, 1]
/// (0 when either matrix is all-zero).
double DmCosineSimilarity(const sparse::CsrMatrix& a,
                          const sparse::CsrMatrix& b);

/// Total-variation-style share of misallocated mass:
/// ||a - b||_1 / (2 * max(total(a), total(b))); 0 = identical
/// allocation, 1 = fully disjoint. Requires non-negative matrices.
double DmMisallocationShare(const sparse::CsrMatrix& a,
                            const sparse::CsrMatrix& b);

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_DM_METRICS_H_
