#ifndef GEOALIGN_EVAL_REFERENCE_SELECTION_H_
#define GEOALIGN_EVAL_REFERENCE_SELECTION_H_

#include <string>
#include <vector>

#include "core/geoalign.h"
#include "synth/universe.h"

namespace geoalign::eval {

/// The reference-subset policies of paper Fig. 8.
enum class SubsetPolicy {
  kAll,              ///< use every available reference
  kLeastRelatedOut,  ///< drop the n references LEAST correlated with
                     ///< the objective at source level
  kMostRelatedOut,   ///< drop the n MOST correlated references
};

/// One (dataset, policy, n) measurement.
struct SelectionCell {
  std::string dataset;
  SubsetPolicy policy;
  size_t n_out = 0;  ///< 0 for kAll
  double nrmse = 0.0;
  /// References actually used (names), for diagnostics.
  std::vector<std::string> used_references;
};

/// Human-readable label ("leave 2 most related references out", ...).
std::string PolicyLabel(SubsetPolicy policy, size_t n_out);

/// Ranks references by |Pearson correlation| with the objective at
/// source level and returns the kept indices under the policy.
std::vector<size_t> SelectReferences(const core::CrosswalkInput& input,
                                     SubsetPolicy policy, size_t n_out);

/// Runs the §4.4.2 experiment on `universe`: for every dataset, runs
/// GeoAlign with all references and with leave-{1,2}-most/least
/// -correlated-out subsets, reporting NRMSE for each.
Result<std::vector<SelectionCell>> RunReferenceSelection(
    const synth::Universe& universe,
    const core::GeoAlignOptions& options = {});

}  // namespace geoalign::eval

#endif  // GEOALIGN_EVAL_REFERENCE_SELECTION_H_
