#include "eval/metrics.h"

#include <cmath>

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::eval {

double Rmse(const linalg::Vector& estimate, const linalg::Vector& truth) {
  GEOALIGN_CHECK(estimate.size() == truth.size() && !truth.empty())
      << "Rmse: bad shapes";
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = estimate[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double Nrmse(const linalg::Vector& estimate, const linalg::Vector& truth) {
  double mean = linalg::Mean(truth);
  GEOALIGN_CHECK(!ExactlyZero(mean)) << "Nrmse: zero truth mean";
  return Rmse(estimate, truth) / mean;
}

double Mae(const linalg::Vector& estimate, const linalg::Vector& truth) {
  GEOALIGN_CHECK(estimate.size() == truth.size() && !truth.empty())
      << "Mae: bad shapes";
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::fabs(estimate[i] - truth[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double MaxAbsError(const linalg::Vector& estimate,
                   const linalg::Vector& truth) {
  GEOALIGN_CHECK(estimate.size() == truth.size()) << "MaxAbsError: shapes";
  double best = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    best = std::max(best, std::fabs(estimate[i] - truth[i]));
  }
  return best;
}

}  // namespace geoalign::eval
