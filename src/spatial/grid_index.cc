#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace geoalign::spatial {

PointGridIndex::PointGridIndex(const std::vector<geom::Point>& points,
                               const geom::BBox& bounds,
                               double target_per_cell)
    : points_(points), bounds_(bounds) {
  double span = std::max(bounds.width(), bounds.height());
  if (span <= 0.0) span = 1.0;
  double cells = std::max(
      1.0, static_cast<double>(points.size()) / std::max(1.0, target_per_cell));
  double per_axis = std::sqrt(cells);
  cell_size_ = std::max(span / per_axis, span * 1e-9);
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size_)));
  buckets_.resize(static_cast<size_t>(nx_) * ny_);
  for (uint32_t i = 0; i < points_.size(); ++i) {
    CellCoord c = CellOf(points_[i]);
    buckets_[static_cast<size_t>(c.y) * nx_ + c.x].push_back(i);
  }
}

PointGridIndex::CellCoord PointGridIndex::CellOf(const geom::Point& p) const {
  int cx = static_cast<int>((p.x - bounds_.min_x) / cell_size_);
  int cy = static_cast<int>((p.y - bounds_.min_y) / cell_size_);
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return {cx, cy};
}

const std::vector<uint32_t>& PointGridIndex::Bucket(int cx, int cy) const {
  return buckets_[static_cast<size_t>(cy) * nx_ + cx];
}

uint32_t PointGridIndex::Nearest(const geom::Point& q) const {
  GEOALIGN_CHECK(!points_.empty()) << "Nearest on empty index";
  CellCoord c = CellOf(q);
  double best_d2 = std::numeric_limits<double>::infinity();
  uint32_t best = 0;
  int max_radius = std::max(nx_, ny_);
  for (int radius = 0; radius <= max_radius; ++radius) {
    // Once a hit is found, one more ring guarantees correctness
    // (points in farther rings are at least (radius-1)*cell_size away).
    if (best_d2 < std::numeric_limits<double>::infinity()) {
      double min_ring = (radius - 1) * cell_size_;
      if (min_ring > 0.0 && min_ring * min_ring > best_d2) break;
    }
    for (int by = c.y - radius; by <= c.y + radius; ++by) {
      if (by < 0 || by >= ny_) continue;
      for (int bx = c.x - radius; bx <= c.x + radius; ++bx) {
        if (bx < 0 || bx >= nx_) continue;
        if (std::max(std::abs(bx - c.x), std::abs(by - c.y)) != radius) {
          continue;
        }
        for (uint32_t i : Bucket(bx, by)) {
          double d2 = geom::DistanceSquared(q, points_[i]);
          if (d2 < best_d2 || (d2 == best_d2 && i < best)) {
            best_d2 = d2;
            best = i;
          }
        }
      }
    }
  }
  return best;
}

std::vector<uint32_t> PointGridIndex::WithinRadius(const geom::Point& q,
                                                   double radius) const {
  std::vector<uint32_t> out;
  if (points_.empty() || radius < 0.0) return out;
  CellCoord lo = CellOf({q.x - radius, q.y - radius});
  CellCoord hi = CellOf({q.x + radius, q.y + radius});
  double r2 = radius * radius;
  for (int by = lo.y; by <= hi.y; ++by) {
    for (int bx = lo.x; bx <= hi.x; ++bx) {
      for (uint32_t i : Bucket(bx, by)) {
        if (geom::DistanceSquared(q, points_[i]) <= r2) out.push_back(i);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace geoalign::spatial
