#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

namespace geoalign::spatial {

RTree::RTree(const std::vector<geom::BBox>& boxes,
             size_t max_entries_per_node) {
  item_count_ = boxes.size();
  item_boxes_ = boxes;
  if (boxes.empty()) return;
  size_t cap = std::max<size_t>(2, max_entries_per_node);

  // STR packing: sort by center-x, slice into vertical strips, sort
  // each strip by center-y, chunk into leaves.
  std::vector<uint32_t> order(boxes.size());
  for (uint32_t i = 0; i < boxes.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return boxes[a].Center().x < boxes[b].Center().x;
  });

  size_t n = boxes.size();
  size_t leaf_count = (n + cap - 1) / cap;
  size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  size_t per_strip = (n + strips - 1) / strips;

  items_.reserve(n);
  // Current level under construction: node indices.
  std::vector<Node> level_nodes;
  for (size_t s = 0; s < strips; ++s) {
    size_t begin = s * per_strip;
    if (begin >= n) break;
    size_t end = std::min(begin + per_strip, n);
    std::sort(order.begin() + begin, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                return boxes[a].Center().y < boxes[b].Center().y;
              });
    for (size_t i = begin; i < end; i += cap) {
      Node leaf;
      leaf.leaf = true;
      leaf.first = static_cast<uint32_t>(items_.size());
      size_t chunk_end = std::min(i + cap, end);
      for (size_t k = i; k < chunk_end; ++k) {
        items_.push_back(order[k]);
        leaf.box.Expand(boxes[order[k]]);
      }
      leaf.count = static_cast<uint32_t>(chunk_end - i);
      level_nodes.push_back(leaf);
    }
  }
  height_ = 1;

  // Pack upper levels until a single root remains. Nodes are appended
  // level by level; children of each internal node are contiguous.
  // We build bottom-up into a temporary list, then reverse levels so
  // the root lands at index 0.
  std::vector<std::vector<Node>> levels;
  levels.push_back(std::move(level_nodes));
  while (levels.back().size() > 1) {
    const std::vector<Node>& below = levels.back();
    std::vector<Node> above;
    for (size_t i = 0; i < below.size(); i += cap) {
      Node internal;
      internal.leaf = false;
      internal.first = static_cast<uint32_t>(i);
      internal.count =
          static_cast<uint32_t>(std::min(cap, below.size() - i));
      for (uint32_t k = 0; k < internal.count; ++k) {
        internal.box.Expand(below[i + k].box);
      }
      above.push_back(internal);
    }
    levels.push_back(std::move(above));
    ++height_;
  }

  // Flatten: root level first. Child indices are offset by the start
  // of the level below.
  nodes_.clear();
  size_t offset = 0;
  for (size_t li = levels.size(); li-- > 0;) {
    offset += levels[li].size();
  }
  nodes_.reserve(offset);
  std::vector<size_t> level_start(levels.size());
  size_t pos = 0;
  for (size_t li = levels.size(); li-- > 0;) {
    level_start[li] = pos;
    pos += levels[li].size();
  }
  nodes_.resize(pos);
  for (size_t li = levels.size(); li-- > 0;) {
    for (size_t k = 0; k < levels[li].size(); ++k) {
      Node node = levels[li][k];
      if (!node.leaf) {
        node.first += static_cast<uint32_t>(level_start[li - 1]);
      }
      nodes_[level_start[li] + k] = node;
    }
  }
}

void RTree::VisitNode(uint32_t node_idx, const geom::BBox& query,
                      const std::function<bool(uint32_t)>& fn,
                      bool* stop) const {
  const Node& node = nodes_[node_idx];
  if (*stop || !node.box.Intersects(query)) return;
  if (node.leaf) {
    for (uint32_t k = 0; k < node.count; ++k) {
      uint32_t item = items_[node.first + k];
      if (item_boxes_[item].Intersects(query)) {
        if (!fn(item)) {
          *stop = true;
          return;
        }
      }
    }
    return;
  }
  for (uint32_t k = 0; k < node.count; ++k) {
    VisitNode(node.first + k, query, fn, stop);
    if (*stop) return;
  }
}

void RTree::Visit(const geom::BBox& query,
                  const std::function<bool(uint32_t)>& fn) const {
  if (nodes_.empty()) return;
  bool stop = false;
  VisitNode(0, query, fn, &stop);
}

std::vector<uint32_t> RTree::Query(const geom::BBox& query) const {
  std::vector<uint32_t> out;
  Query(query, &out);
  return out;
}

void RTree::Query(const geom::BBox& query, std::vector<uint32_t>* out) const {
  out->clear();
  Visit(query, [out](uint32_t id) {
    out->push_back(id);
    return true;
  });
}

std::vector<uint32_t> RTree::QueryPoint(const geom::Point& p) const {
  return Query(geom::BBox(p.x, p.y, p.x, p.y));
}

void RTree::QueryPoint(const geom::Point& p,
                       std::vector<uint32_t>* out) const {
  Query(geom::BBox(p.x, p.y, p.x, p.y), out);
}

void RTree::JoinNodes(const RTree& other, uint32_t ni, uint32_t nj,
                      std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  const Node& na = nodes_[ni];
  const Node& nb = other.nodes_[nj];
  if (!na.box.Intersects(nb.box)) return;
  if (na.leaf && nb.leaf) {
    for (uint32_t k = 0; k < na.count; ++k) {
      uint32_t item_a = items_[na.first + k];
      const geom::BBox& box_a = item_boxes_[item_a];
      if (!box_a.Intersects(nb.box)) continue;
      for (uint32_t l = 0; l < nb.count; ++l) {
        uint32_t item_b = other.items_[nb.first + l];
        if (box_a.Intersects(other.item_boxes_[item_b])) {
          out->emplace_back(item_a, item_b);
        }
      }
    }
    return;
  }
  // Testing child boxes here, before recursing, skips the call for
  // subtree pairs that cannot emit; the surviving calls run in the
  // same order, so the emitted pair sequence is unchanged.
  if (na.leaf) {
    for (uint32_t l = 0; l < nb.count; ++l) {
      if (na.box.Intersects(other.nodes_[nb.first + l].box)) {
        JoinNodes(other, ni, nb.first + l, out);
      }
    }
    return;
  }
  if (nb.leaf) {
    for (uint32_t k = 0; k < na.count; ++k) {
      if (nodes_[na.first + k].box.Intersects(nb.box)) {
        JoinNodes(other, na.first + k, nj, out);
      }
    }
    return;
  }
  for (uint32_t k = 0; k < na.count; ++k) {
    const geom::BBox& child_a = nodes_[na.first + k].box;
    if (!child_a.Intersects(nb.box)) continue;
    for (uint32_t l = 0; l < nb.count; ++l) {
      if (child_a.Intersects(other.nodes_[nb.first + l].box)) {
        JoinNodes(other, na.first + k, nb.first + l, out);
      }
    }
  }
}

void RTree::DualTreeJoin(
    const RTree& other,
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  out->clear();
  if (nodes_.empty() || other.nodes_.empty()) return;
  JoinNodes(other, 0, 0, out);
}

}  // namespace geoalign::spatial
