#ifndef GEOALIGN_SPATIAL_RTREE_H_
#define GEOALIGN_SPATIAL_RTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "geom/bbox.h"

namespace geoalign::spatial {

/// Static R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive
/// (STR) packing. Built once over a unit system's bounding boxes and
/// queried for candidate intersecting pairs during overlays.
class RTree {
 public:
  /// Bulk-loads the boxes; item i keeps identifier i. Empty input
  /// builds an empty (always-miss) tree.
  explicit RTree(const std::vector<geom::BBox>& boxes,
                 size_t max_entries_per_node = 16);

  /// Identifiers of items whose box intersects `query`.
  std::vector<uint32_t> Query(const geom::BBox& query) const;

  /// Buffer-reuse overload: clears `*out` and appends the hits,
  /// reusing its capacity — repeated queries through one buffer stop
  /// paying one vector allocation per call. Same hits in the same
  /// (deterministic, tree-order) sequence as the returning overload.
  void Query(const geom::BBox& query, std::vector<uint32_t>* out) const;

  /// Identifiers of items whose box contains `p`.
  std::vector<uint32_t> QueryPoint(const geom::Point& p) const;

  /// Buffer-reuse overload of QueryPoint (see Query above).
  void QueryPoint(const geom::Point& p, std::vector<uint32_t>* out) const;

  /// Simultaneous dual-tree candidate join: appends to `*out` (after
  /// clearing it) every (this item, other item) pair whose boxes
  /// intersect, by descending both trees at once — internal-node
  /// rejects prune whole subtree×subtree blocks, and no per-item
  /// query vector is ever materialized. Emission order is a pure
  /// function of the two tree structures (never of the caller's
  /// thread count), so chunking the pair buffer is deterministic.
  void DualTreeJoin(const RTree& other,
                    std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  /// Visits each hit without materializing a vector; `fn` returns
  /// false to stop early.
  void Visit(const geom::BBox& query,
             const std::function<bool(uint32_t)>& fn) const;

  size_t size() const { return item_count_; }

  /// Height of the tree (0 for empty).
  size_t Height() const { return height_; }

 private:
  struct Node {
    geom::BBox box;
    // Children are a contiguous range in nodes_ (internal) or item ids
    // in a contiguous range of items_ (leaf).
    uint32_t first = 0;
    uint32_t count = 0;
    bool leaf = true;
  };

  void VisitNode(uint32_t node_idx, const geom::BBox& query,
                 const std::function<bool(uint32_t)>& fn, bool* stop) const;

  void JoinNodes(const RTree& other, uint32_t ni, uint32_t nj,
                 std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  std::vector<Node> nodes_;      // root is nodes_[0] when non-empty
  std::vector<uint32_t> items_;  // leaf item ids
  std::vector<geom::BBox> item_boxes_;
  size_t item_count_ = 0;
  size_t height_ = 0;
};

}  // namespace geoalign::spatial

#endif  // GEOALIGN_SPATIAL_RTREE_H_
