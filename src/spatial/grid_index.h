#ifndef GEOALIGN_SPATIAL_GRID_INDEX_H_
#define GEOALIGN_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/bbox.h"

namespace geoalign::spatial {

/// Uniform grid over points, for nearest-site assignment and cheap
/// range queries when items are (approximately) evenly distributed.
class PointGridIndex {
 public:
  /// Builds over `points` contained in `bounds`, with roughly
  /// `target_per_cell` items per grid cell.
  PointGridIndex(const std::vector<geom::Point>& points,
                 const geom::BBox& bounds, double target_per_cell = 4.0);

  /// Index of the point nearest to `q` (ties broken by lower index).
  /// Requires a non-empty index.
  uint32_t Nearest(const geom::Point& q) const;

  /// Indices of points within `radius` of `q`.
  std::vector<uint32_t> WithinRadius(const geom::Point& q,
                                     double radius) const;

  size_t size() const { return points_.size(); }

 private:
  struct CellCoord {
    int x;
    int y;
  };
  CellCoord CellOf(const geom::Point& p) const;
  const std::vector<uint32_t>& Bucket(int cx, int cy) const;

  std::vector<geom::Point> points_;
  geom::BBox bounds_;
  double cell_size_ = 1.0;
  int nx_ = 1;
  int ny_ = 1;
  std::vector<std::vector<uint32_t>> buckets_;
};

}  // namespace geoalign::spatial

#endif  // GEOALIGN_SPATIAL_GRID_INDEX_H_
