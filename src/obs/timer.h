#ifndef GEOALIGN_OBS_TIMER_H_
#define GEOALIGN_OBS_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace geoalign::obs {

/// THE clock-source policy: every timing measurement in the tree —
/// stopwatches, span tracing, latency histograms, benchmark harnesses —
/// reads std::chrono::steady_clock through the helpers below. Nothing
/// outside src/obs/ may call a chrono clock directly (enforced by the
/// geoalign-raw-clock lint), so monotonicity and comparability of
/// timestamps are decided in exactly one place.
using Clock = std::chrono::steady_clock;

/// Raw monotonic timestamp in clock ticks. Cheap enough for hot paths;
/// convert with TicksToSeconds/TicksToMicros only at reporting time.
inline int64_t NowTicks() { return Clock::now().time_since_epoch().count(); }

inline double TicksToSeconds(int64_t ticks) {
  return std::chrono::duration<double>(Clock::duration(ticks)).count();
}

inline double TicksToMicros(int64_t ticks) {
  return std::chrono::duration<double, std::micro>(Clock::duration(ticks))
      .count();
}

/// Monotonic wall-clock stopwatch (steady_clock via the policy above).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = NowTicks(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const { return TicksToSeconds(NowTicks() - start_); }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return TicksToMicros(NowTicks() - start_); }

 private:
  int64_t start_ = 0;
};

/// Accumulates named phase timings (e.g. "weight_learning",
/// "disaggregation", "reaggregation") so experiments can report the
/// per-phase breakdown the paper discusses in §4.3.
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase (created on first use).
  void Add(const std::string& phase, double seconds);

  /// Total over all phases.
  double TotalSeconds() const;

  /// Seconds recorded for `phase` (0 if never recorded).
  double Seconds(const std::string& phase) const;

  /// Phase names in insertion order.
  std::vector<std::string> Phases() const;

  void Clear();

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace geoalign::obs

namespace geoalign {
// Historical spellings: Stopwatch/PhaseTimer predate the obs subsystem
// and are used throughout core/bench; keep them reachable unqualified.
using obs::PhaseTimer;
using obs::Stopwatch;
}  // namespace geoalign

#endif  // GEOALIGN_OBS_TIMER_H_
