#include "obs/request_context.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace geoalign::obs {

namespace {

thread_local RequestToken t_current;

/// Process-wide ordinal for generated ids and token seq values.
std::atomic<uint64_t> g_next_seq{1};

/// Fixed in-flight table: one slot per originating RequestScope. The
/// writer publishes `seq` with release order after the id bytes are in
/// place, so a signal-time reader that sees a nonzero seq sees a
/// complete id. Overflow (more than kInFlightSlots concurrent
/// originating scopes) silently drops the registration — identity
/// propagation and span/audit stamping still work, only the dump's
/// in-flight list is capped.
constexpr size_t kInFlightSlots = 64;
struct InFlightSlot {
  std::atomic<uint64_t> seq{0};
  char id[RequestToken::kMaxIdLength + 1] = {0};
};
InFlightSlot g_in_flight[kInFlightSlots];

int ClaimSlot(uint64_t seq, const char* id) {
  for (size_t i = 0; i < kInFlightSlots; ++i) {
    uint64_t expected = 0;
    // Reserve first (seq briefly holds the sentinel ~0 so no reader
    // trusts the id bytes while they are being written).
    if (g_in_flight[i].seq.compare_exchange_strong(
            expected, ~uint64_t{0}, std::memory_order_acquire)) {
      // `id` is always a RequestToken::id buffer, so the full
      // NUL-terminated length is safe to copy.
      std::memcpy(g_in_flight[i].id, id, RequestToken::kMaxIdLength + 1);
      g_in_flight[i].seq.store(seq, std::memory_order_release);
      return static_cast<int>(i);
    }
  }
  return -1;
}

void ReleaseSlot(int slot) {
  if (slot >= 0) {
    g_in_flight[static_cast<size_t>(slot)].seq.store(
        0, std::memory_order_release);
  }
}

}  // namespace

void RequestScope::Establish(std::string_view id, bool claim_slot) {
  prev_ = t_current;
  RequestToken token;
  token.seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  if (id.empty()) {
    std::snprintf(token.id, sizeof(token.id), "req-%llu",
                  static_cast<unsigned long long>(token.seq));
  } else {
    const size_t n = id.size() < RequestToken::kMaxIdLength
                         ? id.size()
                         : RequestToken::kMaxIdLength;
    std::memcpy(token.id, id.data(), n);
    token.id[n] = '\0';
  }
  t_current = token;
  token_ = token;
  if (claim_slot) slot_ = ClaimSlot(token.seq, token.id);
}

RequestScope::RequestScope() { Establish(std::string_view(), true); }

RequestScope::RequestScope(std::string_view id) { Establish(id, true); }

RequestScope::RequestScope(const RequestToken& token) {
  prev_ = t_current;
  t_current = token;
  token_ = token;
}

RequestScope::~RequestScope() {
  ReleaseSlot(slot_);
  t_current = prev_;
}

const char* RequestScope::id() const { return token_.id; }

uint64_t RequestScope::seq() const { return token_.seq; }

const RequestToken& CurrentRequest() { return t_current; }

uint64_t CurrentRequestSeq() { return t_current.seq; }

namespace internal {

size_t SnapshotInFlightRequests(char (*out)[RequestToken::kMaxIdLength + 1],
                                size_t max) {
  size_t n = 0;
  for (size_t i = 0; i < kInFlightSlots && n < max; ++i) {
    const uint64_t seq = g_in_flight[i].seq.load(std::memory_order_acquire);
    if (seq == 0 || seq == ~uint64_t{0}) continue;
    std::memcpy(out[n], g_in_flight[i].id, RequestToken::kMaxIdLength + 1);
    out[n][RequestToken::kMaxIdLength] = '\0';
    ++n;
  }
  return n;
}

}  // namespace internal

}  // namespace geoalign::obs
