#ifndef GEOALIGN_OBS_TELEMETRY_H_
#define GEOALIGN_OBS_TELEMETRY_H_

#include <atomic>
#include <string>

namespace geoalign::obs {

namespace internal {
/// Backing store for the global switch; use Enabled()/SetEnabled().
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// THE global telemetry switch. When false, every counter increment,
/// histogram record, and span capture in the tree short-circuits to a
/// single relaxed atomic load (overhead benchmarked by
/// bench/obs_overhead and documented in docs/observability.md).
/// Telemetry only ever OBSERVES: enabling or disabling it never
/// changes any reduction order or result bit (pinned by
/// tests/obs_test.cc's equivalence check).
///
/// The initial state comes from the GEOALIGN_TELEMETRY environment
/// variable: "0", "off" or "false" start disabled; anything else
/// (including unset) starts enabled.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the global switch at runtime. Events already recorded are
/// kept; new ones are dropped while disabled.
void SetEnabled(bool enabled);

/// Serializes the global metrics registry and writes it to `path` as
/// JSON. On failure returns false and, when non-null, fills `error`.
bool WriteMetricsJsonFile(const std::string& path, std::string* error);

/// Exports the global trace recorder as Chrome trace-event JSON
/// (loadable in Perfetto / chrome://tracing) and writes it to `path`.
bool WriteTraceJsonFile(const std::string& path, std::string* error);

/// Human-readable end-of-run summary of the global registry: counters,
/// gauges, and histogram count/mean/p50/p99, one metric per line.
std::string SummaryTable();

}  // namespace geoalign::obs

#endif  // GEOALIGN_OBS_TELEMETRY_H_
