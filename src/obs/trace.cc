#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace geoalign::obs {

namespace {

/// Ring wrap-around losses, surfaced in metric snapshots so the 8192-
/// span per-thread cap never truncates silently. Lock order: taken
/// (via the registry mutex, first call only) under a TraceBuffer's
/// mu_; the registry mutex is a leaf, so no cycle.
Counter& DroppedSpansCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("trace.dropped_spans");
  return counter;
}

}  // namespace

void TraceBuffer::Record(const SpanEvent& event) {
  common::MutexLock lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest event (next_ chases the logical head).
  ring_[next_] = event;
  next_ = (next_ + 1) % kCapacity;
  ++dropped_;
  DroppedSpansCounter().Add();
}

void TraceBuffer::CollectInto(std::vector<SpanEvent>& out) const {
  common::MutexLock lock(mu_);
  // Oldest-first: [next_, end) wrapped before [0, next_) once full.
  for (size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
}

uint64_t TraceBuffer::dropped() const {
  common::MutexLock lock(mu_);
  return dropped_;
}

void TraceBuffer::Clear() {
  common::MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    // Register the drop counter eagerly so snapshots show it at 0
    // before (and whether or not) any ring ever wraps.
    DroppedSpansCounter();
    return new TraceRecorder();
  }();
  return *recorder;
}

TraceBuffer& TraceRecorder::LocalBuffer() {
  thread_local std::shared_ptr<TraceBuffer> local;
  if (local == nullptr) {
    common::MutexLock lock(mu_);
    local = std::make_shared<TraceBuffer>(
        static_cast<uint32_t>(buffers_.size()));
    buffers_.push_back(local);
  }
  return *local;
}

void TraceRecorder::Record(const SpanEvent& event) {
  TraceBuffer& buffer = LocalBuffer();
  SpanEvent stamped = event;
  stamped.thread_index = buffer.thread_index();
  buffer.Record(stamped);
}

std::vector<SpanEvent> TraceRecorder::Collect() const {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    common::MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> events;
  for (const std::shared_ptr<TraceBuffer>& b : buffers) {
    b->CollectInto(events);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_ticks < b.start_ticks;
                   });
  return events;
}

uint64_t TraceRecorder::TotalDropped() const {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    common::MutexLock lock(mu_);
    buffers = buffers_;
  }
  uint64_t total = 0;
  for (const std::shared_ptr<TraceBuffer>& b : buffers) total += b->dropped();
  return total;
}

void TraceRecorder::Clear() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    common::MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const std::shared_ptr<TraceBuffer>& b : buffers) b->Clear();
}

std::string TraceRecorder::ExportChromeTrace() const {
  std::vector<SpanEvent> events = Collect();
  int64_t base = events.empty() ? 0 : events.front().start_ticks;

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    double ts = TicksToMicros(e.start_ticks - base);
    double dur = TicksToMicros(e.end_ticks - e.start_ticks);
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"geoalign\", "
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"depth\": %u, \"req\": %llu}}",
                  i == 0 ? "" : ",", e.name, ts, dur, e.thread_index,
                  e.depth,
                  static_cast<unsigned long long>(e.request_seq));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

namespace internal {

uint32_t& ThreadSpanDepth() {
  thread_local uint32_t depth = 0;
  return depth;
}

}  // namespace internal

}  // namespace geoalign::obs
