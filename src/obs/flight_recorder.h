#ifndef GEOALIGN_OBS_FLIGHT_RECORDER_H_
#define GEOALIGN_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/request_context.h"

// Always-on flight recorder: a fixed-size, lock-free ring of the most
// recent execute audit records plus the last rendered metrics
// snapshot, dumped as JSONL to a file
//
//   - on demand (DumpToFile / geoalign_flight_recorder_dump /
//     geoalign_cli --flight-recorder-out),
//   - on GEOALIGN_CHECK / GEOALIGN_LOG(Fatal) failure (NotifyFatal,
//     called from common/logging.cc just before abort), and
//   - from a fatal-signal handler (InstallCrashHandlers), using only
//     async-signal-safe writes.
//
// Unlike metrics and spans, recording is NOT gated on obs::Enabled():
// the recorder exists precisely for the runs nobody thought to
// instrument. One Record is a seqlock-stamped struct copy (~tens of
// ns per plan execute, which itself costs microseconds to seconds).
//
// Dump format: one JSON object per line.
//   {"type":"header","reason":"demand|fatal|signal","in_flight":[ids]}
//   {"type":"audit","seq":N,"request_id":"...","request_seq":N,
//    "fingerprint":"0x...","mode":"fused|materializing|panel",
//    "panel_width":N,"isa":N,"rows":N,"latency_us":N,"zero_rows":N,
//    "fallback":N,"ok":0|1}
//   {"type":"metrics", ...one-line MetricsSnapshot JSON...}

namespace geoalign::obs {

/// One execute's worth of audit context. Plain data, fixed size, so a
/// record can be copied out of the ring under a seqlock and formatted
/// from a signal handler. `request_*`, `seq` are stamped by Record.
struct AuditRecord {
  uint64_t seq = 0;          ///< monotonically increasing record ordinal
  uint64_t request_seq = 0;  ///< RequestToken::seq active at Record time
  char request_id[RequestToken::kMaxIdLength + 1] = {0};
  uint64_t plan_fingerprint = 0;
  char mode[16] = {0};     ///< "fused", "materializing", or "panel"
  uint32_t panel_width = 0;  ///< 0 outside the panel lane
  uint32_t isa = 0;          ///< sparse::simd ISA ordinal (panel lane)
  uint64_t rows = 0;         ///< source units touched
  uint64_t latency_us = 0;
  uint64_t zero_rows = 0;
  uint32_t fallback = 0;  ///< DM fallback rebuilds triggered
  uint32_t ok = 1;
};

/// Fixed-capacity ring of AuditRecords. Writers claim slots with one
/// fetch_add and publish with a per-slot seqlock stamp; readers (and
/// the signal-time dumper) detect torn slots and skip them, so neither
/// side ever blocks.
class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 256;

  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps `record` with the next ordinal and the current thread's
  /// request identity, then publishes it into the ring.
  void Record(AuditRecord record);

  /// Consistent copies of the currently readable records, oldest
  /// first. Skips slots being written at read time.
  std::vector<AuditRecord> Collect() const;

  /// Total records ever published (>= Collect().size()).
  uint64_t TotalRecorded() const;

  /// Renders the full JSONL dump (header with `reason`, audit lines,
  /// fresh metrics line) and writes it to `path`. Not signal-safe.
  bool DumpToFile(const std::string& path, const char* reason,
                  std::string* error) const;

  /// Async-signal-safe dump to an open descriptor: header, audit
  /// lines, and the cached metrics line (last one rendered by
  /// DumpToFile), using only write(2) and stack buffers.
  void DumpToFdSignalSafe(int fd) const;

  /// Drops all records (test isolation).
  void Clear();

 private:
  struct Slot {
    /// 0 = empty; odd = write in progress; even nonzero = published.
    std::atomic<uint64_t> stamp{0};
    AuditRecord record;
  };

  bool ReadSlot(size_t i, AuditRecord* out) const;

  Slot slots_[kCapacity];
  std::atomic<uint64_t> next_{0};
};

/// Configures where NotifyFatal / crash handlers dump (also read from
/// the GEOALIGN_FLIGHT_RECORDER environment variable at first use).
/// Empty disables fatal/crash dumps. Stored in a fixed buffer so the
/// signal path never allocates.
void SetFlightRecorderDumpPath(std::string_view path);
/// The configured dump path ("" when none).
const char* FlightRecorderDumpPath();

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT handlers that dump
/// the recorder to the configured path, then re-raise with the default
/// disposition. Idempotent.
void InstallCrashHandlers();

/// Called by the logging layer on a fatal message, before abort().
/// Dumps once to the configured path (no-op when none is set).
void NotifyFatal();

}  // namespace geoalign::obs

#endif  // GEOALIGN_OBS_FLIGHT_RECORDER_H_
