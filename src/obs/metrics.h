#ifndef GEOALIGN_OBS_METRICS_H_
#define GEOALIGN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

// Header-only, standard-library-only shim: using it keeps obs link-
// free of geoalign_common, preserving the obs-below-common layering.
#include "common/thread_annotations.h"
#include "obs/telemetry.h"

namespace geoalign::obs {

/// Monotonic counter, sharded across cache-line-padded atomics so
/// concurrent increments from pool workers never contend on one line.
/// Totals are exact: every Add lands in exactly one shard and Value()
/// sums all shards (tests/obs_test.cc hammers this under TSan with
/// exact-total assertions). All operations are lock-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` (default 1). No-op while telemetry is disabled.
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Exact sum over all shards.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard (test/benchmark isolation, not thread-safe
  /// against concurrent Add with exactness guarantees).
  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Stable per-thread shard slot (assigned round-robin on first use).
  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Instantaneous signed value (queue depths, pool sizes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  // Gauge::Add is void; the name-level lint maps the bare call to the
  // fallible sparse::Add, hence the suppression.
  // NOLINTNEXTLINE(geoalign-discarded-status)
  void Sub(int64_t n) { Add(-n); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: cumulative-free per-bucket atomic counts
/// plus a (relaxed, unordered) double sum. Bucket upper bounds are
/// fixed at registration; values land in the first bucket whose bound
/// is >= value, or the implicit overflow bucket. Counts are exact
/// under concurrency; the sum is subject to floating-point
/// non-associativity across interleavings (report-only).
///
/// There is deliberately no separate total-count atomic: every Record
/// lands in exactly one bucket, so Count() is the sum of the bucket
/// counts. That makes the exporter invariant `_count == Σ _bucket`
/// hold by construction for any snapshot, including one taken while
/// writers are mid-Record (tests/obs_export_test.cc hammers this).
class Histogram {
 public:
  /// Default bounds: a 1-2-5 exponential ladder from 1 to 5e7,
  /// suitable both for latencies in microseconds (1 µs .. 50 s) and
  /// for small cardinalities (columns per batch).
  static const std::vector<double>& DefaultBounds();

  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. No-op while telemetry is disabled.
  void Record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Exact sum of the per-bucket counts (see class comment).
  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  /// One count per bound, plus the trailing overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copies for export; `bucket_counts` has one entry per
/// bound plus the overflow bucket.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};
struct HistogramSnapshot {
  std::string name;
  /// Always equals the sum of `bucket_counts` (derived from the same
  /// bucket reads), so exporters can rely on `_count == Σ _bucket`.
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Bucket-upper-bound estimate of the q-quantile (q in [0, 1]).
  double Quantile(double q) const;
};

/// One coherent snapshot of the whole registry, name-sorted.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// `name value` per line, histograms as name_count/_sum/_mean/_p50/_p99.
  std::string ToText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
};

/// Process-wide metric registry. Metrics are created on first access
/// and live forever at a stable address, so hot call sites pay the
/// name lookup once:
///
///   static obs::Counter& hits =
///       obs::MetricsRegistry::Global().GetCounter("plan_cache.hits");
///   hits.Add();
///
/// Lookups take a mutex; increments on the returned objects are
/// lock-free (see Counter/Gauge/Histogram). The metric name catalog
/// lives in docs/observability.md — new metrics should be added there.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` applies on first registration only (empty = DefaultBounds).
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric, keeping registrations (and thus
  /// all cached references) valid. Test/benchmark isolation only.
  void ResetAll();

 private:
  /// Guards the three registration maps. Leaf lock: held only for the
  /// map probe/emplace and for snapshotting; increments on returned
  /// metrics are lock-free and never touch mu_. The unique_ptr
  /// indirection is what makes handing out unguarded references
  /// sound: a metric's address never moves after registration.
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GEOALIGN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      GEOALIGN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GEOALIGN_GUARDED_BY(mu_);
};

}  // namespace geoalign::obs

#endif  // GEOALIGN_OBS_METRICS_H_
