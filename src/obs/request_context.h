#ifndef GEOALIGN_OBS_REQUEST_CONTEXT_H_
#define GEOALIGN_OBS_REQUEST_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <string_view>

// Request-scoped context: a per-thread request identity that execute
// paths stamp onto trace spans (SpanEvent::request_seq) and flight-
// recorder audit records (AuditRecord::request_id), so one slow or
// crashing request can be attributed end to end.
//
// The context is ALWAYS on — unlike metrics/spans it is not gated on
// obs::Enabled(), because the flight recorder (obs/flight_recorder.h)
// must be able to name in-flight requests in a post-mortem dump even
// when telemetry is off. Establishing a scope is two thread-local
// stores plus (for originating scopes) one slot claim; ~tens of ns.
//
// Standard-library-only: this header sits below geoalign_common in
// the layering, like the rest of src/obs/.

namespace geoalign::obs {

/// Plain-data handle to an active request, safe to copy across
/// threads. `seq` is a process-unique nonzero ordinal (0 = no
/// request); `id` is the NUL-terminated human-readable request id.
struct RequestToken {
  static constexpr size_t kMaxIdLength = 55;
  uint64_t seq = 0;
  char id[kMaxIdLength + 1] = {0};
};

/// RAII request scope. While alive, CurrentRequest() on this thread
/// returns its token; the previous token is restored on destruction,
/// so scopes nest. Three ways to open one:
///
///   obs::RequestScope scope;              // generated id "req-<n>"
///   obs::RequestScope scope("tenant-42"); // caller-supplied id
///   obs::RequestScope scope(token);       // re-establish a request on
///                                         // a pool worker thread
///
/// Originating scopes (the first two forms) additionally register the
/// request in a fixed-size in-flight table that the flight recorder
/// reads — signal-safely — when dumping. The token form does not: it
/// only propagates identity, so a fan-out across N workers still shows
/// as one in-flight request.
class RequestScope {
 public:
  /// Opens a scope with a generated id ("req-<seq>").
  RequestScope();
  /// Opens a scope with a caller-supplied id (truncated to
  /// RequestToken::kMaxIdLength bytes; empty means "generate one").
  explicit RequestScope(std::string_view id);
  /// Re-establishes an existing request on this thread (cross-thread
  /// propagation into pool workers). A zero token is a no-op scope.
  explicit RequestScope(const RequestToken& token);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  const char* id() const;
  uint64_t seq() const;

 private:
  void Establish(std::string_view id, bool claim_slot);

  RequestToken prev_;
  RequestToken token_;
  int slot_ = -1;  ///< in-flight table slot, -1 when none claimed
};

/// The request active on this thread (seq == 0 when none).
const RequestToken& CurrentRequest();
/// Shorthand for CurrentRequest().seq.
uint64_t CurrentRequestSeq();

/// Opens a generated-id RequestScope only if this thread has none —
/// serving entry points (RealignMany, BatchCrosswalk::Run, the CLI)
/// use this so audit records always carry an id while caller-supplied
/// scopes still win.
class EnsureRequestScope {
 public:
  EnsureRequestScope() {
    if (CurrentRequestSeq() == 0) scope_.emplace();
  }

 private:
  std::optional<RequestScope> scope_;
};

namespace internal {

/// Copies the ids of currently in-flight (originating) requests into
/// `out[0..max)` as NUL-terminated strings of at most
/// RequestToken::kMaxIdLength + 1 bytes each; returns how many were
/// written. Async-signal-safe: plain atomic loads and byte copies.
size_t SnapshotInFlightRequests(char (*out)[RequestToken::kMaxIdLength + 1],
                                size_t max);

}  // namespace internal

}  // namespace geoalign::obs

#endif  // GEOALIGN_OBS_REQUEST_CONTEXT_H_
