#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/metrics.h"

namespace geoalign::obs {

namespace {

/// Set once the fatal/crash dump has been written; the GEOALIGN_CHECK
/// path (NotifyFatal) aborts into SIGABRT, whose handler would
/// otherwise truncate the just-written dump.
std::atomic<bool> g_fatal_dumped{false};

/// Fixed-buffer dump path so the signal path never allocates.
char g_dump_path[512] = {0};

/// Thread-safe one-time env read via a function-local static.
void InitPathFromEnvOnce() {
  static const bool initialized = [] {
    const char* env = std::getenv("GEOALIGN_FLIGHT_RECORDER");
    if (env != nullptr) {
      std::strncpy(g_dump_path, env, sizeof(g_dump_path) - 1);
      g_dump_path[sizeof(g_dump_path) - 1] = '\0';
    }
    return true;
  }();
  (void)initialized;
}

/// The last metrics line rendered by DumpToFile, kept for the signal
/// path (which cannot snapshot the registry). Previous lines are
/// intentionally leaked: dumps are rare and a signal-time reader may
/// still hold the old pointer.
std::atomic<const char*> g_metrics_cache{nullptr};

void AppendEscapedJson(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void AppendHex(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

void AppendAuditJson(std::string& out, const AuditRecord& r) {
  out += "{\"type\":\"audit\",\"seq\":" + std::to_string(r.seq);
  out += ",\"request_id\":";
  AppendEscapedJson(out, r.request_id);
  out += ",\"request_seq\":" + std::to_string(r.request_seq);
  out += ",\"fingerprint\":\"";
  AppendHex(out, r.plan_fingerprint);
  out += "\",\"mode\":";
  AppendEscapedJson(out, r.mode);
  out += ",\"panel_width\":" + std::to_string(r.panel_width);
  out += ",\"isa\":" + std::to_string(r.isa);
  out += ",\"rows\":" + std::to_string(r.rows);
  out += ",\"latency_us\":" + std::to_string(r.latency_us);
  out += ",\"zero_rows\":" + std::to_string(r.zero_rows);
  out += ",\"fallback\":" + std::to_string(r.fallback);
  out += ",\"ok\":" + std::to_string(r.ok);
  out += "}\n";
}

/// Minimal async-signal-safe line writer: stack buffer + write(2).
/// Formatting is hand-rolled (snprintf is not on the signal-safe
/// list on every libc).
struct SigWriter {
  int fd;
  char buf[768];
  size_t len = 0;

  explicit SigWriter(int fd_in) : fd(fd_in) {}

  void Flush() {
    size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    len = 0;
  }
  void Raw(const char* s, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (len == sizeof(buf)) Flush();
      buf[len++] = s[i];
    }
  }
  void Str(const char* s) { Raw(s, std::strlen(s)); }
  void U64(uint64_t v) {
    char tmp[24];
    size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Raw(&tmp[--n], 1);
  }
  void Hex(uint64_t v) {
    Str("0x");
    char tmp[20];
    size_t n = 0;
    do {
      const uint64_t d = v & 0xF;
      tmp[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + (d - 10));
      v >>= 4;
    } while (v != 0);
    while (n > 0) Raw(&tmp[--n], 1);
  }
  /// Quoted string, dropping characters that would need escaping
  /// (request ids are expected to be plain tokens).
  void QuotedId(const char* s) {
    Raw("\"", 1);
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        continue;
      }
      Raw(&c, 1);
    }
    Raw("\"", 1);
  }
};

void WriteAuditSignalSafe(SigWriter& w, const AuditRecord& r) {
  w.Str("{\"type\":\"audit\",\"seq\":");
  w.U64(r.seq);
  w.Str(",\"request_id\":");
  w.QuotedId(r.request_id);
  w.Str(",\"request_seq\":");
  w.U64(r.request_seq);
  w.Str(",\"fingerprint\":\"");
  w.Hex(r.plan_fingerprint);
  w.Str("\",\"mode\":");
  w.QuotedId(r.mode);
  w.Str(",\"panel_width\":");
  w.U64(r.panel_width);
  w.Str(",\"isa\":");
  w.U64(r.isa);
  w.Str(",\"rows\":");
  w.U64(r.rows);
  w.Str(",\"latency_us\":");
  w.U64(r.latency_us);
  w.Str(",\"zero_rows\":");
  w.U64(r.zero_rows);
  w.Str(",\"fallback\":");
  w.U64(r.fallback);
  w.Str(",\"ok\":");
  w.U64(r.ok);
  w.Str("}\n");
}

void CrashHandler(int sig) {
  if (!g_fatal_dumped.exchange(true)) {
    const char* path = g_dump_path;  // initialized before installation
    if (path[0] != '\0') {
      const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        FlightRecorder::Global().DumpToFdSignalSafe(fd);
        ::close(fd);
      }
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(AuditRecord record) {
  const uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
  record.seq = i + 1;
  const RequestToken& req = CurrentRequest();
  record.request_seq = req.seq;
  std::memcpy(record.request_id, req.id, sizeof(record.request_id));
  Slot& slot = slots_[i % kCapacity];
  // Per-slot seqlock: odd stamp while the record bytes are in flux,
  // even (and derived from the ordinal, so monotonically increasing)
  // once published.
  slot.stamp.store(2 * i + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  slot.record = record;
  std::atomic_thread_fence(std::memory_order_release);
  slot.stamp.store(2 * i + 2, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(size_t i, AuditRecord* out) const {
  const uint64_t s1 = slots_[i].stamp.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1) != 0) return false;
  std::atomic_thread_fence(std::memory_order_acquire);
  *out = slots_[i].record;
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t s2 = slots_[i].stamp.load(std::memory_order_acquire);
  return s1 == s2;
}

std::vector<AuditRecord> FlightRecorder::Collect() const {
  std::vector<AuditRecord> out;
  out.reserve(kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    AuditRecord r;
    if (ReadSlot(i, &r)) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const AuditRecord& a, const AuditRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t FlightRecorder::TotalRecorded() const {
  return next_.load(std::memory_order_relaxed);
}

bool FlightRecorder::DumpToFile(const std::string& path, const char* reason,
                                std::string* error) const {
  std::string out = "{\"type\":\"header\",\"geoalign_flight_recorder\":1";
  out += ",\"reason\":";
  AppendEscapedJson(out, reason);
  out += ",\"total_recorded\":" + std::to_string(TotalRecorded());
  out += ",\"in_flight\":[";
  char ids[16][RequestToken::kMaxIdLength + 1];
  const size_t n = internal::SnapshotInFlightRequests(ids, 16);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    AppendEscapedJson(out, ids[i]);
  }
  out += "]}\n";

  for (const AuditRecord& r : Collect()) AppendAuditJson(out, r);

  std::string metrics_line = "{\"type\":\"metrics\",\"snapshot\":";
  metrics_line += ToJsonLine(MetricsRegistry::Global().Snapshot());
  metrics_line += "}\n";
  out += metrics_line;

  // Refresh the signal path's cached metrics line (the old line is
  // leaked on purpose; see g_metrics_cache).
  char* cached = new char[metrics_line.size() + 1];
  std::memcpy(cached, metrics_line.c_str(), metrics_line.size() + 1);
  g_metrics_cache.store(cached, std::memory_order_release);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = std::fclose(f) == 0 && written == out.size();
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

void FlightRecorder::DumpToFdSignalSafe(int fd) const {
  SigWriter w(fd);
  w.Str("{\"type\":\"header\",\"geoalign_flight_recorder\":1");
  w.Str(",\"reason\":\"signal\",\"total_recorded\":");
  w.U64(TotalRecorded());
  w.Str(",\"in_flight\":[");
  char ids[16][RequestToken::kMaxIdLength + 1];
  const size_t n = internal::SnapshotInFlightRequests(ids, 16);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) w.Str(",");
    w.QuotedId(ids[i]);
  }
  w.Str("]}\n");

  // One pass in seq order would need a sort; dump slots oldest-ish
  // first instead: slot (next % capacity) onward is the oldest when
  // the ring has wrapped.
  const uint64_t next = next_.load(std::memory_order_relaxed);
  for (size_t k = 0; k < kCapacity; ++k) {
    const size_t i = (next + k) % kCapacity;
    AuditRecord r;
    if (ReadSlot(i, &r)) WriteAuditSignalSafe(w, r);
  }

  const char* metrics = g_metrics_cache.load(std::memory_order_acquire);
  if (metrics != nullptr) w.Str(metrics);
  w.Flush();
}

void FlightRecorder::Clear() {
  for (Slot& s : slots_) s.stamp.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
}

void SetFlightRecorderDumpPath(std::string_view path) {
  InitPathFromEnvOnce();
  const size_t n =
      path.size() < sizeof(g_dump_path) - 1 ? path.size()
                                            : sizeof(g_dump_path) - 1;
  std::memcpy(g_dump_path, path.data(), n);
  g_dump_path[n] = '\0';
}

const char* FlightRecorderDumpPath() {
  InitPathFromEnvOnce();
  return g_dump_path;
}

void InstallCrashHandlers() {
  InitPathFromEnvOnce();
  static const bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = CrashHandler;
    sigemptyset(&action.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
      sigaction(sig, &action, nullptr);
    }
    return true;
  }();
  (void)installed;
}

void NotifyFatal() {
  if (g_fatal_dumped.exchange(true)) return;
  const char* path = FlightRecorderDumpPath();
  if (path[0] == '\0') return;
  std::string err;
  // Best-effort: the process is about to abort, so the error (if any)
  // has nowhere to go.
  (void)FlightRecorder::Global().DumpToFile(path, "fatal", &err);
}

}  // namespace geoalign::obs
