#ifndef GEOALIGN_OBS_EXPORT_H_
#define GEOALIGN_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

// The one metrics exposition writer. Everything that serializes a
// MetricsSnapshot for consumption outside the process — the CLI, the
// C ABI, the flight recorder, the future geoalignd /metrics endpoint —
// goes through FormatMetricsSnapshot / WriteMetricsFile. Calling the
// snapshot's ToText/ToJson directly outside src/obs/ is forbidden by
// the geoalign-metrics-export lint rule (tools/geoalign_lint.py).

namespace geoalign::obs {

enum class MetricsFormat {
  kPrometheus,  ///< Prometheus text exposition format 0.0.4
  kJson,        ///< MetricsSnapshot::ToJson
  kText,        ///< MetricsSnapshot::ToText ("name value" lines)
};

/// Parses "prom"/"prometheus", "json", "text" (case-sensitive).
/// Returns false and leaves `*out` untouched on anything else.
bool ParseMetricsFormat(std::string_view name, MetricsFormat* out);

/// Renders the snapshot in Prometheus text exposition format:
/// `# HELP` / `# TYPE` lines per metric, sanitized names (dots and
/// other invalid characters become `_`, everything prefixed
/// `geoalign_`; the HELP text preserves the original dotted name),
/// counters and gauges as single samples, histograms as CUMULATIVE
/// `_bucket{le="..."}` samples over the registration bounds plus
/// `le="+Inf"`, then `_sum` and `_count`. `_count` always equals the
/// `+Inf` bucket (see HistogramSnapshot::count).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// One-line (no newline anywhere) JSON rendering of the snapshot,
/// used for the flight recorder's cached-metrics line.
std::string ToJsonLine(const MetricsSnapshot& snapshot);

/// Renders `snapshot` in the requested format.
std::string FormatMetricsSnapshot(const MetricsSnapshot& snapshot,
                                  MetricsFormat format);

/// Snapshots the global registry, renders it in `format`, and writes
/// it to `path`. Returns false and fills `*error` on I/O failure.
bool WriteMetricsFile(const std::string& path, MetricsFormat format,
                      std::string* error);

}  // namespace geoalign::obs

#endif  // GEOALIGN_OBS_EXPORT_H_
