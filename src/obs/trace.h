#ifndef GEOALIGN_OBS_TRACE_H_
#define GEOALIGN_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

// Header-only, standard-library-only shim: using it keeps obs link-
// free of geoalign_common, preserving the obs-below-common layering.
#include "common/thread_annotations.h"
#include "obs/request_context.h"
#include "obs/telemetry.h"
#include "obs/timer.h"

namespace geoalign::obs {

/// One completed span. `name` must point at a string with static
/// storage duration (the GEOALIGN_TRACE_SPAN macro passes literals).
struct SpanEvent {
  const char* name = nullptr;
  int64_t start_ticks = 0;
  int64_t end_ticks = 0;
  uint32_t thread_index = 0;  ///< stable small id, first-use order
  uint32_t depth = 0;         ///< nesting depth at record time (1 = top)
  uint64_t request_seq = 0;   ///< RequestToken::seq at span open (0 = none)
};

/// Bounded per-thread ring buffer of completed spans. Single writer
/// (the owning thread); concurrent readers (export) synchronize on the
/// per-buffer mutex, so recording never contends with other threads'
/// recording — only with an in-flight export.
class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 8192;

  explicit TraceBuffer(uint32_t thread_index)
      : thread_index_(thread_index) {}

  void Record(const SpanEvent& event);

  /// Appends the buffered events (oldest first) to `out`.
  void CollectInto(std::vector<SpanEvent>& out) const;

  uint64_t dropped() const;
  uint32_t thread_index() const { return thread_index_; }
  void Clear();

 private:
  /// Guards the ring state. Leaf lock, per-buffer: recording on the
  /// owning thread only ever contends with an in-flight export, never
  /// with another thread's recording.
  mutable common::Mutex mu_;
  uint32_t thread_index_;  ///< immutable after construction
  std::vector<SpanEvent> ring_
      GEOALIGN_GUARDED_BY(mu_);  ///< grows to kCapacity, then wraps
  size_t next_ GEOALIGN_GUARDED_BY(mu_) = 0;  ///< write cursor once full
  uint64_t dropped_
      GEOALIGN_GUARDED_BY(mu_) = 0;  ///< events overwritten after wrap
};

/// Process-wide trace sink: owns one TraceBuffer per thread that ever
/// recorded a span (buffers outlive their threads so short-lived pool
/// workers' spans survive into the export).
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records into the calling thread's buffer (created on first use).
  void Record(const SpanEvent& event);

  /// All buffered spans across all threads, sorted by start time.
  std::vector<SpanEvent> Collect() const;

  /// Chrome trace-event JSON ("X" complete events, µs timestamps
  /// rebased to the earliest span) — loadable in Perfetto and
  /// chrome://tracing. Always valid JSON, even with zero spans.
  std::string ExportChromeTrace() const;

  /// Total events overwritten by ring wrap-around across all threads.
  uint64_t TotalDropped() const;

  /// Drops all buffered spans (buffers stay registered).
  void Clear();

 private:
  TraceBuffer& LocalBuffer();

  /// Guards buffer registration only. Acquired before any per-buffer
  /// TraceBuffer::mu_ (Collect/Clear copy the registry under this
  /// lock, release it, then take each buffer's lock) — never the
  /// reverse, so the two levels cannot deadlock.
  mutable common::Mutex mu_;
  std::vector<std::shared_ptr<TraceBuffer>> buffers_
      GEOALIGN_GUARDED_BY(mu_);
};

namespace internal {
/// Per-thread span nesting depth for the RAII spans below.
uint32_t& ThreadSpanDepth();
}  // namespace internal

/// RAII timed span; records into the global TraceRecorder on
/// destruction. Inert (two relaxed loads, no clock read) while
/// telemetry is disabled. Use via GEOALIGN_TRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!Enabled()) return;
    name_ = name;
    depth_ = ++internal::ThreadSpanDepth();
    request_seq_ = CurrentRequestSeq();
    start_ticks_ = NowTicks();
  }

  ~ScopedSpan() {
    if (name_ == nullptr) return;
    --internal::ThreadSpanDepth();
    SpanEvent event;
    event.name = name_;
    event.start_ticks = start_ticks_;
    event.end_ticks = NowTicks();
    event.depth = depth_;
    event.request_seq = request_seq_;
    TraceRecorder::Global().Record(event);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ticks_ = 0;
  uint32_t depth_ = 0;
  uint64_t request_seq_ = 0;
};

#define GEOALIGN_OBS_CONCAT_INNER(a, b) a##b
#define GEOALIGN_OBS_CONCAT(a, b) GEOALIGN_OBS_CONCAT_INNER(a, b)

/// GEOALIGN_TRACE_SPAN("execute.weight_solve"); — times the enclosing
/// scope as a nested per-thread span. Span naming convention
/// (docs/observability.md): lowercase dotted paths, `<stage>.<step>`.
#define GEOALIGN_TRACE_SPAN(name)                 \
  ::geoalign::obs::ScopedSpan GEOALIGN_OBS_CONCAT(\
      geoalign_trace_span_, __COUNTER__)(name)

}  // namespace geoalign::obs

#endif  // GEOALIGN_OBS_TRACE_H_
