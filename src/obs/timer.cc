#include "obs/timer.h"

namespace geoalign::obs {

void PhaseTimer::Add(const std::string& phase, double seconds) {
  for (auto& [name, total] : entries_) {
    if (name == phase) {
      total += seconds;
      return;
    }
  }
  entries_.emplace_back(phase, seconds);
}

double PhaseTimer::TotalSeconds() const {
  double total = 0.0;
  for (const auto& [name, secs] : entries_) total += secs;
  return total;
}

double PhaseTimer::Seconds(const std::string& phase) const {
  for (const auto& [name, secs] : entries_) {
    if (name == phase) return secs;
  }
  return 0.0;
}

std::vector<std::string> PhaseTimer::Phases() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, secs] : entries_) out.push_back(name);
  return out;
}

void PhaseTimer::Clear() { entries_.clear(); }

}  // namespace geoalign::obs
