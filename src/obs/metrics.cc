#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace geoalign::obs {

namespace {

/// Formats a double compactly for JSON/text export (no trailing-zero
/// soup, round-trippable enough for telemetry).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendEscapedJson(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

const std::vector<double>& Histogram::DefaultBounds() {
  // 1-2-5 ladder: 1 µs .. 50 s when recording latencies in
  // microseconds; also covers counts like columns-per-batch.
  static const std::vector<double> kBounds = {
      1,    2,    5,    10,   20,   50,   100,  200,  500,
      1e3,  2e3,  5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,
      1e6,  2e6,  5e6,  1e7,  2e7,  5e7};
  return kBounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  if (!Enabled()) return;
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    seen += bucket_counts[i];
    if (seen > rank) {
      // Overflow bucket has no upper bound; report the last finite one.
      return i < bounds.size() ? bounds[i]
                               : (bounds.empty() ? 0.0 : bounds.back());
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    out += c.name;
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const GaugeSnapshot& g : gauges) {
    out += g.name;
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    out += h.name + "_count " + std::to_string(h.count) + '\n';
    out += h.name + "_sum " + FormatDouble(h.sum) + '\n';
    out += h.name + "_mean " + FormatDouble(h.Mean()) + '\n';
    out += h.name + "_p50 " + FormatDouble(h.Quantile(0.5)) + '\n';
    out += h.name + "_p99 " + FormatDouble(h.Quantile(0.99)) + '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendEscapedJson(out, counters[i].name);
    out += ": " + std::to_string(counters[i].value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendEscapedJson(out, gauges[i].name);
    out += ": " + std::to_string(gauges[i].value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendEscapedJson(out, h.name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"mean\": " + FormatDouble(h.Mean());
    out += ", \"p50\": " + FormatDouble(h.Quantile(0.5));
    out += ", \"p99\": " + FormatDouble(h.Quantile(0.99));
    out += ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += FormatDouble(h.bounds[b]);
    }
    out += "], \"bucket_counts\": [";
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.bucket_counts[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  common::MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  common::MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  common::MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultBounds() : std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  common::MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.sum = hist->Sum();
    h.bounds = hist->bounds();
    h.bucket_counts.reserve(h.bounds.size() + 1);
    // Derive the count from the same bucket reads so the snapshot's
    // `count == Σ bucket_counts` invariant holds even when writers are
    // recording concurrently.
    for (size_t i = 0; i <= h.bounds.size(); ++i) {
      h.bucket_counts.push_back(hist->BucketCount(i));
      h.count += h.bucket_counts.back();
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  common::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace geoalign::obs
