#include "obs/export.h"

#include <cstdio>

namespace geoalign::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our
/// registry names are dotted ("execute.latency_us"), so invalid
/// characters map to '_' and the "geoalign_" prefix guarantees a valid
/// first character.
std::string SanitizeMetricName(const std::string& name) {
  std::string out = "geoalign_";
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  return out;
}

/// HELP-text escaping per the exposition format: backslash and
/// line feed only.
void AppendEscapedHelp(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

/// Label-value escaping: backslash, double-quote, and line feed.
void AppendEscapedLabelValue(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

void AppendHeader(std::string& out, const std::string& prom_name,
                  const std::string& original_name, const char* type) {
  out += "# HELP " + prom_name + " geoalign metric ";
  AppendEscapedHelp(out, original_name);
  out += "\n# TYPE " + prom_name + ' ';
  out += type;
  out += '\n';
}

}  // namespace

bool ParseMetricsFormat(std::string_view name, MetricsFormat* out) {
  if (name == "prom" || name == "prometheus") {
    *out = MetricsFormat::kPrometheus;
  } else if (name == "json") {
    *out = MetricsFormat::kJson;
  } else if (name == "text") {
    *out = MetricsFormat::kText;
  } else {
    return false;
  }
  return true;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSnapshot& c : snapshot.counters) {
    const std::string prom = SanitizeMetricName(c.name);
    AppendHeader(out, prom, c.name, "counter");
    out += prom + ' ' + std::to_string(c.value) + '\n';
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    const std::string prom = SanitizeMetricName(g.name);
    AppendHeader(out, prom, g.name, "gauge");
    out += prom + ' ' + std::to_string(g.value) + '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = SanitizeMetricName(h.name);
    AppendHeader(out, prom, h.name, "histogram");
    // The registry stores per-bucket counts; the exposition format
    // wants cumulative ones.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
      out += prom + "_bucket{le=\"";
      AppendEscapedLabelValue(out, FormatDouble(h.bounds[i]));
      out += "\"} " + std::to_string(cumulative) + '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += prom + "_sum " + FormatDouble(h.sum) + '\n';
    out += prom + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

std::string ToJsonLine(const MetricsSnapshot& snapshot) {
  // ToJson uses newlines only as structural whitespace between tokens,
  // so stripping them yields the same JSON document on one line.
  const std::string pretty = snapshot.ToJson();
  std::string out;
  out.reserve(pretty.size());
  for (char c : pretty) {
    if (c != '\n') out.push_back(c);
  }
  return out;
}

std::string FormatMetricsSnapshot(const MetricsSnapshot& snapshot,
                                  MetricsFormat format) {
  switch (format) {
    case MetricsFormat::kPrometheus:
      return ToPrometheusText(snapshot);
    case MetricsFormat::kJson:
      return snapshot.ToJson();
    case MetricsFormat::kText:
      return snapshot.ToText();
  }
  return std::string();
}

bool WriteMetricsFile(const std::string& path, MetricsFormat format,
                      std::string* error) {
  const std::string content =
      FormatMetricsSnapshot(MetricsRegistry::Global().Snapshot(), format);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace geoalign::obs
