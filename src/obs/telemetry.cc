#include "obs/telemetry.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace geoalign::obs {

namespace internal {

namespace {
bool InitialEnabled() {
  const char* env = std::getenv("GEOALIGN_TELEMETRY");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}
}  // namespace

std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

bool WriteStringToFile(const std::string& content, const std::string& path,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool closed = std::fclose(f) == 0;
  if (written != content.size() || !closed) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace

bool WriteMetricsJsonFile(const std::string& path, std::string* error) {
  return WriteStringToFile(MetricsRegistry::Global().Snapshot().ToJson(),
                           path, error);
}

bool WriteTraceJsonFile(const std::string& path, std::string* error) {
  return WriteStringToFile(TraceRecorder::Global().ExportChromeTrace(), path,
                           error);
}

std::string SummaryTable() {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string out = "=== telemetry summary ===\n";
  char buf[256];
  for (const CounterSnapshot& c : snap.counters) {
    std::snprintf(buf, sizeof(buf), "%-36s %12llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "%-36s %12lld\n", g.name.c_str(),
                  static_cast<long long>(g.value));
    out += buf;
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-36s count %-8llu mean %-10.3g p50 %-8.3g p99 %-8.3g\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.Mean(), h.Quantile(0.5), h.Quantile(0.99));
    out += buf;
  }
  // Ring truncation shows up as the regular trace.dropped_spans
  // counter (registered eagerly by the trace recorder), so there is no
  // special-cased row here anymore.
  return out;
}

}  // namespace geoalign::obs
