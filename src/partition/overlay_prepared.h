#ifndef GEOALIGN_PARTITION_OVERLAY_PREPARED_H_
#define GEOALIGN_PARTITION_OVERLAY_PREPARED_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/boolean_ops.h"
#include "partition/overlay.h"
#include "partition/polygon_partition.h"

namespace geoalign::partition {

/// Per-unit precomputed overlay geometry: the unit's signed-fan span
/// inside the layer's flat triangle store plus the properties the
/// fast paths key on. Everything here is a pure function of the unit
/// polygon, computed exactly once per unit per overlay — where the
/// legacy path re-derived it per candidate pair.
struct PreparedOverlayUnit {
  uint32_t fan_begin = 0;  ///< first triangle in the layer store
  uint32_t fan_end = 0;    ///< one past the last triangle
  double area = 0.0;       ///< Polygon::Area(), for containment pairs
  bool convex = false;     ///< convex outer ring, no holes
};

/// Overlay-scoped prepared form of one PolygonPartition. The signed
/// fans of all units live in one flat triangle vector with a parallel
/// per-triangle bbox vector (geom::FanBBoxes arithmetic, so pruning
/// against them is bit-identical to recomputing boxes in the tri×tri
/// loop). Build is O(total vertices); the overlay engine builds one
/// per side and amortizes it over every candidate pair.
class PreparedOverlayLayer {
 public:
  static PreparedOverlayLayer Build(const PolygonPartition& layer);

  const PolygonPartition& layer() const { return *layer_; }
  size_t NumUnits() const { return units_.size(); }
  const PreparedOverlayUnit& unit(size_t i) const { return units_[i]; }

  /// The unit's fan triangles / per-triangle bboxes (parallel arrays).
  const geom::SignedTriangle* fan(size_t i) const {
    return tris_.data() + units_[i].fan_begin;
  }
  const geom::BBox* fan_boxes(size_t i) const {
    return tri_boxes_.data() + units_[i].fan_begin;
  }
  size_t fan_size(size_t i) const {
    return units_[i].fan_end - units_[i].fan_begin;
  }

  /// Largest ring vertex count over all units' rings — sizes the clip
  /// scratch so the convex fast path never grows a ring.
  size_t max_ring_vertices() const { return max_ring_vertices_; }

 private:
  const PolygonPartition* layer_ = nullptr;
  std::vector<PreparedOverlayUnit> units_;
  std::vector<geom::SignedTriangle> tris_;
  std::vector<geom::BBox> tri_boxes_;
  size_t max_ring_vertices_ = 0;
};

/// Reusable scratch for the OverlayPolygons hot path: the candidate
/// pair buffer the dual-tree join fills, the per-chunk cell lists,
/// and one geom::FanScratch per worker slot. A workspace passed
/// through OverlayOptions::workspace survives across overlays, so a
/// second overlay of same-scale layers performs ZERO hot-path heap
/// allocations — `alloc_events()` (and the `overlay.hot_path_allocs`
/// counter, which reports the per-overlay delta past Prepare) stays
/// flat. One workspace serves one overlay at a time.
class OverlayWorkspace {
 public:
  OverlayWorkspace() = default;
  OverlayWorkspace(const OverlayWorkspace&) = delete;
  OverlayWorkspace& operator=(const OverlayWorkspace&) = delete;

  /// Grows the worker-slot scratch to `slots` entries, each Reserved
  /// for the layers' widest rings, and pre-sizes the chunk-cell table.
  /// Monotonic; called by OverlayPolygons before the hot section.
  void Prepare(const PreparedOverlayLayer& source,
               const PreparedOverlayLayer& target, size_t slots);

  /// The prepared form of `layer`, served from the workspace's cache
  /// when the same partition was prepared by the previous overlay
  /// (side 0 = source, side 1 = target) and rebuilt otherwise — so a
  /// warm workspace re-overlaying the same layers skips the O(total
  /// vertices) Build entirely. The cache keys on the partition's
  /// address and unit count; keep a partition alive for as long as a
  /// workspace that served it may be reused, or the key can alias.
  const PreparedOverlayLayer& Prepared(int side,
                                       const PolygonPartition& layer);

  /// Cumulative buffer growths (pair buffer, chunk cell lists, clip
  /// scratch) since construction. The engine snapshots this after
  /// Prepare and reports the hot-section delta.
  uint64_t alloc_events() const;

  /// True when pair_buffer() still holds the dual-tree join of the
  /// exact layers the prep cache serves — the join is a pure function
  /// of the two trees, so a warm same-layers overlay skips it. Any
  /// cache miss in Prepared() invalidates this.
  bool pairs_cached() const { return pairs_cached_; }
  void MarkPairsCached() { pairs_cached_ = true; }

  // Engine-facing internals (OverlayPolygons).
  std::vector<std::pair<uint32_t, uint32_t>>& pair_buffer() { return pairs_; }
  std::vector<std::vector<IntersectionCell>>& cell_chunks() {
    return chunk_cells_;
  }
  geom::FanScratch& slot(size_t i) { return slots_[i]; }
  size_t num_slots() const { return slots_.size(); }
  /// Records `n` buffer growths observed by the engine (pair-buffer /
  /// cell-list capacity deltas it tracks around the hot section).
  void CountGrowth(uint64_t n) { extra_growth_ += n; }

 private:
  std::vector<std::pair<uint32_t, uint32_t>> pairs_;
  std::vector<std::vector<IntersectionCell>> chunk_cells_;
  std::vector<geom::FanScratch> slots_;
  PreparedOverlayLayer prep_cache_[2];
  const void* prep_key_[2] = {nullptr, nullptr};
  size_t prep_units_[2] = {0, 0};
  bool pairs_cached_ = false;
  uint64_t extra_growth_ = 0;
};

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_OVERLAY_PREPARED_H_
