#include "partition/overlay.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "geom/boolean_ops.h"
#include "geom/predicates.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "partition/overlay_prepared.h"
#include "sparse/coo_builder.h"

namespace geoalign::partition {

namespace {

// Metric catalog: docs/observability.md §overlay.
obs::Counter& CandidatePairs() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("overlay.candidate_pairs");
  return c;
}
obs::Counter& PairsPruned() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("overlay.pairs_pruned");
  return c;
}
obs::Counter& FastPathContainHits() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "overlay.fastpath_contain_hits");
  return c;
}
obs::Counter& FastPathConvexHits() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "overlay.fastpath_convex_hits");
  return c;
}
obs::Counter& HotPathAllocs() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("overlay.hot_path_allocs");
  return c;
}
obs::Histogram& ClipLatencyUs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("overlay.clip_latency_us");
  return h;
}

bool CellLess(const IntersectionCell& a, const IntersectionCell& b) {
  return a.source != b.source ? a.source < b.source : a.target < b.target;
}

}  // namespace

sparse::CsrMatrix OverlayResult::MeasureDm() const {
  sparse::CooBuilder builder(num_source, num_target);
  for (const IntersectionCell& c : cells) {
    builder.Add(c.source, c.target, c.measure);
  }
  return builder.Build();
}

double OverlayResult::TotalMeasure() const {
  double acc = 0.0;
  for (const IntersectionCell& c : cells) acc += c.measure;
  return acc;
}

Result<OverlayResult> OverlayIntervals(const IntervalPartition& source,
                                       const IntervalPartition& target,
                                       double tol) {
  const std::vector<double>& sb = source.breaks();
  const std::vector<double>& tb = target.breaks();
  if (std::fabs(sb.front() - tb.front()) > tol ||
      std::fabs(sb.back() - tb.back()) > tol) {
    return Status::InvalidArgument(
        "OverlayIntervals: partitions span different universes");
  }
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Merge sweep over both breakpoint lists.
  size_t i = 0;
  size_t j = 0;
  double lo = sb.front();
  while (i < source.NumUnits() && j < target.NumUnits()) {
    double hi = std::min(sb[i + 1], tb[j + 1]);
    double width = hi - lo;
    if (width > 0.0) {
      out.cells.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j), width});
    }
    // Advance whichever unit ends at hi (both, when aligned).
    if (sb[i + 1] <= hi + tol && std::fabs(sb[i + 1] - hi) <= tol) ++i;
    if (j < target.NumUnits() && std::fabs(tb[j + 1] - hi) <= tol) ++j;
    lo = hi;
  }
  std::sort(out.cells.begin(), out.cells.end(),
            [](const IntersectionCell& a, const IntersectionCell& b) {
              return a.source != b.source ? a.source < b.source
                                          : a.target < b.target;
            });
  return out;
}

Result<OverlayResult> OverlayBoxes(const BoxPartition& source,
                                   const BoxPartition& target, double tol) {
  if (source.Dimension() != target.Dimension()) {
    return Status::InvalidArgument("OverlayBoxes: dimension mismatch");
  }
  size_t dim = source.Dimension();
  // Per-axis 1-D overlays; the n-D overlay is their product.
  std::vector<OverlayResult> axis_overlays;
  axis_overlays.reserve(dim);
  for (size_t d = 0; d < dim; ++d) {
    GEOALIGN_ASSIGN_OR_RETURN(
        OverlayResult ov, OverlayIntervals(source.axis(d), target.axis(d),
                                           tol));
    axis_overlays.push_back(std::move(ov));
  }

  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Cartesian product of the per-axis intersection cells.
  std::vector<size_t> pick(dim, 0);
  std::vector<size_t> src_idx(dim);
  std::vector<size_t> tgt_idx(dim);
  for (;;) {
    double measure = 1.0;
    for (size_t d = 0; d < dim; ++d) {
      const IntersectionCell& c = axis_overlays[d].cells[pick[d]];
      measure *= c.measure;
      src_idx[d] = c.source;
      tgt_idx[d] = c.target;
    }
    out.cells.push_back(
        {static_cast<uint32_t>(source.LinearIndex(src_idx)),
         static_cast<uint32_t>(target.LinearIndex(tgt_idx)), measure});
    // Odometer increment.
    size_t d = dim;
    while (d-- > 0) {
      if (++pick[d] < axis_overlays[d].cells.size()) break;
      pick[d] = 0;
      if (d == 0) {
        std::sort(out.cells.begin(), out.cells.end(),
                  [](const IntersectionCell& a, const IntersectionCell& b) {
                    return a.source != b.source ? a.source < b.source
                                                : a.target < b.target;
                  });
        return out;
      }
    }
  }
}

Result<OverlayResult> OverlayPolygons(const PolygonPartition& source,
                                      const PolygonPartition& target,
                                      const OverlayOptions& options) {
  GEOALIGN_TRACE_SPAN("overlay.polygons");
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(options.threads));
  const bool outer_inline = pool == nullptr;

  // Slot 0 serves the inline path; workers map to wi + 1 (batch.cc
  // idiom), so no two concurrently-running chunks share a scratch.
  OverlayWorkspace local_ws;
  OverlayWorkspace& ws = options.workspace ? *options.workspace : local_ws;

  // Cold section: cache each layer's signed fans, per-triangle bboxes,
  // areas, and convexity flags once — the legacy path re-derived all
  // of this for every candidate pair. A warm caller-owned workspace
  // re-overlaying the same partitions serves these from its cache and
  // skips the Build entirely. Allocation is fine here.
  const PreparedOverlayLayer& prep_s = ws.Prepared(0, source);
  const PreparedOverlayLayer& prep_t = ws.Prepared(1, target);
  ws.Prepare(prep_s, prep_t, (pool ? pool->size() : 0) + 1);
  const uint64_t allocs_before = ws.alloc_events();

  // Candidate generation: one simultaneous descent of both R-trees
  // into the reused pair buffer. Emission order is a pure function of
  // the two tree structures — never of the thread count — and the set
  // of emitted pairs is exactly the bbox-intersecting pairs the legacy
  // per-target queries produced.
  std::vector<std::pair<uint32_t, uint32_t>>& pairs = ws.pair_buffer();
  if (!ws.pairs_cached()) {
    const size_t pairs_cap_before = pairs.capacity();
    source.rtree().DualTreeJoin(target.rtree(), &pairs);
    if (pairs.capacity() != pairs_cap_before) ws.CountGrowth(1);
    ws.MarkPairsCached();
  }
  CandidatePairs().Add(pairs.size());

  // Each chunk of the pair list clips into its own reused cell list;
  // every pair is computed wholly inside one chunk, so cell values are
  // independent of the chunking, and the final unique-key sort makes
  // the emission order irrelevant: bit-identical at any thread count.
  constexpr size_t kPairGrain = 64;
  std::vector<common::ChunkRange> chunks =
      common::DeterministicChunks(pairs.size(), kPairGrain);
  struct ChunkStats {
    uint32_t pruned = 0;
    uint32_t contain_hits = 0;
    uint32_t convex_hits = 0;
    uint32_t growths = 0;
  };
  std::array<ChunkStats, common::kMaxChunks> stats;
  common::ParallelForChunks(pool.get(), chunks.size(), [&](size_t ci) {
    obs::Stopwatch clip_watch;
    size_t wi = common::ThreadPool::CurrentWorkerIndex();
    geom::FanScratch& scratch = ws.slot(
        outer_inline || wi == common::ThreadPool::kNoWorkerIndex ? 0 : wi + 1);
    ChunkStats& st = stats[ci];
    std::vector<IntersectionCell>& cells = ws.cell_chunks()[ci];
    const size_t cells_cap_before = cells.capacity();
    cells.clear();
    // GEOALIGN_HOT_LOOP_BEGIN (overlay pair loop: fans, bboxes, and
    // areas come cached from the prepared layers; rings come Reserved
    // from the workspace scratch)
    for (size_t k = chunks[ci].begin; k < chunks[ci].end; ++k) {
      const uint32_t i = pairs[k].first;
      const uint32_t j = pairs[k].second;
      double inter;
      if (options.fast_paths && prep_s.unit(i).convex &&
          prep_t.unit(j).convex) {
        // Hole-free convex pair: one Sutherland–Hodgman pass over the
        // outer rings replaces the fan double loop. The ring with fewer
        // edges serves as the clip ring — fewer half-plane passes, and
        // intersection area is symmetric. Containment needs no separate
        // check here: clipping a contained subject returns it exactly.
        const geom::Ring& ra = source.unit(i).outer();
        const geom::Ring& rb = target.unit(j).outer();
        inter = rb.size() <= ra.size()
                    ? geom::ConvexIntersectionAreaWith(ra, rb, &scratch.clip)
                    : geom::ConvexIntersectionAreaWith(rb, ra, &scratch.clip);
        ++st.convex_hits;
      } else if (options.fast_paths &&
                 geom::PolygonContainsBBox(source.unit(i),
                                           target.unit(j).Bounds())) {
        // target ⊂ its bbox ⊂ source, so the intersection is the whole
        // target polygon. Exact (no clipping arithmetic at all), and it
        // skips the fan double loop the non-convex pair would pay.
        inter = prep_t.unit(j).area;
        ++st.contain_hits;
      } else if (options.fast_paths &&
                 geom::PolygonContainsBBox(target.unit(j),
                                           source.unit(i).Bounds())) {
        inter = prep_s.unit(i).area;
        ++st.contain_hits;
      } else {
        inter = geom::IntersectionAreaPrepared(
            prep_s.fan(i), prep_s.fan_boxes(i), prep_s.fan_size(i),
            prep_t.fan(j), prep_t.fan_boxes(j), prep_t.fan_size(j), &scratch);
      }
      if (inter > options.min_area) {
        // Growth is detected by the capacity snapshot below and lands
        // in overlay.hot_path_allocs; a warmed workspace never grows.
        cells.push_back({i, j, inter});  // NOLINT(geoalign-hot-alloc)
      } else {
        ++st.pruned;
      }
    }
    // GEOALIGN_HOT_LOOP_END
    if (cells.capacity() != cells_cap_before) ++st.growths;
    ClipLatencyUs().Record(clip_watch.ElapsedMicros());
  });

  uint64_t pruned = 0;
  uint64_t contain_hits = 0;
  uint64_t convex_hits = 0;
  uint64_t growths = 0;
  size_t total_cells = 0;
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    total_cells += ws.cell_chunks()[ci].size();
  }
  out.cells.reserve(total_cells);
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    const std::vector<IntersectionCell>& cells = ws.cell_chunks()[ci];
    out.cells.insert(out.cells.end(), cells.begin(), cells.end());
    pruned += stats[ci].pruned;
    contain_hits += stats[ci].contain_hits;
    convex_hits += stats[ci].convex_hits;
    growths += stats[ci].growths;
  }
  std::sort(out.cells.begin(), out.cells.end(), CellLess);
  ws.CountGrowth(growths);
  PairsPruned().Add(pruned);
  FastPathContainHits().Add(contain_hits);
  FastPathConvexHits().Add(convex_hits);
  HotPathAllocs().Add(ws.alloc_events() - allocs_before);
  return out;
}

Result<OverlayResult> OverlayPolygons(const PolygonPartition& source,
                                      const PolygonPartition& target,
                                      double min_area, size_t threads) {
  OverlayOptions options;
  options.min_area = min_area;
  options.threads = threads;
  return OverlayPolygons(source, target, options);
}

Result<OverlayResult> OverlayPolygonsReference(const PolygonPartition& source,
                                               const PolygonPartition& target,
                                               double min_area,
                                               size_t threads) {
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Each chunk of target units gathers its candidate pairs through the
  // (read-only) source R-tree and clips them into a private cell list;
  // chunk-order concatenation reproduces the sequential j-loop order,
  // and the final (source, target) sort has unique keys, so any thread
  // count produces the identical overlay.
  constexpr size_t kTargetGrain = 16;
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(threads));
  std::vector<common::ChunkRange> chunks =
      common::DeterministicChunks(target.NumUnits(), kTargetGrain);
  std::vector<std::vector<IntersectionCell>> chunk_cells(chunks.size());
  common::ParallelForChunks(pool.get(), chunks.size(), [&](size_t ci) {
    std::vector<IntersectionCell>& cells = chunk_cells[ci];
    for (size_t j = chunks[ci].begin; j < chunks[ci].end; ++j) {
      const geom::Polygon& tp = target.unit(j);
      for (uint32_t i : source.CandidatesInBox(tp.Bounds())) {
        double inter = geom::IntersectionArea(source.unit(i), tp);
        if (inter > min_area) {
          cells.push_back({i, static_cast<uint32_t>(j), inter});
        }
      }
    }
  });
  for (std::vector<IntersectionCell>& cells : chunk_cells) {
    out.cells.insert(out.cells.end(), cells.begin(), cells.end());
  }
  std::sort(out.cells.begin(), out.cells.end(), CellLess);
  return out;
}

Result<OverlayResult> OverlayCells(const CellPartition& source,
                                   const CellPartition& target) {
  if (source.atoms() != target.atoms()) {
    return Status::InvalidArgument(
        "OverlayCells: partitions must share one atom space");
  }
  size_t num_atoms = source.NumAtoms();
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Group atoms by (source label, target label) via a hash of the
  // packed pair, then emit sorted cells.
  std::unordered_map<uint64_t, uint32_t> cell_of_pair;
  out.atom_to_cell.resize(num_atoms);
  const linalg::Vector& measures = source.atoms()->measures;
  for (size_t a = 0; a < num_atoms; ++a) {
    uint64_t key = (static_cast<uint64_t>(source.LabelOf(a)) << 32) |
                   target.LabelOf(a);
    auto [it, inserted] =
        cell_of_pair.try_emplace(key, static_cast<uint32_t>(out.cells.size()));
    if (inserted) {
      out.cells.push_back({source.LabelOf(a), target.LabelOf(a), 0.0});
    }
    out.cells[it->second].measure += measures[a];
    out.atom_to_cell[a] = it->second;
  }

  // Sort cells by (source, target) and remap atom_to_cell.
  std::vector<uint32_t> order(out.cells.size());
  for (uint32_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    const IntersectionCell& a = out.cells[x];
    const IntersectionCell& b = out.cells[y];
    return a.source != b.source ? a.source < b.source : a.target < b.target;
  });
  std::vector<uint32_t> rank(order.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  std::vector<IntersectionCell> sorted_cells(out.cells.size());
  for (uint32_t k = 0; k < out.cells.size(); ++k) {
    sorted_cells[rank[k]] = out.cells[k];
  }
  out.cells = std::move(sorted_cells);
  for (uint32_t& c : out.atom_to_cell) c = rank[c];
  return out;
}

}  // namespace geoalign::partition
