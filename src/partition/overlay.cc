#include "partition/overlay.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "geom/boolean_ops.h"
#include "sparse/coo_builder.h"

namespace geoalign::partition {

sparse::CsrMatrix OverlayResult::MeasureDm() const {
  sparse::CooBuilder builder(num_source, num_target);
  for (const IntersectionCell& c : cells) {
    builder.Add(c.source, c.target, c.measure);
  }
  return builder.Build();
}

double OverlayResult::TotalMeasure() const {
  double acc = 0.0;
  for (const IntersectionCell& c : cells) acc += c.measure;
  return acc;
}

Result<OverlayResult> OverlayIntervals(const IntervalPartition& source,
                                       const IntervalPartition& target,
                                       double tol) {
  const std::vector<double>& sb = source.breaks();
  const std::vector<double>& tb = target.breaks();
  if (std::fabs(sb.front() - tb.front()) > tol ||
      std::fabs(sb.back() - tb.back()) > tol) {
    return Status::InvalidArgument(
        "OverlayIntervals: partitions span different universes");
  }
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Merge sweep over both breakpoint lists.
  size_t i = 0;
  size_t j = 0;
  double lo = sb.front();
  while (i < source.NumUnits() && j < target.NumUnits()) {
    double hi = std::min(sb[i + 1], tb[j + 1]);
    double width = hi - lo;
    if (width > 0.0) {
      out.cells.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j), width});
    }
    // Advance whichever unit ends at hi (both, when aligned).
    if (sb[i + 1] <= hi + tol && std::fabs(sb[i + 1] - hi) <= tol) ++i;
    if (j < target.NumUnits() && std::fabs(tb[j + 1] - hi) <= tol) ++j;
    lo = hi;
  }
  std::sort(out.cells.begin(), out.cells.end(),
            [](const IntersectionCell& a, const IntersectionCell& b) {
              return a.source != b.source ? a.source < b.source
                                          : a.target < b.target;
            });
  return out;
}

Result<OverlayResult> OverlayBoxes(const BoxPartition& source,
                                   const BoxPartition& target, double tol) {
  if (source.Dimension() != target.Dimension()) {
    return Status::InvalidArgument("OverlayBoxes: dimension mismatch");
  }
  size_t dim = source.Dimension();
  // Per-axis 1-D overlays; the n-D overlay is their product.
  std::vector<OverlayResult> axis_overlays;
  axis_overlays.reserve(dim);
  for (size_t d = 0; d < dim; ++d) {
    GEOALIGN_ASSIGN_OR_RETURN(
        OverlayResult ov, OverlayIntervals(source.axis(d), target.axis(d),
                                           tol));
    axis_overlays.push_back(std::move(ov));
  }

  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Cartesian product of the per-axis intersection cells.
  std::vector<size_t> pick(dim, 0);
  std::vector<size_t> src_idx(dim);
  std::vector<size_t> tgt_idx(dim);
  for (;;) {
    double measure = 1.0;
    for (size_t d = 0; d < dim; ++d) {
      const IntersectionCell& c = axis_overlays[d].cells[pick[d]];
      measure *= c.measure;
      src_idx[d] = c.source;
      tgt_idx[d] = c.target;
    }
    out.cells.push_back(
        {static_cast<uint32_t>(source.LinearIndex(src_idx)),
         static_cast<uint32_t>(target.LinearIndex(tgt_idx)), measure});
    // Odometer increment.
    size_t d = dim;
    while (d-- > 0) {
      if (++pick[d] < axis_overlays[d].cells.size()) break;
      pick[d] = 0;
      if (d == 0) {
        std::sort(out.cells.begin(), out.cells.end(),
                  [](const IntersectionCell& a, const IntersectionCell& b) {
                    return a.source != b.source ? a.source < b.source
                                                : a.target < b.target;
                  });
        return out;
      }
    }
  }
}

Result<OverlayResult> OverlayPolygons(const PolygonPartition& source,
                                      const PolygonPartition& target,
                                      double min_area, size_t threads) {
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Each chunk of target units gathers its candidate pairs through the
  // (read-only) source R-tree and clips them into a private cell list;
  // chunk-order concatenation reproduces the sequential j-loop order,
  // and the final (source, target) sort has unique keys, so any thread
  // count produces the identical overlay.
  constexpr size_t kTargetGrain = 16;
  std::unique_ptr<common::ThreadPool> pool =
      common::MakePoolOrNull(common::ResolveThreadCount(threads));
  std::vector<common::ChunkRange> chunks =
      common::DeterministicChunks(target.NumUnits(), kTargetGrain);
  std::vector<std::vector<IntersectionCell>> chunk_cells(chunks.size());
  common::ParallelForChunks(pool.get(), chunks.size(), [&](size_t ci) {
    std::vector<IntersectionCell>& cells = chunk_cells[ci];
    for (size_t j = chunks[ci].begin; j < chunks[ci].end; ++j) {
      const geom::Polygon& tp = target.unit(j);
      for (uint32_t i : source.CandidatesInBox(tp.Bounds())) {
        double inter = geom::IntersectionArea(source.unit(i), tp);
        if (inter > min_area) {
          cells.push_back({i, static_cast<uint32_t>(j), inter});
        }
      }
    }
  });
  for (std::vector<IntersectionCell>& cells : chunk_cells) {
    out.cells.insert(out.cells.end(), cells.begin(), cells.end());
  }
  std::sort(out.cells.begin(), out.cells.end(),
            [](const IntersectionCell& a, const IntersectionCell& b) {
              return a.source != b.source ? a.source < b.source
                                          : a.target < b.target;
            });
  return out;
}

Result<OverlayResult> OverlayCells(const CellPartition& source,
                                   const CellPartition& target) {
  if (source.atoms() != target.atoms()) {
    return Status::InvalidArgument(
        "OverlayCells: partitions must share one atom space");
  }
  size_t num_atoms = source.NumAtoms();
  OverlayResult out;
  out.num_source = static_cast<uint32_t>(source.NumUnits());
  out.num_target = static_cast<uint32_t>(target.NumUnits());

  // Group atoms by (source label, target label) via a hash of the
  // packed pair, then emit sorted cells.
  std::unordered_map<uint64_t, uint32_t> cell_of_pair;
  out.atom_to_cell.resize(num_atoms);
  const linalg::Vector& measures = source.atoms()->measures;
  for (size_t a = 0; a < num_atoms; ++a) {
    uint64_t key = (static_cast<uint64_t>(source.LabelOf(a)) << 32) |
                   target.LabelOf(a);
    auto [it, inserted] =
        cell_of_pair.try_emplace(key, static_cast<uint32_t>(out.cells.size()));
    if (inserted) {
      out.cells.push_back({source.LabelOf(a), target.LabelOf(a), 0.0});
    }
    out.cells[it->second].measure += measures[a];
    out.atom_to_cell[a] = it->second;
  }

  // Sort cells by (source, target) and remap atom_to_cell.
  std::vector<uint32_t> order(out.cells.size());
  for (uint32_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    const IntersectionCell& a = out.cells[x];
    const IntersectionCell& b = out.cells[y];
    return a.source != b.source ? a.source < b.source : a.target < b.target;
  });
  std::vector<uint32_t> rank(order.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  std::vector<IntersectionCell> sorted_cells(out.cells.size());
  for (uint32_t k = 0; k < out.cells.size(); ++k) {
    sorted_cells[rank[k]] = out.cells[k];
  }
  out.cells = std::move(sorted_cells);
  for (uint32_t& c : out.atom_to_cell) c = rank[c];
  return out;
}

}  // namespace geoalign::partition
