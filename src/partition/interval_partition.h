#ifndef GEOALIGN_PARTITION_INTERVAL_PARTITION_H_
#define GEOALIGN_PARTITION_INTERVAL_PARTITION_H_

#include <vector>

#include "common/status.h"

namespace geoalign::partition {

/// 1-D unit system: the real interval [breaks.front(), breaks.back())
/// partitioned into units [breaks[i], breaks[i+1]). This is the
/// histogram-realignment setting of paper Fig. 3 (age bins).
class IntervalPartition {
 public:
  /// Builds from strictly increasing breakpoints (>= 2 entries).
  static Result<IntervalPartition> Create(std::vector<double> breaks);

  /// n equal-width units spanning [lo, hi).
  static Result<IntervalPartition> Uniform(double lo, double hi, size_t n);

  size_t NumUnits() const { return breaks_.size() - 1; }

  /// Width of unit i.
  double Measure(size_t i) const { return breaks_[i + 1] - breaks_[i]; }

  double lower(size_t i) const { return breaks_[i]; }
  double upper(size_t i) const { return breaks_[i + 1]; }

  /// Unit containing x (half-open convention; the last unit also
  /// contains the global upper bound). Error when x is outside the
  /// universe.
  Result<size_t> Locate(double x) const;

  const std::vector<double>& breaks() const { return breaks_; }

 private:
  explicit IntervalPartition(std::vector<double> breaks)
      : breaks_(std::move(breaks)) {}
  std::vector<double> breaks_;
};

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_INTERVAL_PARTITION_H_
