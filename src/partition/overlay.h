#ifndef GEOALIGN_PARTITION_OVERLAY_H_
#define GEOALIGN_PARTITION_OVERLAY_H_

#include <cstdint>
#include <vector>

#include "partition/box_partition.h"
#include "partition/cell_partition.h"
#include "partition/interval_partition.h"
#include "partition/polygon_partition.h"
#include "sparse/csr_matrix.h"

namespace geoalign::partition {

/// One intersection unit u^st_k = u^s_i ∩ u^t_j with its measure.
struct IntersectionCell {
  uint32_t source;
  uint32_t target;
  double measure;
};

/// The intersection unit system U^st of a source and a target unit
/// system (paper §3.1), with measures. This is the geometric half of
/// what an ArcGIS-style overlay produces; attribute disaggregation
/// matrices are built on top of it (disaggregation.h).
struct OverlayResult {
  uint32_t num_source = 0;
  uint32_t num_target = 0;

  /// Non-empty intersection units, sorted by (source, target).
  std::vector<IntersectionCell> cells;

  /// For cell-partition overlays: atom -> index into `cells`; empty
  /// for geometric overlays.
  std::vector<uint32_t> atom_to_cell;

  /// The measure (area) disaggregation matrix DM_area[i,j] =
  /// |u^s_i ∩ u^t_j| — the reference the areal weighting method uses.
  sparse::CsrMatrix MeasureDm() const;

  /// Sum of cell measures (should equal the universe measure).
  double TotalMeasure() const;
};

/// Exact 1-D overlay by merging breakpoints. Both partitions must span
/// the same universe interval (within `tol`).
Result<OverlayResult> OverlayIntervals(const IntervalPartition& source,
                                       const IntervalPartition& target,
                                       double tol = 1e-9);

/// Exact n-D product-grid overlay (per-axis interval overlays
/// combined). Partitions must have equal dimension and spans.
Result<OverlayResult> OverlayBoxes(const BoxPartition& source,
                                   const BoxPartition& target,
                                   double tol = 1e-9);

/// Reusable scratch for the geometric overlay (overlay_prepared.h).
class OverlayWorkspace;

/// Options for the geometric overlay engine.
struct OverlayOptions {
  /// Cells with area <= min_area are dropped.
  double min_area = 0.0;

  /// Worker threads for candidate clipping (0 = one per hardware
  /// thread, 1 = inline). Any thread count produces bit-identical
  /// cells: the dual-tree candidate join emits a pair list whose order
  /// is a pure function of the two R-trees, each pair's area is
  /// computed independently, and the final (source, target) sort has
  /// unique keys.
  size_t threads = 1;

  /// Enables the value-changing geometry fast paths: containment
  /// pairs (one polygon's bbox provably inside the other) short-cut to
  /// the contained polygon's cached area, and convex/hole-free pairs
  /// clip outer rings directly instead of summing the triangle-fan
  /// double loop. Both are exact in real arithmetic but may differ
  /// from the fan path in the last ulp, so they are opt-in; with
  /// fast_paths=false the engine is bit-identical to
  /// OverlayPolygonsReference.
  bool fast_paths = false;

  /// Optional caller-owned scratch, reused across overlays. With a
  /// warmed workspace the hot section performs zero heap allocations
  /// (the `overlay.hot_path_allocs` counter stays flat), and a repeat
  /// overlay of the same two partitions also serves the prepared
  /// layers and the dual-tree candidate join from the workspace's
  /// cache (see OverlayWorkspace::Prepared for the lifetime contract).
  /// Null = the engine uses an internal workspace for this call.
  OverlayWorkspace* workspace = nullptr;
};

/// Geometric 2-D overlay: the intersection area of every
/// bbox-candidate pair of units. Candidates come from a simultaneous
/// R-tree×R-tree join (spatial::RTree::DualTreeJoin); per-unit signed
/// fans and triangle bboxes are cached once per layer
/// (partition::PreparedOverlayLayer) instead of recomputed per pair;
/// all intermediate rings come from workspace scratch.
Result<OverlayResult> OverlayPolygons(const PolygonPartition& source,
                                      const PolygonPartition& target,
                                      const OverlayOptions& options);

/// Legacy-signature convenience wrapper (fast paths off).
Result<OverlayResult> OverlayPolygons(const PolygonPartition& source,
                                      const PolygonPartition& target,
                                      double min_area = 0.0,
                                      size_t threads = 1);

/// The pre-engine overlay, kept verbatim as the differential oracle:
/// per-target R-tree queries + per-pair IntersectionArea, no caching,
/// no workspace. tests/overlay_engine_test.cc asserts the engine (fast
/// paths off) is bit-identical to this for every universe × thread
/// count; bench/overlay_scale measures the speedup against it.
Result<OverlayResult> OverlayPolygonsReference(const PolygonPartition& source,
                                               const PolygonPartition& target,
                                               double min_area = 0.0,
                                               size_t threads = 1);

/// Exact label-join overlay of two partitions of the SAME atom space:
/// cell (i, j) collects atoms with source label i and target label j.
Result<OverlayResult> OverlayCells(const CellPartition& source,
                                   const CellPartition& target);

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_OVERLAY_H_
