#ifndef GEOALIGN_PARTITION_OVERLAY_H_
#define GEOALIGN_PARTITION_OVERLAY_H_

#include <cstdint>
#include <vector>

#include "partition/box_partition.h"
#include "partition/cell_partition.h"
#include "partition/interval_partition.h"
#include "partition/polygon_partition.h"
#include "sparse/csr_matrix.h"

namespace geoalign::partition {

/// One intersection unit u^st_k = u^s_i ∩ u^t_j with its measure.
struct IntersectionCell {
  uint32_t source;
  uint32_t target;
  double measure;
};

/// The intersection unit system U^st of a source and a target unit
/// system (paper §3.1), with measures. This is the geometric half of
/// what an ArcGIS-style overlay produces; attribute disaggregation
/// matrices are built on top of it (disaggregation.h).
struct OverlayResult {
  uint32_t num_source = 0;
  uint32_t num_target = 0;

  /// Non-empty intersection units, sorted by (source, target).
  std::vector<IntersectionCell> cells;

  /// For cell-partition overlays: atom -> index into `cells`; empty
  /// for geometric overlays.
  std::vector<uint32_t> atom_to_cell;

  /// The measure (area) disaggregation matrix DM_area[i,j] =
  /// |u^s_i ∩ u^t_j| — the reference the areal weighting method uses.
  sparse::CsrMatrix MeasureDm() const;

  /// Sum of cell measures (should equal the universe measure).
  double TotalMeasure() const;
};

/// Exact 1-D overlay by merging breakpoints. Both partitions must span
/// the same universe interval (within `tol`).
Result<OverlayResult> OverlayIntervals(const IntervalPartition& source,
                                       const IntervalPartition& target,
                                       double tol = 1e-9);

/// Exact n-D product-grid overlay (per-axis interval overlays
/// combined). Partitions must have equal dimension and spans.
Result<OverlayResult> OverlayBoxes(const BoxPartition& source,
                                   const BoxPartition& target,
                                   double tol = 1e-9);

/// Geometric 2-D overlay: for every bbox-candidate pair (via the
/// source R-tree) the polygon intersection area is computed; cells
/// with area <= `min_area` are dropped. `threads` parallelizes
/// candidate generation + clipping over target-unit chunks (0 = one
/// thread per hardware thread, 1 = inline); cells are concatenated in
/// target order before the final sort, so the result is identical for
/// every thread count.
Result<OverlayResult> OverlayPolygons(const PolygonPartition& source,
                                      const PolygonPartition& target,
                                      double min_area = 0.0,
                                      size_t threads = 1);

/// Exact label-join overlay of two partitions of the SAME atom space:
/// cell (i, j) collects atoms with source label i and target label j.
Result<OverlayResult> OverlayCells(const CellPartition& source,
                                   const CellPartition& target);

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_OVERLAY_H_
