#ifndef GEOALIGN_PARTITION_DISAGGREGATION_H_
#define GEOALIGN_PARTITION_DISAGGREGATION_H_

#include "geom/point.h"
#include "partition/overlay.h"
#include "sparse/csr_matrix.h"

namespace geoalign::partition {

/// Builders for attribute disaggregation matrices DM_x[i,j] = aggregate
/// of attribute x in u^s_i ∩ u^t_j (paper Eq. 13) and for aggregate
/// vectors — the "crosswalk relationship files" real pipelines obtain
/// from ArcGIS overlays or HUD-USPS crosswalk downloads.

/// DM from per-atom attribute values over a cell-partition overlay
/// (the overlay must carry `atom_to_cell`). Exact.
Result<sparse::CsrMatrix> DmFromAtomValues(const OverlayResult& overlay,
                                           const linalg::Vector& atom_values);

/// DM from weighted 2-D point data: each point is located in both
/// polygon layers and its weight accumulates in the matching cell.
/// Points outside either layer are skipped and counted in
/// `dropped_points` when non-null.
Result<sparse::CsrMatrix> DmFromPoints(const PolygonPartition& source,
                                       const PolygonPartition& target,
                                       const std::vector<geom::Point>& points,
                                       const linalg::Vector& weights,
                                       size_t* dropped_points = nullptr);

/// Aggregate vector of weighted 2-D points per polygon unit (points in
/// no unit are skipped, counted in `dropped_points` when non-null).
linalg::Vector AggregatePoints(const PolygonPartition& layer,
                               const std::vector<geom::Point>& points,
                               const linalg::Vector& weights,
                               size_t* dropped_points = nullptr);

/// Checks DM/source-vector consistency: row i of `dm` must sum to
/// `source_aggregates[i]` within `tol * max(1, |a_i|)`. GeoAlign's
/// volume-preservation guarantee (Eq. 16) relies on this.
Status CheckDmConsistency(const sparse::CsrMatrix& dm,
                          const linalg::Vector& source_aggregates,
                          double tol = 1e-9);

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_DISAGGREGATION_H_
