#include "partition/overlay_prepared.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace geoalign::partition {

PreparedOverlayLayer PreparedOverlayLayer::Build(const PolygonPartition& layer) {
  PreparedOverlayLayer out;
  out.layer_ = &layer;
  size_t n = layer.NumUnits();
  out.units_.resize(n);

  // First pass sizes the flat stores exactly (fans have at most
  // vertices-2 triangles per ring) so the fill pass never reallocates.
  size_t tri_upper = 0;
  for (size_t i = 0; i < n; ++i) {
    const geom::Polygon& poly = layer.unit(i);
    tri_upper += poly.VertexCount();  // >= sum over rings of (len - 2)
    out.max_ring_vertices_ =
        std::max(out.max_ring_vertices_, poly.outer().size());
    for (const geom::Ring& hole : poly.holes()) {
      out.max_ring_vertices_ = std::max(out.max_ring_vertices_, hole.size());
    }
  }
  out.tris_.reserve(tri_upper);

  for (size_t i = 0; i < n; ++i) {
    const geom::Polygon& poly = layer.unit(i);
    PreparedOverlayUnit& u = out.units_[i];
    u.fan_begin = static_cast<uint32_t>(out.tris_.size());
    // Same decomposition the per-pair path ran: identical triangles in
    // identical order, so downstream clipping is bit-identical.
    std::vector<geom::SignedTriangle> fan = geom::SignedFan(poly);
    out.tris_.insert(out.tris_.end(), fan.begin(), fan.end());
    u.fan_end = static_cast<uint32_t>(out.tris_.size());
    u.area = poly.Area();
    u.convex = poly.IsConvex();
  }
  out.tri_boxes_ = geom::FanBBoxes(out.tris_);
  return out;
}

const PreparedOverlayLayer& OverlayWorkspace::Prepared(
    int side, const PolygonPartition& layer) {
  if (prep_key_[side] != &layer || prep_units_[side] != layer.NumUnits()) {
    prep_cache_[side] = PreparedOverlayLayer::Build(layer);
    prep_key_[side] = &layer;
    prep_units_[side] = layer.NumUnits();
    pairs_cached_ = false;
  }
  return prep_cache_[side];
}

void OverlayWorkspace::Prepare(const PreparedOverlayLayer& source,
                               const PreparedOverlayLayer& target,
                               size_t slots) {
  if (slots_.size() < slots) slots_.resize(slots);
  // Triangles clipped by triangles need capacity 8 (3 + 3 + slack);
  // the convex fast path clips whole outer rings against whole outer
  // rings, so size for the widest ring on either side, clipped by the
  // other side's edge count.
  size_t max_ring = std::max<size_t>(
      8, source.max_ring_vertices() + target.max_ring_vertices());
  for (geom::FanScratch& s : slots_) s.Reserve(max_ring);
  if (chunk_cells_.size() < common::kMaxChunks) {
    chunk_cells_.resize(common::kMaxChunks);
  }
}

uint64_t OverlayWorkspace::alloc_events() const {
  uint64_t total = extra_growth_;
  for (const geom::FanScratch& s : slots_) total += s.alloc_events();
  return total;
}

}  // namespace geoalign::partition
