#include "partition/box_partition.h"

#include "common/logging.h"

namespace geoalign::partition {

BoxPartition::BoxPartition(std::vector<IntervalPartition> axes)
    : axes_(std::move(axes)) {
  strides_.resize(axes_.size());
  num_units_ = 1;
  // Row-major: last axis varies fastest.
  for (size_t d = axes_.size(); d-- > 0;) {
    strides_[d] = num_units_;
    num_units_ *= axes_[d].NumUnits();
  }
}

Result<BoxPartition> BoxPartition::Create(
    std::vector<IntervalPartition> axes) {
  if (axes.empty()) {
    return Status::InvalidArgument("BoxPartition: need at least one axis");
  }
  return BoxPartition(std::move(axes));
}

double BoxPartition::Measure(size_t unit) const {
  std::vector<size_t> idx = AxisUnits(unit);
  double m = 1.0;
  for (size_t d = 0; d < axes_.size(); ++d) m *= axes_[d].Measure(idx[d]);
  return m;
}

Result<size_t> BoxPartition::Locate(const std::vector<double>& coords) const {
  if (coords.size() != axes_.size()) {
    return Status::InvalidArgument("BoxPartition::Locate: dimension mismatch");
  }
  size_t unit = 0;
  for (size_t d = 0; d < axes_.size(); ++d) {
    GEOALIGN_ASSIGN_OR_RETURN(size_t u, axes_[d].Locate(coords[d]));
    unit += u * strides_[d];
  }
  return unit;
}

size_t BoxPartition::LinearIndex(const std::vector<size_t>& axis_units) const {
  GEOALIGN_CHECK(axis_units.size() == axes_.size());
  size_t unit = 0;
  for (size_t d = 0; d < axes_.size(); ++d) {
    GEOALIGN_DCHECK(axis_units[d] < axes_[d].NumUnits());
    unit += axis_units[d] * strides_[d];
  }
  return unit;
}

std::vector<size_t> BoxPartition::AxisUnits(size_t unit) const {
  GEOALIGN_DCHECK(unit < num_units_);
  std::vector<size_t> idx(axes_.size());
  for (size_t d = 0; d < axes_.size(); ++d) {
    idx[d] = unit / strides_[d];
    unit %= strides_[d];
  }
  return idx;
}

}  // namespace geoalign::partition
