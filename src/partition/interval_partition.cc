#include "partition/interval_partition.h"

#include <algorithm>

namespace geoalign::partition {

Result<IntervalPartition> IntervalPartition::Create(
    std::vector<double> breaks) {
  if (breaks.size() < 2) {
    return Status::InvalidArgument(
        "IntervalPartition: need at least 2 breakpoints");
  }
  for (size_t i = 1; i < breaks.size(); ++i) {
    if (breaks[i] <= breaks[i - 1]) {
      return Status::InvalidArgument(
          "IntervalPartition: breakpoints must be strictly increasing");
    }
  }
  return IntervalPartition(std::move(breaks));
}

Result<IntervalPartition> IntervalPartition::Uniform(double lo, double hi,
                                                     size_t n) {
  if (n == 0 || hi <= lo) {
    return Status::InvalidArgument("IntervalPartition::Uniform: bad range");
  }
  std::vector<double> breaks(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    breaks[i] = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(n);
  }
  breaks[n] = hi;  // avoid round-off at the top end
  return Create(std::move(breaks));
}

Result<size_t> IntervalPartition::Locate(double x) const {
  if (x < breaks_.front() || x > breaks_.back()) {
    return Status::OutOfRange("IntervalPartition: point outside universe");
  }
  if (x == breaks_.back()) return NumUnits() - 1;
  auto it = std::upper_bound(breaks_.begin(), breaks_.end(), x);
  return static_cast<size_t>(it - breaks_.begin()) - 1;
}

}  // namespace geoalign::partition
