#include "partition/polygon_partition.h"

#include "common/string_util.h"
#include "geom/boolean_ops.h"

namespace geoalign::partition {

PolygonPartition::PolygonPartition(std::vector<geom::Polygon> units,
                                   std::vector<std::string> names)
    : units_(std::move(units)), names_(std::move(names)) {
  std::vector<geom::BBox> boxes;
  boxes.reserve(units_.size());
  for (const geom::Polygon& p : units_) {
    boxes.push_back(p.Bounds());
    bounds_.Expand(p.Bounds());
  }
  rtree_ = std::make_unique<spatial::RTree>(boxes);
}

Result<PolygonPartition> PolygonPartition::Create(
    std::vector<geom::Polygon> units, std::vector<std::string> names) {
  if (units.empty()) {
    return Status::InvalidArgument("PolygonPartition: no units");
  }
  if (names.empty()) {
    names.reserve(units.size());
    for (size_t i = 0; i < units.size(); ++i) {
      names.push_back(StrFormat("unit_%zu", i));
    }
  } else if (names.size() != units.size()) {
    return Status::InvalidArgument("PolygonPartition: name count mismatch");
  }
  return PolygonPartition(std::move(units), std::move(names));
}

double PolygonPartition::TotalMeasure() const {
  double acc = 0.0;
  for (const geom::Polygon& p : units_) acc += p.Area();
  return acc;
}

Result<size_t> PolygonPartition::Locate(const geom::Point& p) const {
  size_t found = units_.size();
  rtree_->Visit(geom::BBox(p.x, p.y, p.x, p.y), [&](uint32_t id) {
    if (units_[id].Contains(p)) {
      if (id < found) found = id;
    }
    return true;
  });
  if (found == units_.size()) {
    return Status::NotFound("PolygonPartition: point in no unit");
  }
  return found;
}

std::vector<uint32_t> PolygonPartition::CandidatesInBox(
    const geom::BBox& query) const {
  return rtree_->Query(query);
}

void PolygonPartition::CandidatesInBox(const geom::BBox& query,
                                       std::vector<uint32_t>* out) const {
  rtree_->Query(query, out);
}

Status PolygonPartition::ValidateDisjoint(double tol) const {
  std::vector<uint32_t> cands;
  for (uint32_t i = 0; i < units_.size(); ++i) {
    rtree_->Query(units_[i].Bounds(), &cands);
    for (uint32_t j : cands) {
      if (j <= i) continue;
      double inter = geom::IntersectionArea(units_[i], units_[j]);
      double lim = tol * std::min(units_[i].Area(), units_[j].Area());
      if (inter > lim) {
        return Status::FailedPrecondition(StrFormat(
            "PolygonPartition: units %u and %u overlap (area %.6g)", i, j,
            inter));
      }
    }
  }
  return Status::OK();
}

}  // namespace geoalign::partition
