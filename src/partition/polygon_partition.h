#ifndef GEOALIGN_PARTITION_POLYGON_PARTITION_H_
#define GEOALIGN_PARTITION_POLYGON_PARTITION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/polygon.h"
#include "spatial/rtree.h"

namespace geoalign::partition {

/// 2-D unit system: a set of pairwise-disjoint simple polygons (a GIS
/// "feature layer", e.g. the zip-code or county polygons of paper
/// Fig. 2). An R-tree over unit bounding boxes accelerates point
/// location and overlay candidate search.
class PolygonPartition {
 public:
  /// Builds from the unit polygons; optional names (e.g. FIPS codes)
  /// must match the unit count when provided. Disjointness is the
  /// caller's contract; `ValidateDisjoint` can verify it.
  static Result<PolygonPartition> Create(std::vector<geom::Polygon> units,
                                         std::vector<std::string> names = {});

  size_t NumUnits() const { return units_.size(); }
  const geom::Polygon& unit(size_t i) const { return units_[i]; }
  const std::string& name(size_t i) const { return names_[i]; }

  /// Area of unit i.
  double Measure(size_t i) const { return units_[i].Area(); }

  /// Sum of unit areas.
  double TotalMeasure() const;

  /// Bounding box of the whole layer.
  const geom::BBox& Bounds() const { return bounds_; }

  /// Unit containing p (boundary points resolve to the lowest-index
  /// unit). NotFound when p is in no unit.
  Result<size_t> Locate(const geom::Point& p) const;

  /// Units whose bounding box intersects `query`.
  std::vector<uint32_t> CandidatesInBox(const geom::BBox& query) const;

  /// Buffer-reuse overload: clears `*out` and appends the same hits in
  /// the same order, reusing its capacity across calls (no per-query
  /// vector allocation — see spatial::RTree::Query).
  void CandidatesInBox(const geom::BBox& query,
                       std::vector<uint32_t>* out) const;

  /// Verifies pairwise interior-disjointness: any two units whose
  /// intersection area exceeds `tol * min(area_i, area_j)` fail.
  Status ValidateDisjoint(double tol = 1e-9) const;

  const spatial::RTree& rtree() const { return *rtree_; }

 private:
  PolygonPartition(std::vector<geom::Polygon> units,
                   std::vector<std::string> names);

  std::vector<geom::Polygon> units_;
  std::vector<std::string> names_;
  geom::BBox bounds_;
  std::unique_ptr<spatial::RTree> rtree_;
};

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_POLYGON_PARTITION_H_
