#ifndef GEOALIGN_PARTITION_BOX_PARTITION_H_
#define GEOALIGN_PARTITION_BOX_PARTITION_H_

#include <vector>

#include "partition/interval_partition.h"

namespace geoalign::partition {

/// n-dimensional unit system: a product grid of per-axis interval
/// partitions. Units are axis-aligned boxes indexed row-major over the
/// axes. Demonstrates the paper's claim (§2.2, §3.4) that aggregate
/// interpolation is dimension-independent — 3-D disease grids, 4-D
/// space-time exposure grids, etc.
class BoxPartition {
 public:
  /// Builds from one IntervalPartition per axis (>= 1 axis).
  static Result<BoxPartition> Create(std::vector<IntervalPartition> axes);

  size_t Dimension() const { return axes_.size(); }
  size_t NumUnits() const { return num_units_; }

  /// Volume (product of per-axis widths) of unit i.
  double Measure(size_t unit) const;

  /// Unit containing the point (one coordinate per axis).
  Result<size_t> Locate(const std::vector<double>& coords) const;

  /// Row-major linear index from per-axis unit indices.
  size_t LinearIndex(const std::vector<size_t>& axis_units) const;
  /// Inverse of LinearIndex.
  std::vector<size_t> AxisUnits(size_t unit) const;

  const IntervalPartition& axis(size_t d) const { return axes_[d]; }

 private:
  explicit BoxPartition(std::vector<IntervalPartition> axes);

  std::vector<IntervalPartition> axes_;
  std::vector<size_t> strides_;
  size_t num_units_ = 0;
};

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_BOX_PARTITION_H_
