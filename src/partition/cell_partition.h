#ifndef GEOALIGN_PARTITION_CELL_PARTITION_H_
#define GEOALIGN_PARTITION_CELL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/vector_ops.h"

namespace geoalign::partition {

/// A shared set of indivisible atoms (e.g. census blocks, fine grid
/// cells) from which unit systems are assembled. Real zip codes and
/// counties are both unions of census blocks; modelling partitions as
/// atom labelings makes overlays exact and geometry-free.
struct AtomSpace {
  /// Measure (area/length/volume) of each atom; all positive.
  linalg::Vector measures;

  size_t NumAtoms() const { return measures.size(); }
};

/// A unit system defined as a labeling of a shared `AtomSpace`: unit i
/// is the union of atoms with label i. Every atom must be labeled
/// (partitions cover the universe).
class CellPartition {
 public:
  /// `labels[a]` is the unit of atom a; labels must cover the dense
  /// range [0, num_units) (every unit non-empty).
  static Result<CellPartition> Create(const AtomSpace* atoms,
                                      std::vector<uint32_t> labels,
                                      uint32_t num_units);

  size_t NumUnits() const { return num_units_; }
  size_t NumAtoms() const { return labels_.size(); }

  uint32_t LabelOf(size_t atom) const { return labels_[atom]; }

  /// Total measure of unit i.
  double Measure(size_t i) const { return unit_measures_[i]; }
  const linalg::Vector& unit_measures() const { return unit_measures_; }

  /// Sums per-atom values into per-unit aggregates.
  linalg::Vector AggregateAtomValues(const linalg::Vector& atom_values) const;

  const std::vector<uint32_t>& labels() const { return labels_; }
  const AtomSpace* atoms() const { return atoms_; }

 private:
  CellPartition(const AtomSpace* atoms, std::vector<uint32_t> labels,
                uint32_t num_units, linalg::Vector unit_measures)
      : atoms_(atoms),
        labels_(std::move(labels)),
        num_units_(num_units),
        unit_measures_(std::move(unit_measures)) {}

  const AtomSpace* atoms_;  // not owned
  std::vector<uint32_t> labels_;
  uint32_t num_units_;
  linalg::Vector unit_measures_;
};

}  // namespace geoalign::partition

#endif  // GEOALIGN_PARTITION_CELL_PARTITION_H_
