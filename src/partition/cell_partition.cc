#include "partition/cell_partition.h"

#include "common/logging.h"
#include "common/float_eq.h"

namespace geoalign::partition {

Result<CellPartition> CellPartition::Create(const AtomSpace* atoms,
                                            std::vector<uint32_t> labels,
                                            uint32_t num_units) {
  if (atoms == nullptr) {
    return Status::InvalidArgument("CellPartition: null atom space");
  }
  if (labels.size() != atoms->NumAtoms()) {
    return Status::InvalidArgument("CellPartition: label count mismatch");
  }
  if (num_units == 0) {
    return Status::InvalidArgument("CellPartition: zero units");
  }
  linalg::Vector unit_measures(num_units, 0.0);
  for (size_t a = 0; a < labels.size(); ++a) {
    if (labels[a] >= num_units) {
      return Status::InvalidArgument("CellPartition: label out of range");
    }
    if (atoms->measures[a] <= 0.0) {
      return Status::InvalidArgument("CellPartition: non-positive atom measure");
    }
    unit_measures[labels[a]] += atoms->measures[a];
  }
  for (uint32_t u = 0; u < num_units; ++u) {
    if (ExactlyZero(unit_measures[u])) {
      return Status::InvalidArgument("CellPartition: empty unit");
    }
  }
  return CellPartition(atoms, std::move(labels), num_units,
                       std::move(unit_measures));
}

linalg::Vector CellPartition::AggregateAtomValues(
    const linalg::Vector& atom_values) const {
  GEOALIGN_CHECK(atom_values.size() == labels_.size())
      << "AggregateAtomValues: size mismatch";
  linalg::Vector out(num_units_, 0.0);
  for (size_t a = 0; a < labels_.size(); ++a) {
    out[labels_[a]] += atom_values[a];
  }
  return out;
}

}  // namespace geoalign::partition
