#include "partition/disaggregation.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "sparse/coo_builder.h"
#include "common/float_eq.h"

namespace geoalign::partition {

Result<sparse::CsrMatrix> DmFromAtomValues(
    const OverlayResult& overlay, const linalg::Vector& atom_values) {
  if (overlay.atom_to_cell.empty()) {
    return Status::InvalidArgument(
        "DmFromAtomValues: overlay has no atom mapping (not a cell overlay)");
  }
  if (atom_values.size() != overlay.atom_to_cell.size()) {
    return Status::InvalidArgument("DmFromAtomValues: atom count mismatch");
  }
  // Accumulate per intersection cell, then scatter into the matrix.
  linalg::Vector cell_totals(overlay.cells.size(), 0.0);
  for (size_t a = 0; a < atom_values.size(); ++a) {
    cell_totals[overlay.atom_to_cell[a]] += atom_values[a];
  }
  sparse::CooBuilder builder(overlay.num_source, overlay.num_target);
  for (size_t k = 0; k < overlay.cells.size(); ++k) {
    if (!ExactlyZero(cell_totals[k])) {
      builder.Add(overlay.cells[k].source, overlay.cells[k].target,
                  cell_totals[k]);
    }
  }
  return builder.Build();
}

Result<sparse::CsrMatrix> DmFromPoints(const PolygonPartition& source,
                                       const PolygonPartition& target,
                                       const std::vector<geom::Point>& points,
                                       const linalg::Vector& weights,
                                       size_t* dropped_points) {
  if (points.size() != weights.size()) {
    return Status::InvalidArgument("DmFromPoints: weight count mismatch");
  }
  sparse::CooBuilder builder(source.NumUnits(), target.NumUnits());
  size_t dropped = 0;
  for (size_t p = 0; p < points.size(); ++p) {
    auto si = source.Locate(points[p]);
    auto ti = target.Locate(points[p]);
    if (!si.ok() || !ti.ok()) {
      ++dropped;
      continue;
    }
    builder.Add(*si, *ti, weights[p]);
  }
  if (dropped_points != nullptr) *dropped_points = dropped;
  return builder.Build();
}

linalg::Vector AggregatePoints(const PolygonPartition& layer,
                               const std::vector<geom::Point>& points,
                               const linalg::Vector& weights,
                               size_t* dropped_points) {
  GEOALIGN_CHECK(points.size() == weights.size())
      << "AggregatePoints: weight count mismatch";
  linalg::Vector out(layer.NumUnits(), 0.0);
  size_t dropped = 0;
  for (size_t p = 0; p < points.size(); ++p) {
    auto unit = layer.Locate(points[p]);
    if (!unit.ok()) {
      ++dropped;
      continue;
    }
    out[*unit] += weights[p];
  }
  if (dropped_points != nullptr) *dropped_points = dropped;
  return out;
}

Status CheckDmConsistency(const sparse::CsrMatrix& dm,
                          const linalg::Vector& source_aggregates,
                          double tol) {
  if (dm.rows() != source_aggregates.size()) {
    return Status::InvalidArgument("CheckDmConsistency: row count mismatch");
  }
  linalg::Vector sums = dm.RowSums();
  for (size_t i = 0; i < sums.size(); ++i) {
    double lim = tol * std::max(1.0, std::fabs(source_aggregates[i]));
    if (std::fabs(sums[i] - source_aggregates[i]) > lim) {
      return Status::FailedPrecondition(StrFormat(
          "DM row %zu sums to %.12g but source aggregate is %.12g", i,
          sums[i], source_aggregates[i]));
    }
  }
  return Status::OK();
}

}  // namespace geoalign::partition
