/* geoalign_c.h — stable C ABI for embedding the GeoAlign crosswalk
 * engine (docs/embedding.md).
 *
 * Design rules:
 *  - C99-clean: this header compiles under a plain C compiler; it
 *    includes only <stddef.h> and <stdint.h> and uses no C++
 *    constructs (enforced by the geoalign-capi-abi lint rule).
 *  - Opaque handles: a compiled plan is a `geoalign_plan*`; its layout
 *    is never exposed, so the library can evolve without breaking
 *    embedders. Bump GEOALIGN_ABI_VERSION on any breaking change and
 *    check geoalign_abi_version() at startup.
 *  - Zero-copy ingest: aggregate vectors and CSR matrices passed to
 *    geoalign_plan_compile are BORROWED — the library stores pointers,
 *    not copies, so the buffers must stay valid and unmodified until
 *    geoalign_plan_destroy. COO input is the exception: entries are
 *    converted (copied) during compile and may be freed right after.
 *  - Errors: functions return GEOALIGN_OK or an error code;
 *    geoalign_error_message() returns a thread-local description of
 *    this thread's most recent failure.
 */
#ifndef GEOALIGN_CAPI_GEOALIGN_C_H_
#define GEOALIGN_CAPI_GEOALIGN_C_H_

#include <stddef.h>
#include <stdint.h>

/* Bumped on every breaking change to this header's types or
 * semantics; compare against geoalign_abi_version() before use. */
#define GEOALIGN_ABI_VERSION 1

/* The library is built with -fvisibility=hidden; only symbols marked
 * with this macro are exported from libgeoalign_c. */
#if defined(_WIN32)
#define GEOALIGN_C_EXPORT __declspec(dllexport)
#else
#define GEOALIGN_C_EXPORT __attribute__((visibility("default")))
#endif

#ifdef __cplusplus
extern "C" {
#endif

/* Status codes returned by every fallible entry point. */
#define GEOALIGN_OK 0
#define GEOALIGN_ERR_INVALID_ARGUMENT 1
#define GEOALIGN_ERR_FAILED 2

/* A compiled, immutable crosswalk plan (compile once, execute many).
 * Thread-safe for concurrent geoalign_plan_execute calls. */
typedef struct geoalign_plan geoalign_plan;

/* A borrowed CSR matrix: row_ptr has rows + 1 entries; col_idx and
 * values have row_ptr[rows] entries; column indices are strictly
 * increasing within each row. The arrays are NOT copied at compile —
 * they must outlive the plan. */
typedef struct geoalign_csr {
  size_t rows;
  size_t cols;
  const size_t* row_ptr;
  const size_t* col_idx;
  const double* values;
} geoalign_csr;

/* One COO triplet; duplicate (row, col) pairs are summed. */
typedef struct geoalign_coo_entry {
  size_t row;
  size_t col;
  double value;
} geoalign_coo_entry;

/* One reference attribute: its aggregate column on the source units
 * plus its disaggregation matrix, given as EITHER `csr` (borrowed,
 * zero-copy) OR `coo` (converted/copied at compile) — exactly one of
 * the two pointers must be non-NULL. `source_aggregates` has as many
 * entries as the matrix has rows and is borrowed until destroy. */
typedef struct geoalign_reference {
  const char* name;                /* NUL-terminated, copied at compile */
  const double* source_aggregates; /* num_source entries, borrowed */
  const geoalign_csr* csr;         /* borrowed zero-copy matrix, or NULL */
  const geoalign_coo_entry* coo;   /* COO entries, or NULL */
  size_t coo_count;                /* number of entries in `coo` */
  size_t coo_rows;                 /* matrix shape when `coo` is used */
  size_t coo_cols;
} geoalign_reference;

/* The ABI version this library was built with. */
GEOALIGN_C_EXPORT uint32_t geoalign_abi_version(void);

/* Compiles a plan from `num_references` reference attributes using the
 * default GeoAlign options (normalized scaling, simplex weight
 * solver). On success stores the new plan in *out_plan; free it with
 * geoalign_plan_destroy. Borrowed buffers (aggregates, CSR arrays)
 * must stay valid until then. Validation matches the C++ API,
 * including the row-sum consistency check on each matrix. */
GEOALIGN_C_EXPORT int geoalign_plan_compile(
    const geoalign_reference* references, size_t num_references,
    geoalign_plan** out_plan);

/* Executes the plan for one objective column (`objective_len` must
 * equal geoalign_plan_num_source_units). Writes the realigned target
 * aggregates into out_target (geoalign_plan_num_target_units entries)
 * and, if out_weights is non-NULL, the learned reference weights
 * (num_references entries). `objective` is borrowed for the duration
 * of the call only. Bit-identical to the C++ compile/execute path. */
GEOALIGN_C_EXPORT int geoalign_plan_execute(const geoalign_plan* plan,
                                            const double* objective,
                                            size_t objective_len,
                                            double* out_target,
                                            double* out_weights);

GEOALIGN_C_EXPORT size_t geoalign_plan_num_source_units(
    const geoalign_plan* plan);
GEOALIGN_C_EXPORT size_t geoalign_plan_num_target_units(
    const geoalign_plan* plan);
GEOALIGN_C_EXPORT size_t geoalign_plan_num_references(
    const geoalign_plan* plan);

/* Content fingerprint of the compiled reference set — identical to the
 * C++ plan fingerprint for the same bytes, whatever the ingest path. */
GEOALIGN_C_EXPORT uint64_t geoalign_plan_fingerprint(
    const geoalign_plan* plan);

/* Destroys a plan; NULL is a no-op. After this the buffers borrowed at
 * compile time may be freed. */
GEOALIGN_C_EXPORT void geoalign_plan_destroy(geoalign_plan* plan);

/* Description of this thread's most recent failure (empty string if
 * none). The pointer stays valid until the next failing call on the
 * same thread. */
GEOALIGN_C_EXPORT const char* geoalign_error_message(void);

/* Metrics exposition formats for geoalign_metrics_export. */
#define GEOALIGN_METRICS_FORMAT_PROMETHEUS 0 /* text exposition 0.0.4 */
#define GEOALIGN_METRICS_FORMAT_JSON 1
#define GEOALIGN_METRICS_FORMAT_TEXT 2 /* "name value" lines */

/* Serializes a snapshot of the library's metrics registry in the
 * requested format — byte-identical to what the C++ exporter and
 * `geoalign_cli --metrics-format=...` produce, so an embedder (or the
 * future geoalignd daemon) can serve a Prometheus scrape without
 * linking any C++. On success stores a NUL-terminated malloc'd buffer
 * in *out_data (and its length, excluding the NUL, in *out_len when
 * non-NULL); free it with geoalign_buffer_free. */
GEOALIGN_C_EXPORT int geoalign_metrics_export(int format, char** out_data,
                                              size_t* out_len);

/* Frees a buffer returned by geoalign_metrics_export; NULL is a
 * no-op. */
GEOALIGN_C_EXPORT void geoalign_buffer_free(char* data);

/* Dumps the always-on flight recorder (recent execute audit records,
 * in-flight request ids, last metrics snapshot) to `path` as JSONL —
 * the same dump the library writes on GEOALIGN_CHECK failure or from
 * its fatal-signal handler when GEOALIGN_FLIGHT_RECORDER is set. */
GEOALIGN_C_EXPORT int geoalign_flight_recorder_dump(const char* path);

#ifdef __cplusplus
}
#endif

#endif /* GEOALIGN_CAPI_GEOALIGN_C_H_ */
