// C ABI shim over the compiled-plan API (capi/geoalign_c.h,
// docs/embedding.md). Borrowed aggregate columns and CSR arrays flow
// through the view-based Compile without a single byte copied; COO
// input is converted through CooBuilder (the copy is counted on
// `ingest.bytes_copied`). Everything observable — target estimates,
// weights, fingerprints, error messages — is bit-identical to the C++
// path, enforced by tests/capi_test.cc.

#include "capi/geoalign_c.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/span.h"
#include "common/string_util.h"
#include "core/crosswalk_plan.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sparse/coo_builder.h"
#include "sparse/csr_matrix.h"

// The opaque handle: a compiled plan. Borrowed caller buffers are
// referenced by the plan's prepared set; the caller keeps them alive
// until geoalign_plan_destroy (the documented ownership rule).
struct geoalign_plan {
  geoalign::core::CrosswalkPlan plan;
};

namespace {

using geoalign::Result;
using geoalign::Status;

thread_local std::string t_last_error;

int Fail(int code, std::string message) {
  t_last_error = std::move(message);
  return code;
}

int FailStatus(const Status& status) {
  return Fail(GEOALIGN_ERR_FAILED, std::string(status.message()));
}

geoalign::obs::Counter& IngestBytesCopied() {
  static geoalign::obs::Counter& c =
      geoalign::obs::MetricsRegistry::Global().GetCounter(
          "ingest.bytes_copied");
  return c;
}

// The structural validation the C++ callers get from
// CrosswalkInput::Validate, minus the objective checks (the C API has
// no objective at compile time). Same messages, same 1e-6 relative
// tolerance on the row-sum consistency precondition.
Status ValidateReference(const geoalign::core::ReferenceAttributeView& ref) {
  using geoalign::StrFormat;
  for (double v : ref.source_aggregates) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument(StrFormat(
          "reference '%s': negative or non-finite source aggregate",
          ref.name.c_str()));
    }
  }
  for (double v : ref.disaggregation.values()) {
    if (v < 0.0 || !std::isfinite(v)) {
      return Status::InvalidArgument(StrFormat(
          "reference '%s': negative or non-finite DM entry",
          ref.name.c_str()));
    }
  }
  const geoalign::linalg::Vector sums = ref.disaggregation.RowSums();
  for (size_t i = 0; i < sums.size(); ++i) {
    const double lim = 1e-6 * std::max(1.0, ref.source_aggregates[i]);
    if (std::fabs(sums[i] - ref.source_aggregates[i]) > lim) {
      return Status::FailedPrecondition(StrFormat(
          "reference '%s': DM row %zu sums to %.9g, source aggregate "
          "is %.9g",
          ref.name.c_str(), i, sums[i], ref.source_aggregates[i]));
    }
  }
  return Status::OK();
}

// Builds the per-reference view list from the C structs. CSR input is
// borrowed (zero-copy); COO input is accumulated into an owned matrix.
Result<std::vector<geoalign::core::ReferenceAttributeView>> BuildViews(
    const geoalign_reference* references, size_t num_references) {
  std::vector<geoalign::core::ReferenceAttributeView> views;
  views.reserve(num_references);
  uint64_t bytes_copied = 0;
  for (size_t k = 0; k < num_references; ++k) {
    const geoalign_reference& ref = references[k];
    if (ref.name == nullptr) {
      return Status::InvalidArgument("geoalign: reference name is NULL");
    }
    if (ref.source_aggregates == nullptr) {
      return Status::InvalidArgument(std::string("geoalign: reference '") +
                                     ref.name +
                                     "': source_aggregates is NULL");
    }
    if ((ref.csr == nullptr) == (ref.coo == nullptr)) {
      return Status::InvalidArgument(
          std::string("geoalign: reference '") + ref.name +
          "': exactly one of csr/coo must be set");
    }
    geoalign::core::ReferenceAttributeView view;
    view.name = ref.name;
    if (ref.csr != nullptr) {
      const geoalign_csr& csr = *ref.csr;
      if (csr.row_ptr == nullptr ||
          (csr.rows > 0 && csr.row_ptr[csr.rows] > 0 &&
           (csr.col_idx == nullptr || csr.values == nullptr))) {
        return Status::InvalidArgument(std::string("geoalign: reference '") +
                                       ref.name + "': NULL CSR array");
      }
      geoalign::sparse::CsrView cv;
      cv.rows = csr.rows;
      cv.cols = csr.cols;
      cv.row_ptr = geoalign::common::ConstSpan<size_t>(csr.row_ptr,
                                                       csr.rows + 1);
      const size_t nnz = csr.row_ptr[csr.rows];
      cv.col_idx = geoalign::common::ConstSpan<size_t>(csr.col_idx, nnz);
      cv.values = geoalign::common::ConstSpan<double>(csr.values, nnz);
      GEOALIGN_ASSIGN_OR_RETURN(
          view.disaggregation,
          geoalign::sparse::CsrMatrix::FromBorrowed(cv));
      view.source_aggregates =
          geoalign::common::ColumnView(ref.source_aggregates, csr.rows);
    } else {
      if (ref.coo_count > 0 && ref.coo == nullptr) {
        return Status::InvalidArgument(std::string("geoalign: reference '") +
                                       ref.name + "': NULL COO array");
      }
      geoalign::sparse::CooBuilder builder(ref.coo_rows, ref.coo_cols);
      for (size_t i = 0; i < ref.coo_count; ++i) {
        const geoalign_coo_entry& e = ref.coo[i];
        if (e.row >= ref.coo_rows || e.col >= ref.coo_cols) {
          return Status::InvalidArgument(
              std::string("geoalign: reference '") + ref.name +
              "': COO entry out of range");
        }
        builder.Add(e.row, e.col, e.value);
      }
      view.disaggregation = builder.Build();
      bytes_copied +=
          view.disaggregation.row_ptr().size() * sizeof(size_t) +
          view.disaggregation.nnz() * (sizeof(size_t) + sizeof(double));
      view.source_aggregates =
          geoalign::common::ColumnView(ref.source_aggregates, ref.coo_rows);
    }
    GEOALIGN_RETURN_IF_ERROR(ValidateReference(view));
    views.push_back(std::move(view));
  }
  IngestBytesCopied().Add(bytes_copied);
  return views;
}

}  // namespace

extern "C" {

uint32_t geoalign_abi_version(void) { return GEOALIGN_ABI_VERSION; }

int geoalign_plan_compile(const geoalign_reference* references,
                          size_t num_references, geoalign_plan** out_plan) {
  if (out_plan == nullptr) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT,
                "geoalign: out_plan is NULL");
  }
  *out_plan = nullptr;
  if (references == nullptr || num_references == 0) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT,
                "geoalign: no reference attributes");
  }
  try {
    Result<std::vector<geoalign::core::ReferenceAttributeView>> views =
        BuildViews(references, num_references);
    if (!views.ok()) {
      const int code =
          views.status().code() == geoalign::StatusCode::kInvalidArgument
              ? GEOALIGN_ERR_INVALID_ARGUMENT
              : GEOALIGN_ERR_FAILED;
      return Fail(code, std::string(views.status().message()));
    }
    Result<geoalign::core::CrosswalkPlan> plan =
        geoalign::core::CrosswalkPlan::Compile(
            std::move(views).value(), geoalign::core::GeoAlignOptions{});
    if (!plan.ok()) return FailStatus(plan.status());
    *out_plan = new geoalign_plan{std::move(plan).value()};
    return GEOALIGN_OK;
  } catch (const std::exception& e) {
    return Fail(GEOALIGN_ERR_FAILED, e.what());
  }
}

int geoalign_plan_execute(const geoalign_plan* plan, const double* objective,
                          size_t objective_len, double* out_target,
                          double* out_weights) {
  if (plan == nullptr) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT, "geoalign: plan is NULL");
  }
  if (objective == nullptr && objective_len > 0) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT,
                "geoalign: objective is NULL");
  }
  if (out_target == nullptr) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT,
                "geoalign: out_target is NULL");
  }
  try {
    // The aggregates-only lane: never materializes the estimated DM,
    // bit-identical to the materializing path.
    Result<geoalign::core::CrosswalkResult> result = plan->plan.Execute(
        geoalign::common::ColumnView(objective, objective_len),
        geoalign::core::ExecuteOutput::kAggregatesOnly);
    if (!result.ok()) return FailStatus(result.status());
    const geoalign::core::CrosswalkResult& res = result.value();
    std::memcpy(out_target, res.target_estimates.data(),
                res.target_estimates.size() * sizeof(double));
    if (out_weights != nullptr) {
      std::memcpy(out_weights, res.weights.data(),
                  res.weights.size() * sizeof(double));
    }
    return GEOALIGN_OK;
  } catch (const std::exception& e) {
    return Fail(GEOALIGN_ERR_FAILED, e.what());
  }
}

size_t geoalign_plan_num_source_units(const geoalign_plan* plan) {
  return plan == nullptr ? 0 : plan->plan.num_source_units();
}

size_t geoalign_plan_num_target_units(const geoalign_plan* plan) {
  return plan == nullptr ? 0 : plan->plan.num_target_units();
}

size_t geoalign_plan_num_references(const geoalign_plan* plan) {
  return plan == nullptr ? 0 : plan->plan.references().size();
}

uint64_t geoalign_plan_fingerprint(const geoalign_plan* plan) {
  return plan == nullptr ? 0 : plan->plan.fingerprint();
}

void geoalign_plan_destroy(geoalign_plan* plan) { delete plan; }

const char* geoalign_error_message(void) { return t_last_error.c_str(); }

int geoalign_metrics_export(int format, char** out_data, size_t* out_len) {
  if (out_data == nullptr) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT, "geoalign: out_data is NULL");
  }
  *out_data = nullptr;
  if (out_len != nullptr) *out_len = 0;
  geoalign::obs::MetricsFormat fmt;
  switch (format) {
    case GEOALIGN_METRICS_FORMAT_PROMETHEUS:
      fmt = geoalign::obs::MetricsFormat::kPrometheus;
      break;
    case GEOALIGN_METRICS_FORMAT_JSON:
      fmt = geoalign::obs::MetricsFormat::kJson;
      break;
    case GEOALIGN_METRICS_FORMAT_TEXT:
      fmt = geoalign::obs::MetricsFormat::kText;
      break;
    default:
      return Fail(GEOALIGN_ERR_INVALID_ARGUMENT,
                  "geoalign: unknown metrics format");
  }
  try {
    const std::string rendered = geoalign::obs::FormatMetricsSnapshot(
        geoalign::obs::MetricsRegistry::Global().Snapshot(), fmt);
    char* buffer = static_cast<char*>(std::malloc(rendered.size() + 1));
    if (buffer == nullptr) {
      return Fail(GEOALIGN_ERR_FAILED, "geoalign: out of memory");
    }
    std::memcpy(buffer, rendered.c_str(), rendered.size() + 1);
    *out_data = buffer;
    if (out_len != nullptr) *out_len = rendered.size();
    return GEOALIGN_OK;
  } catch (const std::exception& e) {
    return Fail(GEOALIGN_ERR_FAILED, e.what());
  }
}

void geoalign_buffer_free(char* data) { std::free(data); }

int geoalign_flight_recorder_dump(const char* path) {
  if (path == nullptr) {
    return Fail(GEOALIGN_ERR_INVALID_ARGUMENT, "geoalign: path is NULL");
  }
  try {
    std::string error;
    if (!geoalign::obs::FlightRecorder::Global().DumpToFile(path, "demand",
                                                            &error)) {
      return Fail(GEOALIGN_ERR_FAILED, "geoalign: " + error);
    }
    return GEOALIGN_OK;
  } catch (const std::exception& e) {
    return Fail(GEOALIGN_ERR_FAILED, e.what());
  }
}

}  // extern "C"
