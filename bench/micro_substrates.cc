// Microbenchmarks for the substrate libraries: the constrained
// least-squares solvers, sparse kernels, overlay construction, spatial
// indexes, and polygon clipping. These are the building blocks whose
// costs the scaling study (Fig. 6) aggregates.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "geom/boolean_ops.h"
#include "geom/voronoi.h"
#include "linalg/nnls.h"
#include "linalg/simplex_ls.h"
#include "partition/overlay.h"
#include "spatial/rtree.h"
#include "sparse/coo_builder.h"
#include "sparse/sparse_ops.h"
#include "core/batch.h"
#include "core/geoalign.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

void BM_SimplexLs(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1);
  linalg::Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.Uniform(0.0, 1.0);
  }
  linalg::Vector b(m);
  for (double& v : b) v = rng.Uniform(0.0, 1.0);
  for (auto _ : state) {
    auto sol = linalg::SolveSimplexLeastSquares(a, b);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexLs)->Args({2000, 4})->Args({30000, 9})->Args({30000, 16});

void BM_Nnls(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  Rng rng(2);
  linalg::Matrix a(m, 8);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 8; ++j) a(i, j) = rng.Gaussian(0.0, 1.0);
  }
  linalg::Vector b(m);
  for (double& v : b) v = rng.Gaussian(0.0, 1.0);
  for (auto _ : state) {
    auto sol = linalg::SolveNnls(a, b);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_Nnls)->Arg(2000)->Arg(30000);

sparse::CsrMatrix RandomDm(size_t rows, size_t cols, size_t nnz_per_row,
                           uint64_t seed) {
  Rng rng(seed);
  sparse::CooBuilder b(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t k = 0; k < nnz_per_row; ++k) {
      b.Add(i, rng.UniformInt(uint64_t{cols}), rng.Uniform(0.5, 10.0));
    }
  }
  return b.Build();
}

void BM_SparseWeightedSum(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  std::vector<sparse::CsrMatrix> mats;
  std::vector<const sparse::CsrMatrix*> ptrs;
  for (int k = 0; k < 9; ++k) {
    mats.push_back(RandomDm(rows, rows / 10 + 1, 3, 10 + k));
  }
  for (const auto& m : mats) ptrs.push_back(&m);
  linalg::Vector w(9, 1.0 / 9.0);
  for (auto _ : state) {
    auto sum = sparse::WeightedSum(ptrs, w);
    benchmark::DoNotOptimize(sum);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SparseWeightedSum)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(30000)
    ->Complexity(benchmark::oN);

void BM_OverlayCells(benchmark::State& state) {
  synth::UniverseOptions opts;
  opts.scale = static_cast<double>(state.range(0)) / 100.0;
  auto uni = synth::BuildUniverse(synth::UniverseId::kNortheast, opts);
  uni.status().CheckOK();
  for (auto _ : state) {
    auto ov = partition::OverlayCells(uni->geography->zips(),
                                      uni->geography->counties());
    benchmark::DoNotOptimize(ov);
  }
  state.counters["zips"] = static_cast<double>(uni->NumZips());
}
BENCHMARK(BM_OverlayCells)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_RTreeQuery(benchmark::State& state) {
  Rng rng(3);
  std::vector<geom::BBox> boxes;
  size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0.0, 1000.0);
    double y = rng.Uniform(0.0, 1000.0);
    boxes.emplace_back(x, y, x + 2.0, y + 2.0);
  }
  spatial::RTree tree(boxes);
  size_t hit_count = 0;
  for (auto _ : state) {
    double x = rng.Uniform(0.0, 995.0);
    double y = rng.Uniform(0.0, 995.0);
    tree.Visit(geom::BBox(x, y, x + 5.0, y + 5.0), [&](uint32_t) {
      ++hit_count;
      return true;
    });
  }
  benchmark::DoNotOptimize(hit_count);
}
BENCHMARK(BM_RTreeQuery)->Arg(10000)->Arg(100000);

void BM_PolygonIntersectionArea(benchmark::State& state) {
  int verts = static_cast<int>(state.range(0));
  geom::Polygon a = geom::Polygon::RegularNgon({0.0, 0.0}, 1.0, verts, 0.1);
  geom::Polygon b = geom::Polygon::RegularNgon({0.4, 0.3}, 1.0, verts, 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::IntersectionArea(a, b));
  }
}
BENCHMARK(BM_PolygonIntersectionArea)->Arg(8)->Arg(32)->Arg(128);

void BM_Voronoi(benchmark::State& state) {
  Rng rng(4);
  size_t n = static_cast<size_t>(state.range(0));
  geom::BBox box(0, 0, 100, 100);
  std::vector<geom::Point> sites;
  for (size_t i = 0; i < n; ++i) {
    sites.push_back({rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)});
  }
  for (auto _ : state) {
    auto cells = geom::VoronoiCells(sites, box);
    benchmark::DoNotOptimize(cells);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Voronoi)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_CrosswalkLoop(benchmark::State& state) {
  synth::UniverseOptions opts;
  opts.scale = 0.25;
  auto uni = synth::BuildUniverse(synth::UniverseId::kNortheast, opts);
  uni.status().CheckOK();
  auto input0 = std::move(uni->MakeLeaveOneOutInput(0)).ValueOrDie();
  core::GeoAlign geoalign;
  // Inputs prepared outside the timed region, so the comparison with
  // the batch API isolates the per-objective recomputation cost (not
  // reference copying).
  std::vector<core::CrosswalkInput> inputs;
  for (const auto& d : uni->datasets) {
    core::CrosswalkInput input;
    input.objective_source = d.source;
    input.references = input0.references;
    inputs.push_back(std::move(input));
  }
  for (auto _ : state) {
    for (const core::CrosswalkInput& input : inputs) {
      auto res = geoalign.Crosswalk(input);
      res.status().CheckOK();
      benchmark::DoNotOptimize(res->target_estimates.data());
    }
  }
}
BENCHMARK(BM_CrosswalkLoop)->Unit(benchmark::kMillisecond);

void BM_CrosswalkBatch(benchmark::State& state) {
  synth::UniverseOptions opts;
  opts.scale = 0.25;
  auto uni = synth::BuildUniverse(synth::UniverseId::kNortheast, opts);
  uni.status().CheckOK();
  auto input0 = std::move(uni->MakeLeaveOneOutInput(0)).ValueOrDie();
  auto batch = std::move(core::BatchCrosswalk::Create(input0.references)).ValueOrDie();
  std::vector<core::BatchCrosswalk::Objective> objectives;
  for (const auto& d : uni->datasets) {
    objectives.push_back({d.name, d.source});
  }
  for (auto _ : state) {
    auto res = batch.Run(objectives);
    res.status().CheckOK();
    benchmark::DoNotOptimize(res->size());
  }
}
BENCHMARK(BM_CrosswalkBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace geoalign

BENCHMARK_MAIN();
