// Cost of the telemetry primitives, enabled vs disabled: per-op
// nanoseconds for Counter::Add, Histogram::Record, and a full
// GEOALIGN_TRACE_SPAN enter/exit, plus the end-to-end serving-path
// check the acceptance bar cares about — a compiled-plan Execute with
// telemetry compiled in but disabled must be within noise of the same
// build with telemetry on. Results go to BENCH_obs_overhead.json;
// docs/observability.md cites these numbers.
//
// Usage: obs_overhead [output.json]
//   GEOALIGN_BENCH_SCALE  rescales the universe        (default 1.0)
//   GEOALIGN_BENCH_REPS   timing repetitions           (default 3)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include "bench_util.h"
#include "core/geoalign.h"
#include "eval/report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace geoalign {
namespace {

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 3;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 3;
}

// Best-of-reps nanoseconds per op for `fn` run kOps times.
template <typename Fn>
double NanosPerOp(size_t ops, Fn&& fn) {
  double best = 1e300;
  for (size_t rep = 0; rep < Reps(); ++rep) {
    obs::Stopwatch watch;
    for (size_t i = 0; i < ops; ++i) fn(i);
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best * 1e9 / static_cast<double>(ops);
}

struct Row {
  const char* name;
  double enabled_ns;
  double disabled_ns;
};

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_obs_overhead.json";
  constexpr size_t kOps = 2'000'000;

  obs::Counter counter;
  obs::Histogram histogram(obs::Histogram::DefaultBounds());
  std::vector<Row> rows;

  auto measure = [&](const char* name, auto&& fn) {
    obs::SetEnabled(true);
    double on = NanosPerOp(kOps, fn);
    obs::SetEnabled(false);
    double off = NanosPerOp(kOps, fn);
    obs::SetEnabled(true);
    rows.push_back({name, on, off});
  };

  measure("counter_add", [&](size_t) { counter.Add(); });
  measure("histogram_record",
          [&](size_t i) { histogram.Record(static_cast<double>(i % 4096)); });
  measure("trace_span", [&](size_t) { GEOALIGN_TRACE_SPAN("bench.span"); });
  obs::TraceRecorder::Global().Clear();

  // Request scoping and the flight recorder are deliberately NOT gated
  // on the telemetry switch (docs/observability.md), so their enabled
  // and disabled columns measure the same always-on cost.
  measure("request_scope",
          [&](size_t) { obs::RequestScope scope("bench-request"); });
  obs::AuditRecord proto;
  std::memcpy(proto.mode, "fused", 6);
  measure("audit_record", [&](size_t i) {
    proto.rows = i;
    obs::FlightRecorder::Global().Record(proto);
  });
  obs::FlightRecorder::Global().Clear();

  // End-to-end: one compiled plan executed repeatedly, telemetry on vs
  // off. This is the configuration the <2% overhead acceptance bound
  // refers to (see docs/observability.md).
  const synth::Universe& uni = bench::GetUniverse(
      synth::UniverseId::kUnitedStates, synth::SuiteKind::kUnitedStates);
  auto input = std::move(uni.MakeLeaveOneOutInput(0)).ValueOrDie();
  core::GeoAlignOptions options;
  options.threads = 1;
  auto plan = core::CrosswalkPlan::Compile(input.references, options);
  plan.status().CheckOK();
  constexpr size_t kExecs = 20;
  auto execute_once = [&](size_t) {
    auto result = plan->Execute(input.objective_source);
    result.status().CheckOK();
  };
  obs::SetEnabled(true);
  double exec_on_ns = NanosPerOp(kExecs, execute_once);
  obs::SetEnabled(false);
  double exec_off_ns = NanosPerOp(kExecs, execute_once);
  obs::SetEnabled(true);
  rows.push_back({"plan_execute", exec_on_ns, exec_off_ns});

  eval::TextTable table({"op", "enabled ns/op", "disabled ns/op"});
  for (const Row& r : rows) {
    table.Row().Text(r.name).Num(r.enabled_ns).Num(r.disabled_ns);
  }
  table.Print();
  double exec_ratio = exec_on_ns / exec_off_ns;
  std::printf("\nplan_execute enabled/disabled ratio: %.4f\n", exec_ratio);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", bench::BenchScale());
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"plan_execute_enabled_over_disabled\": %.4f,\n",
               exec_ratio);
  std::fprintf(f, "  \"ops\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"enabled_ns\": %.2f, "
                 "\"disabled_ns\": %.2f}%s\n",
                 rows[i].name, rows[i].enabled_ns, rows[i].disabled_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
