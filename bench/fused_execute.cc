// Fused aggregates-only serving vs the materializing execute path:
// RealignMany over one shared compiled plan, comparing
//
//  * materializing — RealignMany(columns) with the default
//    ExecuteOutput::kFullDm: every column materializes DM̂_o (Eq. 14)
//    as a fresh CSR and reduces it to â_o^t (Eq. 17);
//  * fused — RealignMany(columns, ..., kAggregatesOnly): one pass over
//    the shared PreparedReferenceSet structure scattering straight
//    into the target accumulator, DM̂_o never allocated, all scratch
//    served from plan-spec'd reusable workspaces.
//
// Axes: universe size (nnz of the shared CSR structure) × reference
// count (dense synth layers extended by structure-preserving clones,
// so the set stays aligned and the fused kernel engages) × column
// count (64 and the GEOALIGN_BENCH_MAX_COLS cap). Every sample checks
// â_o^t / weights / zero_rows BIT-identical across the two arms and
// reads the execute.hot_path_allocs / execute.workspace_reuse
// counters across the timed fused reps (after a warmup pass); the
// exit code gates identity, alignment, and the zero-hot-allocation
// promise. Results go to BENCH_fused_execute.json.
//
// A third section sweeps the column-panel lane itself: panel widths
// {1, 4, 8, 16, 32, 64} × dispatch ISA (forced scalar vs the native
// BestSupportedIsa), driving CrosswalkPlan::ExecutePanelWith directly
// on the largest universe. Every (width, isa) cell is checked
// bit-identical against the width-1 forced-scalar oracle and must
// report zero hot-path allocations after warmup — the sweep measures
// throughput only; results are not allowed to move.
//
// Usage: fused_execute [output.json]
//   GEOALIGN_BENCH_SCALE     rescales the universes  (default 1.0)
//   GEOALIGN_BENCH_REPS      timing repetitions      (default 3)
//   GEOALIGN_BENCH_MAX_COLS  caps the column count   (default 512)

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/execute_workspace.h"
#include "core/geoalign.h"
#include "core/pipeline.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "sparse/coo_builder.h"
#include "sparse/simd/isa.h"
#include "sparse/simd/panel_kernels.h"

namespace geoalign {
namespace {

struct Sample {
  std::string universe;
  size_t zips = 0;
  size_t counties = 0;
  size_t references = 0;
  size_t shared_nnz = 0;  // nnz of the shared CSR structure
  size_t columns = 0;
  double materializing_seconds = 0.0;  // best of reps
  double fused_seconds = 0.0;          // best of reps
  double speedup = 1.0;
  uint64_t hot_path_allocs = 0;  // delta across timed fused reps
  uint64_t workspace_reuse = 0;  // delta across timed fused reps
  bool aligned = false;
  bool bit_identical = true;
};

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 3;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 3;
}

size_t MaxCols() {
  const char* env = std::getenv("GEOALIGN_BENCH_MAX_COLS");
  if (env == nullptr) return 512;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 512;
}

std::vector<std::string> MakeUnitNames(const char* prefix, size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(StrFormat("%s%06zu", prefix, i));
  }
  return names;
}

// B full-length objective columns: deterministic multiplicative
// perturbations of the base objective, keyed by unit name.
std::vector<core::CrosswalkPipeline::Column> MakeColumns(
    const std::vector<std::string>& sources, const linalg::Vector& base,
    size_t count) {
  std::vector<core::CrosswalkPipeline::Column> columns;
  columns.reserve(count);
  for (size_t b = 0; b < count; ++b) {
    core::CrosswalkPipeline::Column col;
    col.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      double wobble =
          1.0 + 0.1 * std::sin(static_cast<double>(i * 31 + b * 17 + 1));
      col.emplace_back(sources[i], base[i] * wobble);
    }
    columns.push_back(std::move(col));
  }
  return columns;
}

// The same perturbed columns as MakeColumns, already resolved to
// source-order vectors — ExecutePanelWith's input shape (the sweep
// drives the plan directly, below the name-resolution layer).
std::vector<linalg::Vector> MakeObjectiveVectors(const linalg::Vector& base,
                                                size_t count) {
  std::vector<linalg::Vector> objectives;
  objectives.reserve(count);
  for (size_t b = 0; b < count; ++b) {
    linalg::Vector v(base.size(), 0.0);
    for (size_t i = 0; i < base.size(); ++i) {
      double wobble =
          1.0 + 0.1 * std::sin(static_cast<double>(i * 31 + b * 17 + 1));
      v[i] = base[i] * wobble;
    }
    objectives.push_back(std::move(v));
  }
  return objectives;
}

// `count` references sharing one CSR structure: the universe's dense
// layers (Poisson layers drop zero cells and would break alignment),
// extended past five by structure-preserving clones — same
// coordinates, values wobbled within (0.75, 1.25) so none cancels to
// zero, aggregates recomputed as the new row sums.
Result<std::vector<core::ReferenceAttribute>> MakeAlignedReferences(
    const synth::Universe& uni, size_t count, linalg::Vector* objective) {
  GEOALIGN_ASSIGN_OR_RETURN(size_t test_index, uni.FindDataset("Starbucks"));
  GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkInput input,
                            uni.MakeLeaveOneOutInput(test_index));
  *objective = std::move(input.objective_source);
  std::vector<core::ReferenceAttribute> refs;
  for (core::ReferenceAttribute& ref : input.references) {
    if (ref.name == "Accidents" || ref.name == "Area (Sq. Miles)" ||
        ref.name == "Population" || ref.name == "USPS Business Address" ||
        ref.name == "USPS Residential Address") {
      refs.push_back(std::move(ref));
    }
  }
  if (refs.empty()) {
    return Status::Internal("fused_execute: no dense layers in suite");
  }
  const size_t base = refs.size();
  while (refs.size() < count) {
    const size_t k = refs.size();
    const core::ReferenceAttribute& seed = refs[k % base];
    core::ReferenceAttribute clone;
    clone.name = seed.name + StrFormat(" clone %zu", k / base);
    const sparse::CsrMatrix& dm = seed.disaggregation;
    sparse::CooBuilder builder(dm.rows(), dm.cols());
    for (size_t r = 0; r < dm.rows(); ++r) {
      sparse::CsrMatrix::RowView row = dm.Row(r);
      for (size_t j = 0; j < row.size; ++j) {
        double wobble =
            1.0 + 0.25 * std::sin(static_cast<double>(k * 131 + r * 17 + j));
        builder.Add(r, row.cols[j], row.values[j] * wobble);
      }
    }
    clone.disaggregation = builder.Build();
    clone.source_aggregates = clone.disaggregation.RowSums();
    refs.push_back(std::move(clone));
  }
  refs.resize(std::min(count, refs.size()));
  return refs;
}

// Exact equality on everything the fused lane produces; the fused arm
// must additionally carry no DM at all.
bool BitIdenticalAggregates(const std::vector<core::CrosswalkResult>& fused,
                            const std::vector<core::CrosswalkResult>& mat) {
  if (fused.size() != mat.size()) return false;
  for (size_t i = 0; i < fused.size(); ++i) {
    if (fused[i].target_estimates != mat[i].target_estimates ||
        fused[i].weights != mat[i].weights ||
        fused[i].zero_rows != mat[i].zero_rows ||
        fused[i].estimated_dm.values().size() != 0 ||
        fused[i].estimated_dm.rows() != 0) {
      return false;
    }
  }
  return true;
}

Sample BenchOne(const synth::Universe& uni, size_t num_references,
                size_t num_columns) {
  Sample s;
  s.universe = uni.name;
  s.zips = uni.NumZips();
  s.counties = uni.NumCounties();
  s.references = num_references;
  s.columns = num_columns;
  s.materializing_seconds = 1e300;
  s.fused_seconds = 1e300;

  linalg::Vector objective;
  auto refs = MakeAlignedReferences(uni, num_references, &objective);
  refs.status().CheckOK();
  std::vector<std::string> sources = MakeUnitNames("z", objective.size());
  std::vector<std::string> targets =
      MakeUnitNames("c", refs->front().disaggregation.cols());
  std::vector<core::CrosswalkPipeline::Column> columns =
      MakeColumns(sources, objective, num_columns);

  core::GeoAlignOptions options;
  options.threads = 1;
  auto pipeline = core::CrosswalkPipeline::Create(
      sources, targets, *refs, std::make_shared<core::GeoAlign>(options));
  pipeline.status().CheckOK();
  if (pipeline->plan() == nullptr) {
    std::fprintf(stderr, "fused_execute: plan failed to compile\n");
    return s;
  }
  s.aligned = pipeline->plan()->references().aligned();
  s.shared_nnz = pipeline->plan()->references().dms()[0]->values().size();

  // Warmup both arms (also the arms for the identity check).
  auto mat = pipeline->RealignMany(columns, /*threads=*/1);
  mat.status().CheckOK();
  auto fused = pipeline->RealignMany(columns, /*threads=*/1,
                                     core::ExecuteOutput::kAggregatesOnly);
  fused.status().CheckOK();
  s.bit_identical = BitIdenticalAggregates(*fused, *mat);

  for (size_t rep = 0; rep < Reps(); ++rep) {
    Stopwatch watch;
    auto res = pipeline->RealignMany(columns, /*threads=*/1);
    res.status().CheckOK();
    s.materializing_seconds =
        std::min(s.materializing_seconds, watch.ElapsedSeconds());
  }

  obs::Counter& allocs = obs::MetricsRegistry::Global().GetCounter(
      "execute.hot_path_allocs");
  obs::Counter& reuse = obs::MetricsRegistry::Global().GetCounter(
      "execute.workspace_reuse");
  uint64_t allocs_before = allocs.Value();
  uint64_t reuse_before = reuse.Value();
  for (size_t rep = 0; rep < Reps(); ++rep) {
    Stopwatch watch;
    auto res = pipeline->RealignMany(columns, /*threads=*/1,
                                     core::ExecuteOutput::kAggregatesOnly);
    res.status().CheckOK();
    s.fused_seconds = std::min(s.fused_seconds, watch.ElapsedSeconds());
  }
  s.hot_path_allocs = allocs.Value() - allocs_before;
  s.workspace_reuse = reuse.Value() - reuse_before;
  s.speedup = s.materializing_seconds / s.fused_seconds;
  return s;
}

// ---- panel-width × ISA sweep ------------------------------------------

struct SweepSample {
  std::string isa;
  size_t width = 0;
  double seconds = 0.0;  // best of reps, all columns
  double cols_per_sec = 0.0;
  double speedup_vs_w1_scalar = 1.0;
  uint64_t hot_path_allocs = 0;  // delta across timed reps
  bool bit_identical = true;     // vs the width-1 forced-scalar oracle
};

// All columns through ExecutePanelWith in panels of `width`, one
// reusable workspace (the single-threaded serving pattern).
std::vector<core::CrosswalkResult> RunPanels(
    const core::CrosswalkPlan& plan,
    const std::vector<linalg::Vector>& objectives, size_t width,
    core::ExecuteWorkspace* ws) {
  const size_t n = objectives.size();
  std::vector<std::optional<Result<core::CrosswalkResult>>> slots(n);
  std::array<common::ColumnView, sparse::simd::kMaxPanelWidth> objs;
  std::array<std::optional<Result<core::CrosswalkResult>>*,
             sparse::simd::kMaxPanelWidth>
      outs;
  for (size_t base = 0; base < n; base += width) {
    const size_t count = std::min(width, n - base);
    for (size_t k = 0; k < count; ++k) {
      objs[k] = objectives[base + k];
      outs[k] = &slots[base + k];
    }
    plan.ExecutePanelWith(objs.data(), outs.data(), count, ws);
  }
  std::vector<core::CrosswalkResult> out;
  out.reserve(n);
  for (std::optional<Result<core::CrosswalkResult>>& slot : slots) {
    slot->status().CheckOK();
    out.push_back(std::move(*slot).value());
  }
  return out;
}

bool BitIdenticalResults(const std::vector<core::CrosswalkResult>& got,
                         const std::vector<core::CrosswalkResult>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].target_estimates != want[i].target_estimates ||
        got[i].weights != want[i].weights ||
        got[i].zero_rows != want[i].zero_rows) {
      return false;
    }
  }
  return true;
}

// Widths {1, 4, 8, 16, 32, 64} under forced-scalar dispatch and (when
// the machine has one) the native ISA. Every cell bit-checked against
// the width-1 scalar oracle; speedups are relative to that oracle's
// own timing, so the table reads as "what panel blocking + SIMD buy
// over the per-column scalar lane".
std::vector<SweepSample> PanelWidthSweep(
    const core::CrosswalkPlan& plan,
    const std::vector<linalg::Vector>& objectives) {
  obs::Counter& allocs = obs::MetricsRegistry::Global().GetCounter(
      "execute.hot_path_allocs");
  std::vector<sparse::simd::Isa> isas = {sparse::simd::Isa::kScalar};
  if (sparse::simd::BestSupportedIsa() != sparse::simd::Isa::kScalar) {
    isas.push_back(sparse::simd::BestSupportedIsa());
  }
  std::vector<core::CrosswalkResult> oracle;
  double oracle_seconds = 0.0;
  std::vector<SweepSample> sweep;
  for (sparse::simd::Isa isa : isas) {
    sparse::simd::ScopedForceIsa force(isa);
    for (size_t width : {size_t{1}, size_t{4}, size_t{8}, size_t{16},
                         size_t{32}, size_t{64}}) {
      SweepSample s;
      s.isa = sparse::simd::IsaName(isa);
      s.width = width;
      s.seconds = 1e300;
      core::ExecuteWorkspace ws;
      ws.Prepare(plan.workspace_spec(), /*slots=*/1);
      ws.PreparePanel(plan.workspace_spec(),
                      std::min(width, objectives.size()));
      std::vector<core::CrosswalkResult> results =
          RunPanels(plan, objectives, width, &ws);  // warmup + identity
      uint64_t allocs_before = allocs.Value();
      for (size_t rep = 0; rep < Reps(); ++rep) {
        Stopwatch watch;
        RunPanels(plan, objectives, width, &ws);
        s.seconds = std::min(s.seconds, watch.ElapsedSeconds());
      }
      s.hot_path_allocs = allocs.Value() - allocs_before;
      s.cols_per_sec = static_cast<double>(objectives.size()) / s.seconds;
      if (oracle.empty()) {  // first cell: width 1, forced scalar
        oracle = std::move(results);
        oracle_seconds = s.seconds;
        s.bit_identical = true;
      } else {
        s.bit_identical = BitIdenticalResults(results, oracle);
      }
      s.speedup_vs_w1_scalar = oracle_seconds / s.seconds;
      sweep.push_back(std::move(s));
    }
  }
  return sweep;
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fused_execute.json";

  // The alloc/reuse counters are the point of the bench; both arms pay
  // the same (shards-and-relaxed-atomics) telemetry cost.
  obs::SetEnabled(true);

  // nnz axis: two nested universes, same US suite (§4.3 subsetting).
  std::vector<const synth::Universe*> universes = {
      &bench::GetUniverse(synth::UniverseId::kNewYork,
                          synth::SuiteKind::kUnitedStates),
      &bench::GetUniverse(synth::UniverseId::kUnitedStates,
                          synth::SuiteKind::kUnitedStates)};
  std::vector<size_t> reference_counts = {2, 5, 10};
  std::vector<size_t> column_counts;
  for (size_t c : {size_t{64}, MaxCols()}) {
    if (c <= MaxCols() &&
        (column_counts.empty() || column_counts.back() != c)) {
      column_counts.push_back(c);
    }
  }

  std::printf("bench_scale %.3f, columns {", bench::BenchScale());
  for (size_t i = 0; i < column_counts.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", column_counts[i]);
  }
  std::printf("}, reps %zu\n", Reps());

  std::vector<Sample> samples;
  for (const synth::Universe* uni : universes) {
    for (size_t refs : reference_counts) {
      for (size_t columns : column_counts) {
        samples.push_back(BenchOne(*uni, refs, columns));
      }
    }
  }

  eval::TextTable table({"universe", "refs", "nnz", "cols",
                         "materializing s", "fused s", "speedup",
                         "hot allocs", "ws reuse", "bit-identical"});
  for (const Sample& s : samples) {
    table.Row()
        .Text(s.universe)
        .Num(static_cast<double>(s.references))
        .Num(static_cast<double>(s.shared_nnz))
        .Num(static_cast<double>(s.columns))
        .Num(s.materializing_seconds)
        .Num(s.fused_seconds)
        .Num(s.speedup)
        .Num(static_cast<double>(s.hot_path_allocs))
        .Num(static_cast<double>(s.workspace_reuse))
        .Text(s.bit_identical ? "yes" : "NO");
  }
  table.Print();

  // Panel-width × ISA sweep on the largest universe at the widest
  // column count: the panel lane driven directly, per-column scalar
  // (width 1, forced scalar) as the oracle and timing baseline.
  const synth::Universe& sweep_uni = *universes.back();
  linalg::Vector sweep_base;
  auto sweep_refs = MakeAlignedReferences(sweep_uni, 10, &sweep_base);
  sweep_refs.status().CheckOK();
  std::vector<std::string> sweep_sources =
      MakeUnitNames("z", sweep_base.size());
  std::vector<std::string> sweep_targets =
      MakeUnitNames("c", sweep_refs->front().disaggregation.cols());
  core::GeoAlignOptions sweep_options;
  sweep_options.threads = 1;
  auto sweep_pipeline = core::CrosswalkPipeline::Create(
      sweep_sources, sweep_targets, *sweep_refs,
      std::make_shared<core::GeoAlign>(sweep_options));
  sweep_pipeline.status().CheckOK();
  std::vector<linalg::Vector> sweep_objectives =
      MakeObjectiveVectors(sweep_base, column_counts.back());
  std::vector<SweepSample> sweep =
      PanelWidthSweep(*sweep_pipeline->plan(), sweep_objectives);

  std::printf("\npanel-width sweep: %s, refs 10, %zu columns "
              "(baseline: width 1, forced scalar)\n",
              sweep_uni.name.c_str(), sweep_objectives.size());
  eval::TextTable sweep_table({"isa", "width", "seconds", "cols/s",
                               "speedup", "hot allocs", "bit-identical"});
  for (const SweepSample& s : sweep) {
    sweep_table.Row()
        .Text(s.isa)
        .Num(static_cast<double>(s.width))
        .Num(s.seconds)
        .Num(s.cols_per_sec)
        .Num(s.speedup_vs_w1_scalar)
        .Num(static_cast<double>(s.hot_path_allocs))
        .Text(s.bit_identical ? "yes" : "NO");
  }
  sweep_table.Print();

  bool ok = true;
  for (const Sample& s : samples) {
    ok &= s.bit_identical && s.aligned && s.hot_path_allocs == 0;
  }
  for (const SweepSample& s : sweep) {
    ok &= s.bit_identical && s.hot_path_allocs == 0;
  }
  std::printf("\nbit-identity, alignment, and zero hot-path allocations "
              "after warmup: %s\n",
              ok ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fused_execute\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", bench::BenchScale());
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"all_checks_pass\": %s,\n", ok ? "true" : "false");
  std::fprintf(f, "  \"series\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"universe\": \"%s\", \"zips\": %zu, \"counties\": %zu, "
        "\"references\": %zu, \"shared_nnz\": %zu, \"columns\": %zu, "
        "\"materializing_seconds\": %.6e, \"fused_seconds\": %.6e, "
        "\"materializing_cols_per_sec\": %.3f, "
        "\"fused_cols_per_sec\": %.3f, \"speedup\": %.3f, "
        "\"hot_path_allocs_after_warmup\": %llu, "
        "\"workspace_reuse\": %llu, \"aligned\": %s, "
        "\"bit_identical\": %s}%s\n",
        s.universe.c_str(), s.zips, s.counties, s.references, s.shared_nnz,
        s.columns, s.materializing_seconds, s.fused_seconds,
        static_cast<double>(s.columns) / s.materializing_seconds,
        static_cast<double>(s.columns) / s.fused_seconds, s.speedup,
        static_cast<unsigned long long>(s.hot_path_allocs),
        static_cast<unsigned long long>(s.workspace_reuse),
        s.aligned ? "true" : "false", s.bit_identical ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"panel_sweep\": {\n");
  std::fprintf(f, "    \"universe\": \"%s\", \"references\": 10, "
              "\"columns\": %zu,\n",
              sweep_uni.name.c_str(), sweep_objectives.size());
  std::fprintf(f, "    \"baseline\": \"width 1, forced scalar\",\n");
  std::fprintf(f, "    \"cells\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepSample& s = sweep[i];
    std::fprintf(
        f,
        "      {\"isa\": \"%s\", \"width\": %zu, \"seconds\": %.6e, "
        "\"cols_per_sec\": %.3f, \"speedup_vs_w1_scalar\": %.3f, "
        "\"hot_path_allocs_after_warmup\": %llu, "
        "\"bit_identical\": %s}%s\n",
        s.isa.c_str(), s.width, s.seconds, s.cols_per_sec,
        s.speedup_vs_w1_scalar,
        static_cast<unsigned long long>(s.hot_path_allocs),
        s.bit_identical ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
