// Fused aggregates-only serving vs the materializing execute path:
// RealignMany over one shared compiled plan, comparing
//
//  * materializing — RealignMany(columns) with the default
//    ExecuteOutput::kFullDm: every column materializes DM̂_o (Eq. 14)
//    as a fresh CSR and reduces it to â_o^t (Eq. 17);
//  * fused — RealignMany(columns, ..., kAggregatesOnly): one pass over
//    the shared PreparedReferenceSet structure scattering straight
//    into the target accumulator, DM̂_o never allocated, all scratch
//    served from plan-spec'd reusable workspaces.
//
// Axes: universe size (nnz of the shared CSR structure) × reference
// count (dense synth layers extended by structure-preserving clones,
// so the set stays aligned and the fused kernel engages). Every
// sample checks â_o^t / weights / zero_rows BIT-identical across the
// two arms and reads the execute.hot_path_allocs /
// execute.workspace_reuse counters across the timed fused reps (after
// a warmup pass); the exit code gates identity, alignment, and the
// zero-hot-allocation promise. Results go to BENCH_fused_execute.json.
//
// Usage: fused_execute [output.json]
//   GEOALIGN_BENCH_SCALE     rescales the universes  (default 1.0)
//   GEOALIGN_BENCH_REPS      timing repetitions      (default 3)
//   GEOALIGN_BENCH_MAX_COLS  caps the column count   (default 512)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/geoalign.h"
#include "core/pipeline.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "sparse/coo_builder.h"

namespace geoalign {
namespace {

struct Sample {
  std::string universe;
  size_t zips = 0;
  size_t counties = 0;
  size_t references = 0;
  size_t shared_nnz = 0;  // nnz of the shared CSR structure
  size_t columns = 0;
  double materializing_seconds = 0.0;  // best of reps
  double fused_seconds = 0.0;          // best of reps
  double speedup = 1.0;
  uint64_t hot_path_allocs = 0;  // delta across timed fused reps
  uint64_t workspace_reuse = 0;  // delta across timed fused reps
  bool aligned = false;
  bool bit_identical = true;
};

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 3;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 3;
}

size_t MaxCols() {
  const char* env = std::getenv("GEOALIGN_BENCH_MAX_COLS");
  if (env == nullptr) return 512;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 512;
}

std::vector<std::string> MakeUnitNames(const char* prefix, size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(StrFormat("%s%06zu", prefix, i));
  }
  return names;
}

// B full-length objective columns: deterministic multiplicative
// perturbations of the base objective, keyed by unit name.
std::vector<core::CrosswalkPipeline::Column> MakeColumns(
    const std::vector<std::string>& sources, const linalg::Vector& base,
    size_t count) {
  std::vector<core::CrosswalkPipeline::Column> columns;
  columns.reserve(count);
  for (size_t b = 0; b < count; ++b) {
    core::CrosswalkPipeline::Column col;
    col.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      double wobble =
          1.0 + 0.1 * std::sin(static_cast<double>(i * 31 + b * 17 + 1));
      col.emplace_back(sources[i], base[i] * wobble);
    }
    columns.push_back(std::move(col));
  }
  return columns;
}

// `count` references sharing one CSR structure: the universe's dense
// layers (Poisson layers drop zero cells and would break alignment),
// extended past five by structure-preserving clones — same
// coordinates, values wobbled within (0.75, 1.25) so none cancels to
// zero, aggregates recomputed as the new row sums.
Result<std::vector<core::ReferenceAttribute>> MakeAlignedReferences(
    const synth::Universe& uni, size_t count, linalg::Vector* objective) {
  GEOALIGN_ASSIGN_OR_RETURN(size_t test_index, uni.FindDataset("Starbucks"));
  GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkInput input,
                            uni.MakeLeaveOneOutInput(test_index));
  *objective = std::move(input.objective_source);
  std::vector<core::ReferenceAttribute> refs;
  for (core::ReferenceAttribute& ref : input.references) {
    if (ref.name == "Accidents" || ref.name == "Area (Sq. Miles)" ||
        ref.name == "Population" || ref.name == "USPS Business Address" ||
        ref.name == "USPS Residential Address") {
      refs.push_back(std::move(ref));
    }
  }
  if (refs.empty()) {
    return Status::Internal("fused_execute: no dense layers in suite");
  }
  const size_t base = refs.size();
  while (refs.size() < count) {
    const size_t k = refs.size();
    const core::ReferenceAttribute& seed = refs[k % base];
    core::ReferenceAttribute clone;
    clone.name = seed.name + StrFormat(" clone %zu", k / base);
    const sparse::CsrMatrix& dm = seed.disaggregation;
    sparse::CooBuilder builder(dm.rows(), dm.cols());
    for (size_t r = 0; r < dm.rows(); ++r) {
      sparse::CsrMatrix::RowView row = dm.Row(r);
      for (size_t j = 0; j < row.size; ++j) {
        double wobble =
            1.0 + 0.25 * std::sin(static_cast<double>(k * 131 + r * 17 + j));
        builder.Add(r, row.cols[j], row.values[j] * wobble);
      }
    }
    clone.disaggregation = builder.Build();
    clone.source_aggregates = clone.disaggregation.RowSums();
    refs.push_back(std::move(clone));
  }
  refs.resize(std::min(count, refs.size()));
  return refs;
}

// Exact equality on everything the fused lane produces; the fused arm
// must additionally carry no DM at all.
bool BitIdenticalAggregates(const std::vector<core::CrosswalkResult>& fused,
                            const std::vector<core::CrosswalkResult>& mat) {
  if (fused.size() != mat.size()) return false;
  for (size_t i = 0; i < fused.size(); ++i) {
    if (fused[i].target_estimates != mat[i].target_estimates ||
        fused[i].weights != mat[i].weights ||
        fused[i].zero_rows != mat[i].zero_rows ||
        fused[i].estimated_dm.values().size() != 0 ||
        fused[i].estimated_dm.rows() != 0) {
      return false;
    }
  }
  return true;
}

Sample BenchOne(const synth::Universe& uni, size_t num_references,
                size_t num_columns) {
  Sample s;
  s.universe = uni.name;
  s.zips = uni.NumZips();
  s.counties = uni.NumCounties();
  s.references = num_references;
  s.columns = num_columns;
  s.materializing_seconds = 1e300;
  s.fused_seconds = 1e300;

  linalg::Vector objective;
  auto refs = MakeAlignedReferences(uni, num_references, &objective);
  refs.status().CheckOK();
  std::vector<std::string> sources = MakeUnitNames("z", objective.size());
  std::vector<std::string> targets =
      MakeUnitNames("c", refs->front().disaggregation.cols());
  std::vector<core::CrosswalkPipeline::Column> columns =
      MakeColumns(sources, objective, num_columns);

  core::GeoAlignOptions options;
  options.threads = 1;
  auto pipeline = core::CrosswalkPipeline::Create(
      sources, targets, *refs, std::make_shared<core::GeoAlign>(options));
  pipeline.status().CheckOK();
  if (pipeline->plan() == nullptr) {
    std::fprintf(stderr, "fused_execute: plan failed to compile\n");
    return s;
  }
  s.aligned = pipeline->plan()->references().aligned();
  s.shared_nnz = pipeline->plan()->references().dms()[0]->values().size();

  // Warmup both arms (also the arms for the identity check).
  auto mat = pipeline->RealignMany(columns, /*threads=*/1);
  mat.status().CheckOK();
  auto fused = pipeline->RealignMany(columns, /*threads=*/1,
                                     core::ExecuteOutput::kAggregatesOnly);
  fused.status().CheckOK();
  s.bit_identical = BitIdenticalAggregates(*fused, *mat);

  for (size_t rep = 0; rep < Reps(); ++rep) {
    Stopwatch watch;
    auto res = pipeline->RealignMany(columns, /*threads=*/1);
    res.status().CheckOK();
    s.materializing_seconds =
        std::min(s.materializing_seconds, watch.ElapsedSeconds());
  }

  obs::Counter& allocs = obs::MetricsRegistry::Global().GetCounter(
      "execute.hot_path_allocs");
  obs::Counter& reuse = obs::MetricsRegistry::Global().GetCounter(
      "execute.workspace_reuse");
  uint64_t allocs_before = allocs.Value();
  uint64_t reuse_before = reuse.Value();
  for (size_t rep = 0; rep < Reps(); ++rep) {
    Stopwatch watch;
    auto res = pipeline->RealignMany(columns, /*threads=*/1,
                                     core::ExecuteOutput::kAggregatesOnly);
    res.status().CheckOK();
    s.fused_seconds = std::min(s.fused_seconds, watch.ElapsedSeconds());
  }
  s.hot_path_allocs = allocs.Value() - allocs_before;
  s.workspace_reuse = reuse.Value() - reuse_before;
  s.speedup = s.materializing_seconds / s.fused_seconds;
  return s;
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fused_execute.json";

  // The alloc/reuse counters are the point of the bench; both arms pay
  // the same (shards-and-relaxed-atomics) telemetry cost.
  obs::SetEnabled(true);

  // nnz axis: two nested universes, same US suite (§4.3 subsetting).
  std::vector<const synth::Universe*> universes = {
      &bench::GetUniverse(synth::UniverseId::kNewYork,
                          synth::SuiteKind::kUnitedStates),
      &bench::GetUniverse(synth::UniverseId::kUnitedStates,
                          synth::SuiteKind::kUnitedStates)};
  std::vector<size_t> reference_counts = {2, 5, 10};
  size_t columns = MaxCols();

  std::printf("bench_scale %.3f, %zu columns, reps %zu\n",
              bench::BenchScale(), columns, Reps());

  std::vector<Sample> samples;
  for (const synth::Universe* uni : universes) {
    for (size_t refs : reference_counts) {
      samples.push_back(BenchOne(*uni, refs, columns));
    }
  }

  eval::TextTable table({"universe", "refs", "nnz", "materializing s",
                         "fused s", "speedup", "hot allocs", "ws reuse",
                         "bit-identical"});
  for (const Sample& s : samples) {
    table.Row()
        .Text(s.universe)
        .Num(static_cast<double>(s.references))
        .Num(static_cast<double>(s.shared_nnz))
        .Num(s.materializing_seconds)
        .Num(s.fused_seconds)
        .Num(s.speedup)
        .Num(static_cast<double>(s.hot_path_allocs))
        .Num(static_cast<double>(s.workspace_reuse))
        .Text(s.bit_identical ? "yes" : "NO");
  }
  table.Print();

  bool ok = true;
  for (const Sample& s : samples) {
    ok &= s.bit_identical && s.aligned && s.hot_path_allocs == 0;
  }
  std::printf("\nbit-identity, alignment, and zero hot-path allocations "
              "after warmup: %s\n",
              ok ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fused_execute\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", bench::BenchScale());
  std::fprintf(f, "  \"columns\": %zu,\n", columns);
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"all_checks_pass\": %s,\n", ok ? "true" : "false");
  std::fprintf(f, "  \"series\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"universe\": \"%s\", \"zips\": %zu, \"counties\": %zu, "
        "\"references\": %zu, \"shared_nnz\": %zu, \"columns\": %zu, "
        "\"materializing_seconds\": %.6e, \"fused_seconds\": %.6e, "
        "\"materializing_cols_per_sec\": %.3f, "
        "\"fused_cols_per_sec\": %.3f, \"speedup\": %.3f, "
        "\"hot_path_allocs_after_warmup\": %llu, "
        "\"workspace_reuse\": %llu, \"aligned\": %s, "
        "\"bit_identical\": %s}%s\n",
        s.universe.c_str(), s.zips, s.counties, s.references, s.shared_nnz,
        s.columns, s.materializing_seconds, s.fused_seconds,
        static_cast<double>(s.columns) / s.materializing_seconds,
        static_cast<double>(s.columns) / s.fused_seconds, s.speedup,
        static_cast<unsigned long long>(s.hot_path_allocs),
        static_cast<unsigned long long>(s.workspace_reuse),
        s.aligned ? "true" : "false", s.bit_identical ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
