// Parallel-scaling companion to Figure 6: end-to-end pipeline time of
// the fig6-style synthetic workload versus worker-thread count, for
// both parallelism layers introduced with src/common/thread_pool:
//
//  * crosswalk — one GeoAlign::Crosswalk with options.threads = T
//    (parallel Eq. 14 row merge + deterministic Eq. 17 reduction);
//  * batch — BatchCrosswalk::Run over independent objective columns
//    with options.threads = T (one task per objective).
//
// Every configuration is also checked for BIT-identical output against
// threads = 1 (the deterministic-reduction contract), and the series
// is written to a BENCH_parallel_scaling.json trajectory file.
//
// Usage: parallel_scaling [output.json]
//   GEOALIGN_BENCH_SCALE   rescales the universe (default 1.0)
//   GEOALIGN_BENCH_REPS    timing repetitions   (default 5)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/timer.h"
#include "core/batch.h"
#include "core/geoalign.h"
#include "eval/report.h"

namespace geoalign {
namespace {

struct Sample {
  size_t threads = 0;
  double seconds = 0.0;   // best of reps
  double speedup = 1.0;   // vs threads == 1
  bool bit_identical = true;
};

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 5;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 5;
}

const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};

// Times one GeoAlign crosswalk per thread count (inner-kernel layer).
std::vector<Sample> BenchCrosswalk(const synth::Universe& uni) {
  auto input = std::move(uni.MakeLeaveOneOutInput(0)).ValueOrDie();
  std::vector<Sample> samples;
  linalg::Vector baseline;
  for (size_t threads : kThreadCounts) {
    core::GeoAlignOptions opts;
    opts.threads = threads;
    core::GeoAlign geoalign(opts);
    Sample s;
    s.threads = threads;
    s.seconds = 1e300;
    for (size_t rep = 0; rep < Reps(); ++rep) {
      Stopwatch watch;
      auto res = geoalign.Crosswalk(input);
      res.status().CheckOK();
      s.seconds = std::min(s.seconds, watch.ElapsedSeconds());
      if (rep == 0) {
        if (threads == 1) {
          baseline = res->target_estimates;
        } else {
          s.bit_identical = res->target_estimates == baseline;
        }
      }
    }
    samples.push_back(s);
  }
  for (Sample& s : samples) s.speedup = samples[0].seconds / s.seconds;
  return samples;
}

// Times a BatchCrosswalk over independent objectives (outer layer):
// the first half of the suite acts as the shared reference set, every
// remaining dataset is an objective column.
std::vector<Sample> BenchBatch(const synth::Universe& uni, size_t* num_objs,
                               size_t* num_refs) {
  size_t half = uni.datasets.size() / 2;
  std::vector<core::ReferenceAttribute> references;
  for (size_t k = 0; k < half; ++k) {
    references.push_back(
        {uni.datasets[k].name, uni.datasets[k].source, uni.datasets[k].dm});
  }
  std::vector<core::BatchCrosswalk::Objective> objectives;
  for (size_t k = half; k < uni.datasets.size(); ++k) {
    objectives.push_back({uni.datasets[k].name, uni.datasets[k].source});
  }
  *num_objs = objectives.size();
  *num_refs = references.size();

  std::vector<Sample> samples;
  std::vector<linalg::Vector> baseline;
  for (size_t threads : kThreadCounts) {
    core::GeoAlignOptions opts;
    opts.threads = threads;
    auto batch =
        std::move(core::BatchCrosswalk::Create(references, opts)).ValueOrDie();
    Sample s;
    s.threads = threads;
    s.seconds = 1e300;
    for (size_t rep = 0; rep < Reps(); ++rep) {
      Stopwatch watch;
      auto results = batch.Run(objectives);
      results.status().CheckOK();
      s.seconds = std::min(s.seconds, watch.ElapsedSeconds());
      if (rep == 0) {
        if (threads == 1) {
          for (const auto& r : *results) baseline.push_back(r.target_estimates);
        } else {
          for (size_t k = 0; k < results->size(); ++k) {
            s.bit_identical = s.bit_identical &&
                              (*results)[k].target_estimates == baseline[k];
          }
        }
      }
    }
    samples.push_back(s);
  }
  for (Sample& s : samples) s.speedup = samples[0].seconds / s.seconds;
  return samples;
}

void PrintSection(const char* name, const std::vector<Sample>& samples) {
  std::printf("\n--- %s ---\n", name);
  eval::TextTable table({"threads", "seconds", "speedup", "bit-identical"});
  for (const Sample& s : samples) {
    table.Row()
        .Num(static_cast<double>(s.threads))
        .Num(s.seconds)
        .Num(s.speedup)
        .Text(s.bit_identical ? "yes" : "NO");
  }
  table.Print();
}

void WriteJsonSection(std::FILE* f, const char* name,
                      const std::vector<Sample>& samples, bool trailing_comma) {
  std::fprintf(f, "  \"%s\": {\n    \"series\": [\n", name);
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "      {\"threads\": %zu, \"seconds\": %.6e, "
                 "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 s.threads, s.seconds, s.speedup,
                 s.bit_identical ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }%s\n", trailing_comma ? "," : "");
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_parallel_scaling.json";

  const synth::Universe& uni = bench::GetUniverse(
      synth::UniverseId::kUnitedStates, synth::SuiteKind::kUnitedStates);
  std::printf("universe: %s (%zu zips -> %zu counties), scale %.3f, "
              "hardware threads %u\n",
              uni.name.c_str(), uni.NumZips(), uni.NumCounties(),
              bench::BenchScale(), std::thread::hardware_concurrency());

  std::vector<Sample> crosswalk = BenchCrosswalk(uni);
  size_t num_objs = 0;
  size_t num_refs = 0;
  std::vector<Sample> batch = BenchBatch(uni, &num_objs, &num_refs);

  PrintSection("single crosswalk (inner-kernel parallelism)", crosswalk);
  PrintSection("batch over objectives (outer parallelism)", batch);

  bool all_identical = true;
  for (const Sample& s : crosswalk) all_identical &= s.bit_identical;
  for (const Sample& s : batch) all_identical &= s.bit_identical;
  std::printf("\nbit-identity across all thread counts: %s\n",
              all_identical ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"universe\": \"%s\",\n", uni.name.c_str());
  std::fprintf(f, "  \"zips\": %zu,\n  \"counties\": %zu,\n", uni.NumZips(),
               uni.NumCounties());
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", bench::BenchScale());
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"batch_objectives\": %zu,\n", num_objs);
  std::fprintf(f, "  \"batch_references\": %zu,\n", num_refs);
  std::fprintf(f, "  \"bit_identical_all\": %s,\n",
               all_identical ? "true" : "false");
  WriteJsonSection(f, "crosswalk", crosswalk, /*trailing_comma=*/true);
  WriteJsonSection(f, "batch", batch, /*trailing_comma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return all_identical ? 0 : 1;
}
