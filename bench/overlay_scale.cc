// National-scale overlay construction benchmark: the legacy path
// (OverlayPolygonsReference: per-target R-tree queries, per-pair fan
// recomputation, allocating clippers) against the overlay engine
// (cached fans + dual-tree join + workspace scratch), with and without
// the geometry fast paths, on perturbed-grid × Voronoi universes up to
// ~30k × 3k units.
//
// Each universe also checks the engine (fast paths off) for
// BIT-identical cells against the reference, reports the dual-tree
// candidate count, and measures the steady-state hot-path allocation
// count through a warm workspace (the zero-alloc contract: 0).
//
// Usage: overlay_scale [output.json]
//   GEOALIGN_BENCH_SCALE   rescales unit counts (default 1.0)
//   GEOALIGN_BENCH_REPS    timing repetitions   (default 3)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "common/float_eq.h"
#include "common/random.h"
#include "eval/report.h"
#include "geom/voronoi.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "partition/overlay.h"
#include "partition/overlay_prepared.h"

namespace geoalign {
namespace {

double BenchScale() {
  const char* env = std::getenv("GEOALIGN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 3;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 3;
}

partition::PolygonPartition MakeGridLayer(Rng& rng, size_t n_units,
                                          double world) {
  size_t nx = std::max<size_t>(
      2, static_cast<size_t>(std::lround(std::sqrt(
             static_cast<double>(n_units)))));
  double d = world / static_cast<double>(nx);
  std::vector<geom::Polygon> polys;
  polys.reserve(nx * nx);
  for (size_t gy = 0; gy < nx; ++gy) {
    for (size_t gx = 0; gx < nx; ++gx) {
      double x0 = static_cast<double>(gx) * d;
      double y0 = static_cast<double>(gy) * d;
      double j = rng.Uniform(0.0, 0.08 * d);
      polys.emplace_back(geom::Ring{{x0 + j, y0},
                                    {x0 + d, y0 + j},
                                    {x0 + d - j, y0 + d},
                                    {x0, y0 + d - j}});
    }
  }
  return std::move(partition::PolygonPartition::Create(std::move(polys)))
      .ValueOrDie();
}

partition::PolygonPartition MakeVoronoiLayer(Rng& rng, size_t n_units,
                                             double world) {
  std::vector<geom::Point> sites;
  sites.reserve(n_units);
  for (size_t i = 0; i < n_units; ++i) {
    sites.push_back({rng.Uniform(0.01 * world, 0.99 * world),
                     rng.Uniform(0.01 * world, 0.99 * world)});
  }
  auto rings = std::move(geom::VoronoiCells(
                             sites, geom::BBox(0, 0, world, world)))
                   .ValueOrDie();
  std::vector<geom::Polygon> polys;
  polys.reserve(rings.size());
  for (auto& r : rings) {
    if (r.size() >= 3) polys.emplace_back(std::move(r));
  }
  return std::move(partition::PolygonPartition::Create(std::move(polys)))
      .ValueOrDie();
}

struct UniverseResult {
  std::string name;
  size_t source_units = 0;
  size_t target_units = 0;
  size_t candidate_pairs = 0;
  size_t cells = 0;
  double seconds_reference = 0.0;
  double seconds_engine = 0.0;
  double seconds_fast = 0.0;
  double seconds_fast_warm = 0.0;
  double speedup_engine = 0.0;  // reference / engine (fast paths off)
  double speedup_fast = 0.0;    // reference / fast-path warm engine
  uint64_t hot_allocs_steady = 0;
  bool bit_identical = true;
};

bool CellsBitIdentical(const partition::OverlayResult& a,
                       const partition::OverlayResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (size_t k = 0; k < a.cells.size(); ++k) {
    if (a.cells[k].source != b.cells[k].source ||
        a.cells[k].target != b.cells[k].target ||
        !ExactlyEqual(a.cells[k].measure, b.cells[k].measure)) {
      return false;
    }
  }
  return true;
}

UniverseResult RunUniverse(const char* name, size_t source_units,
                           size_t target_units, uint64_t seed) {
  UniverseResult r;
  r.name = name;
  Rng rng(seed);
  partition::PolygonPartition source =
      MakeGridLayer(rng, source_units, 100.0);
  partition::PolygonPartition target =
      MakeVoronoiLayer(rng, target_units, 100.0);
  r.source_units = source.NumUnits();
  r.target_units = target.NumUnits();

  constexpr double kMinArea = 1e-9;
  auto time_best = [&](auto&& fn) {
    double best = 1e300;
    for (size_t rep = 0; rep < Reps(); ++rep) {
      Stopwatch watch;
      fn();
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best;
  };

  partition::OverlayResult ref_cells;
  r.seconds_reference = time_best([&] {
    ref_cells = std::move(partition::OverlayPolygonsReference(
                              source, target, kMinArea))
                    .ValueOrDie();
  });
  r.cells = ref_cells.cells.size();

  obs::Counter& pair_counter =
      obs::MetricsRegistry::Global().GetCounter("overlay.candidate_pairs");
  obs::Counter& alloc_counter =
      obs::MetricsRegistry::Global().GetCounter("overlay.hot_path_allocs");

  partition::OverlayOptions exact;
  exact.min_area = kMinArea;
  uint64_t pairs_before = pair_counter.Value();
  partition::OverlayResult engine_cells;
  r.seconds_engine = time_best([&] {
    engine_cells =
        std::move(partition::OverlayPolygons(source, target, exact))
            .ValueOrDie();
  });
  r.candidate_pairs = static_cast<size_t>(
      (pair_counter.Value() - pairs_before) / Reps());
  r.bit_identical = CellsBitIdentical(engine_cells, ref_cells);

  partition::OverlayOptions fast = exact;
  fast.fast_paths = true;
  r.seconds_fast = time_best([&] {
    partition::OverlayResult fast_cells =
        std::move(partition::OverlayPolygons(source, target, fast))
            .ValueOrDie();
    if (fast_cells.cells.size() != ref_cells.cells.size()) std::abort();
  });

  // Warm-workspace steady state: first run grows the buffers, the
  // timed runs reuse them; the alloc counter must stay flat.
  partition::OverlayWorkspace ws;
  partition::OverlayOptions warm = fast;
  warm.workspace = &ws;
  partition::OverlayResult warmup =
      std::move(partition::OverlayPolygons(source, target, warm))
          .ValueOrDie();
  (void)warmup;
  uint64_t allocs_before = alloc_counter.Value();
  r.seconds_fast_warm = time_best([&] {
    partition::OverlayResult cells =
        std::move(partition::OverlayPolygons(source, target, warm))
            .ValueOrDie();
    (void)cells;
  });
  r.hot_allocs_steady = alloc_counter.Value() - allocs_before;

  r.speedup_engine = r.seconds_reference / r.seconds_engine;
  r.speedup_fast = r.seconds_reference / r.seconds_fast_warm;
  return r;
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_overlay_construction.json";
  obs::SetEnabled(true);
  double scale = BenchScale();

  struct Config {
    const char* name;
    size_t source_units;
    size_t target_units;
  };
  const std::vector<Config> configs = {
      {"small_2.5k_x_250", 2500, 250},
      {"medium_10k_x_1k", 10000, 1000},
      {"large_30k_x_3k", 30000, 3000},
  };

  std::vector<UniverseResult> results;
  for (const Config& c : configs) {
    size_t su = std::max<size_t>(
        16, static_cast<size_t>(static_cast<double>(c.source_units) * scale));
    size_t tu = std::max<size_t>(
        4, static_cast<size_t>(static_cast<double>(c.target_units) * scale));
    std::printf("running %s (%zu x %zu units, scale %.3f)...\n", c.name, su,
                tu, scale);
    results.push_back(RunUniverse(c.name, su, tu, 20180610));
  }

  eval::TextTable table({"universe", "src", "tgt", "pairs", "cells",
                         "ref s", "engine s", "fast+warm s", "speedup",
                         "allocs", "bit-id"});
  bool all_identical = true;
  bool all_zero_alloc = true;
  for (const UniverseResult& r : results) {
    table.Row()
        .Text(r.name)
        .Num(static_cast<double>(r.source_units))
        .Num(static_cast<double>(r.target_units))
        .Num(static_cast<double>(r.candidate_pairs))
        .Num(static_cast<double>(r.cells))
        .Num(r.seconds_reference)
        .Num(r.seconds_engine)
        .Num(r.seconds_fast_warm)
        .Num(r.speedup_fast)
        .Num(static_cast<double>(r.hot_allocs_steady))
        .Text(r.bit_identical ? "yes" : "NO");
    all_identical &= r.bit_identical;
    all_zero_alloc &= r.hot_allocs_steady == 0;
  }
  table.Print();
  std::printf("\nbit-identity (engine vs reference): %s\n",
              all_identical ? "PASS" : "FAIL");
  std::printf("zero steady-state hot-path allocs: %s\n",
              all_zero_alloc ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"overlay_construction\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", scale);
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"bit_identical_all\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"zero_steady_state_allocs\": %s,\n",
               all_zero_alloc ? "true" : "false");
  std::fprintf(f, "  \"universes\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const UniverseResult& r = results[i];
    std::fprintf(
        f,
        "    \"%s\": {\"source_units\": %zu, \"target_units\": %zu, "
        "\"candidate_pairs\": %zu, \"cells\": %zu,\n"
        "      \"seconds_reference\": %.6e, \"seconds_engine\": %.6e, "
        "\"seconds_fast\": %.6e, \"seconds_fast_warm\": %.6e,\n"
        "      \"speedup_engine\": %.3f, \"speedup_fast\": %.3f, "
        "\"hot_allocs_steady\": %llu, \"bit_identical\": %s}%s\n",
        r.name.c_str(), r.source_units, r.target_units, r.candidate_pairs,
        r.cells, r.seconds_reference, r.seconds_engine, r.seconds_fast,
        r.seconds_fast_warm, r.speedup_engine, r.speedup_fast,
        static_cast<unsigned long long>(r.hot_allocs_steady),
        r.bit_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return all_identical && all_zero_alloc ? 0 : 1;
}
