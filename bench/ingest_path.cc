// Ingest-path cost of getting host-owned reference columns into a
// compiled plan, comparing the two Compile flavors on identical bytes:
//
//  * copy  — the owning path: host arrays are materialized into
//    ReferenceAttribute structs (CsrMatrix::FromCsrArrays copies the
//    CSR arrays, the aggregate column is copied into a linalg::Vector)
//    and `Compile(const std::vector<ReferenceAttribute>&, ...)` copies
//    each reference again into the prepared set, charging
//    `ingest.bytes_copied`;
//  * view  — the zero-copy path: ReferenceAttributeView wraps the same
//    host arrays (CsrMatrix::FromBorrowed + ColumnView) and
//    `Compile(std::vector<ReferenceAttributeView>, ...)` moves the
//    borrowed spans straight into the prepared set. The
//    `ingest.bytes_copied` delta MUST be zero — a nonzero delta is a
//    regression and fails the run.
//
// After compiling, both arms execute the same objective through a
// Prepare()d reusable workspace; the steady-state executes must report
// zero `execute.hot_path_allocs`, and the two arms' target estimates,
// weights, and plan fingerprints must be BIT-identical. The exit code
// reports identity AND the zero-copy/zero-alloc invariants. Results go
// to a BENCH_ingest_zero_copy.json trajectory file.
//
// Usage: ingest_path [output.json]
//   GEOALIGN_BENCH_SCALE     rescales source-unit count  (default 1.0)
//   GEOALIGN_BENCH_REPS      timing repetitions          (default 3)
//   GEOALIGN_BENCH_MAX_COLS  caps the reference counts   (default 512)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/span.h"
#include "common/string_util.h"
#include "core/crosswalk_plan.h"
#include "core/execute_workspace.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "eval/report.h"
#include "sparse/csr_matrix.h"

namespace geoalign {
namespace {

struct Sample {
  size_t references = 0;
  size_t source_units = 0;
  size_t target_units = 0;
  double copy_compile_seconds = 0.0;  // best of reps, build + Compile
  double view_compile_seconds = 0.0;
  uint64_t copy_bytes = 0;  // ingest.bytes_copied delta, one compile
  uint64_t view_bytes = 0;  // must be 0
  double copy_execute_seconds = 0.0;  // best of reps, warm workspace
  double view_execute_seconds = 0.0;
  uint64_t copy_hot_allocs = 0;  // hot_path_allocs delta, warm executes
  uint64_t view_hot_allocs = 0;
  double compile_speedup = 1.0;
  bool bit_identical = true;
};

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 3;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 3;
}

size_t MaxCols() {
  const char* env = std::getenv("GEOALIGN_BENCH_MAX_COLS");
  if (env == nullptr) return 512;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 512;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

// The host side of the benchmark: flat arrays a foreign runtime (or
// the C ABI) would own. One shared CSR structure (two entries per
// source row) carries every reference; per-reference value and
// aggregate columns are deterministic and consistent (aggregates are
// the exact row sums, so validation-equivalent ingest paths accept
// them bit-for-bit).
struct HostArrays {
  size_t sources = 0;
  size_t targets = 0;
  std::vector<size_t> row_ptr;
  std::vector<size_t> col_idx;
  std::vector<std::vector<double>> values;      // per reference
  std::vector<std::vector<double>> aggregates;  // per reference, row sums
  std::vector<double> objective;

  HostArrays(size_t num_sources, size_t num_targets, size_t num_refs)
      : sources(num_sources), targets(num_targets) {
    row_ptr.reserve(sources + 1);
    col_idx.reserve(2 * sources);
    row_ptr.push_back(0);
    for (size_t i = 0; i < sources; ++i) {
      size_t c1 = i % targets;
      size_t c2 = (i * 7 + 3) % targets;
      if (c2 == c1) c2 = (c1 + 1) % targets;
      col_idx.push_back(std::min(c1, c2));
      col_idx.push_back(std::max(c1, c2));
      row_ptr.push_back(col_idx.size());
    }
    values.resize(num_refs);
    aggregates.resize(num_refs);
    for (size_t k = 0; k < num_refs; ++k) {
      values[k].reserve(col_idx.size());
      aggregates[k].reserve(sources);
      for (size_t i = 0; i < sources; ++i) {
        double sum = 0.0;
        for (size_t j = row_ptr[i]; j < row_ptr[i + 1]; ++j) {
          double v = 1.0 + 0.5 * std::sin(static_cast<double>(
                                     i * 13 + k * 7 + j + 1));
          values[k].push_back(v);
          sum += v;
        }
        aggregates[k].push_back(sum);
      }
    }
    objective.reserve(sources);
    for (size_t i = 0; i < sources; ++i) {
      objective.push_back(10.0 + static_cast<double>(i % 7));
    }
  }

  size_t num_refs() const { return values.size(); }

  /// The owning ingest: copies everything into ReferenceAttribute.
  std::vector<core::ReferenceAttribute> BuildOwned() const {
    std::vector<core::ReferenceAttribute> refs(num_refs());
    for (size_t k = 0; k < num_refs(); ++k) {
      refs[k].name = StrFormat("ref%04zu", k);
      refs[k].source_aggregates = aggregates[k];
      refs[k].disaggregation =
          std::move(sparse::CsrMatrix::FromCsrArrays(
                        sources, targets, row_ptr, col_idx, values[k]))
              .ValueOrDie();
    }
    return refs;
  }

  /// The zero-copy ingest: borrows every array in place.
  std::vector<core::ReferenceAttributeView> BuildViews() const {
    std::vector<core::ReferenceAttributeView> views(num_refs());
    for (size_t k = 0; k < num_refs(); ++k) {
      views[k].name = StrFormat("ref%04zu", k);
      views[k].source_aggregates = common::ColumnView(aggregates[k]);
      sparse::CsrView cv;
      cv.rows = sources;
      cv.cols = targets;
      cv.row_ptr = common::ConstSpan<size_t>(row_ptr);
      cv.col_idx = common::ConstSpan<size_t>(col_idx);
      cv.values = common::ConstSpan<double>(values[k]);
      views[k].disaggregation =
          std::move(sparse::CsrMatrix::FromBorrowed(cv)).ValueOrDie();
    }
    return views;
  }
};

// Warm-workspace execute loop: one Prepare()d workspace, one warming
// call, then `reps` timed steady-state executes. Returns the last
// result; *seconds gets the best per-execute time and *hot_allocs the
// hot_path_allocs delta across the timed (post-warm) calls.
core::CrosswalkResult ExecuteWarm(const core::CrosswalkPlan& plan,
                                  common::ColumnView objective, size_t reps,
                                  double* seconds, uint64_t* hot_allocs) {
  core::ExecuteWorkspace ws;
  ws.Prepare(plan.workspace_spec(), /*slots=*/1);
  auto warm = plan.ExecuteWith(objective, /*pool=*/nullptr,
                               core::ExecuteOutput::kAggregatesOnly, &ws);
  warm.status().CheckOK();
  const uint64_t allocs_before = CounterValue("execute.hot_path_allocs");
  *seconds = 1e300;
  core::CrosswalkResult last = std::move(warm).value();
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    auto res = plan.ExecuteWith(objective, /*pool=*/nullptr,
                                core::ExecuteOutput::kAggregatesOnly, &ws);
    res.status().CheckOK();
    *seconds = std::min(*seconds, watch.ElapsedSeconds());
    last = std::move(res).value();
  }
  *hot_allocs = CounterValue("execute.hot_path_allocs") - allocs_before;
  return last;
}

Sample BenchOne(size_t num_sources, size_t num_targets, size_t num_refs) {
  const HostArrays host(num_sources, num_targets, num_refs);
  core::GeoAlignOptions options;
  options.threads = 1;
  // 512-reference design matrices make the simplex solve the dominant
  // cost; uniform weights keep the bench pointed at ingest + execute.
  options.solver = core::WeightSolver::kUniform;

  Sample s;
  s.references = num_refs;
  s.source_units = num_sources;
  s.target_units = num_targets;
  s.copy_compile_seconds = 1e300;
  s.view_compile_seconds = 1e300;

  std::vector<core::CrosswalkPlan> plans;  // [0]=copy, [1]=view
  for (size_t rep = 0; rep < Reps(); ++rep) {
    {
      const uint64_t bytes_before = CounterValue("ingest.bytes_copied");
      Stopwatch watch;
      std::vector<core::ReferenceAttribute> refs = host.BuildOwned();
      auto plan = core::CrosswalkPlan::Compile(refs, options);
      plan.status().CheckOK();
      s.copy_compile_seconds =
          std::min(s.copy_compile_seconds, watch.ElapsedSeconds());
      if (rep == 0) {
        s.copy_bytes = CounterValue("ingest.bytes_copied") - bytes_before;
        plans.push_back(std::move(plan).value());
      }
    }
    {
      const uint64_t bytes_before = CounterValue("ingest.bytes_copied");
      Stopwatch watch;
      auto plan = core::CrosswalkPlan::Compile(host.BuildViews(), options);
      plan.status().CheckOK();
      s.view_compile_seconds =
          std::min(s.view_compile_seconds, watch.ElapsedSeconds());
      if (rep == 0) {
        s.view_bytes = CounterValue("ingest.bytes_copied") - bytes_before;
        plans.push_back(std::move(plan).value());
      }
    }
  }
  // The view plans above borrow `host`, which outlives them (both die
  // at the end of this function) — the lifetime rule embedders follow.
  s.compile_speedup = s.copy_compile_seconds / s.view_compile_seconds;

  const common::ColumnView objective(host.objective);
  core::CrosswalkResult copy_res =
      ExecuteWarm(plans[0], objective, Reps(), &s.copy_execute_seconds,
                  &s.copy_hot_allocs);
  core::CrosswalkResult view_res =
      ExecuteWarm(plans[1], objective, Reps(), &s.view_execute_seconds,
                  &s.view_hot_allocs);

  s.bit_identical =
      plans[0].fingerprint() == plans[1].fingerprint() &&
      copy_res.target_estimates.size() == view_res.target_estimates.size() &&
      std::memcmp(copy_res.target_estimates.data(),
                  view_res.target_estimates.data(),
                  copy_res.target_estimates.size() * sizeof(double)) == 0 &&
      copy_res.weights.size() == view_res.weights.size() &&
      std::memcmp(copy_res.weights.data(), view_res.weights.data(),
                  copy_res.weights.size() * sizeof(double)) == 0;
  return s;
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_ingest_zero_copy.json";

  // The counters under measurement are no-ops while telemetry is off.
  obs::SetEnabled(true);

  const size_t sources = std::max<size_t>(
      64, static_cast<size_t>(2000.0 * bench::BenchScale()));
  const size_t targets = std::max<size_t>(8, sources / 4);

  std::vector<size_t> ref_counts;
  for (size_t n : {size_t{64}, size_t{512}}) {
    if (n <= MaxCols()) ref_counts.push_back(n);
  }
  if (ref_counts.empty()) ref_counts.push_back(MaxCols());

  std::printf("world: %zu sources -> %zu targets, reference counts", sources,
              targets);
  for (size_t n : ref_counts) std::printf(" %zu", n);
  std::printf(", scale %.3f\n", bench::BenchScale());

  std::vector<Sample> samples;
  for (size_t n : ref_counts) samples.push_back(BenchOne(sources, targets, n));

  eval::TextTable table({"references", "copy compile s", "view compile s",
                         "speedup", "copy bytes", "view bytes", "copy allocs",
                         "view allocs", "bit-identical"});
  for (const Sample& s : samples) {
    table.Row()
        .Num(static_cast<double>(s.references))
        .Num(s.copy_compile_seconds)
        .Num(s.view_compile_seconds)
        .Num(s.compile_speedup)
        .Num(static_cast<double>(s.copy_bytes))
        .Num(static_cast<double>(s.view_bytes))
        .Num(static_cast<double>(s.copy_hot_allocs))
        .Num(static_cast<double>(s.view_hot_allocs))
        .Text(s.bit_identical ? "yes" : "NO");
  }
  table.Print();

  bool ok = true;
  for (const Sample& s : samples) {
    if (!s.bit_identical) {
      std::printf("FAIL: arms drifted at %zu references\n", s.references);
      ok = false;
    }
    if (s.view_bytes != 0) {
      std::printf("FAIL: view ingest copied %llu bytes at %zu references\n",
                  static_cast<unsigned long long>(s.view_bytes),
                  s.references);
      ok = false;
    }
    if (s.copy_bytes == 0) {
      std::printf("FAIL: copy ingest charged no bytes at %zu references "
                  "(counter broken?)\n",
                  s.references);
      ok = false;
    }
    if (s.copy_hot_allocs != 0 || s.view_hot_allocs != 0) {
      std::printf("FAIL: warm executes grew buffers at %zu references\n",
                  s.references);
      ok = false;
    }
  }
  std::printf("\nzero-copy + zero-alloc + bit-identity: %s\n",
              ok ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ingest_zero_copy\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"source_units\": %zu,\n", sources);
  std::fprintf(f, "  \"target_units\": %zu,\n", targets);
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", bench::BenchScale());
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"invariants_hold\": %s,\n", ok ? "true" : "false");
  std::fprintf(f, "  \"series\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"references\": %zu, "
        "\"copy_compile_seconds\": %.6e, \"view_compile_seconds\": %.6e, "
        "\"copy_refs_per_sec\": %.3f, \"view_refs_per_sec\": %.3f, "
        "\"compile_speedup\": %.3f, "
        "\"copy_bytes_copied\": %llu, \"view_bytes_copied\": %llu, "
        "\"copy_execute_seconds\": %.6e, \"view_execute_seconds\": %.6e, "
        "\"copy_hot_path_allocs\": %llu, \"view_hot_path_allocs\": %llu, "
        "\"bit_identical\": %s}%s\n",
        s.references, s.copy_compile_seconds, s.view_compile_seconds,
        static_cast<double>(s.references) / s.copy_compile_seconds,
        static_cast<double>(s.references) / s.view_compile_seconds,
        s.compile_speedup,
        static_cast<unsigned long long>(s.copy_bytes),
        static_cast<unsigned long long>(s.view_bytes),
        s.copy_execute_seconds, s.view_execute_seconds,
        static_cast<unsigned long long>(s.copy_hot_allocs),
        static_cast<unsigned long long>(s.view_hot_allocs),
        s.bit_identical ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
