// Reproduces paper Figure 8 (§4.4.2): robustness to the choice of
// reference attributes. For each US dataset, GeoAlign runs with all
// references and with the {1,2} most/least source-level-correlated
// references left out; the NRMSE per policy is reported, along with
// the learned-weight diagnostics behind the paper's discussion (the
// two ~collinear USPS/population references trading weight).

#include <cstdio>

#include "bench_util.h"
#include "eval/reference_selection.h"
#include "eval/report.h"
#include "linalg/stats.h"

namespace geoalign {
namespace {

void Run() {
  const synth::Universe& uni = bench::GetUniverse(
      synth::UniverseId::kUnitedStates, synth::SuiteKind::kUnitedStates);
  std::printf("=== Figure 8: reference-subset robustness (NRMSE) ===\n");
  std::printf("universe: %s (%zu zips -> %zu counties)\n\n",
              uni.name.c_str(), uni.NumZips(), uni.NumCounties());

  auto cells = std::move(eval::RunReferenceSelection(uni)).ValueOrDie();

  eval::TextTable table({"dataset", "leave 1 least out", "leave 2 least out",
                         "leave 1 most out", "leave 2 most out",
                         "all references"});
  auto lookup = [&cells](const std::string& dataset,
                         eval::SubsetPolicy policy, size_t n_out) {
    for (const auto& c : cells) {
      if (c.dataset == dataset && c.policy == policy && c.n_out == n_out) {
        return c.nrmse;
      }
    }
    return std::nan("");
  };
  for (const synth::Dataset& d : uni.datasets) {
    table.Row()
        .Text(d.name)
        .Num(lookup(d.name, eval::SubsetPolicy::kLeastRelatedOut, 1))
        .Num(lookup(d.name, eval::SubsetPolicy::kLeastRelatedOut, 2))
        .Num(lookup(d.name, eval::SubsetPolicy::kMostRelatedOut, 1))
        .Num(lookup(d.name, eval::SubsetPolicy::kMostRelatedOut, 2))
        .Num(lookup(d.name, eval::SubsetPolicy::kAll, 0));
  }
  table.Print();

  // The §4.4.2 collinearity diagnostic: correlation between the two
  // population-level references at source level.
  auto pop = uni.FindDataset("Population");
  auto res = uni.FindDataset("USPS Residential Address");
  if (pop.ok() && res.ok()) {
    double corr = linalg::PearsonCorrelation(uni.datasets[*pop].source,
                                             uni.datasets[*res].source);
    std::printf(
        "\ncorr(Population, USPS Residential) at source level: %.3f "
        "(paper reports the collinear pair at ~0.96: leaving one out "
        "shifts its weight to the other)\n",
        corr);
  }
  std::printf(
      "(paper: dropping least-related references is harmless; dropping "
      "the most-related ones hurts exactly the datasets with no other "
      "well-correlated reference)\n");
}

}  // namespace
}  // namespace geoalign

int main() {
  geoalign::Run();
  return 0;
}
