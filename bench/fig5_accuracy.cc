// Reproduces paper Figure 5 (a: New York State, b: United States):
// cross-validated NRMSE of GeoAlign vs the dasymetric baselines, plus
// the §4.2 text claim about areal weighting being an order of
// magnitude worse.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "eval/cross_validation.h"
#include "eval/report.h"

namespace geoalign {
namespace {

void RunFigure(const char* title, const synth::Universe& uni) {
  std::printf("\n=== Figure 5 (%s): NRMSE, cross-validated ===\n", title);
  std::printf("universe: %zu zips -> %zu counties, %zu datasets\n\n",
              uni.NumZips(), uni.NumCounties(), uni.datasets.size());

  eval::CvOptions cv_options;
  cv_options.run_regression = true;
  auto report = std::move(eval::RunCrossValidation(uni, cv_options)).ValueOrDie();

  eval::TextTable table({"dataset", "GeoAlign", "dasy(Population)",
                         "dasy(USPS Residential)", "dasy(USPS Business)",
                         "areal_weighting", "regression"});
  for (const synth::Dataset& d : uni.datasets) {
    table.Row()
        .Text(d.name)
        .Num(report.Lookup(d.name, "GeoAlign"))
        .Num(report.Lookup(d.name, "dasymetric(Population)"))
        .Num(report.Lookup(d.name, "dasymetric(USPS Residential Address)"))
        .Num(report.Lookup(d.name, "dasymetric(USPS Business Address)"))
        .Num(report.Lookup(d.name, "areal_weighting"))
        .Num(report.Lookup(d.name, "regression"));
  }
  table.Print();

  double ga = report.MeanNrmse("GeoAlign");
  double aw = report.MeanNrmse("areal_weighting");
  std::printf("\nmean NRMSE: GeoAlign %.4f", ga);
  std::printf(" | dasymetric(Population) %.4f",
              report.MeanNrmse("dasymetric(Population)"));
  std::printf(" | areal weighting %.4f (%.1fx GeoAlign)\n", aw, aw / ga);
  double worst_ga = 0.0;
  for (const synth::Dataset& d : uni.datasets) {
    double v = report.Lookup(d.name, "GeoAlign");
    if (!std::isnan(v)) worst_ga = std::max(worst_ga, v);
  }
  std::printf("max GeoAlign NRMSE: %.4f (paper: <0.13 NY / <0.26 US)\n",
              worst_ga);
}

}  // namespace
}  // namespace geoalign

int main() {
  using geoalign::bench::GetUniverse;
  using geoalign::synth::SuiteKind;
  using geoalign::synth::UniverseId;
  geoalign::RunFigure("a, New York State",
            GetUniverse(UniverseId::kNewYork, SuiteKind::kNewYorkState));
  geoalign::RunFigure("b, United States",
            GetUniverse(UniverseId::kUnitedStates, SuiteKind::kUnitedStates));
  return 0;
}
