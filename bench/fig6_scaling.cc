// Reproduces paper Figure 6 (a/b) and the §4.3 runtime discussion:
// GeoAlign runtime versus the number of source units (zip codes) and
// target units (counties) across the six nested universes, averaged
// over ten cross-validated trials, plus the per-phase breakdown
// ("over 90% of the runtime is spent computing the disaggregation
// matrix").
//
// Built on google-benchmark for the per-universe timing; a summary
// table with the paper's series is printed at the end.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/geoalign.h"
#include "eval/report.h"

namespace geoalign {
namespace {

struct ScalingRow {
  std::string name;
  size_t zips = 0;
  size_t counties = 0;
  double seconds = 0.0;
  double disagg_share = 0.0;
};

std::vector<ScalingRow>& Rows() {
  static std::vector<ScalingRow> rows;
  return rows;
}

void BM_GeoAlignCrosswalk(benchmark::State& state, synth::UniverseId id) {
  const synth::Universe& uni =
      bench::GetUniverse(id, synth::SuiteKind::kUnitedStates);
  core::GeoAlign geoalign;
  // Cross-validated trials in rotation, as in the paper (runtime is
  // dataset-independent up to DM sparsity).
  std::vector<core::CrosswalkInput> inputs;
  for (size_t t = 0; t < uni.datasets.size(); ++t) {
    inputs.push_back(std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie());
  }
  double total = 0.0;
  double disagg = 0.0;
  size_t iters = 0;
  size_t next = 0;
  for (auto _ : state) {
    auto res = geoalign.Crosswalk(inputs[next]);
    res.status().CheckOK();
    benchmark::DoNotOptimize(res->target_estimates.data());
    total += res->timing.TotalSeconds();
    disagg += res->timing.Seconds("disaggregation");
    ++iters;
    next = (next + 1) % inputs.size();
  }
  state.counters["zips"] = static_cast<double>(uni.NumZips());
  state.counters["counties"] = static_cast<double>(uni.NumCounties());
  state.counters["disagg_share"] = total > 0.0 ? disagg / total : 0.0;

  ScalingRow row;
  row.name = uni.name;
  row.zips = uni.NumZips();
  row.counties = uni.NumCounties();
  row.seconds = iters > 0 ? total / static_cast<double>(iters) : 0.0;
  row.disagg_share = total > 0.0 ? disagg / total : 0.0;
  // Replace any earlier sample for this universe (benchmark may rerun).
  for (ScalingRow& r : Rows()) {
    if (r.name == row.name) {
      r = row;
      return;
    }
  }
  Rows().push_back(row);
}

void PrintSummary() {
  std::printf("\n=== Figure 6: GeoAlign runtime vs universe size ===\n");
  eval::TextTable table({"universe", "zips (source)", "counties (target)",
                         "crosswalk time (s)", "disaggregation share"});
  for (const ScalingRow& r : Rows()) {
    table.Row()
        .Text(r.name)
        .Num(static_cast<double>(r.zips))
        .Num(static_cast<double>(r.counties))
        .Num(r.seconds)
        .Num(r.disagg_share);
  }
  table.Print();
  if (Rows().size() >= 2) {
    const ScalingRow& a = Rows().front();
    const ScalingRow& b = Rows().back();
    double time_ratio = b.seconds / std::max(a.seconds, 1e-12);
    double unit_ratio = static_cast<double>(b.zips) / a.zips;
    std::printf(
        "\nlargest/smallest: %.1fx the source units, %.1fx the time "
        "(linear scaling => ratios comparable; paper Fig. 6)\n",
        unit_ratio, time_ratio);
  }
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using geoalign::synth::UniverseId;
  for (auto id :
       {UniverseId::kNewYork, UniverseId::kMidAtlantic,
        UniverseId::kNortheast, UniverseId::kEasternTime,
        UniverseId::kNonWest, UniverseId::kUnitedStates}) {
    std::string name =
        std::string("GeoAlignCrosswalk/") + geoalign::synth::UniverseName(id);
    benchmark::RegisterBenchmark(
        name.c_str(), [id](benchmark::State& state) {
          geoalign::BM_GeoAlignCrosswalk(state, id);
        })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  geoalign::PrintSummary();
  return 0;
}
