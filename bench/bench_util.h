#ifndef GEOALIGN_BENCH_BENCH_UTIL_H_
#define GEOALIGN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "synth/universe.h"

namespace geoalign::bench {

/// Builds (and caches per id+suite) a paper-scale universe. The
/// GEOALIGN_BENCH_SCALE environment variable (default 1.0) rescales
/// every universe, letting CI smoke-run the full harness quickly.
inline double BenchScale() {
  const char* env = std::getenv("GEOALIGN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline const synth::Universe& GetUniverse(
    synth::UniverseId id, std::optional<synth::SuiteKind> suite = {}) {
  struct Key {
    synth::UniverseId id;
    int suite;
  };
  static std::vector<std::pair<Key, std::unique_ptr<synth::Universe>>> cache;
  int suite_key = suite.has_value() ? static_cast<int>(*suite) : -1;
  for (auto& [key, uni] : cache) {
    if (key.id == id && key.suite == suite_key) return *uni;
  }
  synth::UniverseOptions opts;
  opts.scale = BenchScale();
  opts.seed = 2018;
  opts.suite = suite;
  auto built = synth::BuildUniverse(id, opts);
  built.status().CheckOK();
  cache.emplace_back(Key{id, suite_key}, std::make_unique<synth::Universe>(
                                             std::move(built).value()));
  return *cache.back().second;
}

}  // namespace geoalign::bench

#endif  // GEOALIGN_BENCH_BENCH_UTIL_H_
