// Ablation study over GeoAlign's design choices (DESIGN.md §4): the
// weight solver (paper's simplex-constrained LS vs alternatives), the
// Eq. 14 scale handling, the denominator source, and the
// zero-denominator fallback. Reports cross-validated mean NRMSE on the
// US dataset suite for every configuration.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "core/areal_weighting.h"
#include "core/regression.h"
#include "core/three_class_dasymetric.h"
#include "core/geoalign.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace geoalign {
namespace {

double MeanCvNrmse(const synth::Universe& uni,
                   const core::GeoAlignOptions& options) {
  core::GeoAlign geoalign(options);
  double acc = 0.0;
  for (size_t t = 0; t < uni.datasets.size(); ++t) {
    auto input = std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie();
    auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
    acc += eval::Nrmse(res.target_estimates, uni.datasets[t].target);
  }
  return acc / static_cast<double>(uni.datasets.size());
}

void Run() {
  const synth::Universe& uni = bench::GetUniverse(
      synth::UniverseId::kUnitedStates, synth::SuiteKind::kUnitedStates);
  std::printf("=== Ablation: GeoAlign design choices ===\n");
  std::printf("universe: %s (%zu zips -> %zu counties), metric: "
              "cross-validated mean NRMSE over %zu datasets\n\n",
              uni.name.c_str(), uni.NumZips(), uni.NumCounties(),
              uni.datasets.size());

  eval::TextTable table({"configuration", "mean NRMSE"});
  auto run = [&](const char* name, core::GeoAlignOptions opts) {
    table.Row().Text(name).Num(MeanCvNrmse(uni, opts));
  };

  core::GeoAlignOptions base;
  run("paper default (simplex LS, normalized, DM-row-sum denom)", base);

  {
    core::GeoAlignOptions o = base;
    o.solver = core::WeightSolver::kNnlsNormalized;
    run("solver: NNLS then rescale to simplex", o);
  }
  {
    core::GeoAlignOptions o = base;
    o.solver = core::WeightSolver::kClampedLs;
    run("solver: unconstrained LS, clamp+rescale", o);
  }
  {
    core::GeoAlignOptions o = base;
    o.solver = core::WeightSolver::kUniform;
    run("solver: uniform weights (no learning)", o);
  }
  {
    core::GeoAlignOptions o = base;
    o.scale_mode = core::ScaleMode::kRaw;
    run("scale: raw reference magnitudes in Eq. 14", o);
  }
  {
    core::GeoAlignOptions o = base;
    o.denominator = core::DenominatorMode::kFromAggregates;
    run("denominator: literal Eq. 14 aggregates", o);
  }
  {
    core::GeoAlignOptions o = base;
    o.zero_row_fallback = core::ZeroRowFallback::kFallbackDm;
    o.fallback_dm = &uni.measure_dm;
    run("zero rows: areal-weighting fallback", o);
  }
  table.Print();

  // Method-family comparison on the same protocol (beyond GeoAlign's
  // own knobs): the related-work lineage from homogeneity to classed
  // densities to regression.
  std::printf("\n=== Method families (same CV protocol) ===\n");
  eval::TextTable families({"method", "mean NRMSE"});
  auto run_method = [&](const char* name, const core::Interpolator& m,
                        bool skip_area) {
    double acc = 0.0;
    int n = 0;
    for (size_t t = 0; t < uni.datasets.size(); ++t) {
      const std::string& test_name = uni.datasets[t].name;
      if (skip_area && test_name == "Area (Sq. Miles)") continue;
      if (test_name == "Population") continue;  // comparable across rows
      auto input = std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie();
      auto res = std::move(m.Crosswalk(input)).ValueOrDie();
      acc += eval::Nrmse(res.target_estimates, uni.datasets[t].target);
      ++n;
    }
    families.Row().Text(name).Num(acc / n);
  };
  core::GeoAlign geoalign;
  run_method("GeoAlign", geoalign, false);
  core::ArealWeighting areal(uni.measure_dm);
  run_method("areal weighting (1 class)", areal, true);
  core::ThreeClassDasymetric three(
      uni.measure_dm,
      {.num_classes = 3, .reference_name = "Population"});
  run_method("3-class dasymetric [Langford 2006]", three, true);
  core::RegressionBaseline regression;
  run_method("OLS regression [Flowerdew & Green]", regression, false);
  families.Print();
  std::printf(
      "\n(interpretation: weight learning matters most when references "
      "disagree; the simplex constraint stabilizes mixing; the DM-row-sum "
      "denominator equals the literal one on consistent data)\n");
}

}  // namespace
}  // namespace geoalign

int main() {
  geoalign::Run();
  return 0;
}
