// Reproduces paper Figure 7 (§4.4.1): robustness to inaccurate
// reference attributes. For each of the US datasets and each noise
// level x ∈ {1, 2, 5, 10, 20, 30, 50} percent, every reference source
// aggregate is perturbed to (1 ± x/100)·y (sign uniform per entry),
// the cross-validated GeoAlign prediction is recomputed, and the
// deviation RMSE(perturbed)/RMSE(original) is reported as box-plot
// statistics over 20 replicates. (Thin wrapper over
// eval::RunNoiseExperiment.)

#include <cstdio>

#include "bench_util.h"
#include "eval/noise_experiment.h"
#include "eval/report.h"

namespace geoalign {
namespace {

void Run() {
  const synth::Universe& uni = bench::GetUniverse(
      synth::UniverseId::kUnitedStates, synth::SuiteKind::kUnitedStates);
  eval::NoiseExperimentOptions options;
  std::printf(
      "=== Figure 7: RMSE(perturbed)/RMSE(original), %d replicates ===\n",
      options.replicates);
  std::printf("universe: %s (%zu zips -> %zu counties)\n\n",
              uni.name.c_str(), uni.NumZips(), uni.NumCounties());

  auto cells = std::move(eval::RunNoiseExperiment(uni, options)).ValueOrDie();

  std::string current;
  eval::TextTable* table = nullptr;
  std::vector<eval::TextTable> tables;
  for (const eval::NoiseCell& cell : cells) {
    if (cell.dataset != current) {
      current = cell.dataset;
      std::printf("%s%s (clean NRMSE %.4f)\n",
                  tables.empty() ? "" : "\n", cell.dataset.c_str(),
                  cell.clean_nrmse);
      tables.emplace_back(std::vector<std::string>{
          "noise %", "min", "q1", "median", "q3", "max", "mean"});
      table = &tables.back();
    }
    table->Row()
        .Num(cell.level_percent)
        .Num(cell.deviation.min)
        .Num(cell.deviation.q1)
        .Num(cell.deviation.median)
        .Num(cell.deviation.q3)
        .Num(cell.deviation.max)
        .Num(cell.deviation.mean);
    // Print once the dataset's last level is added.
    if (cell.level_percent == options.levels.back()) {
      table->Print();
    }
  }
  std::printf(
      "\n(paper: deviations near 1 for all levels; slight degradation for "
      "area/population at high noise, mean < 1.1)\n");
}

}  // namespace
}  // namespace geoalign

int main() {
  geoalign::Run();
  return 0;
}
