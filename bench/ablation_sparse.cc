// Ablation over the disaggregation-matrix representation (paper §4.3
// attributes its per-dataset runtime variance to DM sparsity in
// SciPy): compares the CSR weighted-sum/row-scale pipeline against an
// equivalent dense-matrix implementation across universe sizes, and
// reports the DM fill ratios that make the sparse path mandatory at
// US scale.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/geoalign.h"
#include "linalg/matrix.h"
#include "sparse/sparse_ops.h"

namespace geoalign {
namespace {

// Dense re-implementation of GeoAlign's disaggregation step (Eq. 14):
// weighted sum of dense DMs, then row scaling.
linalg::Vector DenseDisaggregate(
    const std::vector<linalg::Matrix>& dms, const linalg::Vector& weights,
    const linalg::Vector& objective) {
  size_t rows = dms[0].rows();
  size_t cols = dms[0].cols();
  linalg::Matrix acc(rows, cols);
  for (size_t k = 0; k < dms.size(); ++k) {
    double w = weights[k];
    const std::vector<double>& src = dms[k].data();
    std::vector<double>& dst = acc.data();
    for (size_t i = 0; i < dst.size(); ++i) dst[i] += w * src[i];
  }
  linalg::Vector estimates(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    double denom = 0.0;
    for (size_t c = 0; c < cols; ++c) denom += acc(r, c);
    if (denom == 0.0) continue;
    double scale = objective[r] / denom;
    for (size_t c = 0; c < cols; ++c) estimates[c] += acc(r, c) * scale;
  }
  return estimates;
}

void BM_DisaggregationSparse(benchmark::State& state, synth::UniverseId id) {
  const synth::Universe& uni =
      bench::GetUniverse(id, synth::SuiteKind::kUnitedStates);
  auto input = std::move(uni.MakeLeaveOneOutInput(0)).ValueOrDie();
  std::vector<const sparse::CsrMatrix*> dms;
  linalg::Vector weights;
  for (const auto& ref : input.references) {
    dms.push_back(&ref.disaggregation);
    weights.push_back(1.0 / static_cast<double>(input.references.size()));
  }
  for (auto _ : state) {
    auto sum = std::move(sparse::WeightedSum(dms, weights)).ValueOrDie();
    linalg::Vector denom = sum.RowSums();
    std::vector<size_t> zero_rows;
    sparse::DivideRowsOrZero(sum, denom, 0.0, &zero_rows);
    sum.ScaleRows(input.objective_source);
    benchmark::DoNotOptimize(sum.ColSums());
  }
  double nnz = 0.0;
  for (const auto* dm : dms) nnz += static_cast<double>(dm->nnz());
  state.counters["fill"] =
      nnz / (static_cast<double>(dms.size()) * uni.NumZips() *
             uni.NumCounties());
}

void BM_DisaggregationDense(benchmark::State& state, synth::UniverseId id) {
  const synth::Universe& uni =
      bench::GetUniverse(id, synth::SuiteKind::kUnitedStates);
  auto input = std::move(uni.MakeLeaveOneOutInput(0)).ValueOrDie();
  std::vector<linalg::Matrix> dms;
  linalg::Vector weights;
  for (const auto& ref : input.references) {
    dms.push_back(ref.disaggregation.ToDense());
    weights.push_back(1.0 / static_cast<double>(input.references.size()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DenseDisaggregate(dms, weights, input.objective_source));
  }
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using geoalign::synth::UniverseId;
  // Dense representations of the US-scale DMs would need
  // 30k x 3k x 9 doubles (~6.5 GB); the dense arm therefore stops at
  // the Northeast universe — which is itself the point of the ablation.
  struct Config {
    UniverseId id;
    bool dense_feasible;
  };
  const Config configs[] = {
      {UniverseId::kNewYork, true},
      {UniverseId::kMidAtlantic, true},
      {UniverseId::kNortheast, true},
      {UniverseId::kUnitedStates, false},
  };
  for (const Config& c : configs) {
    std::string sparse_name = std::string("Disaggregation/sparse/") +
                              geoalign::synth::UniverseName(c.id);
    benchmark::RegisterBenchmark(sparse_name.c_str(),
                                 [id = c.id](benchmark::State& s) {
                                   geoalign::BM_DisaggregationSparse(s, id);
                                 })
        ->Unit(benchmark::kMillisecond);
    if (c.dense_feasible) {
      std::string dense_name = std::string("Disaggregation/dense/") +
                               geoalign::synth::UniverseName(c.id);
      benchmark::RegisterBenchmark(dense_name.c_str(),
                                   [id = c.id](benchmark::State& s) {
                                     geoalign::BM_DisaggregationDense(s, id);
                                   })
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
