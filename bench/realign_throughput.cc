// Serving-path throughput of the compile/execute split: realigning B
// objective columns over one shared reference set, comparing
//
//  * legacy — the seed CrosswalkPipeline::Realign loop, replicated
//    faithfully: per column it rebuilds the name→index map, copies the
//    full reference list into a CrosswalkInput, and runs the
//    recompile-per-call oracle `CrosswalkUncompiled` (which redoes
//    normalization, design assembly, and the Gram matrix every time);
//  * compiled — CrosswalkPipeline::Create (the compile step, timed and
//    charged to this arm) followed by RealignMany over the shared
//    immutable CrosswalkPlan, threads = 1 so the comparison isolates
//    amortization, not parallelism.
//
// Every column's output is checked BIT-identical across the two arms;
// the exit code reports that identity. Results go to a
// BENCH_realign_throughput.json trajectory file.
//
// Usage: realign_throughput [output.json]
//   GEOALIGN_BENCH_SCALE     rescales the universe   (default 1.0)
//   GEOALIGN_BENCH_REPS      timing repetitions      (default 3)
//   GEOALIGN_BENCH_MAX_COLS  caps the column counts  (default 512)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "common/string_util.h"
#include "core/geoalign.h"
#include "core/pipeline.h"
#include "eval/report.h"

namespace geoalign {
namespace {

struct Sample {
  size_t columns = 0;
  double legacy_seconds = 0.0;    // best of reps, all columns
  double compiled_seconds = 0.0;  // best of reps, Create + RealignMany
  double compile_seconds = 0.0;   // Create alone (within the best rep)
  double speedup = 1.0;
  bool bit_identical = true;
};

size_t Reps() {
  const char* env = std::getenv("GEOALIGN_BENCH_REPS");
  if (env == nullptr) return 3;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 3;
}

size_t MaxCols() {
  const char* env = std::getenv("GEOALIGN_BENCH_MAX_COLS");
  if (env == nullptr) return 512;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 512;
}

std::vector<std::string> MakeUnitNames(const char* prefix, size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(StrFormat("%s%06zu", prefix, i));
  }
  return names;
}

// B full-length objective columns: deterministic multiplicative
// perturbations of the base objective, keyed by unit name.
std::vector<core::CrosswalkPipeline::Column> MakeColumns(
    const std::vector<std::string>& sources, const linalg::Vector& base,
    size_t count) {
  std::vector<core::CrosswalkPipeline::Column> columns;
  columns.reserve(count);
  for (size_t b = 0; b < count; ++b) {
    core::CrosswalkPipeline::Column col;
    col.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      double wobble =
          1.0 + 0.1 * std::sin(static_cast<double>(i * 31 + b * 17 + 1));
      col.emplace_back(sources[i], base[i] * wobble);
    }
    columns.push_back(std::move(col));
  }
  return columns;
}

// The seed pipeline's per-call path, reproduced outside the class: a
// fresh name→index map, a fresh CrosswalkInput holding a full copy of
// the references, and the recompile-per-call oracle.
Result<std::vector<core::CrosswalkResult>> RealignLegacy(
    const std::vector<std::string>& sources,
    const std::vector<core::ReferenceAttribute>& references,
    const std::vector<core::CrosswalkPipeline::Column>& columns,
    const core::GeoAlignOptions& options) {
  std::vector<core::CrosswalkResult> out;
  out.reserve(columns.size());
  for (const core::CrosswalkPipeline::Column& column : columns) {
    std::unordered_map<std::string, size_t> index;
    index.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) index.emplace(sources[i], i);
    core::CrosswalkInput input;
    input.objective_source.assign(sources.size(), 0.0);
    for (const auto& [unit, value] : column) {
      auto it = index.find(unit);
      if (it == index.end()) {
        return Status::NotFound("realign_throughput: unknown unit '" + unit +
                                "'");
      }
      input.objective_source[it->second] += value;
    }
    input.references = references;
    GEOALIGN_ASSIGN_OR_RETURN(core::CrosswalkResult res,
                              core::CrosswalkUncompiled(input, options));
    out.push_back(std::move(res));
  }
  return out;
}

bool BitIdentical(const std::vector<core::CrosswalkResult>& a,
                  const std::vector<core::CrosswalkResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].target_estimates != b[i].target_estimates ||
        a[i].weights != b[i].weights || a[i].zero_rows != b[i].zero_rows ||
        a[i].estimated_dm.values() != b[i].estimated_dm.values() ||
        a[i].estimated_dm.col_idx() != b[i].estimated_dm.col_idx() ||
        a[i].estimated_dm.row_ptr() != b[i].estimated_dm.row_ptr()) {
      return false;
    }
  }
  return true;
}

Sample BenchOne(const std::vector<std::string>& sources,
                const std::vector<std::string>& targets,
                const std::vector<core::ReferenceAttribute>& references,
                const std::vector<core::CrosswalkPipeline::Column>& columns) {
  core::GeoAlignOptions options;
  options.threads = 1;

  Sample s;
  s.columns = columns.size();
  s.legacy_seconds = 1e300;
  s.compiled_seconds = 1e300;

  std::vector<core::CrosswalkResult> legacy;
  std::vector<core::CrosswalkResult> compiled;
  for (size_t rep = 0; rep < Reps(); ++rep) {
    {
      Stopwatch watch;
      auto res = RealignLegacy(sources, references, columns, options);
      res.status().CheckOK();
      s.legacy_seconds = std::min(s.legacy_seconds, watch.ElapsedSeconds());
      if (rep == 0) legacy = std::move(res).value();
    }
    {
      Stopwatch watch;
      auto pipeline = core::CrosswalkPipeline::Create(
          sources, targets, references,
          std::make_shared<core::GeoAlign>(options));
      pipeline.status().CheckOK();
      double compile_seconds = watch.ElapsedSeconds();
      auto res = pipeline->RealignMany(columns, /*threads=*/1);
      res.status().CheckOK();
      double total = watch.ElapsedSeconds();
      if (total < s.compiled_seconds) {
        s.compiled_seconds = total;
        s.compile_seconds = compile_seconds;
      }
      if (rep == 0) compiled = std::move(res).value();
    }
  }
  s.speedup = s.legacy_seconds / s.compiled_seconds;
  s.bit_identical = BitIdentical(legacy, compiled);
  return s;
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  using namespace geoalign;
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_realign_throughput.json";

  const synth::Universe& uni = bench::GetUniverse(
      synth::UniverseId::kUnitedStates, synth::SuiteKind::kUnitedStates);
  auto input = std::move(uni.MakeLeaveOneOutInput(0)).ValueOrDie();
  std::vector<std::string> sources =
      MakeUnitNames("z", input.NumSourceUnits());
  std::vector<std::string> targets =
      MakeUnitNames("c", input.NumTargetUnits());
  std::printf("universe: %s (%zu zips -> %zu counties), %zu references, "
              "scale %.3f, telemetry %s\n",
              uni.name.c_str(), uni.NumZips(), uni.NumCounties(),
              input.references.size(), bench::BenchScale(),
              obs::Enabled() ? "on" : "off (set GEOALIGN_TELEMETRY=1)");

  std::vector<size_t> column_counts;
  for (size_t b : {size_t{1}, size_t{8}, size_t{64}, size_t{512}}) {
    if (b <= MaxCols()) column_counts.push_back(b);
  }

  std::vector<Sample> samples;
  for (size_t count : column_counts) {
    std::vector<core::CrosswalkPipeline::Column> columns =
        MakeColumns(sources, input.objective_source, count);
    samples.push_back(
        BenchOne(sources, targets, input.references, columns));
  }

  eval::TextTable table({"columns", "legacy s", "compiled s", "compile s",
                         "speedup", "bit-identical"});
  for (const Sample& s : samples) {
    table.Row()
        .Num(static_cast<double>(s.columns))
        .Num(s.legacy_seconds)
        .Num(s.compiled_seconds)
        .Num(s.compile_seconds)
        .Num(s.speedup)
        .Text(s.bit_identical ? "yes" : "NO");
  }
  table.Print();

  bool all_identical = true;
  for (const Sample& s : samples) all_identical &= s.bit_identical;
  std::printf("\nbit-identity across all column counts: %s\n",
              all_identical ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::time_t now = std::time(nullptr);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d", std::gmtime(&now));
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realign_throughput\",\n");
  std::fprintf(f, "  \"date\": \"%s\",\n", stamp);
  std::fprintf(f, "  \"universe\": \"%s\",\n", uni.name.c_str());
  std::fprintf(f, "  \"zips\": %zu,\n  \"counties\": %zu,\n", uni.NumZips(),
               uni.NumCounties());
  std::fprintf(f, "  \"references\": %zu,\n", input.references.size());
  std::fprintf(f, "  \"bench_scale\": %.4f,\n", bench::BenchScale());
  std::fprintf(f, "  \"repetitions\": %zu,\n", Reps());
  std::fprintf(f, "  \"telemetry_enabled\": %s,\n",
               obs::Enabled() ? "true" : "false");
  std::fprintf(f, "  \"bit_identical_all\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"series\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"columns\": %zu, \"legacy_seconds\": %.6e, "
        "\"compiled_seconds\": %.6e, \"compile_seconds\": %.6e, "
        "\"legacy_cols_per_sec\": %.3f, \"compiled_cols_per_sec\": %.3f, "
        "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
        s.columns, s.legacy_seconds, s.compiled_seconds, s.compile_seconds,
        static_cast<double>(s.columns) / s.legacy_seconds,
        static_cast<double>(s.columns) / s.compiled_seconds, s.speedup,
        s.bit_identical ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return all_identical ? 0 : 1;
}
