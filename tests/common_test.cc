// Unit tests for the common substrate: Status/Result, Rng, string
// utilities, PhaseTimer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "obs/timer.h"
#include "common/string_util.h"

namespace geoalign {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(Status, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GEOALIGN_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd -> error
  EXPECT_FALSE(bad.ok());
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  for (double lambda : {0.5, 4.0, 100.0}) {
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) acc += rng.Poisson(lambda);
    EXPECT_NEAR(acc / n, lambda, lambda * 0.05 + 0.05) << lambda;
  }
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // A forked child should not replay the parent's future outputs.
  uint64_t p = parent.NextU64();
  uint64_t c = child.NextU64();
  EXPECT_NE(p, c);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtil, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(std::move(ParseDouble("3.25")).ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(std::move(ParseDouble(" -1e3 ")).ValueOrDie(), -1000.0);
}

TEST(StringUtil, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.25x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtil, ParseInt64) {
  EXPECT_EQ(std::move(ParseInt64("-42")).ValueOrDie(), -42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtil, JoinAndFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtil, StartsWithAndLower) {
  EXPECT_TRUE(StartsWith("POLYGON(...)", "POLYGON"));
  EXPECT_FALSE(StartsWith("POLY", "POLYGON"));
  EXPECT_EQ(AsciiToLower("MiXeD123"), "mixed123");
}

TEST(PhaseTimer, AccumulatesByPhase) {
  PhaseTimer t;
  t.Add("a", 1.0);
  t.Add("b", 2.0);
  t.Add("a", 0.5);
  EXPECT_DOUBLE_EQ(t.Seconds("a"), 1.5);
  EXPECT_DOUBLE_EQ(t.Seconds("b"), 2.0);
  EXPECT_DOUBLE_EQ(t.Seconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 3.5);
  EXPECT_EQ(t.Phases().size(), 2u);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch w;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
}

// Captured log lines for the serialization test. The sink runs under
// the logging emission mutex, so plain (non-atomic) state is safe here;
// TSan verifies that claim.
std::vector<std::string>* g_captured_lines = nullptr;

void CaptureSink(LogLevel /*level*/, const std::string& line) {
  g_captured_lines->push_back(line);
}

TEST(Logging, ThresholdIsAtomicAndSinkSerializesEmission) {
  LogLevel saved = GetLogThreshold();
  std::vector<std::string> captured;
  g_captured_lines = &captured;
  SetLogSink(&CaptureSink);
  SetLogThreshold(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kLinesPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        // Concurrent threshold flips exercise the atomic accessors.
        SetLogThreshold(i % 2 == 0 ? LogLevel::kInfo : LogLevel::kDebug);
        GEOALIGN_LOG(Warning) << "thread=" << t << " line=" << i
                              << " payload=abcdefghij";
      }
    });
  }
  for (std::thread& th : threads) th.join();
  SetLogSink(nullptr);
  SetLogThreshold(saved);
  g_captured_lines = nullptr;

  // Warnings outrank both threshold settings: every line must arrive,
  // intact (prefix and full payload), with no interleaving.
  ASSERT_EQ(captured.size(),
            static_cast<size_t>(kThreads) * kLinesPerThread);
  for (const std::string& line : captured) {
    EXPECT_TRUE(StartsWith(line, "[WARN ")) << line;
    EXPECT_NE(line.find(" payload=abcdefghij"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace geoalign
