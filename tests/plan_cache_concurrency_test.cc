// Concurrency contract of core::PlanCache: the content-keyed LRU must
// keep its counters EXACT — not merely monotone — under concurrent
// GetOrCompile traffic. Phase one replays a deterministic access
// sequence single-threaded against a ten-line reference LRU simulator
// and demands counter equality after every access; phase two hammers
// one cache from a pool of threads and asserts the accounting
// identities that must hold for any interleaving:
//
//   hits + misses == total GetOrCompile calls
//   evictions     == (misses - insert_races) - size()
//   size()        <= capacity
//
// (every non-race miss inserts exactly one entry, so entries leave
// only via eviction), plus plan correctness: every plan handed out
// for a key executes to exactly the bits of the uncompiled oracle for
// that key's input. Run under -DGEOALIGN_SANITIZE=thread this is also
// the data-race gate for the mutex annotations on PlanCache
// (docs/static_analysis.md, "Compile-time concurrency contracts").

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <future>
#include <list>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/geoalign.h"
#include "core/plan_cache.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

core::CrosswalkInput MakeSmallInput() {
  synth::UniverseOptions opts;
  opts.seed = 777;
  opts.scale = 0.05;
  synth::Universe universe =
      std::move(synth::BuildUniverse(synth::UniverseId::kNewYork, opts))
          .ValueOrDie();
  return std::move(universe.MakeLeaveOneOutInput(0)).ValueOrDie();
}

// K inputs with distinct content fingerprints: perturbing one source
// aggregate changes the key (content-keyed, not pointer-keyed).
std::vector<core::CrosswalkInput> MakeKeyVariants(size_t k) {
  core::CrosswalkInput base = MakeSmallInput();
  std::vector<core::CrosswalkInput> variants;
  variants.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    core::CrosswalkInput variant = base;
    variant.references[0].source_aggregates[0] +=
        static_cast<double>(i + 1);
    variants.push_back(std::move(variant));
  }
  return variants;
}

// Reference model of the cache's accounting: an LRU list of key
// indices plus the three counters PlanCache must reproduce exactly in
// the single-threaded regime (insert_races are impossible there).
struct LruOracle {
  explicit LruOracle(size_t cap) : capacity(cap) {}

  void Access(size_t key) {
    auto it = std::find(recency.begin(), recency.end(), key);
    if (it != recency.end()) {
      ++hits;
      recency.splice(recency.begin(), recency, it);
      return;
    }
    ++misses;
    recency.push_front(key);
    while (recency.size() > capacity) {
      recency.pop_back();
      ++evictions;
    }
  }

  size_t capacity;
  std::list<size_t> recency;  // front = MRU
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
};

TEST(PlanCacheConcurrencyTest, SingleThreadedCountersMatchOracleExactly) {
  constexpr size_t kKeys = 5;
  constexpr size_t kCapacity = 3;
  constexpr size_t kSteps = 40;
  std::vector<core::CrosswalkInput> variants = MakeKeyVariants(kKeys);
  core::GeoAlignOptions opts;
  opts.threads = 1;

  core::PlanCache cache(kCapacity);
  LruOracle oracle(kCapacity);
  // Last plan handed out per key. Holding these keeps evicted plans
  // alive, so a recompile after eviction must yield a NEW object while
  // a resident hit must return the SAME one.
  std::vector<std::shared_ptr<const core::CrosswalkPlan>> last(kKeys);

  for (size_t step = 0; step < kSteps; ++step) {
    // Deterministic but non-cyclic mix of repeats and evictions.
    const size_t key = (step * 7 + step * step * 3) % kKeys;
    const bool expect_hit =
        std::find(oracle.recency.begin(), oracle.recency.end(), key) !=
        oracle.recency.end();
    oracle.Access(key);

    auto plan =
        std::move(cache.GetOrCompile(variants[key].references, opts))
            .ValueOrDie();
    ASSERT_NE(plan, nullptr);
    if (expect_hit) {
      EXPECT_EQ(plan.get(), last[key].get())
          << "step " << step << ": resident key " << key
          << " must return the cached object";
    } else if (last[key] != nullptr) {
      EXPECT_NE(plan.get(), last[key].get())
          << "step " << step << ": evicted key " << key
          << " must be recompiled, not resurrected";
    }
    last[key] = std::move(plan);

    const core::PlanCacheStats stats = cache.stats();
    ASSERT_EQ(stats.hits, oracle.hits) << "step " << step;
    ASSERT_EQ(stats.misses, oracle.misses) << "step " << step;
    ASSERT_EQ(stats.evictions, oracle.evictions) << "step " << step;
    ASSERT_EQ(stats.insert_races, 0u) << "step " << step;
    ASSERT_EQ(cache.size(), oracle.recency.size()) << "step " << step;
  }
}

TEST(PlanCacheConcurrencyTest, ConcurrentHammerKeepsExactAccounting) {
  constexpr size_t kKeys = 5;
  constexpr size_t kCapacity = 2;  // < kKeys: eviction churn under load
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 30;
  std::vector<core::CrosswalkInput> variants = MakeKeyVariants(kKeys);
  core::GeoAlignOptions opts;
  opts.threads = 1;

  core::PlanCache cache(kCapacity);
  // plans[t][k]: last plan thread t obtained for key k (null if never
  // requested). Per-thread slots — no cross-thread writes.
  std::vector<std::vector<std::shared_ptr<const core::CrosswalkPlan>>> plans(
      kThreads,
      std::vector<std::shared_ptr<const core::CrosswalkPlan>>(kKeys));

  {
    common::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    done.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      done.push_back(pool.Submit([&, t] {
        for (size_t i = 0; i < kOpsPerThread; ++i) {
          // Each thread walks the key space with a different stride so
          // threads collide on some keys and diverge on others.
          const size_t key = (i * (t + 3) + t) % kKeys;
          auto plan =
              std::move(cache.GetOrCompile(variants[key].references, opts))
                  .ValueOrDie();
          ASSERT_NE(plan, nullptr);
          plans[t][key] = std::move(plan);
        }
      }));
    }
    for (auto& f : done) f.get();  // re-throws any worker failure
  }

  const core::PlanCacheStats stats = cache.stats();
  constexpr size_t kTotalOps = kThreads * kOpsPerThread;
  EXPECT_EQ(stats.hits + stats.misses, kTotalOps)
      << "every GetOrCompile is exactly one hit or one miss";
  EXPECT_LE(stats.insert_races, stats.misses)
      << "a race loser was first counted as a miss";
  EXPECT_LE(cache.size(), kCapacity);
  ASSERT_GE(stats.misses - stats.insert_races, cache.size());
  EXPECT_EQ(stats.evictions,
            (stats.misses - stats.insert_races) - cache.size())
      << "each non-race miss inserts one entry; entries leave only by "
         "eviction";
  // Cold start guarantees at least one miss per key ever touched.
  EXPECT_GE(stats.misses, kKeys);

  // Correctness of every plan handed out under contention: for each
  // key, all threads' plans must execute to exactly the bits of the
  // uncompiled oracle for that key's input — a cache that ever serves
  // key A's plan for key B fails here even if its counters balance.
  for (size_t key = 0; key < kKeys; ++key) {
    const auto want =
        std::move(core::CrosswalkUncompiled(variants[key], opts))
            .ValueOrDie();
    for (size_t t = 0; t < kThreads; ++t) {
      if (plans[t][key] == nullptr) continue;
      const auto got =
          std::move(plans[t][key]->Execute(variants[key].objective_source))
              .ValueOrDie();
      ASSERT_EQ(got.target_estimates, want.target_estimates)
          << "thread " << t << ", key " << key;
      ASSERT_EQ(got.weights, want.weights)
          << "thread " << t << ", key " << key;
      ASSERT_EQ(got.zero_rows, want.zero_rows)
          << "thread " << t << ", key " << key;
    }
  }
}

}  // namespace
}  // namespace geoalign
