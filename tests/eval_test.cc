// Unit tests for the evaluation harness: metrics, noise injection,
// cross-validation, reference selection, report tables.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "eval/noise.h"
#include "eval/reference_selection.h"
#include "eval/report.h"
#include "sparse/coo_builder.h"

namespace geoalign::eval {
namespace {

using linalg::Vector;

TEST(Metrics, RmseKnownValues) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5));
}

TEST(Metrics, NrmseNormalizesByTruthMean) {
  Vector truth = {10.0, 30.0};  // mean 20
  Vector est = {14.0, 27.0};    // errors 4, -3 -> rmse = sqrt(12.5)
  EXPECT_NEAR(Nrmse(est, truth), std::sqrt(12.5) / 20.0, 1e-12);
}

TEST(Metrics, MaeAndMax) {
  Vector truth = {1.0, 2.0, 3.0};
  Vector est = {2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(Mae(est, truth), 1.0);
  EXPECT_DOUBLE_EQ(MaxAbsError(est, truth), 2.0);
}

TEST(Noise, PerturbVectorLevels) {
  Rng rng(1);
  Vector v = {10.0, 20.0, 30.0, 40.0};
  Vector noisy = PerturbVector(v, 10.0, rng);
  ASSERT_EQ(noisy.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // Each entry is exactly (1 +/- 0.1) * v[i].
    double up = 1.1 * v[i];
    double down = 0.9 * v[i];
    EXPECT_TRUE(std::fabs(noisy[i] - up) < 1e-12 ||
                std::fabs(noisy[i] - down) < 1e-12)
        << i;
  }
}

TEST(Noise, ZeroLevelIsIdentity) {
  Rng rng(2);
  Vector v = {1.0, 2.0};
  EXPECT_EQ(PerturbVector(v, 0.0, rng), v);
}

TEST(Noise, SignsAreRandomPerEntry) {
  Rng rng(3);
  Vector v(1000, 1.0);
  Vector noisy = PerturbVector(v, 50.0, rng);
  int ups = 0;
  for (double x : noisy) {
    if (x > 1.0) ++ups;
  }
  EXPECT_GT(ups, 400);
  EXPECT_LT(ups, 600);
}

TEST(Noise, NeverNegativeForLevelsUpTo100) {
  Rng rng(4);
  Vector v = {5.0, 0.0, 100.0};
  Vector noisy = PerturbVector(v, 100.0, rng);
  for (double x : noisy) EXPECT_GE(x, 0.0);
}

TEST(Noise, PerturbReferencesKeepsObjectiveAndDms) {
  core::CrosswalkInput input;
  input.objective_source = {1.0, 2.0};
  core::ReferenceAttribute ref;
  ref.name = "r";
  ref.source_aggregates = {10.0, 20.0};
  sparse::CooBuilder b(2, 1);
  b.Add(0, 0, 10.0);
  b.Add(1, 0, 20.0);
  ref.disaggregation = b.Build();
  input.references.push_back(ref);
  Rng rng(5);
  core::CrosswalkInput noisy = PerturbReferences(input, 20.0, rng);
  EXPECT_EQ(noisy.objective_source, input.objective_source);
  EXPECT_TRUE(noisy.references[0].disaggregation.AllClose(
      input.references[0].disaggregation, 0.0));
  EXPECT_NE(noisy.references[0].source_aggregates,
            input.references[0].source_aggregates);
}

class CvFixture : public ::testing::Test {
 protected:
  static const synth::Universe& GetUniverse() {
    static synth::Universe* uni = [] {
      synth::UniverseOptions opts;
      opts.scale = 0.15;
      opts.seed = 11;
      opts.suite = synth::SuiteKind::kUnitedStates;
      return new synth::Universe(std::move(
          synth::BuildUniverse(synth::UniverseId::kNewYork, opts)).ValueOrDie());
    }();
    return *uni;
  }
};

TEST_F(CvFixture, ReportShapeAndSkips) {
  auto report = std::move(RunCrossValidation(GetUniverse())).ValueOrDie();
  // 10 datasets x (GeoAlign + 3 dasymetric + areal weighting).
  EXPECT_EQ(report.cells.size(), 10u * 5u);
  // Population test skips dasymetric(Population).
  EXPECT_TRUE(std::isnan(report.Lookup("Population",
                                       "dasymetric(Population)")));
  EXPECT_FALSE(std::isnan(report.Lookup("Population", "GeoAlign")));
  // Area test skips areal weighting.
  EXPECT_TRUE(std::isnan(report.Lookup("Area (Sq. Miles)",
                                       "areal_weighting")));
  // Unknown lookups are NaN.
  EXPECT_TRUE(std::isnan(report.Lookup("Nope", "GeoAlign")));
}

TEST_F(CvFixture, GeoAlignCompetitiveWithBaselines) {
  auto report = std::move(RunCrossValidation(GetUniverse())).ValueOrDie();
  double ga = report.MeanNrmse("GeoAlign");
  EXPECT_GT(ga, 0.0);
  EXPECT_LT(ga, 0.5);
  // GeoAlign competitive on average with every dasymetric baseline
  // (the paper's headline claim at full scale; at this reduced test
  // scale we allow some slack) and strictly better than areal
  // weighting.
  for (const char* m :
       {"dasymetric(Population)", "dasymetric(USPS Residential Address)",
        "dasymetric(USPS Business Address)"}) {
    EXPECT_LE(ga, report.MeanNrmse(m) * 1.5 + 0.01) << m;
  }
  EXPECT_LT(ga, report.MeanNrmse("areal_weighting"));
}

TEST_F(CvFixture, MissingDasymetricReferenceIsAnError) {
  CvOptions opts;
  opts.dasymetric_references = {"No Such Dataset"};
  EXPECT_FALSE(RunCrossValidation(GetUniverse(), opts).ok());
}

TEST_F(CvFixture, ArealWeightingCanBeDisabled) {
  CvOptions opts;
  opts.run_areal_weighting = false;
  auto report = std::move(RunCrossValidation(GetUniverse(), opts)).ValueOrDie();
  EXPECT_EQ(report.cells.size(), 10u * 4u);
}

TEST(ReferenceSelection, PolicyLabels) {
  EXPECT_EQ(PolicyLabel(SubsetPolicy::kAll, 0), "using all references");
  EXPECT_EQ(PolicyLabel(SubsetPolicy::kLeastRelatedOut, 1),
            "leave 1 least related reference out");
  EXPECT_EQ(PolicyLabel(SubsetPolicy::kMostRelatedOut, 2),
            "leave 2 most related references out");
}

TEST(ReferenceSelection, SelectsByCorrelation) {
  core::CrosswalkInput input;
  input.objective_source = {1.0, 2.0, 3.0, 4.0};
  auto add_ref = [&input](const char* name, Vector v) {
    core::ReferenceAttribute ref;
    ref.name = name;
    ref.source_aggregates = std::move(v);
    ref.disaggregation = sparse::CsrMatrix(4, 2);
    input.references.push_back(std::move(ref));
  };
  add_ref("perfect", {2.0, 4.0, 6.0, 8.0});     // corr 1
  add_ref("noise", {5.0, 1.0, 4.0, 2.0});       // low corr
  add_ref("anti", {4.0, 3.0, 2.0, 1.0});        // corr -1 (|corr| = 1)
  auto all = SelectReferences(input, SubsetPolicy::kAll, 0);
  EXPECT_EQ(all.size(), 3u);
  auto least_out = SelectReferences(input, SubsetPolicy::kLeastRelatedOut, 1);
  EXPECT_EQ(least_out, (std::vector<size_t>{0, 2}));  // drops "noise"
  auto most_out = SelectReferences(input, SubsetPolicy::kMostRelatedOut, 2);
  EXPECT_EQ(most_out, (std::vector<size_t>{1}));  // keeps only "noise"
  // n_out >= size degenerates to all.
  EXPECT_EQ(SelectReferences(input, SubsetPolicy::kMostRelatedOut, 5).size(),
            3u);
}

TEST_F(CvFixture, ReferenceSelectionRuns) {
  auto cells = std::move(RunReferenceSelection(GetUniverse())).ValueOrDie();
  // 10 datasets x 5 policies.
  EXPECT_EQ(cells.size(), 50u);
  for (const SelectionCell& c : cells) {
    EXPECT_GE(c.nrmse, 0.0);
    EXPECT_FALSE(c.used_references.empty());
    if (c.policy == SubsetPolicy::kAll) {
      EXPECT_EQ(c.used_references.size(), 9u);
    } else {
      EXPECT_EQ(c.used_references.size(), 9u - c.n_out);
    }
  }
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.Row().Text("alpha").Num(1.25);
  table.Row().Text("b").Num(std::nan(""));
  std::string out = table.ToString();
  EXPECT_NE(out.find("alpha  1.25"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("b      -"), std::string::npos);
}

}  // namespace
}  // namespace geoalign::eval
