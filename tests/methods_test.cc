// Tests for the extended method set (three-class dasymetric) and the
// disaggregation-matrix similarity metrics, including the §4.4.2
// collinear-reference DM-similarity observation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/areal_weighting.h"
#include "core/geoalign.h"
#include "core/three_class_dasymetric.h"
#include "eval/dm_metrics.h"
#include "eval/metrics.h"
#include "sparse/coo_builder.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

using sparse::CooBuilder;
using sparse::CsrMatrix;

// A two-density world: two source units, each straddling two target
// units; "urban" cells have 10x the density of "rural" cells.
struct TwoClassWorld {
  CsrMatrix measure_dm;
  core::CrosswalkInput input;
  linalg::Vector truth;
};

TwoClassWorld MakeTwoClassWorld() {
  TwoClassWorld w;
  // Areas: unit 0 = [4 urban | 6 rural], unit 1 = [2 urban | 8 rural],
  // split across targets so the urban part is always in target 0.
  CooBuilder areas(2, 2);
  areas.Add(0, 0, 4.0);
  areas.Add(0, 1, 6.0);
  areas.Add(1, 0, 2.0);
  areas.Add(1, 1, 8.0);
  w.measure_dm = areas.Build();
  // Reference density: 10 per urban area unit, 1 per rural.
  CooBuilder ref(2, 2);
  ref.Add(0, 0, 40.0);
  ref.Add(0, 1, 6.0);
  ref.Add(1, 0, 20.0);
  ref.Add(1, 1, 8.0);
  core::ReferenceAttribute population;
  population.name = "population";
  population.disaggregation = ref.Build();
  population.source_aggregates = population.disaggregation.RowSums();
  w.input.references.push_back(std::move(population));
  // Objective with the SAME two-class structure but different
  // densities: 5 per urban, 0.5 per rural.
  w.input.objective_source = {5.0 * 4 + 0.5 * 6, 5.0 * 2 + 0.5 * 8};
  w.truth = {5.0 * 4 + 5.0 * 2, 0.5 * 6 + 0.5 * 8};
  return w;
}

TEST(ThreeClassDasymetric, RecoversTwoClassDensities) {
  TwoClassWorld w = MakeTwoClassWorld();
  core::ThreeClassDasymetric method(w.measure_dm, {.num_classes = 2});
  auto res = std::move(method.Crosswalk(w.input)).ValueOrDie();
  // The NNLS fit recovers the per-class densities (0.5 rural, 5 urban).
  ASSERT_EQ(res.weights.size(), 2u);
  EXPECT_NEAR(res.weights[0], 0.5, 1e-8);
  EXPECT_NEAR(res.weights[1], 5.0, 1e-8);
  // And the target estimates are exact.
  EXPECT_TRUE(linalg::AllClose(res.target_estimates, w.truth, 1e-8));
  EXPECT_LT(res.VolumePreservationError(w.input.objective_source), 1e-9);
}

TEST(ThreeClassDasymetric, BeatsArealWeightingOnClassedData) {
  TwoClassWorld w = MakeTwoClassWorld();
  core::ThreeClassDasymetric three(w.measure_dm, {.num_classes = 2});
  core::ArealWeighting areal(w.measure_dm);
  auto t = std::move(three.Crosswalk(w.input)).ValueOrDie();
  auto a = std::move(areal.Crosswalk(w.input)).ValueOrDie();
  EXPECT_LT(eval::Rmse(t.target_estimates, w.truth),
            eval::Rmse(a.target_estimates, w.truth));
}

TEST(ThreeClassDasymetric, ValidatesInput) {
  TwoClassWorld w = MakeTwoClassWorld();
  core::ThreeClassDasymetric bad_ref(w.measure_dm, {.reference_index = 5});
  EXPECT_FALSE(bad_ref.Crosswalk(w.input).ok());
  core::ThreeClassDasymetric zero_classes(w.measure_dm, {.num_classes = 0});
  EXPECT_FALSE(zero_classes.Crosswalk(w.input).ok());
  core::ThreeClassDasymetric wrong_shape(CsrMatrix(3, 2), {});
  EXPECT_FALSE(wrong_shape.Crosswalk(w.input).ok());
}

TEST(ThreeClassDasymetric, OnSyntheticUniverse) {
  synth::UniverseOptions opts;
  opts.scale = 0.08;
  opts.seed = 808;
  opts.suite = synth::SuiteKind::kUnitedStates;
  auto uni = std::move(synth::BuildUniverse(synth::UniverseId::kNewYork,
                                            opts)).ValueOrDie();
  size_t starbucks = std::move(uni.FindDataset("Starbucks")).ValueOrDie();
  auto input = std::move(uni.MakeLeaveOneOutInput(starbucks)).ValueOrDie();
  size_t pop_ref = std::move(input.FindReference("Population")).ValueOrDie();
  core::ThreeClassDasymetric three(uni.measure_dm,
                                   {.num_classes = 3,
                                    .reference_index = pop_ref});
  core::ArealWeighting areal(uni.measure_dm);
  auto t = std::move(three.Crosswalk(input)).ValueOrDie();
  auto a = std::move(areal.Crosswalk(input)).ValueOrDie();
  double t_err = eval::Nrmse(t.target_estimates,
                             uni.datasets[starbucks].target);
  double a_err = eval::Nrmse(a.target_estimates,
                             uni.datasets[starbucks].target);
  // Density classing must improve on homogeneity for an urban-
  // concentrated attribute.
  EXPECT_LT(t_err, a_err);
  EXPECT_LT(t.VolumePreservationError(input.objective_source),
            1e-6 * linalg::Max(input.objective_source));
}

CsrMatrix SmallDm(std::vector<std::vector<double>> rows) {
  return CsrMatrix::FromDense(linalg::Matrix::FromRows(rows));
}

TEST(DmMetrics, IdenticalMatrices) {
  CsrMatrix a = SmallDm({{1.0, 2.0}, {0.0, 3.0}});
  EXPECT_DOUBLE_EQ(eval::DmFrobeniusDistance(a, a), 0.0);
  EXPECT_NEAR(eval::DmCosineSimilarity(a, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(eval::DmMisallocationShare(a, a), 0.0);
}

TEST(DmMetrics, DisjointAllocations) {
  CsrMatrix a = SmallDm({{6.0, 0.0}});
  CsrMatrix b = SmallDm({{0.0, 6.0}});
  EXPECT_DOUBLE_EQ(eval::DmFrobeniusDistance(a, b), std::sqrt(72.0));
  EXPECT_DOUBLE_EQ(eval::DmCosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(eval::DmMisallocationShare(a, b), 1.0);
}

TEST(DmMetrics, PartialOverlap) {
  CsrMatrix a = SmallDm({{4.0, 0.0}});
  CsrMatrix b = SmallDm({{2.0, 2.0}});
  // Half of b's mass sits where a has none: misallocation 0.5.
  EXPECT_DOUBLE_EQ(eval::DmMisallocationShare(a, b), 0.5);
}

TEST(DmMetrics, ZeroMatrix) {
  CsrMatrix zero(1, 2);
  CsrMatrix a = SmallDm({{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(eval::DmCosineSimilarity(zero, a), 0.0);
  EXPECT_DOUBLE_EQ(eval::DmMisallocationShare(zero, zero), 0.0);
}

TEST(DmMetrics, CollinearReferencesYieldNearIdenticalDms) {
  // The §4.4.2 mechanism: with two near-collinear references, dropping
  // one leaves the estimated DM almost unchanged.
  synth::UniverseOptions opts;
  opts.scale = 0.08;
  opts.seed = 909;
  opts.suite = synth::SuiteKind::kUnitedStates;
  auto uni = std::move(synth::BuildUniverse(synth::UniverseId::kNewYork,
                                            opts)).ValueOrDie();
  size_t accidents = std::move(uni.FindDataset("Accidents")).ValueOrDie();
  auto full = std::move(uni.MakeLeaveOneOutInput(accidents)).ValueOrDie();
  // Drop USPS Residential (collinear with Population).
  std::vector<size_t> keep;
  for (size_t k = 0; k < full.references.size(); ++k) {
    if (full.references[k].name != "USPS Residential Address") {
      keep.push_back(k);
    }
  }
  auto reduced = std::move(full.WithReferenceSubset(keep)).ValueOrDie();
  core::GeoAlign geoalign;
  auto res_full = std::move(geoalign.Crosswalk(full)).ValueOrDie();
  auto res_reduced = std::move(geoalign.Crosswalk(reduced)).ValueOrDie();
  double cos = eval::DmCosineSimilarity(res_full.estimated_dm,
                                        res_reduced.estimated_dm);
  EXPECT_GT(cos, 0.999);
  EXPECT_LT(eval::DmMisallocationShare(res_full.estimated_dm,
                                       res_reduced.estimated_dm),
            0.02);
}

}  // namespace
}  // namespace geoalign
