// Export-surface and flight-recorder tests (src/obs/export.*,
// request_context.*, flight_recorder.*): a golden-format check of the
// Prometheus text exposition writer, snapshot-during-writes histogram
// exactness (`_count` == Σ `_bucket` even mid-hammer), request-scope
// nesting/propagation, the audit ring, and a death test asserting the
// GEOALIGN_CHECK dump parses and names the in-flight request.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "io/json.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/telemetry.h"

namespace geoalign {
namespace {

// Saves/restores the global telemetry switch and leaves the registry
// and flight recorder clean so tests compose in any order.
class ObsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = obs::Enabled();
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().ResetAll();
    obs::FlightRecorder::Global().Clear();
  }
  void TearDown() override {
    obs::FlightRecorder::Global().Clear();
    obs::MetricsRegistry::Global().ResetAll();
    obs::SetEnabled(saved_enabled_);
  }

 private:
  bool saved_enabled_ = false;
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST_F(ObsExportTest, ParseMetricsFormatAcceptsKnownNames) {
  obs::MetricsFormat fmt = obs::MetricsFormat::kText;
  EXPECT_TRUE(obs::ParseMetricsFormat("prom", &fmt));
  EXPECT_EQ(fmt, obs::MetricsFormat::kPrometheus);
  EXPECT_TRUE(obs::ParseMetricsFormat("prometheus", &fmt));
  EXPECT_EQ(fmt, obs::MetricsFormat::kPrometheus);
  EXPECT_TRUE(obs::ParseMetricsFormat("json", &fmt));
  EXPECT_EQ(fmt, obs::MetricsFormat::kJson);
  EXPECT_TRUE(obs::ParseMetricsFormat("text", &fmt));
  EXPECT_EQ(fmt, obs::MetricsFormat::kText);
  fmt = obs::MetricsFormat::kJson;
  EXPECT_FALSE(obs::ParseMetricsFormat("yaml", &fmt));
  EXPECT_EQ(fmt, obs::MetricsFormat::kJson);  // untouched on failure
}

// The load-bearing golden test: byte-exact exposition output for a
// registry with one counter, one gauge, and one histogram. Pins HELP
// and TYPE lines, name sanitization, cumulative bucket derivation from
// the registry's per-bucket counts, the +Inf bucket, and _sum/_count.
TEST_F(ObsExportTest, PrometheusGoldenFormat) {
  obs::MetricsRegistry registry;
  registry.GetCounter("compile.count").Add(3);
  registry.GetGauge("pool.size").Set(-2);
  obs::Histogram& hist =
      registry.GetHistogram("exec.latency_us", {1.0, 2.0, 5.0});
  hist.Record(0.5);   // bucket le=1
  hist.Record(3.0);   // bucket le=5
  hist.Record(100.0); // overflow bucket
  const std::string got = obs::ToPrometheusText(registry.Snapshot());
  const std::string want =
      "# HELP geoalign_compile_count geoalign metric compile.count\n"
      "# TYPE geoalign_compile_count counter\n"
      "geoalign_compile_count 3\n"
      "# HELP geoalign_pool_size geoalign metric pool.size\n"
      "# TYPE geoalign_pool_size gauge\n"
      "geoalign_pool_size -2\n"
      "# HELP geoalign_exec_latency_us geoalign metric exec.latency_us\n"
      "# TYPE geoalign_exec_latency_us histogram\n"
      "geoalign_exec_latency_us_bucket{le=\"1\"} 1\n"
      "geoalign_exec_latency_us_bucket{le=\"2\"} 1\n"
      "geoalign_exec_latency_us_bucket{le=\"5\"} 2\n"
      "geoalign_exec_latency_us_bucket{le=\"+Inf\"} 3\n"
      "geoalign_exec_latency_us_sum 103.5\n"
      "geoalign_exec_latency_us_count 3\n";
  EXPECT_EQ(got, want);
}

TEST_F(ObsExportTest, PrometheusSanitizesNamesAndEscapesHelp) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ratio.dm/geo\\check").Add(1);
  const std::string got = obs::ToPrometheusText(registry.Snapshot());
  // Invalid characters become '_' in the metric name; the HELP text
  // keeps the original spelling with the backslash escaped.
  EXPECT_EQ(got,
            "# HELP geoalign_ratio_dm_geo_check geoalign metric "
            "ratio.dm/geo\\\\check\n"
            "# TYPE geoalign_ratio_dm_geo_check counter\n"
            "geoalign_ratio_dm_geo_check 1\n");
}

TEST_F(ObsExportTest, JsonLineHasNoNewlinesAndParses) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count").Add(7);
  registry.GetHistogram("b.latency_us", {1.0, 10.0}).Record(4.0);
  const std::string line = obs::ToJsonLine(registry.Snapshot());
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = io::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto counters = parsed->Get("counters");
  ASSERT_TRUE(counters.ok());
  auto a = (*counters)->Get("a.count");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->AsNumber().value(), 7.0);
}

// Snapshots taken while writer threads are mid-Record must still obey
// `count == Σ bucket_counts` (the exporter's `_count == Σ _bucket`
// invariant) — this holds by construction since the histogram derives
// its count from the same bucket reads.
TEST_F(ObsExportTest, SnapshotDuringWritesKeepsHistogramCountExact) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist =
      registry.GetHistogram("hammer.latency_us", {1.0, 2.0, 5.0, 10.0});
  obs::Counter& counter = registry.GetCounter("hammer.count");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>((i + static_cast<uint64_t>(t)) % 12));
        counter.Add();
      }
    });
  }
  start.store(true, std::memory_order_release);

  uint64_t last_count = 0;
  for (int round = 0; round < 50; ++round) {
    const obs::MetricsSnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const obs::HistogramSnapshot& h = snap.histograms[0];
    uint64_t bucket_total = 0;
    for (uint64_t b : h.bucket_counts) bucket_total += b;
    // Exact mid-hammer: the derived count IS the bucket sum.
    ASSERT_EQ(h.count, bucket_total);
    // Counts only grow across snapshots.
    ASSERT_GE(h.count, last_count);
    last_count = h.count;
    // And the rendered exposition agrees with itself: the +Inf bucket
    // line and the _count line carry the same number.
    const std::string prom = obs::ToPrometheusText(snap);
    const std::string inf_line =
        "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    const std::string count_line =
        "_count " + std::to_string(h.count) + "\n";
    EXPECT_NE(prom.find(inf_line), std::string::npos);
    EXPECT_NE(prom.find(count_line), std::string::npos);
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(hist.Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
}

TEST_F(ObsExportTest, RequestScopeGeneratesAndRestoresIdentity) {
  EXPECT_EQ(obs::CurrentRequestSeq(), 0u);
  {
    obs::RequestScope outer("outer-req");
    EXPECT_STREQ(obs::CurrentRequest().id, "outer-req");
    EXPECT_EQ(obs::CurrentRequestSeq(), outer.seq());
    {
      obs::RequestScope inner;
      EXPECT_EQ(std::string(inner.id()).rfind("req-", 0), 0u);
      EXPECT_STREQ(obs::CurrentRequest().id, inner.id());
      EXPECT_GT(inner.seq(), outer.seq());
    }
    // Inner scope exit restores the outer identity.
    EXPECT_STREQ(obs::CurrentRequest().id, "outer-req");
  }
  EXPECT_EQ(obs::CurrentRequestSeq(), 0u);
}

TEST_F(ObsExportTest, RequestScopeTruncatesLongIds) {
  const std::string long_id(80, 'x');
  obs::RequestScope scope(long_id);
  EXPECT_EQ(std::strlen(scope.id()), obs::RequestToken::kMaxIdLength);
  EXPECT_EQ(std::string(scope.id()),
            long_id.substr(0, obs::RequestToken::kMaxIdLength));
}

// A propagated scope (pool-worker pattern) carries the originating
// identity but does not add a second in-flight registration.
TEST_F(ObsExportTest, RequestScopePropagationSharesOneInFlightSlot) {
  obs::RequestScope origin("propagated-req");
  const obs::RequestToken token = obs::CurrentRequest();
  std::thread worker([token] {
    obs::RequestScope scope(token);
    EXPECT_STREQ(obs::CurrentRequest().id, "propagated-req");
    char ids[16][obs::RequestToken::kMaxIdLength + 1];
    const size_t n = obs::internal::SnapshotInFlightRequests(ids, 16);
    size_t matches = 0;
    for (size_t i = 0; i < n; ++i) {
      if (std::strcmp(ids[i], "propagated-req") == 0) ++matches;
    }
    EXPECT_EQ(matches, 1u);  // origin's slot only, not the worker's
  });
  worker.join();
}

TEST_F(ObsExportTest, FlightRecorderStampsAndCollectsInOrder) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  obs::RequestScope scope("ring-req");
  for (int i = 0; i < 5; ++i) {
    obs::AuditRecord r;
    std::snprintf(r.mode, sizeof(r.mode), "fused");
    r.rows = static_cast<uint64_t>(i);
    recorder.Record(r);
  }
  const std::vector<obs::AuditRecord> got = recorder.Collect();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(recorder.TotalRecorded(), 5u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, i + 1);
    EXPECT_EQ(got[i].rows, i);
    EXPECT_STREQ(got[i].request_id, "ring-req");
    EXPECT_EQ(got[i].request_seq, scope.seq());
    EXPECT_STREQ(got[i].mode, "fused");
  }
}

TEST_F(ObsExportTest, FlightRecorderRingKeepsNewestOnWrap) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const size_t total = obs::FlightRecorder::kCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    obs::AuditRecord r;
    r.rows = i;
    recorder.Record(r);
  }
  const std::vector<obs::AuditRecord> got = recorder.Collect();
  ASSERT_EQ(got.size(), obs::FlightRecorder::kCapacity);
  EXPECT_EQ(recorder.TotalRecorded(), total);
  // Oldest surviving record is the (total - capacity + 1)-th.
  EXPECT_EQ(got.front().seq, total - obs::FlightRecorder::kCapacity + 1);
  EXPECT_EQ(got.back().seq, total);
}

TEST_F(ObsExportTest, FlightRecorderDumpIsParseableJsonl) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  obs::RequestScope scope("dump-req");
  obs::AuditRecord r;
  std::snprintf(r.mode, sizeof(r.mode), "panel");
  r.plan_fingerprint = 0xdeadbeefULL;
  r.panel_width = 8;
  recorder.Record(r);
  const std::string path = ::testing::TempDir() + "geoalign_fr_demand.jsonl";
  std::string error;
  ASSERT_TRUE(recorder.DumpToFile(path, "demand", &error)) << error;

  const std::vector<std::string> lines = SplitLines(ReadFileOrDie(path));
  ASSERT_GE(lines.size(), 3u);  // header, >= 1 audit, metrics
  bool saw_audit = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    auto parsed = io::ParseJson(lines[i]);
    ASSERT_TRUE(parsed.ok()) << "line " << i << ": "
                             << parsed.status().ToString();
    const std::string type = (*parsed->Get("type"))->AsString().value();
    if (i == 0) {
      ASSERT_EQ(type, "header");
      EXPECT_EQ((*parsed->Get("reason"))->AsString().value(), "demand");
      const io::JsonValue& in_flight = **parsed->Get("in_flight");
      ASSERT_EQ(in_flight.size(), 1u);
      EXPECT_EQ(in_flight[0].AsString().value(), "dump-req");
    } else if (type == "audit") {
      saw_audit = true;
      EXPECT_EQ((*parsed->Get("request_id"))->AsString().value(),
                "dump-req");
      EXPECT_EQ((*parsed->Get("fingerprint"))->AsString().value(),
                "0xdeadbeef");
      EXPECT_EQ((*parsed->Get("mode"))->AsString().value(), "panel");
      EXPECT_EQ((*parsed->Get("panel_width"))->AsNumber().value(), 8.0);
    } else {
      ASSERT_EQ(type, "metrics");
      EXPECT_TRUE(parsed->Has("snapshot"));
    }
  }
  EXPECT_TRUE(saw_audit);
  std::remove(path.c_str());
}

// Death test: a GEOALIGN_CHECK failure must leave a parseable dump
// that names the in-flight request — the whole point of the recorder.
TEST_F(ObsExportTest, CheckFailureDumpNamesInFlightRequest) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "geoalign_fr_fatal.jsonl";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        obs::SetFlightRecorderDumpPath(path);
        obs::RequestScope scope("death-req-7");
        obs::AuditRecord r;
        std::snprintf(r.mode, sizeof(r.mode), "fused");
        obs::FlightRecorder::Global().Record(r);
        GEOALIGN_CHECK(false) << "flight recorder death test";
      },
      "Check failed: false");

  const std::vector<std::string> lines = SplitLines(ReadFileOrDie(path));
  ASSERT_GE(lines.size(), 2u);
  bool named_in_flight = false;
  bool named_in_audit = false;
  for (const std::string& line : lines) {
    auto parsed = io::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const std::string type = (*parsed->Get("type"))->AsString().value();
    if (type == "header") {
      EXPECT_EQ((*parsed->Get("reason"))->AsString().value(), "fatal");
      for (const io::JsonValue& id : (*parsed->Get("in_flight"))->items()) {
        if (id.AsString().value() == "death-req-7") named_in_flight = true;
      }
    } else if (type == "audit") {
      if ((*parsed->Get("request_id"))->AsString().value() ==
          "death-req-7") {
        named_in_audit = true;
      }
    }
  }
  EXPECT_TRUE(named_in_flight);
  EXPECT_TRUE(named_in_audit);
  std::remove(path.c_str());
}

// Crash-path death test: the installed SIGSEGV handler writes the
// signal-safe dump before the default disposition kills the process.
TEST_F(ObsExportTest, CrashHandlerDumpSurvivesFatalSignal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "geoalign_fr_crash.jsonl";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        obs::SetFlightRecorderDumpPath(path);
        obs::InstallCrashHandlers();
        obs::RequestScope scope("crash-req");
        obs::AuditRecord r;
        std::snprintf(r.mode, sizeof(r.mode), "panel");
        obs::FlightRecorder::Global().Record(r);
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");

  const std::vector<std::string> lines = SplitLines(ReadFileOrDie(path));
  ASSERT_GE(lines.size(), 2u);
  auto header = io::ParseJson(lines[0]);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ((*header->Get("reason"))->AsString().value(), "signal");
  bool named = false;
  for (const io::JsonValue& id : (*header->Get("in_flight"))->items()) {
    if (id.AsString().value() == "crash-req") named = true;
  }
  EXPECT_TRUE(named);
  auto audit = io::ParseJson(lines[1]);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ((*audit->Get("request_id"))->AsString().value(), "crash-req");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geoalign
