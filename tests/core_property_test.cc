// Property sweeps over randomly generated universes: the algebraic
// invariants every volume-preserving interpolator must satisfy, and
// GeoAlign-specific behavioural properties, checked across many
// random geographies and dataset mixes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>

#include "common/random.h"
#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "eval/metrics.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

struct RandomWorld {
  synth::Universe universe;
  core::CrosswalkInput input;  // leave-one-out for dataset 0
  linalg::Vector truth;        // dataset 0 target ground truth
};

RandomWorld MakeWorld(uint64_t seed) {
  synth::UniverseOptions opts;
  opts.seed = seed;
  opts.scale = 0.03 + static_cast<double>(seed % 5) * 0.02;
  opts.suite = (seed % 2 == 0) ? synth::SuiteKind::kUnitedStates
                               : synth::SuiteKind::kNewYorkState;
  RandomWorld w{
      std::move(synth::BuildUniverse(
                    (seed % 3 == 0) ? synth::UniverseId::kMidAtlantic
                                    : synth::UniverseId::kNewYork,
                    opts)).ValueOrDie(),
      {},
      {}};
  size_t test_idx = seed % w.universe.datasets.size();
  w.input = std::move(w.universe.MakeLeaveOneOutInput(test_idx)).ValueOrDie();
  w.truth = w.universe.datasets[test_idx].target;
  return w;
}

class CorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CorePropertyTest, GeoAlignInvariants) {
  RandomWorld w = MakeWorld(9000 + GetParam());
  core::GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(w.input)).ValueOrDie();

  // (1) Weights on the simplex.
  EXPECT_NEAR(linalg::Sum(res.weights), 1.0, 1e-8);
  for (double b : res.weights) EXPECT_GE(b, -1e-10);

  // (2) Volume preservation on supported rows; rows without reference
  // support (reported in zero_rows) carry exactly zero.
  {
    linalg::Vector row_sums = res.estimated_dm.RowSums();
    std::vector<bool> is_zero(row_sums.size(), false);
    for (size_t r : res.zero_rows) is_zero[r] = true;
    for (size_t r = 0; r < row_sums.size(); ++r) {
      double want = is_zero[r] ? 0.0 : w.input.objective_source[r];
      EXPECT_NEAR(row_sums[r], want,
                  1e-6 * std::max(1.0, w.input.objective_source[r]))
          << "row " << r;
    }
  }

  // (3) Non-negative estimates.
  for (double v : res.target_estimates) EXPECT_GE(v, 0.0);

  // (4) Support: the estimated DM only places mass where some
  // reference has support.
  const sparse::CsrMatrix& dm = res.estimated_dm;
  for (size_t r = 0; r < dm.rows(); ++r) {
    sparse::CsrMatrix::RowView row = dm.Row(r);
    for (size_t k = 0; k < row.size; ++k) {
      double ref_mass = 0.0;
      for (const auto& ref : w.input.references) {
        ref_mass += ref.disaggregation.At(r, row.cols[k]);
      }
      EXPECT_GT(ref_mass, 0.0) << "mass without reference support";
    }
  }
}

TEST_P(CorePropertyTest, ScaleInvarianceOfObjective) {
  // Scaling the objective by c scales the estimates by c (the learned
  // weights are scale-free thanks to max-normalization).
  RandomWorld w = MakeWorld(9100 + GetParam());
  core::GeoAlign geoalign;
  auto base = std::move(geoalign.Crosswalk(w.input)).ValueOrDie();
  core::CrosswalkInput scaled = w.input;
  linalg::Scale(scaled.objective_source, 7.5);
  auto res = std::move(geoalign.Crosswalk(scaled)).ValueOrDie();
  for (size_t j = 0; j < res.target_estimates.size(); ++j) {
    EXPECT_NEAR(res.target_estimates[j], 7.5 * base.target_estimates[j],
                1e-6 * std::max(1.0, 7.5 * base.target_estimates[j]));
  }
}

TEST_P(CorePropertyTest, ReferenceOrderIrrelevant) {
  RandomWorld w = MakeWorld(9200 + GetParam());
  core::GeoAlign geoalign;
  auto base = std::move(geoalign.Crosswalk(w.input)).ValueOrDie();
  // Reverse the reference list.
  core::CrosswalkInput reversed = w.input;
  std::reverse(reversed.references.begin(), reversed.references.end());
  auto res = std::move(geoalign.Crosswalk(reversed)).ValueOrDie();
  EXPECT_TRUE(linalg::AllClose(res.target_estimates, base.target_estimates,
                               1e-6));
  // Weights permute accordingly.
  size_t n = base.weights.size();
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(res.weights[k], base.weights[n - 1 - k], 1e-6);
  }
}

TEST_P(CorePropertyTest, SingleReferenceEqualsDasymetric) {
  // With exactly one reference GeoAlign degenerates to the dasymetric
  // method (beta = 1).
  RandomWorld w = MakeWorld(9300 + GetParam());
  core::CrosswalkInput single = w.input;
  single.references.resize(1);
  core::GeoAlign geoalign;
  core::Dasymetric dasy(size_t{0});
  auto ga = std::move(geoalign.Crosswalk(single)).ValueOrDie();
  auto da = std::move(dasy.Crosswalk(single)).ValueOrDie();
  EXPECT_TRUE(linalg::AllClose(ga.target_estimates, da.target_estimates,
                               1e-6));
}

TEST_P(CorePropertyTest, GeoAlignAtLeastMatchesWorstReference) {
  // Sanity floor: GeoAlign should essentially never be worse than the
  // WORST single-reference dasymetric estimate (it can always put all
  // weight on any one reference).
  RandomWorld w = MakeWorld(9400 + GetParam());
  core::GeoAlign geoalign;
  auto ga = std::move(geoalign.Crosswalk(w.input)).ValueOrDie();
  double ga_err = eval::Rmse(ga.target_estimates, w.truth);
  double worst = 0.0;
  for (size_t k = 0; k < w.input.references.size(); ++k) {
    core::Dasymetric dasy(k);
    auto res = std::move(dasy.Crosswalk(w.input)).ValueOrDie();
    worst = std::max(worst, eval::Rmse(res.target_estimates, w.truth));
  }
  EXPECT_LE(ga_err, worst * 1.05 + 1e-9);
}

// The concurrency contract of the parallel execution layer: for every
// ScaleMode x DenominatorMode x ZeroRowFallback combination, the
// disaggregation (Eq. 14) and re-aggregation (Eq. 17) outputs must be
// BIT-identical across thread counts {1, 2, 7, hardware_concurrency},
// and volume preservation (Eq. 16) must hold within 1e-9 (relative).
TEST_P(CorePropertyTest, ParallelDeterminismAndVolumePreservation) {
  RandomWorld w = MakeWorld(9500 + GetParam());
  size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const std::vector<size_t> thread_counts = {1, 2, 7, hw};

  for (core::ScaleMode scale :
       {core::ScaleMode::kNormalized, core::ScaleMode::kRaw}) {
    for (core::DenominatorMode den :
         {core::DenominatorMode::kFromDmRowSums,
          core::DenominatorMode::kFromAggregates}) {
      for (core::ZeroRowFallback fb :
           {core::ZeroRowFallback::kZero, core::ZeroRowFallback::kFallbackDm}) {
        SCOPED_TRACE("scale=" + std::to_string(static_cast<int>(scale)) +
                     " den=" + std::to_string(static_cast<int>(den)) +
                     " fb=" + std::to_string(static_cast<int>(fb)));
        std::optional<core::CrosswalkResult> baseline;
        for (size_t threads : thread_counts) {
          core::GeoAlignOptions opts;
          opts.scale_mode = scale;
          opts.denominator = den;
          opts.zero_row_fallback = fb;
          if (fb == core::ZeroRowFallback::kFallbackDm) {
            opts.fallback_dm = &w.universe.measure_dm;
          }
          opts.threads = threads;
          core::GeoAlign geoalign(opts);
          auto res = std::move(geoalign.Crosswalk(w.input)).ValueOrDie();

          if (!baseline.has_value()) {
            // Volume preservation, checked once (bit-identity below
            // extends it to every thread count). Rows without
            // reference support carry zero under kZero; under
            // kFallbackDm they carry the full objective mass whenever
            // the fallback DM has support there.
            linalg::Vector row_sums = res.estimated_dm.RowSums();
            linalg::Vector fallback_sums =
                fb == core::ZeroRowFallback::kFallbackDm
                    ? w.universe.measure_dm.RowSums()
                    : linalg::Vector();
            std::vector<bool> is_zero(row_sums.size(), false);
            for (size_t r : res.zero_rows) is_zero[r] = true;
            for (size_t r = 0; r < row_sums.size(); ++r) {
              double want = w.input.objective_source[r];
              if (is_zero[r] &&
                  (fb == core::ZeroRowFallback::kZero ||
                   fallback_sums[r] <= 0.0)) {
                want = 0.0;
              }
              ASSERT_NEAR(row_sums[r], want,
                          1e-9 * std::max(1.0, std::fabs(want)))
                  << "volume preservation broken at row " << r << ", threads "
                  << threads;
            }
            baseline = std::move(res);
            continue;
          }

          // Bit-identity with the threads=1 baseline: exact equality
          // on every output array, no tolerances.
          ASSERT_EQ(res.target_estimates, baseline->target_estimates)
              << "re-aggregation differs at threads=" << threads;
          ASSERT_EQ(res.weights, baseline->weights);
          ASSERT_EQ(res.zero_rows, baseline->zero_rows);
          ASSERT_EQ(res.estimated_dm.row_ptr(),
                    baseline->estimated_dm.row_ptr());
          ASSERT_EQ(res.estimated_dm.col_idx(),
                    baseline->estimated_dm.col_idx());
          ASSERT_EQ(res.estimated_dm.values(), baseline->estimated_dm.values())
              << "disaggregation differs at threads=" << threads;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorlds, CorePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace geoalign
