#!/usr/bin/env bash
# End-to-end proof that the C ABI is consumable from plain C99 and
# numerically indistinguishable from the C++ CLI (the `capi` gate in
# tools/ci.sh; also registered as a ctest):
#   1. compile examples/capi_smoke.c with a REAL C compiler under
#      -std=c99 -Wall -Werror (any C++ leak in capi/geoalign_c.h is a
#      hard compile failure here, complementing the geoalign-capi-abi
#      lint rule);
#   2. run it against libgeoalign_c.so;
#   3. run geoalign_cli --method geoalign --output aggregates on the
#      same crosswalk expressed as CSVs;
#   4. byte-diff the two outputs (%.12g CSV) — any drift fails.
# Usage: capi_smoke_test.sh <repo_root> <build_dir>
set -uo pipefail

ROOT="${1:?usage: capi_smoke_test.sh <repo_root> <build_dir>}"
BUILD="${2:?usage: capi_smoke_test.sh <repo_root> <build_dir>}"
CC_BIN="${CC:-cc}"

if ! command -v "$CC_BIN" >/dev/null 2>&1; then
  echo "capi smoke: C compiler '$CC_BIN' not found; set CC" >&2
  exit 3
fi

dir=$(mktemp -d) || exit 1
trap 'rm -rf "$dir"' EXIT

# 1. Pure-C compile. -I"$ROOT" resolves #include "capi/geoalign_c.h".
"$CC_BIN" -std=c99 -Wall -Wextra -Werror -I"$ROOT" \
  -o "$dir/capi_smoke" "$ROOT/examples/capi_smoke.c" \
  -L"$BUILD/capi" -lgeoalign_c || {
  echo "capi smoke: C99 compile of examples/capi_smoke.c failed" >&2
  exit 1
}

# 2. Run the embedder.
LD_LIBRARY_PATH="$BUILD/capi${LD_LIBRARY_PATH:+:$LD_LIBRARY_PATH}" \
  "$dir/capi_smoke" >"$dir/c_out.csv" || {
  echo "capi smoke: embedder run failed" >&2
  exit 1
}

# 3. The same crosswalk through the CLI (unit universes are the sorted
# unions, so s1..s3 / t1,t2 — matching the arrays in capi_smoke.c).
cat >"$dir/objective.csv" <<'EOF'
unit,value
s1,10
s2,20
s3,30
EOF
cat >"$dir/ref.csv" <<'EOF'
source,target,value
s1,t1,1
s1,t2,2
s2,t1,3
s2,t2,1
s3,t2,4
EOF
"$BUILD/tools/geoalign_cli" \
  --objective "$dir/objective.csv" --ref "population=$dir/ref.csv" \
  --method geoalign --output aggregates --out "$dir/cli_out.csv" || {
  echo "capi smoke: geoalign_cli run failed" >&2
  exit 1
}

# 4. Bit-for-bit text diff.
if ! diff -u "$dir/cli_out.csv" "$dir/c_out.csv"; then
  echo "capi smoke: C ABI output drifted from the C++ CLI" >&2
  exit 1
fi
echo "capi smoke: C99 embedder output byte-identical to geoalign_cli"
