// Differential harness for the C ABI (capi/geoalign_c.h): everything
// observable through libgeoalign_c — target estimates, weights, plan
// shape, fingerprints, error behavior — must be bit-identical to the
// C++ compile/execute path on the same bytes, whichever ingest flavor
// (borrowed CSR or copied COO) carried the matrices in.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "capi/geoalign_c.h"
#include "core/crosswalk_plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sparse/csr_matrix.h"

namespace geoalign {
namespace {

// The same two-reference aligned world as view_layer_test.cc.
struct CWorld {
  std::vector<size_t> row_ptr = {0, 2, 4, 5};
  std::vector<size_t> col_idx = {0, 1, 0, 1, 1};
  std::vector<double> values_a = {1.0, 2.0, 3.0, 1.0, 4.0};
  std::vector<double> values_b = {2.0, 1.0, 1.0, 2.0, 3.0};
  std::vector<double> agg_a = {3.0, 4.0, 4.0};
  std::vector<double> agg_b = {3.0, 3.0, 3.0};
  std::vector<double> objective = {10.0, 20.0, 30.0};

  geoalign_csr CsrA() const {
    return {3, 2, row_ptr.data(), col_idx.data(), values_a.data()};
  }
  geoalign_csr CsrB() const {
    return {3, 2, row_ptr.data(), col_idx.data(), values_b.data()};
  }

  std::vector<geoalign_coo_entry> CooOf(const std::vector<double>& vals) const {
    std::vector<geoalign_coo_entry> out;
    for (size_t r = 0; r < 3; ++r) {
      for (size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        out.push_back({r, col_idx[i], vals[i]});
      }
    }
    return out;
  }

  core::CrosswalkInput Owning() const {
    core::CrosswalkInput input;
    input.objective_source = objective;
    core::ReferenceAttribute a;
    a.name = std::string("a");
    a.source_aggregates = agg_a;
    a.disaggregation =
        std::move(sparse::CsrMatrix::FromCsrArrays(3, 2, row_ptr, col_idx,
                                                   values_a))
            .ValueOrDie();
    input.references.push_back(std::move(a));
    core::ReferenceAttribute b;
    b.name = std::string("b");
    b.source_aggregates = agg_b;
    b.disaggregation =
        std::move(sparse::CsrMatrix::FromCsrArrays(3, 2, row_ptr, col_idx,
                                                   values_b))
            .ValueOrDie();
    input.references.push_back(std::move(b));
    return input;
  }
};

geoalign_reference CsrRef(const char* name, const std::vector<double>& agg,
                          const geoalign_csr* csr) {
  geoalign_reference ref = {};
  ref.name = name;
  ref.source_aggregates = agg.data();
  ref.csr = csr;
  return ref;
}

TEST(CapiTest, AbiVersionMatchesHeader) {
  EXPECT_EQ(geoalign_abi_version(), uint32_t{GEOALIGN_ABI_VERSION});
}

TEST(CapiTest, CsrIngestIsBitIdenticalToCppPath) {
  CWorld w;
  auto cpp_plan = std::move(core::CrosswalkPlan::Compile(
                                w.Owning(), core::GeoAlignOptions{}))
                      .ValueOrDie();
  auto cpp_result = std::move(cpp_plan.Execute(w.objective)).ValueOrDie();

  const geoalign_csr csr_a = w.CsrA();
  const geoalign_csr csr_b = w.CsrB();
  geoalign_reference refs[2] = {CsrRef("a", w.agg_a, &csr_a),
                                CsrRef("b", w.agg_b, &csr_b)};
  geoalign_plan* plan = nullptr;
  ASSERT_EQ(geoalign_plan_compile(refs, 2, &plan), GEOALIGN_OK)
      << geoalign_error_message();
  EXPECT_EQ(geoalign_plan_num_source_units(plan), 3u);
  EXPECT_EQ(geoalign_plan_num_target_units(plan), 2u);
  EXPECT_EQ(geoalign_plan_num_references(plan), 2u);
  // Same bytes -> same plan fingerprint, whatever the ingest path.
  EXPECT_EQ(geoalign_plan_fingerprint(plan), cpp_plan.fingerprint());

  double target[2] = {0.0, 0.0};
  double weights[2] = {0.0, 0.0};
  ASSERT_EQ(geoalign_plan_execute(plan, w.objective.data(), 3, target,
                                  weights),
            GEOALIGN_OK)
      << geoalign_error_message();
  EXPECT_EQ(0, std::memcmp(target, cpp_result.target_estimates.data(),
                           sizeof(target)));
  EXPECT_EQ(0,
            std::memcmp(weights, cpp_result.weights.data(), sizeof(weights)));
  geoalign_plan_destroy(plan);
}

TEST(CapiTest, CooIngestMatchesCsrIngestExactly) {
  CWorld w;
  const geoalign_csr csr_a = w.CsrA();
  const geoalign_csr csr_b = w.CsrB();
  geoalign_reference csr_refs[2] = {CsrRef("a", w.agg_a, &csr_a),
                                    CsrRef("b", w.agg_b, &csr_b)};
  geoalign_plan* csr_plan = nullptr;
  ASSERT_EQ(geoalign_plan_compile(csr_refs, 2, &csr_plan), GEOALIGN_OK);

  const std::vector<geoalign_coo_entry> coo_a = w.CooOf(w.values_a);
  const std::vector<geoalign_coo_entry> coo_b = w.CooOf(w.values_b);
  geoalign_reference coo_refs[2] = {};
  coo_refs[0].name = "a";
  coo_refs[0].source_aggregates = w.agg_a.data();
  coo_refs[0].coo = coo_a.data();
  coo_refs[0].coo_count = coo_a.size();
  coo_refs[0].coo_rows = 3;
  coo_refs[0].coo_cols = 2;
  coo_refs[1].name = "b";
  coo_refs[1].source_aggregates = w.agg_b.data();
  coo_refs[1].coo = coo_b.data();
  coo_refs[1].coo_count = coo_b.size();
  coo_refs[1].coo_rows = 3;
  coo_refs[1].coo_cols = 2;
  geoalign_plan* coo_plan = nullptr;
  ASSERT_EQ(geoalign_plan_compile(coo_refs, 2, &coo_plan), GEOALIGN_OK)
      << geoalign_error_message();

  EXPECT_EQ(geoalign_plan_fingerprint(coo_plan),
            geoalign_plan_fingerprint(csr_plan));

  double t_csr[2], t_coo[2];
  ASSERT_EQ(geoalign_plan_execute(csr_plan, w.objective.data(), 3, t_csr,
                                  nullptr),
            GEOALIGN_OK);
  ASSERT_EQ(geoalign_plan_execute(coo_plan, w.objective.data(), 3, t_coo,
                                  nullptr),
            GEOALIGN_OK);
  EXPECT_EQ(0, std::memcmp(t_csr, t_coo, sizeof(t_csr)));

  geoalign_plan_destroy(csr_plan);
  geoalign_plan_destroy(coo_plan);
}

TEST(CapiTest, CompileErrorsAreReported) {
  CWorld w;
  geoalign_plan* plan = nullptr;

  // No references.
  EXPECT_EQ(geoalign_plan_compile(nullptr, 0, &plan),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(plan, nullptr);
  EXPECT_NE(std::string(geoalign_error_message()).find("no reference"),
            std::string::npos);

  // NULL out_plan.
  const geoalign_csr csr_a = w.CsrA();
  geoalign_reference ref = CsrRef("a", w.agg_a, &csr_a);
  EXPECT_EQ(geoalign_plan_compile(&ref, 1, nullptr),
            GEOALIGN_ERR_INVALID_ARGUMENT);

  // Neither csr nor coo.
  geoalign_reference neither = {};
  neither.name = "a";
  neither.source_aggregates = w.agg_a.data();
  EXPECT_EQ(geoalign_plan_compile(&neither, 1, &plan),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(geoalign_error_message()).find("exactly one"),
            std::string::npos);

  // Aggregates that contradict the matrix row sums fail validation the
  // same way the C++ path does.
  std::vector<double> bad_agg = {100.0, 4.0, 4.0};
  geoalign_reference bad = CsrRef("a", bad_agg, &csr_a);
  EXPECT_EQ(geoalign_plan_compile(&bad, 1, &plan), GEOALIGN_ERR_FAILED);
  EXPECT_NE(std::string(geoalign_error_message()).find("row 0"),
            std::string::npos);

  // COO entry out of range.
  geoalign_coo_entry oob = {7, 0, 1.0};
  geoalign_reference coo_ref = {};
  coo_ref.name = "a";
  coo_ref.source_aggregates = w.agg_a.data();
  coo_ref.coo = &oob;
  coo_ref.coo_count = 1;
  coo_ref.coo_rows = 3;
  coo_ref.coo_cols = 2;
  EXPECT_EQ(geoalign_plan_compile(&coo_ref, 1, &plan),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(geoalign_error_message()).find("out of range"),
            std::string::npos);
}

TEST(CapiTest, ExecuteErrorsAreReported) {
  CWorld w;
  const geoalign_csr csr_a = w.CsrA();
  geoalign_reference ref = CsrRef("a", w.agg_a, &csr_a);
  geoalign_plan* plan = nullptr;
  ASSERT_EQ(geoalign_plan_compile(&ref, 1, &plan), GEOALIGN_OK);

  double target[2];
  EXPECT_EQ(geoalign_plan_execute(nullptr, w.objective.data(), 3, target,
                                  nullptr),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(geoalign_plan_execute(plan, w.objective.data(), 3, nullptr,
                                  nullptr),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  // Wrong objective length surfaces the C++ validation failure.
  EXPECT_EQ(geoalign_plan_execute(plan, w.objective.data(), 2, target,
                                  nullptr),
            GEOALIGN_ERR_FAILED);
  EXPECT_NE(std::string(geoalign_error_message()).size(), 0u);
  geoalign_plan_destroy(plan);
}

TEST(CapiTest, NullHandleAccessorsAreSafe) {
  EXPECT_EQ(geoalign_plan_num_source_units(nullptr), 0u);
  EXPECT_EQ(geoalign_plan_num_target_units(nullptr), 0u);
  EXPECT_EQ(geoalign_plan_num_references(nullptr), 0u);
  EXPECT_EQ(geoalign_plan_fingerprint(nullptr), 0u);
  geoalign_plan_destroy(nullptr);  // no-op
}

// The C metrics export is the SAME serializer the C++ side uses:
// byte-identical output for a quiescent registry, in every format.
TEST(CapiTest, MetricsExportMatchesCppSerializerByteForByte) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const std::pair<int, obs::MetricsFormat> formats[] = {
      {GEOALIGN_METRICS_FORMAT_PROMETHEUS, obs::MetricsFormat::kPrometheus},
      {GEOALIGN_METRICS_FORMAT_JSON, obs::MetricsFormat::kJson},
      {GEOALIGN_METRICS_FORMAT_TEXT, obs::MetricsFormat::kText},
  };
  for (const auto& [c_format, cpp_format] : formats) {
    char* data = nullptr;
    size_t len = 0;
    ASSERT_EQ(geoalign_metrics_export(c_format, &data, &len), GEOALIGN_OK);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(std::strlen(data), len);  // NUL-terminated, len excludes NUL
    const std::string want = obs::FormatMetricsSnapshot(snapshot, cpp_format);
    EXPECT_EQ(std::string(data, len), want) << "format " << c_format;
    geoalign_buffer_free(data);
  }
}

TEST(CapiTest, MetricsExportRejectsBadArguments) {
  char* data = nullptr;
  EXPECT_EQ(geoalign_metrics_export(42, &data, nullptr),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(geoalign_metrics_export(GEOALIGN_METRICS_FORMAT_JSON, nullptr,
                                    nullptr),
            GEOALIGN_ERR_INVALID_ARGUMENT);
  // out_len is optional.
  EXPECT_EQ(geoalign_metrics_export(GEOALIGN_METRICS_FORMAT_JSON, &data,
                                    nullptr),
            GEOALIGN_OK);
  ASSERT_NE(data, nullptr);
  geoalign_buffer_free(data);
  geoalign_buffer_free(nullptr);  // no-op
}

TEST(CapiTest, FlightRecorderDumpWritesParseableFile) {
  CWorld w;
  const geoalign_csr csr_a = w.CsrA();
  geoalign_reference ref = CsrRef("a", w.agg_a, &csr_a);
  geoalign_plan* plan = nullptr;
  ASSERT_EQ(geoalign_plan_compile(&ref, 1, &plan), GEOALIGN_OK);
  double target[2];
  ASSERT_EQ(geoalign_plan_execute(plan, w.objective.data(), 3, target,
                                  nullptr),
            GEOALIGN_OK);
  geoalign_plan_destroy(plan);

  const std::string path = ::testing::TempDir() + "geoalign_capi_fr.jsonl";
  ASSERT_EQ(geoalign_flight_recorder_dump(path.c_str()), GEOALIGN_OK);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_NE(line.find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"demand\""), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));  // the execute's audit record
  EXPECT_NE(line.find("\"type\":\"audit\""), std::string::npos);
  std::remove(path.c_str());

  EXPECT_EQ(geoalign_flight_recorder_dump(nullptr),
            GEOALIGN_ERR_INVALID_ARGUMENT);
}

}  // namespace
}  // namespace geoalign
