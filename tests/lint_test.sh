#!/usr/bin/env bash
# ctest gate for tools/geoalign_lint.py (registered in
# tests/CMakeLists.txt as `geoalign_lint_test`):
#   1. each bad fixture under tests/lint_fixtures/ must be flagged with
#      the expected rule and a nonzero exit;
#   2. the clean fixture must pass;
#   3. the real src/ tree must be lint-clean.
# Usage: lint_test.sh <repo_root>
set -u

ROOT="${1:?usage: lint_test.sh <repo_root>}"
LINT="$ROOT/tools/geoalign_lint.py"
FIXTURES="$ROOT/tests/lint_fixtures"
failures=0

expect_violation() {
  local file="$1" rule="$2" out rc
  out=$(python3 "$LINT" --root "$FIXTURES" "$FIXTURES/$file" 2>&1)
  rc=$?
  if [[ $rc -ne 1 ]]; then
    echo "FAIL: $file: expected exit 1, got $rc"; failures=$((failures+1))
  elif ! grep -q "\[$rule\]" <<<"$out"; then
    echo "FAIL: $file: expected rule $rule in output:"; echo "$out"
    failures=$((failures+1))
  else
    echo "ok: $file flagged by $rule"
  fi
}

expect_clean() {
  local desc="$1"; shift
  local out rc
  out=$(python3 "$LINT" "$@" 2>&1)
  rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "FAIL: $desc: expected exit 0, got $rc:"; echo "$out"
    failures=$((failures+1))
  else
    echo "ok: $desc clean"
  fi
}

expect_violation src/sparse/bad_unordered_iteration.cc geoalign-unordered-iteration
expect_violation src/core/bad_float_eq.cc geoalign-float-eq
expect_violation src/io/bad_no_throw.cc geoalign-no-throw
expect_violation src/core/bad_discarded_status.cc geoalign-discarded-status
expect_violation src/eval/bad_plan_bypass.cc geoalign-plan-bypass
expect_violation src/core/bad_raw_clock.cc geoalign-raw-clock
expect_violation src/sparse/bad_hot_alloc.cc geoalign-hot-alloc
expect_violation src/partition/bad_overlay_hot_alloc.cc geoalign-hot-alloc
expect_violation src/core/bad_raw_intrinsic.cc geoalign-raw-intrinsic
expect_violation src/core/bad_raw_mutex.cc geoalign-raw-mutex
expect_violation src/core/bad_metrics_export.cc geoalign-metrics-export
expect_violation capi/bad_cpp_leak.h geoalign-capi-abi
expect_clean "clean fixture" --root "$FIXTURES" "$FIXTURES/src/common/clean.cc"
expect_clean "real src/ tree" --root "$ROOT"

if [[ $failures -ne 0 ]]; then
  echo "$failures lint gate check(s) failed"
  exit 1
fi
echo "lint gate: all checks passed"
