// Edge cases of the zero-copy view layer (common/span.h, the borrowed
// CsrMatrix mode, and the view-based compile paths) plus the hardened
// columnar io::Table error paths.
//
// The load-bearing assertions:
//  - compiling from views copies ZERO aggregate-column bytes (counter
//    delta on `ingest.bytes_copied` plus pointer identity into the
//    prepared set), while the owning path counts every byte it copies;
//  - borrowed buffers guarded by keepalives survive the caller
//    dropping its handle;
//  - odd-length / misaligned views (offset into a larger host buffer)
//    produce bit-identical results through the SIMD panel path;
//  - Table::Create rejects duplicate headers and NumericColumn reports
//    the offending row and cell text, including trailing garbage.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/span.h"
#include "core/crosswalk_plan.h"
#include "io/csv.h"
#include "io/table.h"
#include "obs/metrics.h"
#include "sparse/csr_matrix.h"

namespace geoalign {
namespace {

uint64_t IngestBytes() {
  return obs::MetricsRegistry::Global()
      .GetCounter("ingest.bytes_copied")
      .Value();
}

// ---- ConstSpan / Buffer basics ----------------------------------------

TEST(ConstSpanTest, DefaultIsEmpty) {
  common::ColumnView v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.data(), nullptr);
  EXPECT_EQ(v.begin(), v.end());
}

TEST(ConstSpanTest, ViewsVectorWithoutCopying) {
  std::vector<double> host = {1.0, 2.0, 3.0};
  common::ColumnView v = host;
  EXPECT_EQ(v.data(), host.data());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v.front(), 1.0);
  EXPECT_EQ(v.back(), 3.0);
}

TEST(ConstSpanTest, ElementwiseEqualityAcrossStorage) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {1.0, 2.0};
  // Same values, different memory: equal. Mixed span/vector comparisons
  // resolve through the implicit conversion.
  EXPECT_TRUE(common::ColumnView(a) == common::ColumnView(b));
  EXPECT_TRUE(common::ColumnView(a) == b);
  b[1] = 3.0;
  EXPECT_TRUE(common::ColumnView(a) != common::ColumnView(b));
  EXPECT_FALSE(common::ColumnView(a) == common::ColumnView(b).subspan(0, 1));
}

TEST(ConstSpanTest, EmptyViewOverEmptyVector) {
  std::vector<double> host;
  common::ColumnView v = host;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v == common::ColumnView());
}

TEST(BufferTest, KeepaliveExtendsLifetime) {
  common::ColumnView view;
  std::shared_ptr<const void> keepalive;
  {
    common::Buffer buf = common::Buffer::FromVector({4.0, 5.0});
    view = buf.view();
    keepalive = buf.keepalive();
  }  // Buffer gone; keepalive still holds the storage.
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 4.0);
  EXPECT_EQ(view[1], 5.0);
  EXPECT_NE(keepalive, nullptr);
}

TEST(BufferTest, EmptyBufferHasNoKeepalive) {
  common::Buffer buf;
  EXPECT_TRUE(buf.view().empty());
  EXPECT_EQ(buf.keepalive(), nullptr);
}

// ---- zero-copy compile paths ------------------------------------------

// One aligned two-reference world, built both ways: owning
// CrosswalkInput and borrowed CrosswalkInputView over the same bytes.
struct World {
  // Caller-owned storage (what an embedding host would hold).
  std::vector<size_t> row_ptr = {0, 2, 4, 5};
  std::vector<size_t> col_idx = {0, 1, 0, 1, 1};
  std::vector<double> values_a = {1.0, 2.0, 3.0, 1.0, 4.0};
  std::vector<double> values_b = {2.0, 1.0, 1.0, 2.0, 3.0};
  std::vector<double> agg_a = {3.0, 4.0, 4.0};
  std::vector<double> agg_b = {3.0, 3.0, 3.0};
  std::vector<double> objective = {10.0, 20.0, 30.0};

  core::CrosswalkInput Owning() const {
    core::CrosswalkInput input;
    input.objective_source = objective;
    input.references.resize(2);
    input.references[0].name = "a";
    input.references[0].source_aggregates = agg_a;
    input.references[0].disaggregation =
        std::move(sparse::CsrMatrix::FromCsrArrays(3, 2, row_ptr, col_idx,
                                                   values_a))
            .ValueOrDie();
    input.references[1].name = "b";
    input.references[1].source_aggregates = agg_b;
    input.references[1].disaggregation =
        std::move(sparse::CsrMatrix::FromCsrArrays(3, 2, row_ptr, col_idx,
                                                   values_b))
            .ValueOrDie();
    return input;
  }

  core::CrosswalkInputView Borrowing() const {
    core::CrosswalkInputView input;
    input.objective_source = objective;
    input.references.resize(2);
    input.references[0].name = "a";
    input.references[0].source_aggregates = agg_a;
    input.references[0].disaggregation =
        std::move(sparse::CsrMatrix::FromBorrowed(
                      {3, 2, row_ptr, col_idx, values_a}))
            .ValueOrDie();
    input.references[1].name = "b";
    input.references[1].source_aggregates = agg_b;
    input.references[1].disaggregation =
        std::move(sparse::CsrMatrix::FromBorrowed(
                      {3, 2, row_ptr, col_idx, values_b}))
            .ValueOrDie();
    return input;
  }
};

TEST(ZeroCopyCompileTest, ViewPathCopiesNoBytesAndAliasesCallerMemory) {
  World w;
  const uint64_t before = IngestBytes();
  auto plan = std::move(core::CrosswalkPlan::Compile(
                            w.Borrowing(), core::GeoAlignOptions{}))
                  .ValueOrDie();
  EXPECT_EQ(IngestBytes(), before) << "view-based compile must not copy";

  // The prepared set reads the caller's aggregate columns in place.
  EXPECT_EQ(plan.references().reference(0).source_aggregates.data(),
            w.agg_a.data());
  EXPECT_EQ(plan.references().reference(1).source_aggregates.data(),
            w.agg_b.data());
  // And the borrowed DM aliases the caller's CSR arrays.
  EXPECT_EQ(plan.references().reference(0).disaggregation.values().data(),
            w.values_a.data());
  EXPECT_EQ(plan.references().reference(0).disaggregation.row_ptr().data(),
            w.row_ptr.data());
}

TEST(ZeroCopyCompileTest, OwningPathCountsItsCopies) {
  World w;
  const uint64_t before = IngestBytes();
  auto plan = std::move(core::CrosswalkPlan::Compile(
                            w.Owning(), core::GeoAlignOptions{}))
                  .ValueOrDie();
  // Per reference: 3 aggregate doubles + 4 row_ptr size_t + 5 col_idx
  // size_t + 5 value doubles.
  const uint64_t per_ref = 3 * sizeof(double) + 4 * sizeof(size_t) +
                           5 * (sizeof(size_t) + sizeof(double));
  EXPECT_EQ(IngestBytes(), before + 2 * per_ref);
  EXPECT_EQ(plan.num_source_units(), 3u);
}

TEST(ZeroCopyCompileTest, BothPathsAreBitIdentical) {
  World w;
  auto owning = std::move(core::CrosswalkPlan::Compile(
                              w.Owning(), core::GeoAlignOptions{}))
                    .ValueOrDie();
  auto viewed = std::move(core::CrosswalkPlan::Compile(
                              w.Borrowing(), core::GeoAlignOptions{}))
                    .ValueOrDie();
  // Same bytes -> same fingerprint (PlanCache keys are ingest-path
  // independent), same results bit-for-bit.
  EXPECT_EQ(owning.fingerprint(), viewed.fingerprint());
  auto r1 = std::move(owning.Execute(w.objective)).ValueOrDie();
  auto r2 = std::move(viewed.Execute(w.objective)).ValueOrDie();
  ASSERT_EQ(r1.target_estimates.size(), r2.target_estimates.size());
  EXPECT_EQ(0, std::memcmp(r1.target_estimates.data(),
                           r2.target_estimates.data(),
                           r1.target_estimates.size() * sizeof(double)));
  ASSERT_EQ(r1.weights.size(), r2.weights.size());
  EXPECT_EQ(0, std::memcmp(r1.weights.data(), r2.weights.data(),
                           r1.weights.size() * sizeof(double)));
}

TEST(ZeroCopyCompileTest, KeepaliveOutlivesTheCallerHandle) {
  World w;
  std::optional<core::CrosswalkPlan> plan;
  {
    // Host storage owned by ref-counted buffers the caller drops right
    // after compiling; the plan holds the keepalives.
    auto agg = std::make_shared<const std::vector<double>>(w.agg_a);
    auto vals = std::make_shared<const std::vector<double>>(w.values_a);
    core::ReferenceAttributeView ref;
    ref.name = "a";
    ref.source_aggregates = *agg;
    ref.keepalive = agg;
    ref.disaggregation =
        std::move(sparse::CsrMatrix::FromBorrowed(
                      {3, 2, w.row_ptr, w.col_idx, *vals}, vals))
            .ValueOrDie();
    std::vector<core::ReferenceAttributeView> refs;
    refs.push_back(std::move(ref));
    plan = std::move(core::CrosswalkPlan::Compile(std::move(refs),
                                                  core::GeoAlignOptions{}))
               .ValueOrDie();
  }  // Caller handles gone.
  auto res = std::move(plan->Execute(w.objective)).ValueOrDie();
  ASSERT_EQ(res.target_estimates.size(), 2u);
  // One reference: GeoAlign degenerates to disaggregate-and-reaggregate
  // by that reference, which preserves total volume.
  EXPECT_NEAR(res.target_estimates[0] + res.target_estimates[1], 60.0, 1e-9);
}

TEST(ZeroCopyCompileTest, OddLengthMisalignedViewsMatchThroughPanels) {
  // Views offset one double into a larger host buffer: 8-byte aligned
  // but deliberately off any 16/32-byte vector boundary, with an
  // odd length (3) so the SIMD panel path sees ragged tails.
  World w;
  std::vector<double> host_agg(1 + w.agg_a.size(), -1.0);
  std::vector<double> host_obj(1 + w.objective.size(), -1.0);
  std::copy(w.agg_a.begin(), w.agg_a.end(), host_agg.begin() + 1);
  std::copy(w.objective.begin(), w.objective.end(), host_obj.begin() + 1);

  core::ReferenceAttributeView ref;
  ref.name = "a";
  ref.source_aggregates = common::ColumnView(host_agg.data() + 1, 3);
  ref.disaggregation = std::move(sparse::CsrMatrix::FromBorrowed(
                                     {3, 2, w.row_ptr, w.col_idx, w.values_a}))
                           .ValueOrDie();
  std::vector<core::ReferenceAttributeView> refs;
  refs.push_back(std::move(ref));
  auto plan = std::move(core::CrosswalkPlan::Compile(std::move(refs),
                                                     core::GeoAlignOptions{}))
                  .ValueOrDie();

  const common::ColumnView obj(host_obj.data() + 1, 3);
  auto direct = std::move(plan.Execute(obj)).ValueOrDie();

  constexpr size_t kWidth = 3;
  common::ColumnView objs[kWidth] = {obj, obj, obj};
  std::optional<Result<core::CrosswalkResult>> slots[kWidth];
  std::optional<Result<core::CrosswalkResult>>* slot_ptrs[kWidth] = {
      &slots[0], &slots[1], &slots[2]};
  plan.ExecutePanelWith(objs, slot_ptrs, kWidth, nullptr);
  for (auto& slot : slots) {
    ASSERT_TRUE(slot.has_value());
    auto paneled = std::move(*slot).ValueOrDie();
    ASSERT_EQ(paneled.target_estimates.size(),
              direct.target_estimates.size());
    EXPECT_EQ(0, std::memcmp(paneled.target_estimates.data(),
                             direct.target_estimates.data(),
                             direct.target_estimates.size() * sizeof(double)))
        << "misaligned view drifted through the panel path";
  }
}

TEST(ZeroCopyCompileTest, EmptyObjectiveViewIsRejected) {
  World w;
  core::CrosswalkInputView input = w.Borrowing();
  input.objective_source = common::ColumnView();
  EXPECT_FALSE(input.Validate().ok());
  auto plan = std::move(core::CrosswalkPlan::Compile(
                            w.Borrowing(), core::GeoAlignOptions{}))
                  .ValueOrDie();
  EXPECT_FALSE(plan.Execute(common::ColumnView()).ok());
}

// ---- hardened Table error paths ---------------------------------------

TEST(TableHardeningTest, CreateRejectsDuplicateColumnNames) {
  auto table = io::Table::Create({"unit", "value", "unit"});
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("duplicate column name 'unit'"),
            std::string::npos);
}

TEST(TableHardeningTest, ParseCsvRejectsDuplicateHeader) {
  EXPECT_FALSE(io::ParseCsv("a,b,a\n1,2,3\n").ok());
}

TEST(TableHardeningTest, NumericColumnRejectsTrailingGarbage) {
  io::Table table({"unit", "value"});
  ASSERT_TRUE(table.AppendRow({"u0", "1.5"}).ok());
  ASSERT_TRUE(table.AppendRow({"u1", "12x"}).ok());
  auto col = table.NumericColumn("value");
  ASSERT_FALSE(col.ok());
  // The hardened error names the column, the offending row, and the
  // cell text.
  const std::string msg(col.status().message());
  EXPECT_NE(msg.find("column 'value'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'12x'"), std::string::npos) << msg;
}

TEST(TableHardeningTest, NumericColumnReportsFirstBadRow) {
  io::Table table({"v"});
  ASSERT_TRUE(table.AppendRow({"0.5"}).ok());
  ASSERT_TRUE(table.AppendRow({"oops"}).ok());
  ASSERT_TRUE(table.AppendRow({"also-bad"}).ok());
  auto col = table.NumericColumn("v");
  ASSERT_FALSE(col.ok());
  const std::string msg(col.status().message());
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'oops'"), std::string::npos) << msg;
}

TEST(TableHardeningTest, KeyValueColumnReportsBadValueCell) {
  io::Table table({"unit", "value"});
  ASSERT_TRUE(table.AppendRow({"u0", "nope"}).ok());
  auto kv = table.KeyValueColumn("unit", "value");
  ASSERT_FALSE(kv.ok());
  const std::string msg(kv.status().message());
  EXPECT_NE(msg.find("row 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'nope'"), std::string::npos) << msg;
}

TEST(TableHardeningTest, EmptyColumnsParseCleanly) {
  io::Table table({"unit", "value"});
  EXPECT_EQ(table.NumRows(), 0u);
  auto col = std::move(table.NumericColumn("value")).ValueOrDie();
  EXPECT_TRUE(col.empty());
  auto kv = std::move(table.KeyValueColumn("unit", "value")).ValueOrDie();
  EXPECT_TRUE(kv.empty());
}

}  // namespace
}  // namespace geoalign
