// End-to-end test of the geoalign_cli binary: writes CSV fixtures,
// invokes the tool as a subprocess, and checks the realigned output.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "io/csv.h"

namespace geoalign {
namespace {

// The CLI binary lives next to the test tree in the build directory;
// tests run with CWD = build/tests (gtest_discover_tests default).
std::string CliPath() {
  for (const char* candidate :
       {"../tools/geoalign_cli", "build/tools/geoalign_cli",
        "./tools/geoalign_cli"}) {
    std::ifstream probe(candidate);
    if (probe.good()) return candidate;
  }
  return "";
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli_ = CliPath();
    if (cli_.empty()) {
      GTEST_SKIP() << "geoalign_cli binary not found relative to CWD";
    }
    dir_ = ::testing::TempDir() + "/geoalign_cli_test";
    std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
    WriteFile(dir_ + "/steam.csv",
              "unit,value\n10001,100\n10002,60\n");
    WriteFile(dir_ + "/pop.csv",
              "source,target,value\n"
              "10001,A,10000\n10001,B,15000\n10002,B,5000\n");
  }

  int RunCli(const std::string& args, const std::string& out_csv) {
    std::string cmd = cli_ + " --objective " + dir_ + "/steam.csv " + args +
                      " --out " + out_csv + " 2>/dev/null";
    return std::system(cmd.c_str());
  }

  std::string cli_;
  std::string dir_;
};

TEST_F(CliTest, GeoAlignRealignsAndPreservesMass) {
  std::string out = dir_ + "/out.csv";
  ASSERT_EQ(RunCli("--ref population=" + dir_ + "/pop.csv", out), 0);
  auto table = std::move(io::ReadCsvFile(out)).ValueOrDie();
  auto kv = std::move(table.KeyValueColumn("unit", "value")).ValueOrDie();
  ASSERT_EQ(kv.size(), 2u);
  // The paper's intro split: 100 -> 40/60, plus 60 entirely in B.
  EXPECT_EQ(kv[0].first, "A");
  EXPECT_NEAR(kv[0].second, 40.0, 1e-6);
  EXPECT_EQ(kv[1].first, "B");
  EXPECT_NEAR(kv[1].second, 120.0, 1e-6);
}

TEST_F(CliTest, DasymetricMethodSelection) {
  std::string out = dir_ + "/out_dasy.csv";
  ASSERT_EQ(RunCli("--ref population=" + dir_ + "/pop.csv "
                   "--method dasymetric=population",
                   out),
            0);
  auto table = std::move(io::ReadCsvFile(out)).ValueOrDie();
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST_F(CliTest, BadUsageFailsNonZero) {
  // Missing --ref.
  std::string cmd = cli_ + " --objective " + dir_ + "/steam.csv 2>/dev/null";
  EXPECT_NE(std::system(cmd.c_str()), 0);
  // Unknown method.
  EXPECT_NE(RunCli("--ref population=" + dir_ + "/pop.csv --method nope",
                   dir_ + "/x.csv"),
            0);
  // Objective unit missing from the crosswalk universe.
  WriteFile(dir_ + "/bad_obj.csv", "unit,value\n99999,5\n");
  std::string cmd2 = cli_ + " --objective " + dir_ +
                     "/bad_obj.csv --ref population=" + dir_ +
                     "/pop.csv 2>/dev/null >/dev/null";
  EXPECT_NE(std::system(cmd2.c_str()), 0);
}

}  // namespace
}  // namespace geoalign
