// Unit tests for the synthetic data substrate: point processes,
// geography construction, dataset suites, universes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "linalg/stats.h"
#include "synth/dataset_suite.h"
#include "synth/geography.h"
#include "synth/point_process.h"
#include "synth/universe.h"

namespace geoalign::synth {
namespace {

using geom::BBox;
using geom::Point;

TEST(PointProcess, UniformStaysInBounds) {
  Rng rng(1);
  BBox box(2, 3, 5, 7);
  auto pts = SampleUniform(box, 500, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Point& p : pts) EXPECT_TRUE(box.Contains(p));
}

TEST(PointProcess, GaussianMixtureConcentratesAroundCenters) {
  Rng rng(2);
  BBox box(0, 0, 10, 10);
  std::vector<GaussianCluster> mix = {{{2.0, 2.0}, 0.3, 1.0}};
  auto pts = SampleGaussianMixture(box, mix, 1000, rng);
  double mean_d = 0.0;
  for (const Point& p : pts) mean_d += Distance(p, {2.0, 2.0});
  mean_d /= pts.size();
  EXPECT_LT(mean_d, 1.0);
}

TEST(PointProcess, ThomasProcessClusters) {
  Rng rng(3);
  BBox box(0, 0, 100, 100);
  auto pts = SampleThomasProcess(box, 10, 50.0, 1.0, rng);
  EXPECT_GT(pts.size(), 200u);
  for (const Point& p : pts) EXPECT_TRUE(box.Contains(p));
}

TEST(PointProcess, CorridorsHugSegments) {
  Rng rng(4);
  BBox box(0, 0, 10, 10);
  std::vector<std::pair<Point, Point>> roads = {{{0, 5}, {10, 5}}};
  auto pts = SampleCorridors(box, roads, 0.2, 400, rng);
  ASSERT_EQ(pts.size(), 400u);
  int near = 0;
  for (const Point& p : pts) {
    if (std::fabs(p.y - 5.0) < 0.6) ++near;
  }
  EXPECT_GT(near, 380);
}

TEST(PointProcess, ThinPointsKeepsFraction) {
  Rng rng(5);
  BBox box(0, 0, 1, 1);
  std::vector<Point> pts(2000, Point{0.5, 0.5});
  auto thinned = ThinPoints(pts, 0.25, 0.01, box, rng);
  EXPECT_NEAR(static_cast<double>(thinned.size()) / pts.size(), 0.25, 0.05);
  for (const Point& p : thinned) EXPECT_TRUE(box.Contains(p));
}

GeographyParams SmallParams(size_t states = 2) {
  GeographyParams params;
  params.num_states = states;
  params.zips_per_state.assign(states, 60);
  params.counties_per_state.assign(states, 8);
  params.seed = 99;
  return params;
}

TEST(Geography, BuildValidates) {
  GeographyParams bad = SmallParams();
  bad.zips_per_state.pop_back();
  EXPECT_FALSE(SyntheticGeography::Build(bad).ok());
  bad = SmallParams();
  bad.num_states = 0;
  EXPECT_FALSE(SyntheticGeography::Build(bad).ok());
  bad = SmallParams();
  bad.atoms_per_zip = 0.5;
  EXPECT_FALSE(SyntheticGeography::Build(bad).ok());
}

TEST(Geography, StructuralInvariants) {
  auto geo = std::move(SyntheticGeography::Build(SmallParams())).ValueOrDie();
  EXPECT_EQ(geo.NumStates(), 2u);
  size_t num_atoms = geo.atoms().NumAtoms();
  EXPECT_EQ(geo.atom_centers().size(), num_atoms);
  EXPECT_EQ(geo.atom_states().size(), num_atoms);
  // Every atom center lies in its state's tile.
  for (size_t a = 0; a < num_atoms; ++a) {
    EXPECT_TRUE(geo.state_bounds(geo.atom_states()[a])
                    .Contains(geo.atom_centers()[a]));
  }
  // Unit counts close to (and not above) the request.
  EXPECT_LE(geo.zips().NumUnits(), 120u);
  EXPECT_GE(geo.zips().NumUnits(), 90u);
  EXPECT_LE(geo.counties().NumUnits(), 16u);
  // Total measure = sum of state tile areas.
  double total = 0.0;
  for (double m : geo.atoms().measures) total += m;
  EXPECT_NEAR(total, 2.0 * 100.0 * 100.0, 1e-6);
}

TEST(Geography, UnitsNeverStraddleStates) {
  auto geo = std::move(SyntheticGeography::Build(SmallParams())).ValueOrDie();
  // Each zip/county label appears in exactly one state.
  std::map<uint32_t, std::set<uint32_t>> zip_states;
  for (size_t a = 0; a < geo.atoms().NumAtoms(); ++a) {
    zip_states[geo.zips().LabelOf(a)].insert(geo.atom_states()[a]);
  }
  for (const auto& [zip, states] : zip_states) {
    EXPECT_EQ(states.size(), 1u) << "zip " << zip;
  }
}

TEST(Geography, DeterministicAcrossBuilds) {
  auto a = std::move(SyntheticGeography::Build(SmallParams())).ValueOrDie();
  auto b = std::move(SyntheticGeography::Build(SmallParams())).ValueOrDie();
  EXPECT_EQ(a.zips().labels(), b.zips().labels());
  EXPECT_EQ(a.counties().labels(), b.counties().labels());
}

TEST(Geography, PrefixStatesAreIdenticalAcrossSizes) {
  // The nesting property behind the paper's universe hierarchy: a
  // 1-state build equals the first state of a 2-state build.
  GeographyParams one = SmallParams(1);
  GeographyParams two = SmallParams(2);
  auto g1 = std::move(SyntheticGeography::Build(one)).ValueOrDie();
  auto g2 = std::move(SyntheticGeography::Build(two)).ValueOrDie();
  size_t atoms1 = g1.atoms().NumAtoms();
  for (size_t a = 0; a < atoms1; ++a) {
    EXPECT_EQ(g1.zips().LabelOf(a), g2.zips().LabelOf(a));
    EXPECT_EQ(g1.counties().LabelOf(a), g2.counties().LabelOf(a));
  }
}

TEST(DatasetSuite, NamesMatchThePaper) {
  auto ny = SuiteDatasetNames(SuiteKind::kNewYorkState);
  EXPECT_EQ(ny.size(), 8u);
  EXPECT_EQ(ny.front(), "Attorney Registration");
  auto us = SuiteDatasetNames(SuiteKind::kUnitedStates);
  EXPECT_EQ(us.size(), 10u);
  EXPECT_TRUE(std::find(us.begin(), us.end(), "Area (Sq. Miles)") !=
              us.end());
  EXPECT_TRUE(std::find(us.begin(), us.end(), "USA Uninhabited Places") !=
              us.end());
}

class UniverseFixture : public ::testing::Test {
 protected:
  static const Universe& GetUniverse() {
    static Universe* uni = [] {
      UniverseOptions opts;
      opts.scale = 0.05;
      opts.seed = 404;
      return new Universe(
          std::move(BuildUniverse(UniverseId::kMidAtlantic, opts)).ValueOrDie());
    }();
    return *uni;
  }
};

TEST_F(UniverseFixture, DatasetsAreConsistent) {
  const Universe& uni = GetUniverse();
  EXPECT_EQ(uni.datasets.size(), 10u);  // US suite by default
  for (const Dataset& d : uni.datasets) {
    EXPECT_EQ(d.source.size(), uni.NumZips());
    EXPECT_EQ(d.target.size(), uni.NumCounties());
    EXPECT_EQ(d.dm.rows(), uni.NumZips());
    EXPECT_EQ(d.dm.cols(), uni.NumCounties());
    // DM marginals equal the aggregate vectors exactly.
    EXPECT_TRUE(linalg::AllClose(d.dm.RowSums(), d.source, 1e-6))
        << d.name;
    EXPECT_TRUE(linalg::AllClose(d.dm.ColSums(), d.target, 1e-6))
        << d.name;
    // All values non-negative.
    for (double v : d.source) EXPECT_GE(v, 0.0);
  }
}

TEST_F(UniverseFixture, MeasureDmMatchesPartitions) {
  const Universe& uni = GetUniverse();
  linalg::Vector rows = uni.measure_dm.RowSums();
  for (size_t i = 0; i < uni.NumZips(); ++i) {
    EXPECT_NEAR(rows[i], uni.geography->zips().Measure(i), 1e-9);
  }
  linalg::Vector cols = uni.measure_dm.ColSums();
  for (size_t j = 0; j < uni.NumCounties(); ++j) {
    EXPECT_NEAR(cols[j], uni.geography->counties().Measure(j), 1e-9);
  }
}

TEST_F(UniverseFixture, LeaveOneOutInputValidates) {
  const Universe& uni = GetUniverse();
  for (size_t t = 0; t < uni.datasets.size(); ++t) {
    auto input = std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie();
    EXPECT_EQ(input.references.size(), uni.datasets.size() - 1);
    EXPECT_TRUE(input.Validate().ok()) << uni.datasets[t].name;
  }
  EXPECT_FALSE(uni.MakeLeaveOneOutInput(99).ok());
}

TEST_F(UniverseFixture, FindDataset) {
  const Universe& uni = GetUniverse();
  auto idx = uni.FindDataset("Population");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(uni.datasets[*idx].name, "Population");
  EXPECT_FALSE(uni.FindDataset("Nope").ok());
}

TEST_F(UniverseFixture, CorrelationStructureMatchesDesign) {
  // The USPS residential layer must be nearly collinear with
  // population (the paper's ~96% pair), and uninhabited places must be
  // negatively or weakly correlated with population.
  const Universe& uni = GetUniverse();
  const auto& ds = uni.datasets;
  auto source_of = [&](const char* name) {
    return ds[std::move(uni.FindDataset(name)).ValueOrDie()].source;
  };
  double res_pop = linalg::PearsonCorrelation(
      source_of("USPS Residential Address"), source_of("Population"));
  EXPECT_GT(res_pop, 0.9);
  double unin_pop = linalg::PearsonCorrelation(
      source_of("USA Uninhabited Places"), source_of("Population"));
  EXPECT_LT(unin_pop, 0.3);
}

TEST(Universe, RegistryIsConsistent) {
  auto all = AllUniverses();
  EXPECT_EQ(all.size(), 6u);
  size_t prev = 0;
  for (UniverseId id : all) {
    EXPECT_GT(UniverseStateCount(id), prev);
    prev = UniverseStateCount(id);
    EXPECT_NE(std::string(UniverseName(id)), "?");
  }
  EXPECT_EQ(UniverseStateCount(UniverseId::kUnitedStates), 49u);
}

TEST(Universe, NySuiteDefaultForNewYork) {
  UniverseOptions opts;
  opts.scale = 0.05;
  auto uni = std::move(BuildUniverse(UniverseId::kNewYork, opts)).ValueOrDie();
  EXPECT_EQ(uni.datasets.size(), 8u);
  EXPECT_EQ(uni.name, "New York State");
}

TEST(Universe, SuiteOverride) {
  UniverseOptions opts;
  opts.scale = 0.05;
  opts.suite = SuiteKind::kUnitedStates;
  auto uni = std::move(BuildUniverse(UniverseId::kNewYork, opts)).ValueOrDie();
  EXPECT_EQ(uni.datasets.size(), 10u);
}

TEST(Universe, ScaleControlsSize) {
  UniverseOptions small;
  small.scale = 0.02;
  UniverseOptions larger;
  larger.scale = 0.06;
  auto a = std::move(BuildUniverse(UniverseId::kNewYork, small)).ValueOrDie();
  auto b = std::move(BuildUniverse(UniverseId::kNewYork, larger)).ValueOrDie();
  EXPECT_LT(a.NumZips(), b.NumZips());
  EXPECT_FALSE(BuildUniverse(UniverseId::kNewYork,
                             UniverseOptions{.seed = 1, .scale = 0.0, .suite = {}})
                   .ok());
}

TEST(Universe, DeterministicGivenSeed) {
  UniverseOptions opts;
  opts.scale = 0.03;
  opts.seed = 777;
  auto a = std::move(BuildUniverse(UniverseId::kNewYork, opts)).ValueOrDie();
  auto b = std::move(BuildUniverse(UniverseId::kNewYork, opts)).ValueOrDie();
  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (size_t d = 0; d < a.datasets.size(); ++d) {
    EXPECT_EQ(a.datasets[d].source, b.datasets[d].source);
    EXPECT_EQ(a.datasets[d].target, b.datasets[d].target);
  }
}

}  // namespace
}  // namespace geoalign::synth
