// Unit tests for the dense linear algebra substrate: vector ops,
// matrices, factorizations, and the constrained least-squares solvers
// behind GeoAlign's weight learning.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/nnls.h"
#include "linalg/qr.h"
#include "linalg/simplex_ls.h"
#include "linalg/stats.h"
#include "linalg/vector_ops.h"

namespace geoalign::linalg {
namespace {

TEST(VectorOps, DotNormSum) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(b), 6.0);
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
  EXPECT_DOUBLE_EQ(Mean(a), 2.0);
  EXPECT_DOUBLE_EQ(Max(b), 6.0);
  EXPECT_DOUBLE_EQ(Min(b), -5.0);
}

TEST(VectorOps, AxpyScaleAddSub) {
  Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  Axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{12.0, 24.0}));
  Scale(y, 0.5);
  EXPECT_EQ(y, (Vector{6.0, 12.0}));
  EXPECT_EQ(Add(x, x), (Vector{2.0, 4.0}));
  EXPECT_EQ(Sub(y, x), (Vector{5.0, 10.0}));
}

TEST(VectorOps, NormalizeByMax) {
  auto n = NormalizeByMax({2.0, 4.0, 1.0});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, (Vector{0.5, 1.0, 0.25}));
}

TEST(VectorOps, NormalizeByMaxRejectsBadInput) {
  EXPECT_FALSE(NormalizeByMax({}).ok());
  EXPECT_FALSE(NormalizeByMax({0.0, 0.0}).ok());
  EXPECT_FALSE(NormalizeByMax({1.0, -2.0}).ok());
}

TEST(VectorOps, AllClose) {
  EXPECT_TRUE(AllClose({1.0, 2.0}, {1.0 + 1e-12, 2.0}, 1e-9));
  EXPECT_FALSE(AllClose({1.0, 2.0}, {1.1, 2.0}, 1e-9));
  EXPECT_FALSE(AllClose({1.0}, {1.0, 2.0}, 1e-9));
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_EQ(m.Row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.Col(0), (Vector{1.0, 3.0, 5.0}));
}

TEST(Matrix, FromColumnsMatchesTranspose) {
  Matrix a = Matrix::FromColumns({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_TRUE(a.Transposed().AllClose(
      Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}}), 0.0));
}

TEST(Matrix, MatVecAndMatMul) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.MatVec({1.0, 1.0}), (Vector{3.0, 7.0}));
  EXPECT_EQ(m.MatTVec({1.0, 1.0}), (Vector{4.0, 6.0}));
  Matrix sq = m.MatMul(m);
  EXPECT_TRUE(sq.AllClose(Matrix::FromRows({{7.0, 10.0}, {15.0, 22.0}}),
                          1e-12));
}

TEST(Matrix, GramIsAtA) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  Matrix g = m.Gram();
  Matrix expected = m.Transposed().MatMul(m);
  EXPECT_TRUE(g.AllClose(expected, 1e-12));
}

TEST(Matrix, IdentityAndFrobenius) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.FrobeniusNorm(), std::sqrt(3.0));
  EXPECT_EQ(id.MatVec({1.0, 2.0, 3.0}), (Vector{1.0, 2.0, 3.0}));
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a = Matrix::FromRows({{2.0, 1.0}, {1.0, 3.0}});
  auto x = SolveLinearSystem(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(LuFactorization::Compute(a).ok());
}

TEST(Lu, RequiresSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(LuFactorization::Compute(a).ok());
}

TEST(Lu, DeterminantWithPivoting) {
  Matrix a = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.UniformInt(uint64_t{8});
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian(0.0, 1.0);
      a(i, i) += 4.0;  // diagonally dominant, well conditioned
    }
    Vector x_true(n);
    for (double& v : x_true) v = rng.Gaussian(0.0, 2.0);
    Vector b = a.MatVec(x_true);
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    EXPECT_TRUE(AllClose(*x, x_true, 1e-8)) << "trial " << trial;
  }
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a = Matrix::FromRows({{4.0, 2.0}, {2.0, 3.0}});
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  auto x = chol->Solve({8.0, 7.0});
  ASSERT_TRUE(x.ok());
  Vector back = a.MatVec(*x);
  EXPECT_NEAR(back[0], 8.0, 1e-10);
  EXPECT_NEAR(back[1], 7.0, 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 1.0}});  // eigenvalues 3,-1
  EXPECT_FALSE(CholeskyFactorization::Compute(a).ok());
}

TEST(Cholesky, FactorReconstructs) {
  Matrix a = Matrix::FromRows(
      {{6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}});
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  Matrix llt = chol->L().MatMul(chol->L().Transposed());
  EXPECT_TRUE(llt.AllClose(a, 1e-10));
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Matrix a = Matrix::FromRows(
      {{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}});
  Vector b = {6.0, 5.0, 7.0, 10.0};
  auto x = LeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  // Classic regression: intercept 3.5, slope 1.4.
  EXPECT_NEAR((*x)[0], 3.5, 1e-10);
  EXPECT_NEAR((*x)[1], 1.4, 1e-10);
}

TEST(Qr, ExactSolveWhenConsistent) {
  Rng rng(31);
  Matrix a(6, 3);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 3; ++j) a(i, j) = rng.Gaussian(0.0, 1.0);
  }
  Vector x_true = {1.0, -2.0, 0.5};
  Vector b = a.MatVec(x_true);
  auto x = LeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(AllClose(*x, x_true, 1e-9));
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}});
  EXPECT_FALSE(LeastSquaresQr(a, {1.0, 2.0, 3.0}).ok());
}

TEST(Qr, RequiresTallMatrix) {
  Matrix a(2, 3);
  EXPECT_FALSE(QrFactorization::Compute(a).ok());
}

TEST(Nnls, UnconstrainedOptimumAlreadyNonNegative) {
  Matrix a = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
  Vector b = {1.0, 2.0, 3.0};
  auto sol = SolveNnls(a, b);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 1.0, 1e-8);
  EXPECT_NEAR(sol->x[1], 2.0, 1e-8);
}

TEST(Nnls, ClampsNegativeComponent) {
  // Unconstrained LS would want a negative coefficient on column 1.
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {0.0, 1.0}});
  Vector b = {1.0, -2.0};
  auto sol = SolveNnls(a, b);
  ASSERT_TRUE(sol.ok());
  for (double v : sol->x) EXPECT_GE(v, 0.0);
  // Best non-negative solution: x2 = 0, x1 = 1.
  EXPECT_NEAR(sol->x[0], 1.0, 1e-8);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-8);
}

TEST(Nnls, ZeroRhsGivesZero) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  auto sol = SolveNnls(a, {0.0, 0.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(Norm2(sol->x), 0.0, 1e-12);
}

double SimplexObjective(const Matrix& a, const Vector& b, const Vector& beta) {
  return Norm2(Sub(a.MatVec(beta), b));
}

TEST(SimplexLs, RecoversExactConvexCombination) {
  // b is exactly 0.3*col0 + 0.7*col1.
  Matrix a = Matrix::FromColumns(
      {{1.0, 0.0, 2.0, 1.0}, {0.0, 1.0, 1.0, 3.0}});
  Vector beta_true = {0.3, 0.7};
  Vector b = a.MatVec(beta_true);
  auto sol = SolveSimplexLeastSquares(a, b);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(AllClose(sol->beta, beta_true, 1e-8));
  // The residual is reported via the normal-equation quadratic form,
  // which cancels to ~sqrt(machine epsilon) rather than exactly 0.
  EXPECT_NEAR(sol->residual_norm, 0.0, 1e-6);
}

TEST(SimplexLs, SingleColumnIsTrivial) {
  Matrix a = Matrix::FromColumns({{1.0, 2.0}});
  auto sol = SolveSimplexLeastSquares(a, {3.0, 4.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->beta, (Vector{1.0}));
}

TEST(SimplexLs, ActivatesBoundWhenOptimalOutsideSimplex) {
  // b equals column 0; the unconstrained equality-constrained optimum
  // would put negative weight on column 1.
  Matrix a = Matrix::FromColumns({{1.0, 0.0}, {0.0, 1.0}});
  Vector b = {1.0, -0.5};
  auto sol = SolveSimplexLeastSquares(a, b);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->beta[0], 1.0, 1e-8);
  EXPECT_NEAR(sol->beta[1], 0.0, 1e-8);
}

TEST(SimplexLs, HandlesDuplicateColumns) {
  // Two identical references: the KKT system is singular; the ridge
  // fallback must still return a valid simplex point with the optimal
  // objective value.
  Matrix a = Matrix::FromColumns({{1.0, 2.0}, {1.0, 2.0}, {0.0, 1.0}});
  Vector b = {1.0, 2.0};
  auto sol = SolveSimplexLeastSquares(a, b);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(Sum(sol->beta), 1.0, 1e-9);
  EXPECT_NEAR(sol->beta[2], 0.0, 1e-6);
  EXPECT_NEAR(sol->residual_norm, 0.0, 1e-6);
}

TEST(SimplexLs, RejectsEmptyAndMismatched) {
  Matrix empty;
  EXPECT_FALSE(SolveSimplexLeastSquares(empty, {}).ok());
  Matrix a(3, 2);
  EXPECT_FALSE(SolveSimplexLeastSquares(a, {1.0, 2.0}).ok());
}

// Agreement between GeoAlign's two weight solvers (WeightSolver::
// kSimplex and kNnlsNormalized): when the design is well conditioned
// and the optimum is interior to the simplex, solving NNLS and
// rescaling to sum 1 must land on the same weights as the
// simplex-constrained solver.
TEST(SolverAgreement, ExactInteriorOptimum) {
  // Tall, near-orthogonal, strictly positive design; b is an exact
  // interior convex combination, so the unconstrained optimum already
  // sits on the simplex and both solvers must recover it exactly.
  size_t m = 60;
  size_t n = 4;
  Rng rng(404);
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = (i % n == j ? 2.0 : 0.1) + 0.05 * rng.Uniform(0.0, 1.0);
    }
  }
  Vector beta_true = {0.4, 0.3, 0.2, 0.1};
  Vector b = a.MatVec(beta_true);

  auto simplex = SolveSimplexLeastSquares(a, b);
  ASSERT_TRUE(simplex.ok());
  auto nnls = SolveNnls(a, b);
  ASSERT_TRUE(nnls.ok());
  Vector nnls_normalized = nnls->x;
  ASSERT_GT(Sum(nnls_normalized), 0.0);
  Scale(nnls_normalized, 1.0 / Sum(nnls_normalized));

  EXPECT_TRUE(AllClose(simplex->beta, beta_true, 1e-8));
  EXPECT_TRUE(AllClose(nnls_normalized, beta_true, 1e-8));
  EXPECT_TRUE(AllClose(simplex->beta, nnls_normalized, 1e-8));
}

TEST(SolverAgreement, NoisyInteriorOptimumStaysWithinNoiseScale) {
  // With a small perturbation of the right-hand side the two programs
  // are no longer identical (NNLS renormalizes after the fact), but on
  // a well-conditioned design their weights may only drift apart at
  // the scale of the noise.
  size_t m = 80;
  size_t n = 5;
  Rng rng(405);
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = (i % n == j ? 2.0 : 0.15) + 0.05 * rng.Uniform(0.0, 1.0);
    }
  }
  Vector beta_true = {0.3, 0.25, 0.2, 0.15, 0.1};
  Vector b = a.MatVec(beta_true);
  constexpr double kNoise = 1e-3;
  for (double& v : b) v += rng.Gaussian(0.0, kNoise);

  auto simplex = SolveSimplexLeastSquares(a, b);
  ASSERT_TRUE(simplex.ok());
  auto nnls = SolveNnls(a, b);
  ASSERT_TRUE(nnls.ok());
  Vector nnls_normalized = nnls->x;
  ASSERT_GT(Sum(nnls_normalized), 0.0);
  Scale(nnls_normalized, 1.0 / Sum(nnls_normalized));

  EXPECT_NEAR(Sum(simplex->beta), 1.0, 1e-9);
  EXPECT_NEAR(Sum(nnls_normalized), 1.0, 1e-12);
  // Both stay near the generating weights and near each other, within
  // a small multiple of the injected noise.
  EXPECT_TRUE(AllClose(simplex->beta, beta_true, 20.0 * kNoise));
  EXPECT_TRUE(AllClose(nnls_normalized, beta_true, 20.0 * kNoise));
  EXPECT_TRUE(AllClose(simplex->beta, nnls_normalized, 20.0 * kNoise));
}

// Property: the solver's result satisfies the constraints and is no
// worse than a dense sample of random feasible points.
class SimplexLsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexLsPropertyTest, BeatsRandomFeasiblePoints) {
  Rng rng(1000 + GetParam());
  size_t m = 5 + rng.UniformInt(uint64_t{40});
  size_t n = 2 + rng.UniformInt(uint64_t{6});
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = std::fabs(rng.Gaussian(0.5, 1.0));
  }
  Vector b(m);
  for (double& v : b) v = std::fabs(rng.Gaussian(0.5, 1.0));

  auto sol = SolveSimplexLeastSquares(a, b);
  ASSERT_TRUE(sol.ok());
  // Feasibility.
  EXPECT_NEAR(Sum(sol->beta), 1.0, 1e-8);
  for (double v : sol->beta) EXPECT_GE(v, -1e-10);
  // Optimality vs random simplex points (Dirichlet-ish samples).
  double obj = SimplexObjective(a, b, sol->beta);
  for (int s = 0; s < 200; ++s) {
    Vector candidate(n);
    double total = 0.0;
    for (double& v : candidate) {
      v = rng.Exponential(1.0);
      total += v;
    }
    for (double& v : candidate) v /= total;
    EXPECT_LE(obj, SimplexObjective(a, b, candidate) + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SimplexLsPropertyTest,
                         ::testing::Range(0, 25));

// Property: NNLS result satisfies KKT vs random non-negative points.
class NnlsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NnlsPropertyTest, BeatsScaledRandomNonNegativePoints) {
  Rng rng(2000 + GetParam());
  size_t m = 4 + rng.UniformInt(uint64_t{20});
  size_t n = 1 + rng.UniformInt(uint64_t{5});
  Matrix a(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian(0.0, 1.0);
  }
  Vector b(m);
  for (double& v : b) v = rng.Gaussian(0.0, 1.0);
  auto sol = SolveNnls(a, b);
  ASSERT_TRUE(sol.ok());
  for (double v : sol->x) EXPECT_GE(v, 0.0);
  double obj = Norm2(Sub(a.MatVec(sol->x), b));
  EXPECT_NEAR(obj, sol->residual_norm, 1e-9);
  for (int s = 0; s < 100; ++s) {
    Vector candidate(n);
    for (double& v : candidate) v = rng.Exponential(1.0);
    EXPECT_LE(obj, Norm2(Sub(a.MatVec(candidate), b)) + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, NnlsPropertyTest,
                         ::testing::Range(0, 20));

TEST(Stats, VarianceAndStdDev) {
  Vector v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(Stats, PearsonCorrelation) {
  Vector x = {1.0, 2.0, 3.0, 4.0};
  Vector y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  Vector z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {1.0, 1.0, 1.0, 1.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  Vector v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 0.3), 5.0);
}

TEST(Stats, BoxStats) {
  Vector v = {1.0, 2.0, 3.0, 4.0, 5.0};
  BoxStats s = ComputeBoxStats(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

}  // namespace
}  // namespace geoalign::linalg
