// Unit tests for the table / CSV substrate.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/csv.h"
#include "io/table.h"

namespace geoalign::io {
namespace {

TEST(Table, ColumnsAndRows) {
  Table t({"zip", "steam"});
  ASSERT_TRUE(t.AppendRow({"10001", "5946"}).ok());
  ASSERT_TRUE(t.AppendRow({"10003", "3519"}).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_EQ(t.Cell(1, 0), "10003");
  EXPECT_FALSE(t.AppendRow({"only-one"}).ok());
}

TEST(Table, TypedAccessors) {
  Table t({"zip", "steam"});
  ASSERT_TRUE(t.AppendRow({"10001", "5946"}).ok());
  ASSERT_TRUE(t.AppendRow({"10003", "3519.5"}).ok());
  auto zips = std::move(t.StringColumn("zip")).ValueOrDie();
  EXPECT_EQ(zips, (std::vector<std::string>{"10001", "10003"}));
  auto vals = std::move(t.NumericColumn("steam")).ValueOrDie();
  EXPECT_DOUBLE_EQ(vals[1], 3519.5);
  EXPECT_FALSE(t.NumericColumn("zip").ok() &&
               false);  // zips happen to parse; check missing instead
  EXPECT_FALSE(t.NumericColumn("missing").ok());
  auto kv = std::move(t.KeyValueColumn("zip", "steam")).ValueOrDie();
  ASSERT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv[0].first, "10001");
  EXPECT_DOUBLE_EQ(kv[0].second, 5946.0);
}

TEST(Csv, ParsesSimple) {
  auto t = std::move(ParseCsv("a,b\n1,2\n3,4\n")).ValueOrDie();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Cell(1, 1), "4");
}

TEST(Csv, HandlesQuotingAndEscapes) {
  auto t = std::move(ParseCsv(
      "name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\nplain,x\n")).ValueOrDie();
  EXPECT_EQ(t.Cell(0, 0), "Smith, John");
  EXPECT_EQ(t.Cell(0, 1), "said \"hi\"");
  EXPECT_EQ(t.Cell(1, 0), "plain");
}

TEST(Csv, HandlesCrLfAndTrailingNewlines) {
  auto t = std::move(ParseCsv("a,b\r\n1,2\r\n\r\n")).ValueOrDie();
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Cell(0, 1), "2");
}

TEST(Csv, QuotedNewlineInsideField) {
  auto t = std::move(ParseCsv("a,b\n\"line1\nline2\",x\n")).ValueOrDie();
  EXPECT_EQ(t.Cell(0, 0), "line1\nline2");
}

TEST(Csv, RejectsMalformed) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());  // ragged row
  EXPECT_FALSE(ParseCsv("a,b\nx\"y,2\n").ok());  // quote mid-field
}

TEST(Csv, RoundTripWithQuoting) {
  Table t({"k", "v"});
  ASSERT_TRUE(t.AppendRow({"a,b", "plain"}).ok());
  ASSERT_TRUE(t.AppendRow({"with \"quote\"", "line\nbreak"}).ok());
  std::string text = ToCsv(t);
  auto back = std::move(ParseCsv(text)).ValueOrDie();
  EXPECT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.Cell(0, 0), "a,b");
  EXPECT_EQ(back.Cell(1, 0), "with \"quote\"");
  EXPECT_EQ(back.Cell(1, 1), "line\nbreak");
}

TEST(Csv, FileRoundTrip) {
  Table t({"zip", "value"});
  ASSERT_TRUE(t.AppendRow({"10001", "1.5"}).ok());
  std::string path = ::testing::TempDir() + "/geoalign_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = std::move(ReadCsvFile(path)).ValueOrDie();
  EXPECT_EQ(back.NumRows(), 1u);
  EXPECT_EQ(back.Cell(0, 0), "10001");
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace geoalign::io
