// Small coverage pass over public surfaces not exercised elsewhere:
// centroids with holes, interpolator names, timer reset, WKT numeric
// fidelity, misc accessors.

#include <gtest/gtest.h>

#include <cmath>

#include "obs/timer.h"
#include "core/areal_weighting.h"
#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "core/regression.h"
#include "core/three_class_dasymetric.h"
#include "geom/polygon.h"
#include "geom/wkt.h"
#include "linalg/stats.h"
#include "sparse/coo_builder.h"

namespace geoalign {
namespace {

TEST(PolygonCentroid, HolePullsCentroidAway) {
  // Square with an off-center hole: centroid moves away from the hole.
  geom::Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  geom::Ring hole = {{2.5, 1.5}, {3.5, 1.5}, {3.5, 2.5}, {2.5, 2.5}};
  auto poly = std::move(geom::Polygon::Create(outer, {hole})).ValueOrDie();
  geom::Point c = poly.Centroid();
  EXPECT_LT(c.x, 2.0);           // pushed left of the square's center
  EXPECT_NEAR(c.y, 2.0, 1e-9);   // vertical symmetry preserved
  // Exact value: (solid moment - hole moment) / area.
  double expected_x = (16.0 * 2.0 - 1.0 * 3.0) / 15.0;
  EXPECT_NEAR(c.x, expected_x, 1e-9);
}

TEST(PolygonCentroid, NgonCentroidIsCenter) {
  geom::Polygon ngon = geom::Polygon::RegularNgon({3.0, -2.0}, 1.5, 9, 0.4);
  geom::Point c = ngon.Centroid();
  EXPECT_NEAR(c.x, 3.0, 1e-9);
  EXPECT_NEAR(c.y, -2.0, 1e-9);
}

TEST(Wkt, PreservesHighPrecisionCoordinates) {
  geom::Point p{123456.789012345, -0.000123456789};
  auto back = std::move(geom::PointFromWkt(geom::ToWkt(p))).ValueOrDie();
  EXPECT_NEAR(back.x, p.x, std::fabs(p.x) * 1e-11);
  EXPECT_NEAR(back.y, p.y, std::fabs(p.y) * 1e-11);
}

TEST(InterpolatorNames, AreStable) {
  EXPECT_EQ(core::GeoAlign().name(), "GeoAlign");
  EXPECT_EQ(core::Dasymetric(size_t{0}).name(), "dasymetric");
  EXPECT_EQ(core::Dasymetric("pop").name(), "dasymetric(pop)");
  EXPECT_EQ(core::ArealWeighting(sparse::CsrMatrix(1, 1)).name(),
            "areal_weighting");
  EXPECT_EQ(core::RegressionBaseline().name(), "regression");
  EXPECT_EQ(core::ThreeClassDasymetric(sparse::CsrMatrix(1, 1)).name(),
            "3-class dasymetric");
}

TEST(PhaseTimer, ClearResets) {
  PhaseTimer t;
  t.Add("x", 1.0);
  t.Clear();
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 0.0);
  EXPECT_TRUE(t.Phases().empty());
}

TEST(BoxStats, SingleElement) {
  linalg::BoxStats s = linalg::ComputeBoxStats({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.q1, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(ReferenceAttribute, TargetAggregatesAreColumnSums) {
  core::ReferenceAttribute ref;
  sparse::CooBuilder b(2, 3);
  b.Add(0, 0, 1.0);
  b.Add(0, 2, 2.0);
  b.Add(1, 2, 4.0);
  ref.disaggregation = b.Build();
  EXPECT_EQ(ref.TargetAggregates(), (linalg::Vector{1.0, 0.0, 6.0}));
}

TEST(GeoAlignOptions, SolverOptionsPropagate) {
  // An absurdly small iteration cap must surface as an error, proving
  // solver options actually reach the solver.
  core::GeoAlignOptions opts;
  opts.solver_options.max_iterations = 1;
  core::GeoAlign geoalign(opts);
  core::CrosswalkInput input;
  // Three references engineered so the active set needs > 1 iteration.
  auto add = [&input](const char* name, std::vector<std::vector<double>> m) {
    core::ReferenceAttribute ref;
    ref.name = name;
    ref.disaggregation =
        sparse::CsrMatrix::FromDense(linalg::Matrix::FromRows(m));
    ref.source_aggregates = ref.disaggregation.RowSums();
    input.references.push_back(std::move(ref));
  };
  add("a", {{5.0, 0.0}, {0.0, 1.0}, {2.0, 2.0}});
  add("b", {{0.0, 1.0}, {6.0, 0.0}, {1.0, 0.0}});
  add("c", {{1.0, 1.0}, {1.0, 1.0}, {0.0, 9.0}});
  input.objective_source = {9.0, 1.0, 1.0};
  auto res = geoalign.Crosswalk(input);
  // Either it converged in one iteration (fine) or the cap error
  // propagated; both prove the option flowed through. A crash or a
  // silent wrong answer would fail the volume check below.
  if (res.ok()) {
    EXPECT_LT(res->VolumePreservationError(input.objective_source), 1e-8);
  } else {
    EXPECT_EQ(res.status().code(), StatusCode::kInternal);
  }
}

}  // namespace
}  // namespace geoalign
