// Failure-injection and fuzz-style robustness tests: parsers must
// return error Statuses (never crash or hang) on arbitrary garbage,
// and fatal-check macros must abort loudly on contract violations.

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "geom/wkt.h"
#include "io/csv.h"
#include "io/geojson.h"
#include "io/json.h"

namespace geoalign {
namespace {

// Deterministic garbage generator: random bytes biased toward
// structural characters so parsers reach deep states.
std::string RandomGarbage(Rng& rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "{}[]\",:0123456789.eE+-abc POLYGON()\\n\t\r";
  size_t len = rng.UniformInt(uint64_t{max_len});
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.Bernoulli(0.05)) {
      out += static_cast<char>(rng.UniformInt(uint64_t{256}));
    } else {
      out += kAlphabet[rng.UniformInt(uint64_t{sizeof(kAlphabet) - 1})];
    }
  }
  return out;
}

// Mutates a valid document at random positions (closer to real-world
// corruption than pure noise).
std::string Mutate(std::string text, Rng& rng) {
  size_t edits = 1 + rng.UniformInt(uint64_t{4});
  for (size_t e = 0; e < edits && !text.empty(); ++e) {
    size_t pos = rng.UniformInt(uint64_t{text.size()});
    switch (rng.UniformInt(uint64_t{3})) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1,
                    static_cast<char>(rng.UniformInt(uint64_t{128})));
        break;
      default:
        text[pos] = static_cast<char>(rng.UniformInt(uint64_t{128}));
    }
  }
  return text;
}

TEST(Fuzz, JsonParserNeverCrashes) {
  Rng rng(101);
  const std::string seed_doc =
      R"({"type":"FeatureCollection","features":[{"a":[1,2,3],"b":"x"}]})";
  for (int i = 0; i < 2000; ++i) {
    std::string input = (i % 2 == 0) ? RandomGarbage(rng, 200)
                                     : Mutate(seed_doc, rng);
    auto result = io::ParseJson(input);
    if (result.ok()) {
      // Whatever parsed must re-serialize and re-parse.
      auto back = io::ParseJson(result->Dump());
      EXPECT_TRUE(back.ok()) << input;
    }
  }
}

TEST(Fuzz, CsvParserNeverCrashes) {
  Rng rng(102);
  const std::string seed_doc = "a,b,c\n1,\"x,y\",3\n4,5,6\n";
  for (int i = 0; i < 2000; ++i) {
    std::string input = (i % 2 == 0) ? RandomGarbage(rng, 200)
                                     : Mutate(seed_doc, rng);
    auto result = io::ParseCsv(input);
    if (result.ok()) {
      auto back = io::ParseCsv(io::ToCsv(*result));
      EXPECT_TRUE(back.ok());
      EXPECT_EQ(back->NumRows(), result->NumRows());
    }
  }
}

TEST(Fuzz, WktParserNeverCrashes) {
  Rng rng(103);
  const std::string seed_doc =
      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2)))";
  for (int i = 0; i < 2000; ++i) {
    std::string input = (i % 2 == 0) ? RandomGarbage(rng, 120)
                                     : Mutate(seed_doc, rng);
    auto poly = geom::MultiPolygonFromWkt(input);
    if (poly.ok()) {
      for (const geom::Polygon& p : *poly) {
        EXPECT_GE(p.outer().size(), 3u);
      }
    }
    (void)geom::PointFromWkt(input);
  }
}

TEST(Fuzz, GeoJsonParserNeverCrashes) {
  Rng rng(104);
  const std::string seed_doc =
      R"({"type":"Feature","geometry":{"type":"Polygon",)"
      R"("coordinates":[[[0,0],[1,0],[0,1]]]},"properties":{"n":"x"}})";
  for (int i = 0; i < 1000; ++i) {
    std::string input = Mutate(seed_doc, rng);
    auto fc = io::ParseGeoJson(input);
    if (fc.ok()) {
      for (const io::Feature& f : fc->features) {
        for (const geom::Polygon& p : f.geometry) {
          EXPECT_GT(p.Area(), 0.0);
        }
      }
    }
  }
}

using RobustnessDeathTest = ::testing::Test;

TEST(RobustnessDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ GEOALIGN_CHECK(1 == 2) << "impossible"; },
               "Check failed: 1 == 2");
}

TEST(RobustnessDeathTest, StatusCheckOkAborts) {
  EXPECT_DEATH(Status::Internal("boom").CheckOK(), "boom");
}

TEST(RobustnessDeathTest, ResultValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<int> r = Status::NotFound("missing");
        (void)*r;
      },
      "missing");
}

}  // namespace
}  // namespace geoalign
