// Differential harness for the SIMD column-panel execute kernels
// (sparse/simd/): every ISA variant KernelsFor can return on this
// machine is driven against the scalar reference implementation and
// must match BIT-FOR-BIT — comparisons go through the raw uint64
// representation, so even a +0.0/-0.0 flip fails, and ASSERTs stop at
// the first non-identical bit.
//
// Two layers:
//  1. micro-kernels: each PanelKernels entry over randomized arrays
//     (exact ±0.0 lanes, subnormals, huge/tiny magnitudes, negatives)
//     at every length that exercises both the vector body and the
//     scalar tail;
//  2. the fused panel kernel: FusedAggregatesPanel over randomized
//     shared CSR structures (empty rows, zero weights, zero aggregate
//     rows) at panel widths 1..64 including ragged tails, for every
//     DenominatorMode × ZeroRowFallback combination — each ISA against
//     the scalar panel, and every lane of the scalar panel against a
//     per-column FusedAggregatesAligned oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "common/span.h"
#include "common/string_util.h"
#include "linalg/matrix.h"
#include "sparse/coo_builder.h"
#include "sparse/csr_matrix.h"
#include "sparse/fused_execute.h"
#include "sparse/simd/isa.h"
#include "sparse/simd/panel_kernels.h"

namespace geoalign {
namespace {

namespace simd = sparse::simd;

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Bit-level equality: fails on -0.0 vs +0.0 and distinguishes NaN
// payloads, which double operator== cannot.
void ExpectBitsEqual(const double* got, const double* want, size_t n,
                     const char* what) {
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(Bits(got[i]), Bits(want[i]))
        << what << " diverges at lane " << i << ": got " << got[i]
        << " want " << want[i];
  }
}

void ExpectBitsEqual(const linalg::Vector& got, const linalg::Vector& want,
                     const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  if (!got.empty()) ExpectBitsEqual(got.data(), want.data(), got.size(), what);
}

// Adversarial double generator: exact zeros of both signs, subnormals,
// and magnitudes that make reciprocal-multiply round interestingly.
double TrickyDouble(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(-8.0, 8.0);
  switch (rng() % 16) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return 4.9406564584124654e-324;  // smallest subnormal
    case 3:
      return -4.9406564584124654e-324;
    case 4:
      return 1.0e300;
    case 5:
      return -1.0e-300;
    default:
      return unit(rng);
  }
}

std::vector<double> TrickyArray(std::mt19937_64& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = TrickyDouble(rng);
  return v;
}

// Lengths covering empty calls, the scalar tail alone, full vector
// bodies (4 = one AVX2 vector, 2 = one NEON vector), bodies plus every
// ragged tail, and the widest panel.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 11, 16, 31, 32, 64};

class SimdKernelTest : public ::testing::TestWithParam<simd::Isa> {};

TEST_P(SimdKernelTest, MicroKernelsMatchScalarReferenceBitForBit) {
  const simd::PanelKernels& ref = simd::KernelsFor(simd::Isa::kScalar);
  const simd::PanelKernels& kern = simd::KernelsFor(GetParam());
  std::mt19937_64 rng(0xC0FFEE ^ static_cast<uint64_t>(GetParam()));

  for (size_t n : kLengths) {
    for (int trial = 0; trial < 32; ++trial) {
      SCOPED_TRACE(StrFormat("isa=%s n=%zu trial=%d",
                             simd::IsaName(GetParam()), n, trial));

      // axpy_broadcast: dst[p] += w[p] * v
      {
        std::vector<double> w = TrickyArray(rng, n);
        double v = TrickyDouble(rng);
        std::vector<double> got = TrickyArray(rng, n);
        std::vector<double> want = got;
        kern.axpy_broadcast(got.data(), w.data(), v, n);
        ref.axpy_broadcast(want.data(), w.data(), v, n);
        ExpectBitsEqual(got.data(), want.data(), n, "axpy_broadcast");
      }

      // axpy_scalar: dst[i] += w * src[i]
      {
        double w = TrickyDouble(rng);
        std::vector<double> src = TrickyArray(rng, n);
        std::vector<double> got = TrickyArray(rng, n);
        std::vector<double> want = got;
        kern.axpy_scalar(got.data(), w, src.data(), n);
        ref.axpy_scalar(want.data(), w, src.data(), n);
        ExpectBitsEqual(got.data(), want.data(), n, "axpy_scalar");
      }

      // masked_add: sum[p] += acc[p] unless acc[p] is exactly ±0.0
      {
        std::vector<double> acc = TrickyArray(rng, n);
        std::vector<double> got = TrickyArray(rng, n);
        std::vector<double> want = got;
        kern.masked_add(got.data(), acc.data(), n);
        ref.masked_add(want.data(), acc.data(), n);
        ExpectBitsEqual(got.data(), want.data(), n, "masked_add");
      }

      // scatter_scaled: part[p] += (acc[p] * inv[p]) * rscale[p],
      // skipping exact-±0.0 acc lanes. inv lanes come from real
      // reciprocals (including inf from subnormal denominators — the
      // mask must keep 0 × inf out of the result exactly as the
      // reference does).
      {
        std::vector<double> acc = TrickyArray(rng, n);
        std::vector<double> denom = TrickyArray(rng, n);
        std::vector<double> inv(n);
        for (size_t i = 0; i < n; ++i) {
          if (denom[i] == 0.0) denom[i] = 1.5;
          inv[i] = 1.0 / denom[i];
        }
        std::vector<double> rscale = TrickyArray(rng, n);
        std::vector<double> got = TrickyArray(rng, n);
        std::vector<double> want = got;
        kern.scatter_scaled(got.data(), acc.data(), inv.data(), rscale.data(),
                            n);
        ref.scatter_scaled(want.data(), acc.data(), inv.data(), rscale.data(),
                           n);
        ExpectBitsEqual(got.data(), want.data(), n, "scatter_scaled");
      }

      // add: dst[i] += src[i]
      {
        std::vector<double> src = TrickyArray(rng, n);
        std::vector<double> got = TrickyArray(rng, n);
        std::vector<double> want = got;
        kern.add(got.data(), src.data(), n);
        ref.add(want.data(), src.data(), n);
        ExpectBitsEqual(got.data(), want.data(), n, "add");
      }

      // zero_mask: bit p iff |denom[p]| <= tol — boundary values
      // included (|x| == tol must count as zero, one ulp above must
      // not).
      {
        for (double tol : {0.0, 1e-12, 1.0}) {
          std::vector<double> denom = TrickyArray(rng, n);
          for (size_t i = 0; i < n && tol > 0.0; i += 3) {
            denom[i] = (i % 2 == 0) ? tol : -tol;  // exact boundary
          }
          uint64_t got = kern.zero_mask(denom.data(), tol, n);
          uint64_t want = ref.zero_mask(denom.data(), tol, n);
          ASSERT_EQ(got, want)
              << StrFormat("zero_mask(tol=%g): got %llx want %llx", tol,
                           static_cast<unsigned long long>(got),
                           static_cast<unsigned long long>(want));
        }
      }

      // reciprocal: inv[p] = 1.0 / denom[p] (nonzero lanes only, per
      // the contract; subnormals stay in — both sides must produce the
      // same inf).
      {
        std::vector<double> denom = TrickyArray(rng, n);
        for (double& d : denom) {
          if (d == 0.0) d = -3.25;
        }
        std::vector<double> got(n), want(n);
        kern.reciprocal(got.data(), denom.data(), n);
        ref.reciprocal(want.data(), denom.data(), n);
        ExpectBitsEqual(got.data(), want.data(), n, "reciprocal");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, SimdKernelTest,
                         ::testing::ValuesIn(simd::SupportedIsas()),
                         [](const auto& info) {
                           return simd::IsaName(info.param);
                         });

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndForcedIsaClamps) {
  EXPECT_TRUE(simd::IsaSupported(simd::Isa::kScalar));
  std::vector<simd::Isa> isas = simd::SupportedIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  for (simd::Isa isa : isas) EXPECT_TRUE(simd::IsaSupported(isa));
  EXPECT_TRUE(simd::IsaSupported(simd::BestSupportedIsa()));

  // ScopedForceIsa overrides ActiveIsa and restores on scope exit;
  // an unsupported request clamps to scalar instead of crashing.
  simd::Isa before = simd::ActiveIsa();
  {
    simd::ScopedForceIsa force(simd::Isa::kScalar);
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
    {
      simd::ScopedForceIsa nested(simd::BestSupportedIsa());
      EXPECT_EQ(simd::ActiveIsa(), simd::BestSupportedIsa());
    }
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
#if !GEOALIGN_SIMD_NEON
    simd::ScopedForceIsa unsupported(simd::Isa::kNeon);
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
#endif
  }
  EXPECT_EQ(simd::ActiveIsa(), before);

  for (simd::Isa isa : isas) {
    EXPECT_STRNE(simd::IsaName(isa), "");
  }
}

// ---------------------------------------------------------------------------
// Fused panel kernel: randomized shared-structure worlds.

struct PanelWorld {
  std::vector<sparse::CsrMatrix> mats;  // aligned (one shared structure)
  std::vector<const sparse::CsrMatrix*> mat_ptrs;
  std::vector<linalg::Vector> aggs;  // per-operand source aggregates
  std::vector<common::ColumnView> agg_views;
  sparse::CsrMatrix fallback;
  linalg::Vector fallback_sums;
  // kMaxPanelWidth objective columns and a full operands × kMaxPanelWidth
  // weight grid; calls repack the first `width` lanes at stride `width`.
  std::vector<linalg::Vector> objectives;
  std::vector<double> weight_grid;
  size_t rows = 0;
  size_t cols = 0;
  sparse::FusedWorkspace::Spec spec;
};

PanelWorld MakePanelWorld(uint64_t seed, size_t rows, size_t cols,
                          size_t operands) {
  PanelWorld w;
  w.rows = rows;
  w.cols = cols;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> val(-4.0, 4.0);

  // Shared structure: every 5th row empty (no entries at all — the
  // kFromDmRowSums zero-row case), otherwise a random nonempty column
  // subset.
  std::vector<std::vector<size_t>> row_cols(rows);
  for (size_t r = 0; r < rows; ++r) {
    if (r % 5 == 3) continue;  // empty row
    for (size_t c = 0; c < cols; ++c) {
      if (unit(rng) < 0.35) row_cols[r].push_back(c);
    }
    if (row_cols[r].empty()) row_cols[r].push_back(r % cols);
  }

  for (size_t mi = 0; mi < operands; ++mi) {
    sparse::CooBuilder builder(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c : row_cols[r]) {
        double v = val(rng);
        if (v == 0.0) v = 0.5;
        builder.Add(r, c, v);
      }
    }
    w.mats.push_back(builder.Build());
  }
  for (const sparse::CsrMatrix& m : w.mats) w.mat_ptrs.push_back(&m);

  // Aggregates: every 7th row zero across ALL operands (the
  // kFromAggregates zero-row case), the rest random (negatives kept:
  // the denominators are arithmetic, not domain-validated, here).
  for (size_t mi = 0; mi < operands; ++mi) {
    linalg::Vector agg(rows, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      if (r % 7 == 2) continue;
      agg[r] = val(rng) + 5.0;
    }
    w.aggs.push_back(std::move(agg));
  }
  for (const linalg::Vector& a : w.aggs) w.agg_views.push_back(a);

  // Fallback DM: support on most rows, but deliberately none on some
  // (a zero row without fallback support loses its mass — both paths
  // must agree on that too).
  {
    sparse::CooBuilder builder(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      if (r % 10 == 3) continue;  // no fallback support
      builder.Add(r, r % cols, 1.0 + unit(rng));
      builder.Add(r, (r + 3) % cols, 0.5 + unit(rng));
    }
    w.fallback = builder.Build();
    w.fallback_sums = w.fallback.RowSums();
  }

  // Objectives: random with exact zeros sprinkled (a zero row scale is
  // the ScaleRows-of-zero case).
  for (size_t p = 0; p < simd::kMaxPanelWidth; ++p) {
    linalg::Vector obj(rows, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      obj[r] = (unit(rng) < 0.1) ? 0.0 : val(rng) + 6.0;
    }
    w.objectives.push_back(std::move(obj));
  }

  // Weight grid: exact zeros per lane AND one operand zero across all
  // lanes of the upper half (the active-operand filter must stay
  // bit-neutral for lanes where an active operand's weight is zero).
  w.weight_grid.assign(operands * simd::kMaxPanelWidth, 0.0);
  for (size_t mi = 0; mi < operands; ++mi) {
    for (size_t p = 0; p < simd::kMaxPanelWidth; ++p) {
      double v = (unit(rng) < 0.2) ? 0.0 : unit(rng) * 2.0;
      if (mi == operands - 1 && p >= simd::kMaxPanelWidth / 2) v = 0.0;
      w.weight_grid[mi * simd::kMaxPanelWidth + p] = v;
    }
  }

  w.spec = sparse::FusedWorkspace::ComputeSpec(w.mats[0], operands);
  return w;
}

// Runs FusedAggregatesPanel on the first `width` lanes of `w` under
// `isa`, into `targets`/`zeros` (resized to width).
void RunPanel(const PanelWorld& w, size_t width, simd::Isa isa,
              bool from_aggregates, bool with_fallback, double tol,
              sparse::FusedWorkspace* ws, std::vector<linalg::Vector>* targets,
              std::vector<std::vector<size_t>>* zeros) {
  std::vector<double> lane_weights(w.mats.size() * width);
  for (size_t mi = 0; mi < w.mats.size(); ++mi) {
    for (size_t p = 0; p < width; ++p) {
      lane_weights[mi * width + p] =
          w.weight_grid[mi * simd::kMaxPanelWidth + p];
    }
  }
  std::vector<common::ColumnView> row_scales(width);
  targets->assign(width, linalg::Vector());
  zeros->assign(width, {});
  std::vector<linalg::Vector*> target_ptrs(width);
  std::vector<std::vector<size_t>*> zero_ptrs(width);
  for (size_t p = 0; p < width; ++p) {
    row_scales[p] = w.objectives[p];
    target_ptrs[p] = &(*targets)[p];
    zero_ptrs[p] = &(*zeros)[p];
  }
  sparse::FusedPanelInputs in;
  in.mats = &w.mat_ptrs;
  in.lane_weights = lane_weights.data();
  in.width = width;
  in.row_scales = row_scales.data();
  if (from_aggregates) in.operand_aggregates = w.agg_views.data();
  in.zero_tolerance = tol;
  if (with_fallback) {
    in.fallback_dm = &w.fallback;
    in.fallback_row_sums = &w.fallback_sums;
  }
  ASSERT_TRUE(sparse::FusedAggregatesPanel(in, w.spec, isa, target_ptrs.data(),
                                           zero_ptrs.data(), ws)
                  .ok());
}

// The single-column oracle for lane p: FusedAggregatesAligned with the
// lane's weight vector and (for kFromAggregates) denominators hoisted
// by the same skip-zero Axpy loop the plan uses.
void RunSingleColumnOracle(const PanelWorld& w, size_t p, size_t width,
                           bool from_aggregates, bool with_fallback,
                           double tol, linalg::Vector* target,
                           std::vector<size_t>* zeros) {
  linalg::Vector weights(w.mats.size(), 0.0);
  for (size_t mi = 0; mi < w.mats.size(); ++mi) {
    weights[mi] = w.weight_grid[mi * simd::kMaxPanelWidth + p];
  }
  (void)width;
  sparse::FusedAggregatesInputs in;
  in.mats = &w.mat_ptrs;
  in.weights = &weights;
  linalg::Vector denom(w.rows, 0.0);
  if (from_aggregates) {
    for (size_t mi = 0; mi < w.mats.size(); ++mi) {
      if (weights[mi] == 0.0) continue;
      for (size_t r = 0; r < w.rows; ++r) {
        denom[r] += weights[mi] * w.aggs[mi][r];
      }
    }
    in.denominators = &denom;
  }
  in.zero_tolerance = tol;
  in.row_scale = w.objectives[p];
  if (with_fallback) {
    in.fallback_dm = &w.fallback;
    in.fallback_row_sums = &w.fallback_sums;
  }
  sparse::FusedWorkspace ws;
  target->clear();
  zeros->clear();
  ASSERT_TRUE(
      sparse::FusedAggregatesAligned(in, w.spec, target, zeros, &ws, nullptr)
          .ok());
}

// Panel widths: 1 (degenerate), every vector-lane multiple, and ragged
// tails against both the 4-lane (AVX2) and 2-lane (NEON) vector widths.
const size_t kPanelWidths[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32, 64};

TEST(FusedPanelDifferentialTest, AllIsasAllModesAllWidthsBitIdentical) {
  for (uint64_t seed : {11u, 29u, 83u}) {
    PanelWorld w = MakePanelWorld(seed, /*rows=*/41, /*cols=*/23,
                                  /*operands=*/3);
    for (bool from_aggregates : {false, true}) {
      for (bool with_fallback : {false, true}) {
        for (size_t width : kPanelWidths) {
          SCOPED_TRACE(StrFormat("seed=%llu agg=%d fb=%d width=%zu",
                                 static_cast<unsigned long long>(seed),
                                 from_aggregates ? 1 : 0,
                                 with_fallback ? 1 : 0, width));
          sparse::FusedWorkspace scalar_ws;
          std::vector<linalg::Vector> scalar_targets;
          std::vector<std::vector<size_t>> scalar_zeros;
          RunPanel(w, width, simd::Isa::kScalar, from_aggregates,
                   with_fallback, /*tol=*/0.0, &scalar_ws, &scalar_targets,
                   &scalar_zeros);

          // Scalar panel vs the single-column kernel, lane by lane:
          // panel blocking must never change a bit or a zero-row list.
          for (size_t p = 0; p < width; ++p) {
            SCOPED_TRACE(StrFormat("lane=%zu", p));
            linalg::Vector want;
            std::vector<size_t> want_zeros;
            RunSingleColumnOracle(w, p, width, from_aggregates, with_fallback,
                                  /*tol=*/0.0, &want, &want_zeros);
            ExpectBitsEqual(scalar_targets[p], want, "panel vs single-column");
            ASSERT_EQ(scalar_zeros[p], want_zeros);
          }

          // Every other dispatched ISA vs the scalar panel.
          for (simd::Isa isa : simd::SupportedIsas()) {
            if (isa == simd::Isa::kScalar) continue;
            SCOPED_TRACE(simd::IsaName(isa));
            sparse::FusedWorkspace isa_ws;
            std::vector<linalg::Vector> isa_targets;
            std::vector<std::vector<size_t>> isa_zeros;
            RunPanel(w, width, isa, from_aggregates, with_fallback,
                     /*tol=*/0.0, &isa_ws, &isa_targets, &isa_zeros);
            for (size_t p = 0; p < width; ++p) {
              SCOPED_TRACE(StrFormat("lane=%zu", p));
              ExpectBitsEqual(isa_targets[p], scalar_targets[p],
                              "isa vs scalar panel");
              ASSERT_EQ(isa_zeros[p], scalar_zeros[p]);
            }
          }
        }
      }
    }
  }
}

TEST(FusedPanelDifferentialTest, PositiveToleranceZeroRowsBitIdentical) {
  // |denominator| <= tol rows must be classified identically by the
  // vectorized zero_mask and the scalar fabs comparison, including
  // denominators exactly at the boundary.
  PanelWorld w = MakePanelWorld(/*seed=*/7, /*rows=*/29, /*cols=*/17,
                                /*operands=*/2);
  for (double tol : {1e-9, 0.5, 10.0}) {
    for (bool from_aggregates : {false, true}) {
      for (size_t width : {size_t{1}, size_t{5}, size_t{16}, size_t{64}}) {
        SCOPED_TRACE(StrFormat("tol=%g agg=%d width=%zu", tol,
                               from_aggregates ? 1 : 0, width));
        sparse::FusedWorkspace scalar_ws;
        std::vector<linalg::Vector> scalar_targets;
        std::vector<std::vector<size_t>> scalar_zeros;
        RunPanel(w, width, simd::Isa::kScalar, from_aggregates,
                 /*with_fallback=*/true, tol, &scalar_ws, &scalar_targets,
                 &scalar_zeros);
        for (size_t p = 0; p < width; ++p) {
          SCOPED_TRACE(StrFormat("lane=%zu", p));
          linalg::Vector want;
          std::vector<size_t> want_zeros;
          RunSingleColumnOracle(w, p, width, from_aggregates,
                                /*with_fallback=*/true, tol, &want,
                                &want_zeros);
          ExpectBitsEqual(scalar_targets[p], want, "panel vs single-column");
          ASSERT_EQ(scalar_zeros[p], want_zeros);
        }
        for (simd::Isa isa : simd::SupportedIsas()) {
          if (isa == simd::Isa::kScalar) continue;
          sparse::FusedWorkspace isa_ws;
          std::vector<linalg::Vector> isa_targets;
          std::vector<std::vector<size_t>> isa_zeros;
          RunPanel(w, width, isa, from_aggregates, /*with_fallback=*/true,
                   tol, &isa_ws, &isa_targets, &isa_zeros);
          for (size_t p = 0; p < width; ++p) {
            ExpectBitsEqual(isa_targets[p], scalar_targets[p],
                            "isa vs scalar panel");
            ASSERT_EQ(isa_zeros[p], scalar_zeros[p]);
          }
        }
      }
    }
  }
}

TEST(FusedPanelDifferentialTest, PreparedWorkspaceRunsWithZeroGrowth) {
  // The steady-state promise at the kernel layer: a workspace that ran
  // one panel reruns the same shape without a single buffer growth.
  PanelWorld w = MakePanelWorld(/*seed=*/42, /*rows=*/31, /*cols=*/19,
                                /*operands=*/3);
  for (simd::Isa isa : simd::SupportedIsas()) {
    SCOPED_TRACE(simd::IsaName(isa));
    sparse::FusedWorkspace ws;
    std::vector<linalg::Vector> targets;
    std::vector<std::vector<size_t>> zeros;
    RunPanel(w, /*width=*/16, isa, /*from_aggregates=*/true,
             /*with_fallback=*/true, /*tol=*/0.0, &ws, &targets, &zeros);
    uint64_t after_first = ws.alloc_events();
    RunPanel(w, /*width=*/16, isa, /*from_aggregates=*/true,
             /*with_fallback=*/true, /*tol=*/0.0, &ws, &targets, &zeros);
    EXPECT_EQ(ws.alloc_events(), after_first)
        << "second identical panel must not grow any buffer";
    // Narrower panels fit in the prepared arenas too.
    RunPanel(w, /*width=*/7, isa, /*from_aggregates=*/true,
             /*with_fallback=*/true, /*tol=*/0.0, &ws, &targets, &zeros);
    EXPECT_EQ(ws.alloc_events(), after_first);
  }
}

TEST(FusedPanelDifferentialTest, RejectsMalformedInputs) {
  PanelWorld w = MakePanelWorld(/*seed=*/3, /*rows=*/11, /*cols=*/7,
                                /*operands=*/2);
  std::vector<double> lane_weights(w.mats.size(), 1.0);
  linalg::Vector target;
  std::vector<size_t> zeros;
  linalg::Vector* target_ptr = &target;
  std::vector<size_t>* zero_ptr = &zeros;
  const common::ColumnView scale_view = w.objectives[0];
  sparse::FusedWorkspace ws;

  sparse::FusedPanelInputs in;
  in.mats = &w.mat_ptrs;
  in.lane_weights = lane_weights.data();
  in.width = 1;
  in.row_scales = &scale_view;

  // Width 0 and width > kMaxPanelWidth are rejected.
  sparse::FusedPanelInputs bad = in;
  bad.width = 0;
  EXPECT_FALSE(sparse::FusedAggregatesPanel(bad, w.spec, simd::Isa::kScalar,
                                            &target_ptr, &zero_ptr, &ws)
                   .ok());
  bad.width = simd::kMaxPanelWidth + 1;
  EXPECT_FALSE(sparse::FusedAggregatesPanel(bad, w.spec, simd::Isa::kScalar,
                                            &target_ptr, &zero_ptr, &ws)
                   .ok());

  // Null workspace / weights / row_scales are rejected, not crashed on.
  EXPECT_FALSE(sparse::FusedAggregatesPanel(in, w.spec, simd::Isa::kScalar,
                                            &target_ptr, &zero_ptr, nullptr)
                   .ok());
  bad = in;
  bad.lane_weights = nullptr;
  EXPECT_FALSE(sparse::FusedAggregatesPanel(bad, w.spec, simd::Isa::kScalar,
                                            &target_ptr, &zero_ptr, &ws)
                   .ok());
  bad = in;
  bad.row_scales = nullptr;
  EXPECT_FALSE(sparse::FusedAggregatesPanel(bad, w.spec, simd::Isa::kScalar,
                                            &target_ptr, &zero_ptr, &ws)
                   .ok());

  // A fallback DM without its row sums (or vice versa) is rejected.
  bad = in;
  bad.fallback_dm = &w.fallback;
  bad.fallback_row_sums = nullptr;
  EXPECT_FALSE(sparse::FusedAggregatesPanel(bad, w.spec, simd::Isa::kScalar,
                                            &target_ptr, &zero_ptr, &ws)
                   .ok());

  // The well-formed baseline passes (guards the EXPECT_FALSEs above
  // against a kernel that rejects everything).
  EXPECT_TRUE(sparse::FusedAggregatesPanel(in, w.spec, simd::Isa::kScalar,
                                           &target_ptr, &zero_ptr, &ws)
                  .ok());
}

}  // namespace
}  // namespace geoalign
